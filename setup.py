"""Setuptools shim (the real configuration lives in pyproject.toml)."""
from setuptools import setup

setup()
