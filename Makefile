PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-chaos test-fork-determinism test-probes test-shard bench bench-quick bench-par bench-shard lint trace-smoke matrix-smoke probes-smoke obs-report

test:
	$(PYTHON) -m pytest -x -q --durations=10

# The quick inner loop: everything except the whole-fleet chaos runs
# and anything marked slow.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not chaos"

# Just the fault-injection property/determinism suite (CI runs this on
# a second Python and uploads the ChaosReport artifact).
test-chaos:
	$(PYTHON) -m pytest -x -q -m chaos --durations=10

# The snapshot layer's correctness bar: a branch forked off a warmed
# fleet must fingerprint byte-identically to the same branch run cold.
# CI runs this as its own named step so snapshot regressions surface
# by name in the Actions summary.
test-fork-determinism:
	$(PYTHON) -m pytest tests/test_fleet_fanout.py -x -q -k determinism

# The probe-catalog suite: the conformance kit (every registered probe
# × every contract check), the differential pins against the
# pre-catalog detection path, the ledger-consistency properties, and
# the edge cases.
test-probes:
	$(PYTHON) -m pytest tests/test_probe_conformance.py \
		tests/test_probes_differential.py tests/test_probes_score.py \
		tests/test_probes_edges.py -x -q --durations=5

# The sharded-core suite: protocol-level mesh tests plus the
# serial-vs-sharded differential pins (CI's shard-smoke job runs this
# on every push; the chaos-marked members also run under test-chaos).
test-shard:
	$(PYTHON) -m pytest -x -q -m shard --durations=5

# Just the sharded-scaling benchmark entry: one warmed 16x192 fleet
# branched serial and 4-way sharded, gated on the deterministic
# critical-path speedup and the sync-message budget (see
# sharded_sweep_entry in benchmarks/perf_report.py for why the raw
# wall ratio is recorded but not gated).  Writes build/bench-shard.json.
bench-shard:
	mkdir -p build
	$(PYTHON) -c "import json, sys; \
		sys.path.insert(0, 'benchmarks'); \
		from perf_report import sharded_sweep_entry; \
		entry = sharded_sweep_entry(); \
		json.dump(entry, open('build/bench-shard.json', 'w'), indent=2, sort_keys=True); \
		print('critical-path %.2fx (target %.1fx), %d sync messages, fingerprint %s' \
			% (entry['critical_path_speedup'], entry['speedup_target'], \
			   entry['messages_sent'], \
			   'match' if entry['fingerprint_matches_baseline'] else 'MISMATCH')); \
		sys.exit(0 if entry['within_budget'] and entry['fingerprint_matches_baseline'] else 1)"

# The CI probes smoke: score the small grid and diff against the
# checked-in expected scores — `repro probes score --expected` exits 1
# on any drift (scores are virtual-time state, so the pin holds on
# every machine).  Re-pin by pointing --report-out at the expected
# file after an intentional change.
probes-smoke:
	mkdir -p build
	$(PYTHON) -m repro probes score --seed 7 --hosts 2 --tenants 4 \
		--churn 0 --pages 6 --wait 6.0 \
		--report-out build/probes-score.json \
		--expected examples/probes/score_smoke.expected.json

# ruff (configured in pyproject.toml) when available; otherwise fall
# back to a byte-compile pass so the target still catches syntax errors
# on minimal toolchains.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

bench:
	$(PYTHON) benchmarks/perf_report.py

bench-quick:
	$(PYTHON) benchmarks/perf_report.py --quick

# All scenarios across a multiprocessing pool; fingerprints merge
# deterministically by scenario name.  Use for fast fingerprint smoke —
# concurrent wall clocks contend, so `bench` stays the timing of record.
bench-par:
	$(PYTHON) benchmarks/perf_report.py --parallel

# Traced end-to-end run + schema validation of the exported trace.
# CI runs this and uploads build/trace-smoke.json as an artifact (open
# it in ui.perfetto.dev).
trace-smoke:
	mkdir -p build
	$(PYTHON) -m repro --seed 42 --trace-out build/trace-smoke.json \
		detect --pages 12
	$(PYTHON) -m repro.obs.validate build/trace-smoke.json \
		--require vm_exit --require ksm.pass --require migration. \
		--require detect.

# The analysis smoke: trace the same seeded fleet sweep twice, analyze
# both traces (attribution, critical path, per-tenant probe overhead,
# flamegraph), and diff the two summaries — `repro obs diff` exits 1 on
# any drift, so this doubles as a determinism gate for the whole
# trace -> analysis pipeline.  CI uploads the flamegraph + diff report.
obs-report:
	mkdir -p build
	$(PYTHON) -m repro --seed 42 --trace-out build/obs-a.trace.json \
		--metrics-out build/obs-a.metrics.json fleet sweep
	$(PYTHON) -m repro --seed 42 --trace-out build/obs-b.trace.json \
		--metrics-out build/obs-b.metrics.json fleet sweep
	$(PYTHON) -m repro obs report build/obs-a.trace.json \
		--metrics build/obs-a.metrics.json --json build/obs-a.summary.json
	$(PYTHON) -m repro obs report build/obs-b.trace.json \
		--metrics build/obs-b.metrics.json --json build/obs-b.summary.json
	$(PYTHON) -m repro obs critical-path build/obs-a.trace.json
	$(PYTHON) -m repro obs flame build/obs-a.trace.json -o build/obs-a.folded
	$(PYTHON) -m repro obs diff build/obs-a.summary.json \
		build/obs-b.summary.json --report-out build/obs-diff.json

# The CI matrix smoke: expand + run the 12-variant chaos grid across a
# 2-worker pool and diff against the checked-in expectations (exit 1 on
# any fingerprint drift; re-pin with `repro matrix pin`).
matrix-smoke:
	mkdir -p build
	$(PYTHON) -m repro matrix expand examples/matrices/chaos_grid.cfg
	$(PYTHON) -m repro matrix run examples/matrices/chaos_grid.cfg \
		--processes 2 --report-out build/matrix-smoke.json
