PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick lint

test:
	$(PYTHON) -m pytest -x -q --durations=10

# ruff (configured in pyproject.toml) when available; otherwise fall
# back to a byte-compile pass so the target still catches syntax errors
# on minimal toolchains.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

bench:
	$(PYTHON) benchmarks/perf_report.py

bench-quick:
	$(PYTHON) benchmarks/perf_report.py --quick
