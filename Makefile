PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick

test:
	$(PYTHON) -m pytest -x -q --durations=10

bench:
	$(PYTHON) benchmarks/perf_report.py

bench-quick:
	$(PYTHON) benchmarks/perf_report.py --quick
