"""Failure paths: the library must fail loudly and precisely."""

import pytest

from repro import scenarios
from repro.errors import (
    MigrationError,
    NetworkError,
    ReconError,
    RootkitError,
    SimulationError,
)
from repro.qemu.config import MonitorSpec


def test_installer_requires_victim_monitor(host):
    """No telnet monitor on the victim: recon succeeds via ps, but the
    installer cannot drive the migration and must say why."""
    config = scenarios.victim_config()
    config.monitor = None
    scenarios.launch_victim(host, config)
    from repro.core.rootkit.installer import CloudSkulkInstaller

    installer = CloudSkulkInstaller(host)
    process = host.engine.process(installer.install())
    with pytest.raises((RootkitError, NetworkError, TypeError)):
        host.engine.run(process)


def test_recon_without_monitor_still_recovers_config(host):
    config = scenarios.victim_config()
    config.monitor = None
    scenarios.launch_victim(host, config)
    from repro.core.rootkit.recon import TargetRecon

    report = host.engine.run(host.engine.process(TargetRecon(host).run()))
    assert report.config.memory_mb == 1024
    assert report.monitor_probes == {}
    assert report.monitor_port is None


def test_installer_fails_cleanly_on_occupied_bbbb(host, victim):
    """GuestX's internal port BBBB already taken: step 3 must raise.

    Choosing BBBB = 2222 collides with the nested VM's own mirrored ssh
    forward, which binds GuestX's port 2222 before ``-incoming`` can.
    """
    from repro.core.rootkit.installer import CloudSkulkInstaller

    installer = CloudSkulkInstaller(host, rootkit_port_bbbb=2222)
    process = host.engine.process(installer.install())
    with pytest.raises(NetworkError, match="port 2222"):
        host.engine.run(process)


def test_migration_to_vanished_destination(host, victim):
    from repro.migration.precopy import PreCopyMigration

    migration = PreCopyMigration(victim, destination_port=7777)
    with pytest.raises(MigrationError, match="destination port"):
        host.engine.run(migration.start())
    assert victim.guest is not None
    assert victim.status == "running"


def test_double_migration_from_same_source(host, victim):
    from repro.migration.precopy import PreCopyMigration
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm

    qemu_img_create(host, "/dm.qcow2", 20)
    config = victim.config.clone_for_destination(
        "dm", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/dm.qcow2")]
    launch_vm(host, config)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(victim.migration_process)
    # The guest is gone; a second migrate must refuse.
    with pytest.raises(MigrationError, match="no guest"):
        PreCopyMigration(victim, destination_port=4445)


def test_engine_all_of_failure_propagates(engine):
    good = engine.timeout(1.0)
    bad = engine.event()

    def waiter(e):
        try:
            yield e.all_of([good, bad])
        except RuntimeError as error:
            return f"caught {error}"

    proc = engine.process(waiter(engine))
    engine.call_later(0.5, bad.fail, RuntimeError("component died"))
    assert engine.run(proc) == "caught component died"


def test_engine_any_of_failure_propagates(engine):
    slow = engine.timeout(10.0)
    bad = engine.event()

    def waiter(e):
        try:
            yield e.any_of([slow, bad])
        except ValueError:
            return "failed-first"

    proc = engine.process(waiter(engine))
    engine.call_later(0.1, bad.fail, ValueError("nope"))
    assert engine.run(proc) == "failed-first"


def test_interrupt_races_completion(engine):
    """Interrupting a process in the same instant its wait completes
    must not corrupt engine state."""

    def sleeper(e):
        yield e.timeout(1.0)
        return "done"

    proc = engine.process(sleeper(engine))

    def interrupter():
        if proc.is_alive:
            proc.interrupt("race")

    engine.call_at(1.0, interrupter)
    result = engine.run(proc)
    # Either outcome is acceptable; the engine must simply survive.
    assert result == "done" or proc.triggered


def test_vm_quit_during_migration_fails_migration(host, victim):
    """Killing the destination mid-stream aborts the migration."""
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm
    from repro.workloads.kernel_compile import KernelCompileWorkload

    workload = KernelCompileWorkload()
    workload.start(victim.guest, loop_forever=True)
    qemu_img_create(host, "/qd.qcow2", 20)
    config = victim.config.clone_for_destination(
        "qd", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/qd.qcow2")]
    dest, _ = launch_vm(host, config)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(until=host.engine.now + 3.0)
    # Cancel from the source side while mid-first-iteration, then make
    # sure the guest still belongs to the (running) source.
    victim.monitor.execute("migrate_cancel")
    host.engine.run(until=host.engine.now + 5.0)
    workload.stop()
    assert victim.guest is not None
    assert victim.migration_stats.status == "cancelled"
