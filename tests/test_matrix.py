"""The scenario-matrix subsystem: grammar, expansion, runner, pinning.

Fast sections (grammar, expansion, pinning round-trips on synthetic
reports, CLI plumbing) run unmarked; everything that builds a fleet
carries the ``chaos`` marker like the other whole-fleet suites, and the
pooled-vs-serial comparison is additionally ``slow``.
"""

import json

import pytest

from repro.cli import main
from repro.matrix import MatrixReport, MatrixRunner, MatrixSpec, expand
from repro.matrix.expand import group_by_warm_key
from repro.matrix.pinning import Expectations, default_expectations_path
from repro.matrix.runner import MatrixError
from repro.matrix.spec import (
    MatrixSpecError,
    coerce_value,
    parse_fault_spec,
    parse_filter,
)
from tests.fleet_helpers import fleet_fingerprint

TINY_SPEC = """\
name = tiny
seed = 11
hosts = 3
tenants = 6
churn_operations = 2
rebalance_moves = 1
campaigns = 1
sweeps = 1
wait_seconds = 6.0

[axis probe]
shallow: file_pages = 8
deep:    file_pages = 16
"""

#: Two warm groups (the topology axis splits the warm prefix).
TWO_GROUP_SPEC = TINY_SPEC + """
[axis topology]
lean: tenants = 5
full: tenants = 6
"""


# ---------------------------------------------------------------------------
# Grammar
# ---------------------------------------------------------------------------


def test_coerce_value_spellings():
    assert coerce_value("on") is True
    assert coerce_value("Yes") is True
    assert coerce_value("off") is False
    assert coerce_value("none") is None
    assert coerce_value("42") == 42
    assert coerce_value("6.5") == 6.5
    assert coerce_value("cloud.campaign#3") == "cloud.campaign#3"


def test_parse_fault_spec_forms():
    assert parse_fault_spec(None) is None
    assert parse_fault_spec("none") is None
    assert parse_fault_spec("mixed:5@240") == ("mixed", None, 5, 240.0)
    assert parse_fault_spec("infra#2:3@180.5") == ("infra", "2", 3, 180.5)
    with pytest.raises(MatrixSpecError, match="bad faults spec"):
        parse_fault_spec("mixed-5-240")
    with pytest.raises(MatrixSpecError, match="unknown fault mix"):
        parse_fault_spec("tsunami:5@240")


def test_parse_filter_alternatives_and_terms():
    parsed = parse_filter("a..probe=deep, c")
    assert parsed == (((None, "a"), ("probe", "deep")), ((None, "c"),))
    with pytest.raises(MatrixSpecError, match="empty term"):
        parse_filter("a.. ..b")
    with pytest.raises(MatrixSpecError, match="bad filter term"):
        parse_filter("probe=de ep")


def test_spec_parse_defaults_axes_and_name():
    spec = MatrixSpec.loads(TINY_SPEC)
    assert spec.name == "tiny"
    assert spec.defaults["seed"] == 11
    assert spec.defaults["wait_seconds"] == 6.0
    assert [axis.name for axis in spec.axes] == ["probe"]
    assert spec.axes[0].labels == ["shallow", "deep"]
    assert spec.cartesian_count == 2
    assert any("axis" in line for line in spec.describe_lines())


def test_spec_filters_are_global_after_sections():
    # Regression: a `no` filter after an [axis] section must parse as a
    # filter (and close the section), not as an axis value.
    spec = MatrixSpec.loads(TWO_GROUP_SPEC + "no deep..lean\n")
    assert spec.filters == [
        ("no", (((None, "deep"), (None, "lean")),), "deep..lean")
    ]
    assert len(expand(spec)) == 3


def test_spec_override_section_patches_matching_variants():
    spec = MatrixSpec.loads(
        TINY_SPEC + "[override probe=deep]\nwait_seconds = 20.0\n"
    )
    by_id = {v.variant_id: v for v in expand(spec)}
    assert by_id["probe=deep"].params["wait_seconds"] == 20.0
    assert by_id["probe=shallow"].params["wait_seconds"] == 6.0


def test_spec_rejects_unknown_parameter():
    with pytest.raises(MatrixSpecError, match="unknown parameter"):
        MatrixSpec.loads(TINY_SPEC + "[axis x]\na: warp_factor = 9\n")


def test_spec_rejects_unknown_filter_label():
    with pytest.raises(MatrixSpecError, match="unknown label"):
        MatrixSpec.loads(TINY_SPEC + "no bogus\n")
    with pytest.raises(MatrixSpecError, match="unknown axis"):
        MatrixSpec.loads(TINY_SPEC + "no lens=deep\n")


def test_spec_rejects_structural_errors():
    with pytest.raises(MatrixSpecError, match="declares no axes"):
        MatrixSpec.loads("name = empty\n")
    with pytest.raises(MatrixSpecError, match="declares no values"):
        MatrixSpec.loads("[axis probe]\n")
    with pytest.raises(MatrixSpecError, match="duplicate axis"):
        MatrixSpec.loads(TINY_SPEC + "[axis probe]\nagain\n")
    with pytest.raises(MatrixSpecError, match="unknown section"):
        MatrixSpec.loads("[expect something]\n")


def test_migration_capabilities_validated_and_split():
    spec = MatrixSpec.loads(
        TINY_SPEC + "[axis wire]\nplain: migration_capabilities = none\n"
        "rich: migration_capabilities = dedup+xbzrle\n"
    )
    by_id = {v.variant_id: v for v in expand(spec)}
    assert by_id["probe=deep,wire=rich"].params["migration_capabilities"] == (
        "dedup",
        "xbzrle",
    )
    assert (
        by_id["probe=deep,wire=plain"].params["migration_capabilities"] is None
    )
    with pytest.raises(MatrixSpecError, match="unknown migration capability"):
        MatrixSpec.loads(
            TINY_SPEC + "[axis w]\nx: migration_capabilities = warp\n"
        )


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------


def test_variant_ids_are_stable_under_axis_reordering():
    reordered = """\
name = tiny
[axis topology]
lean: tenants = 5
full: tenants = 6

[axis probe]
shallow: file_pages = 8
deep:    file_pages = 16
"""
    forward = {v.variant_id for v in expand(MatrixSpec.loads(TWO_GROUP_SPEC))}
    backward = {v.variant_id for v in expand(MatrixSpec.loads(reordered))}
    assert forward == backward
    assert "probe=deep,topology=lean" in forward


def test_expand_cli_filters_compose_with_spec_filters():
    spec = MatrixSpec.loads(TWO_GROUP_SPEC + "no deep..lean\n")
    only = [v.variant_id for v in expand(spec, only="topology=full")]
    assert only == ["probe=shallow,topology=full", "probe=deep,topology=full"]
    dropped = [v.variant_id for v in expand(spec, no="shallow")]
    assert dropped == ["probe=deep,topology=full"]
    with pytest.raises(MatrixSpecError, match="zero variants"):
        expand(spec, only="topology=lean", no="shallow")


def test_warm_grouping_partitions_on_warm_keys_only():
    variants = expand(MatrixSpec.loads(TWO_GROUP_SPEC))
    groups = group_by_warm_key(variants)
    # The probe axis only touches branch keys: 2 groups, not 4.
    assert len(groups) == 2
    assert [len(members) for _key, members in groups] == [2, 2]
    for _key, members in groups:
        assert len({m.warm_key() for m in members}) == 1


def test_examples_detection_recall_expands_past_200():
    spec = MatrixSpec.load("examples/matrices/detection_recall.cfg")
    variants = expand(spec)
    assert len(variants) >= 200
    assert len(variants) == len({v.variant_id for v in variants})
    # Filtered corner really is gone.
    assert not any(
        v.labels["workload"] == "bursty" and v.labels["ksm"] == "cold"
        for v in variants
    )


# ---------------------------------------------------------------------------
# Pinning (synthetic reports — no fleets)
# ---------------------------------------------------------------------------


def _synthetic_report(**recalls):
    report = MatrixReport("synthetic")
    for variant_id, recall in sorted(recalls.items()):
        report.add(
            {
                "variant": variant_id,
                "axes": {},
                "params": {},
                "fingerprint": {
                    "recall": recall,
                    "latencies": (120.5,),
                    "mean_detection_latency": 120.5,
                    "faults_injected": 0,
                    "virtual_now": 100.0,
                },
                "perf_delta": {},
                "wall_seconds": 0.1,
            }
        )
    return report


def test_default_expectations_path():
    assert (
        default_expectations_path("examples/m/grid.cfg")
        == "examples/m/grid.expectations.json"
    )


def test_pinning_round_trip_and_mismatch(tmp_path):
    report = _synthetic_report(**{"a=x": 1.0, "a=y": 0.5})
    path = tmp_path / "grid.expectations.json"
    Expectations.from_report(report).save(path)
    pinned = Expectations.load(path)
    assert pinned.diff(report).clean

    drifted = _synthetic_report(**{"a=x": 1.0, "a=y": 0.0})
    diff = pinned.diff(drifted)
    assert not diff.clean
    assert sorted(diff.mismatched) == ["a=y"]
    assert diff.mismatched["a=y"]["expected"]["recall"] == 0.5
    assert any("MISMATCH a=y" in line for line in diff.lines(verbose=True))


def test_pinning_missing_and_unpinned_partitions():
    pinned = Expectations.from_report(
        _synthetic_report(**{"a=x": 1.0, "a=y": 0.5})
    )
    subset_plus_new = _synthetic_report(**{"a=x": 1.0, "a=z": 0.2})
    diff = pinned.diff(subset_plus_new)
    assert diff.matched == ["a=x"]
    assert diff.missing == ["a=y"]
    assert diff.unpinned == ["a=z"]
    assert not diff.clean  # unpinned variants demand a re-pin

    pinned.update_from(subset_plus_new)
    assert sorted(pinned.pins) == ["a=x", "a=y", "a=z"]


def test_report_json_round_trip_excludes_timing():
    report = _synthetic_report(**{"a=x": 1.0})
    report.groups.append(
        {"warm_params": {}, "seed": 1, "variants": ["a=x"],
         "forked": False, "warm_wall_seconds": 1.5}
    )
    data = json.loads(report.to_json())
    assert "wall_seconds" not in data["entries"][0]
    assert "warm_wall_seconds" not in data["warm_groups"][0]
    timed = json.loads(report.to_json(include_timing=True))
    assert timed["entries"][0]["wall_seconds"] == 0.1
    reloaded = MatrixReport.from_dict(data)
    assert reloaded.fingerprints() == {
        k: json.loads(json.dumps(v))
        for k, v in report.fingerprints().items()
    }


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def test_runner_rejects_bad_process_count():
    spec = MatrixSpec.loads(TINY_SPEC)
    with pytest.raises(MatrixError, match="--processes must be >= 1"):
        MatrixRunner(spec, processes=0)


@pytest.mark.chaos
def test_runner_is_deterministic_and_ordered():
    spec = MatrixSpec.loads(TINY_SPEC)
    first = MatrixRunner(spec).run()
    second = MatrixRunner(spec).run()
    assert first.to_json() == second.to_json()
    assert [e["variant"] for e in first.entries] == [
        "probe=shallow",
        "probe=deep",
    ]
    # One warm group, forked branches; the probe axis showed up in the
    # results (different budgets probe different tenant counts or times).
    assert len(first.groups) == 1
    assert first.groups[0]["forked"] is True
    assert (
        first.entries[0]["fingerprint"] != first.entries[1]["fingerprint"]
    )


@pytest.mark.chaos
def test_warm_forked_matches_cold_run():
    spec = MatrixSpec.loads(TINY_SPEC)
    forked = MatrixRunner(spec, warm_fork=True)
    cold = MatrixRunner(spec, warm_fork=False)
    forked_report = forked.run()
    cold_report = cold.run()
    assert forked_report.fingerprints() == cold_report.fingerprints()
    # Perf deltas too: fork bookkeeping is excluded from the records.
    assert [e["perf_delta"] for e in forked_report.entries] == [
        e["perf_delta"] for e in cold_report.entries
    ]
    # The serial runner keeps full results: the rich fork-determinism
    # fingerprint agrees as well.
    assert [fleet_fingerprint(r) for r in forked.results] == [
        fleet_fingerprint(r) for r in cold.results
    ]


@pytest.mark.chaos
@pytest.mark.slow
def test_pooled_run_matches_serial():
    spec = MatrixSpec.loads(TWO_GROUP_SPEC)
    serial = MatrixRunner(spec).run().to_json()
    pooled = MatrixRunner(spec, processes=2).run().to_json()
    assert pooled == serial


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_matrix_list_catalog_without_spec(capsys):
    assert main(["matrix", "list"]) == 0
    out = capsys.readouterr().out
    assert "warm (group-defining)" in out
    assert "mixed" in out


def test_cli_matrix_list_spec_counts_without_running(capsys):
    assert main(["matrix", "list", "examples/matrices/detection_recall.cfg"]) == 0
    out = capsys.readouterr().out
    assert "expands to 224 variants in 8 warm groups" in out


def test_cli_matrix_expand_prints_ids(capsys):
    assert main(["matrix", "expand", "examples/matrices/chaos_grid.cfg"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 12
    assert out[0] == "faults=infra,topology=small,wire=plain"


def test_cli_fleet_chaos_list_mixes_exits_clean(capsys):
    assert main(["fleet", "chaos", "--list-mixes"]) == 0
    out = capsys.readouterr().out
    assert "standard fault mixes:" in out
    assert "default fleet:" in out


@pytest.mark.parametrize(
    "argv",
    [
        ["fleet", "chaos", "--processes", "0"],
        ["matrix", "run", "examples/matrices/chaos_grid.cfg",
         "--processes", "-2"],
    ],
)
def test_cli_rejects_nonpositive_process_counts(argv, capsys):
    with pytest.raises(SystemExit):
        main(argv)
    err = capsys.readouterr().err
    assert "must be >= 1" in err


@pytest.mark.chaos
def test_cli_pin_then_run_diffs_clean_and_detects_drift(tmp_path, capsys):
    spec_path = tmp_path / "tiny.cfg"
    spec_path.write_text(TINY_SPEC)
    assert main(["matrix", "pin", str(spec_path)]) == 0
    expectations_path = tmp_path / "tiny.expectations.json"
    assert expectations_path.exists()
    assert main(["matrix", "run", str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "2 matched, 0 mismatched" in out

    # Corrupt one pin: the run must fail loudly with the diff.
    pinned = json.loads(expectations_path.read_text())
    pinned["expectations"]["probe=deep"]["recall"] = 0.123
    expectations_path.write_text(json.dumps(pinned))
    assert main(["matrix", "run", str(spec_path)]) == 1
    out = capsys.readouterr().out
    assert "MISMATCH probe=deep" in out
