"""CloudSkulk over post-copy migration (§II-A: "applies to both")."""

import pytest

from repro import scenarios
from repro.core.rootkit.installer import CloudSkulkInstaller
from repro.errors import RootkitError
from repro.workloads.kernel_compile import KernelCompileWorkload


def _install(host, **kwargs):
    installer = CloudSkulkInstaller(host)
    process = host.engine.process(installer.install(**kwargs))
    return host.engine.run(process)


def test_postcopy_install_succeeds():
    host = scenarios.testbed(seed=91)
    scenarios.launch_victim(host)
    report = _install(host, migration_mode="postcopy")
    assert report.success
    victim = report.nested_vm.guest
    assert victim.depth == 2
    assert victim.kernel.extra_op_latency == 0.0  # fully resident again
    assert report.nested_vm.status == "running"


def test_postcopy_install_fast_even_under_compile():
    """The pre-copy install fights the dirty rate for minutes; the
    post-copy install is immune."""
    times = {}
    for mode in ("precopy", "postcopy"):
        host = scenarios.testbed(seed=92)
        vm = scenarios.launch_victim(host)
        workload = KernelCompileWorkload()
        workload.start(vm.guest, loop_forever=True)
        report = _install(host, migration_mode=mode)
        workload.stop()
        times[mode] = report.migration_seconds
    assert times["postcopy"] < 60.0
    assert times["precopy"] > 200.0
    assert times["postcopy"] < times["precopy"] / 4


def test_postcopy_victim_reachable_after_install():
    from repro.net.stack import Link, NetworkNode

    host = scenarios.testbed(seed=93)
    scenarios.launch_victim(host)
    report = _install(host, migration_mode="postcopy")
    client = NetworkNode(host.engine, "customer")
    Link(client, host.net_node, 941e6, 1e-4)
    victim = report.nested_vm.guest
    got = []

    def sshd(e):
        conn = yield victim.net_node.listener(22).accept()
        packet = yield conn.server.recv()
        got.append(packet.payload)

    def dial(e):
        endpoint = client.connect(host.net_node, 2222)
        yield endpoint.send(b"post-copy-hello")

    host.engine.process(sshd(host.engine))
    host.engine.run(host.engine.process(dial(host.engine)))
    host.engine.run(until=host.engine.now + 1.0)
    assert got == [b"post-copy-hello"]


def test_unknown_migration_mode_rejected(host, victim):
    installer = CloudSkulkInstaller(host)
    with pytest.raises(RootkitError):
        next(installer.install(migration_mode="teleport"))


def test_detection_still_works_after_postcopy_install():
    from repro.core.detection.dedup_detector import CloudInterface, DedupDetector
    from repro.core.rootkit.stealth import ImpersonationMirror
    from repro.hypervisor.ksm import KsmDaemon

    host = scenarios.testbed(seed=94)
    vm = scenarios.launch_victim(host)
    state = {"guest": vm.guest}
    KsmDaemon(host.machine).start()
    report = _install(host, migration_mode="postcopy")
    cloud = CloudInterface(host, lambda: state["guest"])
    cloud.observers.append(ImpersonationMirror(report.guestx_vm.guest))
    detector = DedupDetector(host, cloud, file_pages=20)
    result = host.engine.run(host.engine.process(detector.run()))
    assert result.verdict.verdict == "nested"
