"""Reconnaissance: recovering the victim's config by the paper's means."""

import pytest

from repro.core.rootkit.recon import TargetRecon
from repro.errors import ReconError


def _run_recon(host, **kwargs):
    recon = TargetRecon(host)
    return host.engine.run(host.engine.process(recon.run(**kwargs)))


def test_recon_finds_target_via_ps(host, victim):
    report = _run_recon(host)
    assert report.target_name == "guest0"
    assert report.target_pid == victim.process.pid
    assert "qemu-system-x86_64" in report.cmdline


def test_recon_recovers_full_config(host, victim):
    report = _run_recon(host)
    config = report.config
    assert config.memory_mb == 1024
    assert config.smp == 1
    assert config.nics[0].hostfwds == [("tcp", 2222, 22)]
    assert config.monitor.port == 5555
    assert victim.config.mismatches(config) == []


def test_recon_prefers_history(host, victim):
    report = _run_recon(host)
    assert report.config_source == "history"


def test_recon_falls_back_to_ps_when_history_cleared(host, victim):
    host.shell.clear_history()
    report = _run_recon(host)
    assert report.config_source == "ps"
    assert report.config.memory_mb == 1024


def test_recon_probes_monitor(host, victim):
    report = _run_recon(host)
    assert report.monitor_port == 5555
    assert "VM status: running" in report.monitor_probes["info status"]
    assert "size: 1024 MiB" in report.monitor_probes["info mtree"]
    assert "hostfwd" in report.monitor_probes["info network"]


def test_recon_collects_disk_info(host, victim):
    report = _run_recon(host)
    info = report.disk_info["/var/lib/images/guest0.qcow2"]
    assert "virtual size: 20G" in info


def test_recon_monitor_validation_corrects_memory(host, victim):
    """If history lies about memory, the monitor's answer wins."""
    host.shell.clear_history()
    lying = victim.config.to_command_line().replace("-m 1024", "-m 512")
    host.shell.record(lying)
    report = _run_recon(host)
    assert report.config.memory_mb == 1024
    assert any("memory mismatch" in note for note in report.validation_notes)


def test_recon_excludes_attacker_vms(host, victim):
    recon = TargetRecon(host)
    processes = recon.qemu_processes(exclude_names=("guest0",))
    assert processes == []


def test_recon_no_qemu_rejected(host):
    with pytest.raises(ReconError):
        _run_recon(host)


def test_recon_unknown_name_rejected(host, victim):
    with pytest.raises(ReconError):
        _run_recon(host, target_name="ghost")


def test_recon_by_explicit_name(host, victim):
    report = _run_recon(host, target_name="guest0")
    assert report.target_name == "guest0"
