"""Kernel samepage merging: the detector's substrate."""

import pytest

from repro.errors import HypervisorError
from repro.hardware.machine import Machine
from repro.hypervisor.ept import GuestMemory
from repro.hypervisor.ksm import KsmDaemon


@pytest.fixture
def machine():
    return Machine(memory_mb=1024, seed=7)


@pytest.fixture
def ksm(machine):
    daemon = KsmDaemon(machine, pages_to_scan=200, sleep_millisecs=20)
    daemon.start()
    return daemon


def _settle(machine, seconds=1.0):
    machine.engine.run(until=machine.engine.now + seconds)


def test_identical_mergeable_pages_merge(machine, ksm):
    a = machine.memory.allocate(b"twin", mergeable=True)
    b = machine.memory.allocate(b"twin", mergeable=True)
    _settle(machine)
    assert machine.memory.frame(a) is machine.memory.frame(b)
    assert ksm.stats.pages_merged_total >= 1
    assert ksm.pages_sharing >= 1


def test_non_mergeable_pages_never_merge(machine, ksm):
    a = machine.memory.allocate(b"twin", mergeable=False)
    b = machine.memory.allocate(b"twin", mergeable=False)
    _settle(machine)
    assert machine.memory.frame(a) is not machine.memory.frame(b)


def test_different_content_never_merges(machine, ksm):
    a = machine.memory.allocate(b"one", mergeable=True)
    b = machine.memory.allocate(b"two", mergeable=True)
    _settle(machine)
    assert machine.memory.frame(a) is not machine.memory.frame(b)


def test_merge_requires_two_stable_passes(machine, ksm):
    """The volatility filter: no merge within a single scan pass."""
    machine.memory.allocate(b"p", mergeable=True)
    machine.memory.allocate(b"p", mergeable=True)
    _settle(machine, 0.02)  # at most one wake: far too early
    assert ksm.stats.pages_merged_total == 0
    _settle(machine, 1.0)
    assert ksm.stats.pages_merged_total == 1


def test_volatile_page_not_merged(machine, ksm):
    a = machine.memory.allocate(b"flip", mergeable=True)
    machine.memory.allocate(b"flip", mergeable=True)
    flip = [True]

    def churn():
        machine.memory.write(a, b"flip" if flip[0] else b"flop")
        flip[0] = not flip[0]
        machine.engine.call_later(0.01, churn)

    churn()
    _settle(machine, 0.8)
    assert machine.memory.frame(a).refcount == 1


def test_third_copy_joins_stable_frame(machine, ksm):
    pfns = [machine.memory.allocate(b"trio", mergeable=True) for _ in range(2)]
    _settle(machine)
    late = machine.memory.allocate(b"trio", mergeable=True)
    _settle(machine)
    frames = {id(machine.memory.frame(p)) for p in pfns + [late]}
    assert len(frames) == 1
    assert machine.memory.frame(late).refcount == 3


def test_cow_break_restores_privacy(machine, ksm):
    a = machine.memory.allocate(b"shared", mergeable=True)
    b = machine.memory.allocate(b"shared", mergeable=True)
    _settle(machine)
    outcome = machine.memory.write(a, b"diverged")
    assert outcome.cow_broken
    assert machine.memory.read(b) == b"shared"
    # The survivor can merge again with a new twin.
    c = machine.memory.allocate(b"shared", mergeable=True)
    _settle(machine)
    assert machine.memory.frame(c) is machine.memory.frame(b)


def test_merge_across_nesting_levels(machine, ksm):
    """An L2 page merges with an L0 page — the detection premise."""
    l1 = GuestMemory(machine.memory, 64, name="l1")
    l2 = GuestMemory(l1, 32, name="l2")
    deep = l2.alloc_page()
    l2.write(deep, b"file-a-page")
    host_pfn = machine.memory.allocate(b"file-a-page", mergeable=True)
    _settle(machine)
    backing, resolved = l2.resolve(deep)
    assert backing.frame(resolved) is machine.memory.frame(host_pfn)


def test_zero_pages_merge(machine, ksm):
    pfns = [machine.memory.allocate(b"", mergeable=True) for _ in range(10)]
    _settle(machine)
    frames = {id(machine.memory.frame(p)) for p in pfns}
    assert len(frames) == 1


def test_stop_halts_scanning(machine, ksm):
    ksm.stop()
    machine.memory.allocate(b"late", mergeable=True)
    machine.memory.allocate(b"late", mergeable=True)
    _settle(machine)
    assert ksm.stats.pages_merged_total == 0


def test_idle_fast_path_engages_and_recovers(machine, ksm):
    machine.memory.allocate(b"pair", mergeable=True)
    machine.memory.allocate(b"pair", mergeable=True)
    _settle(machine, 2.0)
    assert ksm._idle  # nothing left to do
    merged_before = ksm.stats.pages_merged_total
    machine.memory.allocate(b"fresh", mergeable=True)
    machine.memory.allocate(b"fresh", mergeable=True)
    _settle(machine, 2.0)
    assert ksm.stats.pages_merged_total == merged_before + 1


def test_full_scans_counted(machine, ksm):
    machine.memory.allocate(b"x", mergeable=True)
    _settle(machine, 0.5)
    assert ksm.stats.full_scans >= 2


def test_start_idempotent(machine, ksm):
    assert ksm.start() is ksm._process


def test_parameter_validation(machine):
    with pytest.raises(HypervisorError):
        KsmDaemon(machine, pages_to_scan=0)
    with pytest.raises(HypervisorError):
        KsmDaemon(machine, sleep_millisecs=0)


def test_freed_stable_frame_forgotten(machine, ksm):
    a = machine.memory.allocate(b"gone", mergeable=True)
    b = machine.memory.allocate(b"gone", mergeable=True)
    _settle(machine)
    shared = machine.memory.frame(a)
    assert shared.ksm_shared
    machine.memory.free(a)
    machine.memory.free(b)
    assert ksm.pages_shared == 0 or shared.digest not in ksm._stable


def test_seen_filter_bounded_under_alloc_free_churn(machine, ksm):
    baseline = len(ksm._seen)
    high_water = 0
    for round_no in range(5):
        pfns = [
            machine.memory.allocate(
                f"churn-{round_no}-{page}".encode(), mergeable=True
            )
            for page in range(40)
        ]
        _settle(machine, 2.0)
        high_water = max(high_water, len(ksm._seen))
        for pfn in pfns:
            machine.memory.free(pfn)
        # Freed pfns must leave the volatility filter immediately.
        assert len(ksm._seen) == baseline
    assert high_water >= baseline + 40
