"""Property-based tests on whole-system invariants (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import scenarios
from repro.hardware.machine import Machine
from repro.hypervisor.ksm import KsmDaemon
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm

contents = st.binary(min_size=1, max_size=64)

_slow = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_slow
@given(pages=st.lists(contents, min_size=1, max_size=25), seed=st.integers(1, 10_000))
def test_migration_preserves_arbitrary_memory(pages, seed):
    """Whatever the guest wrote before migration reads back identically
    at the destination, page for page."""
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    guest = vm.guest
    gpfns = []
    for content in pages:
        gpfn = guest.memory.alloc_page()
        guest.memory.write(gpfn, content)
        gpfns.append(gpfn)

    qemu_img_create(host, "/var/lib/images/dst.qcow2", 20)
    config = vm.config.clone_for_destination(
        "dst", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/dst.qcow2")]
    dest, _ = launch_vm(host, config)
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)

    assert dest.guest is guest
    for gpfn, content in zip(gpfns, pages):
        assert guest.memory.read(gpfn) == content


@_slow
@given(
    operations=st.lists(
        st.tuples(st.integers(0, 11), contents), min_size=5, max_size=60
    )
)
def test_ksm_never_corrupts_logical_content(operations):
    """Under an arbitrary interleaving of writes and KSM scans, every
    page always reads back the last value written to it."""
    machine = Machine(memory_mb=256, seed=5)
    ksm = KsmDaemon(machine, pages_to_scan=50, sleep_millisecs=10)
    ksm.start()
    pfns = [machine.memory.allocate(b"init", mergeable=True) for _ in range(12)]
    expected = {pfn: b"init" for pfn in pfns}
    for slot, content in operations:
        pfn = pfns[slot]
        machine.memory.write(pfn, content)
        expected[pfn] = content
        machine.engine.run(until=machine.engine.now + 0.05)
    machine.engine.run(until=machine.engine.now + 2.0)
    for pfn, content in expected.items():
        assert machine.memory.read(pfn) == content
    ksm.stop()


@_slow
@given(
    edits=st.lists(st.tuples(st.integers(0, 9), contents), min_size=1, max_size=20),
    seed=st.integers(1, 10_000),
)
def test_file_pages_survive_the_attack(edits, seed):
    """Arbitrary guest file edits made before the CloudSkulk migration
    are intact afterwards — the rootkit must not corrupt the victim."""
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    guest = vm.guest
    guest.fs.create("/data/db.bin", 10 * 4096, content_seed="db")
    guest.kernel.load_file("/data/db.bin")
    expected = {}
    for page_index, content in edits:
        guest.kernel.write_file_page("/data/db.bin", page_index, content)
        expected[page_index] = content

    report = scenarios.install_cloudskulk(host)
    migrated = report.nested_vm.guest
    assert migrated is guest
    pfns = migrated.kernel.page_cache["/data/db.bin"]
    for page_index, content in expected.items():
        assert migrated.memory.read(pfns[page_index]) == content
        assert migrated.fs.open("/data/db.bin").page_content(page_index) == content
