"""The probe conformance kit: the contract every catalog probe must pass.

Importable (not collected directly — ``test_probe_conformance.py``
parametrizes it over the registry) and reusable: a new probe plugs into
the same four checks the built-ins pass.

The contract, from :mod:`repro.probes.base`:

* **deterministic** — same seed, same target ⇒ byte-identical verdict,
  details, and virtual-time cost;
* **budgeted** — virtual cost never exceeds ``cost_bound`` for the
  target's budget;
* **non-perturbing** — probing a clean tenant leaves the guest's
  OS-level state (process table, forged-view slot, identity) exactly
  as found;
* **graceful** — an unreachable tenant produces the ``unreachable``
  verdict, never an unhandled error.
"""

from repro import scenarios
from repro.core.detection.dedup_detector import CloudInterface
from repro.probes.base import ProbeTarget, run_probe

#: Budget every conformance rig probes under (the single-host scenario
#: budget the Fig 5/6 tests use).
RIG_FILE_PAGES = 8
RIG_WAIT_SECONDS = 6.0
RIG_SEED = 1701
#: Virtual idle time before probing: lets ksmd finish its initial
#: full-scan convergence (done by ~50s on this testbed), the steady
#: state a monitoring sweep actually probes.  Probing mid-convergence
#: would hand the dedup-spy probe legitimate first-merge churn.
RIG_SETTLE_SECONDS = 60.0


def build_rig(seed=RIG_SEED):
    """One clean, KSM-settled single-victim host; returns (host, target)."""
    host, cloud, _ksm, _locator = scenarios.detection_setup(
        nested=False, seed=seed
    )
    engine = host.engine

    def settle():
        yield engine.timeout(RIG_SETTLE_SECONDS)

    engine.run(engine.process(settle(), name="conformance-settle"))
    target = ProbeTarget(
        host,
        "victim",
        cloud,
        file_pages=RIG_FILE_PAGES,
        wait_seconds=RIG_WAIT_SECONDS,
    )
    return host, target


def run_probe_once(probe, target):
    """Drive one probe run to completion; returns the stamped Verdict."""
    engine = target.engine
    outcome = {}

    def runner():
        outcome["verdict"] = yield from run_probe(probe, target)

    started = engine.now
    engine.run(engine.process(runner(), name=f"conformance-{probe.name}"))
    verdict = outcome["verdict"]
    verdict.started_at = started
    verdict.finished_at = engine.now
    return verdict


def guest_os_fingerprint(guest):
    """The OS-level state a probe must not perturb.

    Deliberately excludes memory/filesystem contents: the KSM-timing
    protocol *requires* materializing File-A in the guest.  What no
    probe may do is change what the guest *is* — its identity, its
    process population, or its (un)subverted view.
    """
    forged = guest.kernel.dksm_forged_view
    return (
        guest.name,
        guest.os_name,
        guest.kernel_version,
        guest.depth,
        tuple(
            sorted(
                (proc.pid, proc.name, proc.user)
                for proc in guest.kernel.table.processes()
                if proc.alive
            )
        ),
        None if forged is None else tuple(tuple(row) for row in forged),
    )


# -- the four conformance checks ----------------------------------------


def check_deterministic(probe_factory):
    """Two same-seed rigs, two probe runs: byte-identical outcomes."""
    outcomes = []
    for _ in range(2):
        _host, target = build_rig()
        verdict = run_probe_once(probe_factory(), target)
        outcomes.append(
            (verdict.verdict, sorted(verdict.details.items()), verdict.duration)
        )
    assert outcomes[0] == outcomes[1], (
        f"same-seed probe runs diverged: {outcomes[0]} != {outcomes[1]}"
    )


def check_budget(probe_factory):
    """Virtual cost stays under the declared bound for the budget."""
    probe = probe_factory()
    _host, target = build_rig()
    verdict = run_probe_once(probe, target)
    bound = probe.cost_bound(target.file_pages, target.wait_seconds)
    assert verdict.duration <= bound, (
        f"{probe.name} spent {verdict.duration:.3f}s virtual, "
        f"over its declared bound {bound:.3f}s"
    )


def check_no_os_mutation(probe_factory):
    """A probe on a clean tenant leaves the guest's OS state as found."""
    probe = probe_factory()
    _host, target = build_rig()
    guest = target.locate()
    before = guest_os_fingerprint(guest)
    verdict = run_probe_once(probe, target)
    assert not verdict.flagged, (
        f"{probe.name} flagged a clean tenant: {verdict.verdict}"
    )
    after = guest_os_fingerprint(target.locate())
    assert before == after, (
        f"{probe.name} perturbed guest OS state:\n {before}\n != {after}"
    )


def check_unreachable(probe_factory):
    """A gone tenant (crashed host, deleted VM) degrades gracefully."""
    probe = probe_factory()
    host, _target = build_rig()
    gone = CloudInterface(host, lambda: None)
    target = ProbeTarget(
        host,
        "ghost",
        gone,
        file_pages=RIG_FILE_PAGES,
        wait_seconds=RIG_WAIT_SECONDS,
    )
    verdict = run_probe_once(probe, target)
    assert verdict.verdict == "unreachable", (
        f"{probe.name} returned {verdict.verdict!r} for a gone tenant"
    )
    assert not verdict.flagged


#: check name -> callable(probe_factory); the parametrized suite and
#: any out-of-tree probe's tests iterate exactly this.
CONFORMANCE_CHECKS = {
    "deterministic": check_deterministic,
    "budget": check_budget,
    "no_os_mutation": check_no_os_mutation,
    "unreachable": check_unreachable,
}
