"""The dedup covert channel."""

import pytest

from repro import scenarios
from repro.errors import ReproError
from repro.hypervisor.ksm import KsmDaemon
from repro.sidechannel import ChannelReceiver, ChannelSender, DedupCovertChannel
from repro.sidechannel.dedup_channel import page_content


@pytest.fixture
def pair():
    host = scenarios.testbed(seed=99)
    sender = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="s", image="/i/s.qcow2", ssh_host_port=2301, monitor_port=5601
        ),
    )
    receiver = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="r", image="/i/r.qcow2", ssh_host_port=2302, monitor_port=5602
        ),
    )
    ksm = KsmDaemon(host.machine)
    ksm.start()
    return host, sender.guest, receiver.guest, ksm


def _transmit(host, channel, payload, settle=6.0):
    process = host.engine.process(channel.transmit(payload, settle_seconds=settle))
    return host.engine.run(process)


def test_codebook_deterministic_and_unique():
    assert page_content("k", 0, 0) == page_content("k", 0, 0)
    pages = {page_content("k", f, b) for f in range(3) for b in range(8)}
    assert len(pages) == 24
    assert page_content("k", 0, 0) != page_content("other", 0, 0)


def test_roundtrip_bytes(pair):
    host, sender, receiver, _ksm = pair
    channel = DedupCovertChannel(sender, receiver, seed="x", bits_per_frame=8)
    received, elapsed, bps = _transmit(host, channel, b"EXFIL")
    assert received == b"EXFIL"
    assert elapsed > 0
    assert 0.1 < bps < 10


def test_all_zero_and_all_one_frames(pair):
    host, sender, receiver, _ksm = pair
    channel = DedupCovertChannel(sender, receiver, seed="y", bits_per_frame=8)
    received, _e, _b = _transmit(host, channel, b"\x00\xff")
    assert received == b"\x00\xff"


def test_channel_dead_without_ksm(pair):
    host, sender, receiver, ksm = pair
    ksm.stop()
    channel = DedupCovertChannel(sender, receiver, seed="z", bits_per_frame=8)
    received, _e, _b = _transmit(host, channel, b"\xff")
    assert received == b"\x00"  # every bit reads as 'no merge'


def test_wrong_seed_reads_zero(pair):
    """A receiver without the rendezvous secret sees nothing."""
    host, sender, receiver, _ksm = pair
    tx = ChannelSender(sender, "right-seed", 8)
    rx = ChannelReceiver(receiver, "wrong-seed", 8)

    def run(e):
        yield from tx.send_frame(0, [1] * 8)
        yield e.timeout(6.0)
        bits = yield from rx.receive_frame(0, 6.0)
        return bits

    bits = host.engine.run(host.engine.process(run(host.engine)))
    assert bits == [0] * 8


def test_frames_do_not_leak_between_indices(pair):
    host, sender, receiver, _ksm = pair
    tx = ChannelSender(sender, "s", 4)
    rx = ChannelReceiver(receiver, "s", 4)

    def run(e):
        yield from tx.send_frame(0, [1, 1, 1, 1])
        yield e.timeout(6.0)
        # Probe a *different* frame index: its codebook differs.
        bits = yield from rx.receive_frame(1, 6.0)
        return bits

    assert host.engine.run(host.engine.process(run(host.engine))) == [0] * 4


def test_frame_size_validated(pair):
    _host, sender, receiver, _ksm = pair
    tx = ChannelSender(sender, "s", 8)
    with pytest.raises(ReproError):
        next(tx.send_frame(0, [1, 0]))
    with pytest.raises(ReproError):
        ChannelSender(sender, "s", 0)
