"""The scenarios module: the shared experiment plumbing."""

import pytest

from repro import scenarios
from repro.workloads.idle import IdleWorkload


def test_system_at_levels():
    for level in (0, 1, 2):
        _host, system = scenarios.system_at_level(level, seed=42)
        assert system.depth == level
        assert system.booted


def test_system_at_bad_level():
    with pytest.raises(ValueError):
        scenarios.system_at_level(7)


def test_run_level_returns_metrics():
    result = scenarios.run_level(1, IdleWorkload(), duration=3.0)
    assert result.metrics["ticks"] > 0


def test_launch_victim_idempotent_images(host):
    vm = scenarios.launch_victim(host)
    assert vm.status == "running"


def test_detection_setup_clean():
    host, cloud, ksm, locator = scenarios.detection_setup(nested=False, seed=42)
    assert locator().depth == 1
    assert ksm.running
    assert cloud.observers == []


def test_detection_setup_nested():
    host, cloud, ksm, locator = scenarios.detection_setup(nested=True, seed=42)
    assert locator().depth == 2
    assert len(cloud.observers) == 1  # the impersonation mirror


def test_nested_environment_determinism():
    _h1, r1 = scenarios.nested_environment(seed=7)
    _h2, r2 = scenarios.nested_environment(seed=7)
    assert r1.total_seconds == pytest.approx(r2.total_seconds, rel=1e-9)
    assert r1.migration_seconds == pytest.approx(r2.migration_seconds, rel=1e-9)


def test_seed_changes_timings():
    _h1, r1 = scenarios.nested_environment(seed=7)
    _h2, r2 = scenarios.nested_environment(seed=8)
    assert r1.total_seconds != r2.total_seconds
