"""Warm-once fleet fan-out: fork determinism and the fan-out drivers.

The correctness bar for the snapshot layer at fleet scale: a branch
forked off a warmed fleet must produce *byte-identical* results to the
same branch run cold (same seed, same plan, warm-up replayed live).
CI runs the ``determinism`` subset of this file as its own named step.

All tests here run whole fleet experiments, so the module carries the
``chaos`` marker (deselected by ``make test-fast``).
"""

import pytest

from repro.cloud import run_fleet, warm_fleet
from repro.faults import ChaosCampaign
from repro.faults.chaos import standard_mix_plan
from repro.sim.snapshot import SnapshotError
from tests.fleet_helpers import fleet_fingerprint as _fingerprint

pytestmark = pytest.mark.chaos

#: The 4x12 shape every test warms (the chaos-default fleet).
WARM_PARAMS = dict(
    hosts=4,
    tenants=12,
    seed=1701,
    churn_operations=6,
    rebalance_moves=1,
)

#: The branch suffix (chaos-default detection budget).
BRANCH_PARAMS = dict(
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)


def _cold_branch(**branch_params):
    """The comparator: same warm-up replayed live, then the branch."""
    return warm_fleet(capture=False, **WARM_PARAMS).branch(**branch_params)


@pytest.fixture(scope="module")
def warmed():
    """One captured warm fleet shared by the determinism tests."""
    fleet = warm_fleet(**WARM_PARAMS)
    yield fleet
    fleet.dispose()


def test_forked_chaos_branch_matches_cold_determinism(warmed):
    plan = standard_mix_plan("mixed", 1701, faults=5, horizon=240.0)
    forked = _fingerprint(warmed.branch(faults=plan, **BRANCH_PARAMS))
    again = _fingerprint(warmed.branch(faults=plan, **BRANCH_PARAMS))
    cold = _fingerprint(_cold_branch(faults=plan, **BRANCH_PARAMS))
    assert forked == again  # forks don't consume snapshot state
    assert forked == cold


def test_forked_detection_sweep_matches_cold_determinism(warmed):
    # A different detector budget than the chaos default: the fork must
    # reproduce the cold sweep for arbitrary branch configs, fault-free.
    config = dict(BRANCH_PARAMS, file_pages=25, wait_seconds=20.0)
    forked = _fingerprint(warmed.branch(**config))
    cold = _fingerprint(_cold_branch(**config))
    assert forked == cold


def test_run_fleet_from_snapshot_api(warmed):
    plan = standard_mix_plan("infra", 1701, faults=3, horizon=240.0)
    via_api = _fingerprint(
        run_fleet(faults=plan, from_snapshot=warmed, **BRANCH_PARAMS)
    )
    direct = _fingerprint(warmed.branch(faults=plan, **BRANCH_PARAMS))
    assert via_api == direct
    # The raw EngineSnapshot works too.
    via_snapshot = _fingerprint(
        run_fleet(faults=plan, from_snapshot=warmed.snapshot, **BRANCH_PARAMS)
    )
    assert via_snapshot == direct


def test_fan_out_drivers(warmed):
    # Per-detector-config: distinct budgets, distinct sweep outcomes
    # allowed — but each must be internally scored.
    configs = [
        {"file_pages": 12, "wait_seconds": 10.0},
        {"file_pages": 25, "wait_seconds": 20.0},
    ]
    by_config = warmed.fan_out_detector_configs(configs, campaigns=1, sweeps=1)
    assert len(by_config) == 2
    assert all(result.monitor.reports for result in by_config)

    # Per-seed: same fleet, independent attacker streams; same stream
    # twice must reproduce exactly.
    seeded = warmed.fan_out_seeds(2, **BRANCH_PARAMS)
    assert len(seeded) == 2
    repeat = warmed.branch(
        campaign_stream="cloud.campaign#0", **BRANCH_PARAMS
    )
    assert _fingerprint(repeat) == _fingerprint(seeded[0])


def test_live_fleet_is_single_branch():
    live = warm_fleet(capture=False, **WARM_PARAMS)
    live.branch(**BRANCH_PARAMS)
    with pytest.raises(SnapshotError):
        live.branch(**BRANCH_PARAMS)


def test_chaos_run_fanout_report_is_deterministic():
    def report_json():
        campaign = ChaosCampaign(
            seed=7, mixes=("infra", "mixed"), faults_per_mix=3
        )
        return campaign.run_fanout(branches_per_mix=2).to_json()

    first = report_json()
    assert first == report_json()
    assert '"branch": 1' in first  # per-mix fan-out actually happened


@pytest.mark.slow
def test_chaos_run_fanout_pooled_matches_serial():
    campaign = ChaosCampaign(seed=7, mixes=("infra", "mixed"), faults_per_mix=3)
    serial = campaign.run_fanout(branches_per_mix=2).to_json()
    pooled_campaign = ChaosCampaign(
        seed=7, mixes=("infra", "mixed"), faults_per_mix=3
    )
    pooled = pooled_campaign.run_fanout(
        branches_per_mix=2, processes=2
    ).to_json()
    assert pooled == serial


def test_empty_fleet_warm_capture_and_branch():
    # A fleet warmed with zero tenants and zero churn is a valid (if
    # vacuous) snapshot substrate: capture works, and a campaign-free
    # branch scores an empty experiment instead of crashing.
    fleet = warm_fleet(
        hosts=2, tenants=0, seed=3, churn_operations=0, rebalance_moves=0
    )
    try:
        first = fleet.branch(campaigns=0, sweeps=1)
        again = fleet.branch(campaigns=0, sweeps=1)
        assert first.campaign.events == []
        assert first.recall == 0.0
        assert first.monitor.reports[0].tenants_probed == 0
        assert _fingerprint(first) == _fingerprint(again)
    finally:
        fleet.dispose()
