"""QemuVm lifecycle, monitor commands, telnet monitor."""

import pytest

from repro.errors import MonitorError, QemuError
from repro.qemu.config import DriveSpec, QemuConfig
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import QemuVm, launch_vm
from repro import scenarios


def test_launch_creates_host_process(host, victim):
    procs = host.kernel.table.find_by_name("qemu-system-x86_64")
    assert len(procs) == 1
    assert "-name guest0" in procs[0].cmdline


def test_launch_records_history(host, victim):
    assert any("qemu-system-x86_64" in line for line in host.shell.history)


def test_guest_boots_at_depth_one(victim):
    assert victim.status == "running"
    assert victim.guest.depth == 1
    assert victim.guest.booted


def test_monitor_info_status(victim):
    assert victim.monitor.execute("info status") == "VM status: running"
    victim.pause()
    assert "paused" in victim.monitor.execute("info status")
    victim.resume()


def test_monitor_info_qtree_lists_devices(victim):
    out = victim.monitor.execute("info qtree")
    assert "virtio-blk-pci" in out
    assert "guest0.qcow2" in out
    assert "virtio-net-pci" in out


def test_monitor_info_blockstats(victim):
    out = victim.monitor.execute("info blockstats")
    assert "rd_bytes=" in out
    assert "wr_operations=" in out


def test_monitor_info_mtree_reports_size(victim):
    out = victim.monitor.execute("info mtree")
    assert "size: 1024 MiB" in out
    assert "pc.ram" in out


def test_monitor_info_network_shows_hostfwd(victim):
    out = victim.monitor.execute("info network")
    assert "hostfwd=tcp::2222-:22" in out


def test_monitor_info_mem(victim):
    out = victim.monitor.execute("info mem")
    assert "resident pages:" in out


def test_monitor_unknown_command(victim):
    with pytest.raises(MonitorError):
        victim.monitor.execute("explode")
    with pytest.raises(MonitorError):
        victim.monitor.execute("info nonsense")


def test_monitor_migrate_set_speed_parses_sizes(victim):
    victim.monitor.execute("migrate_set_speed 64m")
    assert victim.migration_max_bandwidth == 64 * 1024 * 1024
    victim.monitor.execute("migrate_set_speed 1g")
    assert victim.migration_max_bandwidth == 1024**3
    with pytest.raises(MonitorError):
        victim.monitor.execute("migrate_set_speed lots")


def test_monitor_info_migrate_before_any(victim):
    assert "No migration" in victim.monitor.execute("info migrate")


def test_pause_resume_wait(host, victim):
    waited = []

    def waiter(e):
        yield victim.wait_if_paused()
        waited.append(e.now)

    victim.pause()
    host.engine.process(waiter(host.engine))
    host.engine.call_later(2.0, victim.resume)
    host.engine.run()
    assert waited and waited[0] == pytest.approx(host.engine.now)


def test_wait_if_paused_immediate_when_running(host, victim):
    done = []

    def waiter(e):
        yield victim.wait_if_paused()
        done.append(True)

    host.engine.process(waiter(host.engine))
    host.engine.run()
    assert done == [True]


def test_quit_tears_down(host, victim):
    pid = victim.process.pid
    victim.monitor.execute("quit")
    assert victim.status == "terminated"
    assert pid not in host.kernel.table
    assert victim.kvm_vm.destroyed
    # Host port freed.
    assert host.net_node.listener(2222) is None
    victim.quit()  # idempotent


def test_requires_booted_host(machine):
    from repro.guest.system import System

    host = System.bare_metal(machine)
    with pytest.raises(QemuError):
        QemuVm(host, scenarios.victim_config())


def test_enable_kvm_required(host):
    qemu_img_create(host, "/no-kvm.img", 5)
    config = QemuConfig("nokvm", 256, drives=[DriveSpec("/no-kvm.img")])
    host_kvm = host.kvm
    host.kvm = None
    try:
        with pytest.raises(QemuError):
            QemuVm(host, config)
    finally:
        host.kvm = host_kvm


def test_missing_image_rejected(host):
    config = QemuConfig("noimg", 256, drives=[DriveSpec("/ghost.qcow2")])
    with pytest.raises(QemuError):
        QemuVm(host, config)


def test_incoming_vm_starts_paused_without_guest(host):
    qemu_img_create(host, "/dest.img", 5)
    config = QemuConfig(
        "dest", 512, drives=[DriveSpec("/dest.img")], incoming_port=4444
    )
    vm, ready = launch_vm(host, config)
    assert vm.status == "inmigrate"
    assert vm.guest is None
    assert vm.paused


def test_telnet_monitor_session(host, victim):
    from repro.qemu.devices.serial import TelnetClient

    def run(e):
        client = TelnetClient(host.net_node, host.net_node, 5555)
        banner = yield from client.open()
        status = yield from client.command("info status")
        bad = yield from client.command("explode")
        client.close()
        return banner, status, bad

    banner, status, bad = host.engine.run(host.engine.process(run(host.engine)))
    assert "QEMU" in banner
    assert status == "VM status: running"
    assert bad.startswith("error:")
