"""Periodic monitoring: detection latency bounded by the sweep interval."""

import pytest

from repro import scenarios
from repro.core.detection.service import MonitoringService
from repro.core.rootkit.stealth import ImpersonationMirror
from repro.errors import DetectionError
from repro.hypervisor.ksm import KsmDaemon


def test_periodic_sweeps_catch_a_mid_stream_attack():
    host = scenarios.testbed(seed=73)
    vm = scenarios.launch_victim(host)
    state = {"guest": vm.guest}
    KsmDaemon(host.machine).start()

    service = MonitoringService(host, file_pages=10)
    interface = service.register_tenant("guest0", lambda: state["guest"])
    alerts = []
    process = service.run_periodic(
        interval_seconds=120.0,
        alert_callback=alerts.append,
        max_sweeps=4,
    )

    # Let sweep 0 complete clean, then attack between sweeps.
    host.engine.run(until=host.engine.now + 90.0)
    assert len(service.sweep_history) == 1
    assert service.sweep_history[0].compromised_tenants == []

    report = scenarios.install_cloudskulk(host)
    interface.observers.append(ImpersonationMirror(report.guestx_vm.guest))

    host.engine.run(process)
    verdict_series = [
        sweep.compromised_tenants for sweep in service.sweep_history
    ]
    assert verdict_series[0] == []
    # Every sweep after the installation flags the tenant.
    assert all(v == ["guest0"] for v in verdict_series[1:])
    assert alerts and alerts[0].compromised_tenants == ["guest0"]


def test_detection_latency_bounded_by_interval():
    host = scenarios.testbed(seed=74)
    vm = scenarios.launch_victim(host)
    state = {"guest": vm.guest}
    KsmDaemon(host.machine).start()
    service = MonitoringService(host, file_pages=10)
    interface = service.register_tenant("guest0", lambda: state["guest"])
    alerts = []
    interval = 200.0
    service.run_periodic(
        interval_seconds=interval, alert_callback=alerts.append, max_sweeps=3
    )
    host.engine.run(until=host.engine.now + 50.0)
    attack_time = host.engine.now
    report = scenarios.install_cloudskulk(host)
    interface.observers.append(ImpersonationMirror(report.guestx_vm.guest))
    host.engine.run(until=host.engine.now + 3 * interval + 300)
    assert alerts
    latency = alerts[0].finished_at - attack_time
    # One interval + one protocol duration (3 waits + install tail).
    assert latency < interval + 200.0


def test_periodic_interval_validated(host):
    service = MonitoringService(host)
    with pytest.raises(DetectionError):
        service.run_periodic(interval_seconds=0)
