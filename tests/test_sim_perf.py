"""The always-on engine perf counters."""

from repro.sim.engine import Engine
from repro.sim.perf import PerfCounters


def test_counters_start_at_zero():
    perf = PerfCounters()
    assert all(value == 0 for value in perf.as_dict().values())


def test_engine_counts_basic_work():
    engine = Engine()

    def worker(e):
        yield e.timeout(1.0)
        yield e.timeout(1.0)
        return "done"

    assert engine.run(engine.process(worker(engine))) == "done"
    perf = engine.perf
    assert perf.events_dispatched > 0
    assert perf.heap_pushes >= perf.events_dispatched
    assert perf.processes_resumed >= 3  # init + two timeouts


def test_reset_and_format():
    engine = Engine()
    engine.timeout(0.5)
    engine.run()
    perf = engine.perf
    assert perf.timer_fast_path == 1
    text = perf.format()
    assert "timer_fast_path" in text and "events_dispatched" in text
    assert dict(perf.as_dict()) == {
        key: getattr(perf, key) for key in perf.as_dict()
    }
    perf.reset()
    assert all(value == 0 for value in perf.as_dict().values())
