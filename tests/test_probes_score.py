"""Property checks of the probe×attack :class:`ScoreMatrix`.

The report's contract is *audit consistency*: every published cell is
a pure function (:meth:`ScoreMatrix.score_cells`) of the per-run
verdict ledger and the leg's ground truth, with no double counting and
conserved totals.  The property test throws randomly seeded
attack/probe pairings at a small fleet and re-derives every cell from
the ledger; a mismatch is delta-debug shrunk (the
``shrink_fault_plan`` pattern from conftest, applied to the attack
list) before failing, so the report names a minimal counterexample.

The 4x12 parity test is the acceptance gate: the wrapped KSM probe's
CloudSkulk recall in the matrix equals the plain
:func:`run_fleet` campaign recall, exactly.
"""

import random

import pytest

from repro.cloud.fleet import run_fleet
from repro.probes.base import registered_probes
from repro.probes.score import ATTACKS, ScoreMatrix
from tests.fleet_helpers import FLEET_4X12

#: Small fleet so each property run stays around a second.
SMALL = dict(
    hosts=2,
    tenants=4,
    churn_operations=0,
    rebalance_moves=0,
    file_pages=6,
    wait_seconds=6.0,
)


def _run_matrix(seed, probes, attacks):
    return ScoreMatrix(
        seed=seed, probes=probes, attacks=attacks, **SMALL
    ).run()


def _truth(report, attack):
    return {
        name: at for name, at in report.attack_meta[attack]["attacked_at"]
    }


def _consistency_failures(report, probe_names):
    """Every audit invariant, checked from the report alone."""
    failures = []
    for attack in report.attacks:
        rows = [row for row in report.ledger if row["attack"] == attack]
        meta = report.attack_meta[attack]

        # Conservation: one ledger row per (sweep, probed tenant, probe) —
        # synthetic unreachable findings included, nothing dropped or
        # counted twice.
        expected_rows = (
            meta["sweeps"] * len(meta["tenants_probed"]) * len(probe_names)
        )
        if len(rows) != expected_rows:
            failures.append(
                f"{attack}: {len(rows)} ledger rows, expected "
                f"{expected_rows} (sweeps×tenants×probes)"
            )

        # The published cells are exactly what score_cells derives from
        # the ledger + ground truth.
        derived = ScoreMatrix.score_cells(
            attack,
            probe_names,
            rows,
            _truth(report, attack),
            meta["window_seconds"],
        )
        published = [report.cell(attack, name) for name in probe_names]
        if derived != published:
            failures.append(f"{attack}: published cells != ledger-derived")

        for cell in published:
            # No double counting: a tenant alerts a probe at most once.
            if (
                cell["true_positives"] + cell["false_positives"]
                > cell["tenants_probed"]
            ):
                failures.append(
                    f"{attack}/{cell['probe']}: TP+FP exceeds tenants probed"
                )
            if cell["attacked"] != len(meta["attacked"]):
                failures.append(
                    f"{attack}/{cell['probe']}: attacked count drifted"
                )
    return failures


def _shrink_attacks(attacks, still_fails):
    """Delta-debugging over the attack tuple (conftest shrinker pattern):
    drop attacks one at a time, from the back, while the failure holds."""
    attacks = list(attacks)
    changed = True
    while changed:
        changed = False
        for index in range(len(attacks) - 1, -1, -1):
            candidate = attacks[:index] + attacks[index + 1 :]
            if candidate and still_fails(tuple(candidate)):
                attacks = candidate
                changed = True
    return tuple(attacks)


@pytest.mark.parametrize("case_seed", range(4))
def test_random_pairings_stay_ledger_consistent(case_seed):
    rng = random.Random(9000 + case_seed)
    catalog = registered_probes()
    probes = tuple(
        name
        for name in catalog
        if name in rng.sample(catalog, rng.randint(1, len(catalog)))
    )
    attacks = tuple(
        attack for attack in ATTACKS if rng.random() < 0.7
    ) or ("clean",)
    seed = rng.randrange(10_000)

    report = _run_matrix(seed, probes, attacks)
    failures = _consistency_failures(report, list(probes))
    if failures:
        minimal = _shrink_attacks(
            attacks,
            lambda sub: bool(
                _consistency_failures(
                    _run_matrix(seed, probes, sub), list(probes)
                )
            ),
        )
        pytest.fail(
            f"seed={seed} probes={probes}: minimal failing "
            f"attacks={minimal}: " + "; ".join(failures)
        )


def test_same_seed_reports_are_byte_identical():
    first = _run_matrix(7, ("ksm_timing", "dedup_spy"), ("clean", "cloudskulk"))
    second = _run_matrix(
        7, ("ksm_timing", "dedup_spy"), ("clean", "cloudskulk")
    )
    assert first.to_json() == second.to_json()
    assert first.ledger == second.ledger


def test_ksm_cloudskulk_recall_matches_the_plain_campaign_4x12():
    """Acceptance: on the pinned 4x12 fleet the matrix's KSM×CloudSkulk
    cell reports exactly the recall the plain campaign run reports."""
    plain = run_fleet(**FLEET_4X12)
    report = ScoreMatrix(attacks=("cloudskulk",)).run()
    cell = report.cell("cloudskulk", "ksm_timing")
    assert cell["recall"] == plain.recall
    assert cell["false_positives"] == 0