"""Edge cases for the probe catalog.

Each probe's honest-limitation behavior, pinned: the VMI probe's two
``inconclusive`` modes (the nested semantic gap, an unknown kernel
build) and its recovery after a forged view is restored; the dedup-spy
probe on a tenant with *nothing* shared; and the matrix ``probes``
axis validation.
"""

import pytest

from repro import scenarios
from repro.matrix import MatrixSpec, expand
from repro.matrix.spec import MatrixSpecError
from repro.probes.base import ProbeTarget, get_probe
from repro.vmi.subversion import forge_process_view, restore_process_view
from tests.probe_conformance import (
    RIG_FILE_PAGES,
    RIG_WAIT_SECONDS,
    build_rig,
    run_probe_once,
)
from tests.test_matrix import TINY_SPEC


def _unsettled_rig(nested, seed=1701):
    """detection_setup with no settle idle: probes run at boot time."""
    host, cloud, _ksm, _locator = scenarios.detection_setup(
        nested=nested, seed=seed
    )
    target = ProbeTarget(
        host,
        "victim",
        cloud,
        file_pages=RIG_FILE_PAGES,
        wait_seconds=RIG_WAIT_SECONDS,
    )
    return host, target


def test_vmi_probe_recovers_after_view_is_restored():
    """Subverted-then-restored: the probe flags the forgery, then — once
    the attacker's DKSM view is torn down — reads the tenant clean."""
    _host, target = build_rig()
    guest = target.locate()
    alive = sorted(
        (proc.pid, proc.name, proc.user)
        for proc in guest.kernel.table.processes()
        if proc.alive
    )
    forge_process_view(guest, alive[:-1])  # hide one process

    verdict = run_probe_once(get_probe("vmi_invariance"), target)
    assert verdict.verdict == "subverted"
    assert verdict.details["hidden"] == 1
    assert verdict.details["injected"] == 0

    restore_process_view(guest)
    verdict = run_probe_once(get_probe("vmi_invariance"), target)
    assert verdict.verdict == "clean"
    assert verdict.details["hidden"] == 0


def test_vmi_probe_reports_the_nested_semantic_gap():
    """A depth-2 guest is behind two semantic gaps: the probe says it
    cannot see (``inconclusive``), never ``clean`` — CloudSkulk's blind
    spot stays visible in the report."""
    _host, target = _unsettled_rig(nested=True)
    verdict = run_probe_once(get_probe("vmi_invariance"), target)
    assert verdict.verdict == "inconclusive"
    assert verdict.details["reason"] == "semantic-gap"
    assert verdict.details["depth"] == 2
    assert not verdict.flagged


def test_vmi_probe_without_layout_knowledge_is_inconclusive():
    _host, target = build_rig()
    guest = target.locate()
    guest.kernel_version = "9.99.0-custom"
    verdict = run_probe_once(get_probe("vmi_invariance"), target)
    assert verdict.verdict == "inconclusive"
    assert verdict.details["reason"] == "no-layout-knowledge"


def test_dedup_spy_with_zero_shared_pages_is_clean():
    """A tenant on a host with KSM off never shares a page: an empty
    shared set is boring, not suspicious."""
    from repro.core.detection.dedup_detector import CloudInterface

    host = scenarios.testbed(seed=1701)
    vm = scenarios.launch_victim(host)
    cloud = CloudInterface(host, lambda: vm.guest)
    target = ProbeTarget(
        host,
        "victim",
        cloud,
        file_pages=RIG_FILE_PAGES,
        wait_seconds=RIG_WAIT_SECONDS,
    )
    verdict = run_probe_once(get_probe("dedup_spy"), target)
    assert verdict.verdict == "clean"
    assert verdict.details["shared_pages"] == 0
    assert verdict.details["churn"] == 0


def test_matrix_probes_axis_validated_and_split():
    spec = MatrixSpec.loads(
        TINY_SPEC + "[axis det]\nksm: probes = ksm_timing\n"
        "all: probes = ksm_timing+vmi_invariance+dedup_spy\n"
    )
    by_id = {v.variant_id: v for v in expand(spec)}
    assert by_id["det=all,probe=deep"].params["probes"] == (
        "ksm_timing",
        "vmi_invariance",
        "dedup_spy",
    )
    assert by_id["det=ksm,probe=deep"].params["probes"] == ("ksm_timing",)
    with pytest.raises(MatrixSpecError, match="unknown probe"):
        MatrixSpec.loads(TINY_SPEC + "[axis d]\nx: probes = tarpit\n")
    with pytest.raises(MatrixSpecError, match="listed twice"):
        MatrixSpec.loads(
            TINY_SPEC + "[axis d]\nx: probes = ksm_timing+ksm_timing\n"
        )


def test_probes_list_cli_names_the_catalog(capsys):
    from repro.cli import main

    assert main(["probes", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("ksm_timing", "vmi_invariance", "dedup_spy"):
        assert name in out