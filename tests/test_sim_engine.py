"""The discrete-event engine: events, processes, composition, time."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event, Interrupt, Timeout


def test_clock_starts_at_zero(engine):
    assert engine.now == 0.0


def test_timeout_advances_clock(engine):
    fired = []

    def proc(e):
        yield e.timeout(2.5)
        fired.append(e.now)
        return "done"

    result = engine.run(engine.process(proc(engine)))
    assert result == "done"
    assert fired == [2.5]


def test_timeouts_fire_in_order(engine):
    order = []
    for delay in (3.0, 1.0, 2.0):
        engine.call_later(delay, order.append, delay)
    engine.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fifo(engine):
    order = []
    for tag in range(5):
        engine.call_later(1.0, order.append, tag)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-0.1)


def test_event_succeed_value(engine):
    event = engine.event()

    def waiter(e, ev):
        value = yield ev
        return value * 2

    proc = engine.process(waiter(engine, event))
    engine.call_later(1.0, event.succeed, 21)
    assert engine.run(proc) == 42


def test_event_double_trigger_rejected(engine):
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_into_process(engine):
    event = engine.event()

    def waiter(e, ev):
        try:
            yield ev
        except ValueError as error:
            return f"caught {error}"

    proc = engine.process(waiter(engine, event))
    engine.call_later(0.5, event.fail, ValueError("boom"))
    assert engine.run(proc) == "caught boom"


def test_event_fail_requires_exception(engine):
    event = engine.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_process_exception_surfaces_via_run(engine):
    def exploder(e):
        yield e.timeout(1.0)
        raise RuntimeError("kaput")

    proc = engine.process(exploder(engine))
    with pytest.raises(RuntimeError, match="kaput"):
        engine.run(proc)


def test_process_requires_generator(engine):
    with pytest.raises(SimulationError):
        engine.process(lambda: None)


def test_process_yielding_non_event_is_error(engine):
    def bad(e):
        yield 42

    proc = engine.process(bad(engine))
    with pytest.raises(SimulationError):
        engine.run(proc)


def test_nested_processes(engine):
    def inner(e):
        yield e.timeout(1.0)
        return "inner-done"

    def outer(e):
        result = yield e.process(inner(e))
        yield e.timeout(1.0)
        return result + "+outer"

    assert engine.run(engine.process(outer(engine))) == "inner-done+outer"
    assert engine.now == 2.0


def test_yield_already_processed_event(engine):
    marker = engine.timeout(0.5, value="early")

    def late_waiter(e):
        yield e.timeout(2.0)
        value = yield marker  # fired long ago
        return value

    assert engine.run(engine.process(late_waiter(engine))) == "early"
    assert engine.now == 2.0  # no extra wait


def test_interrupt(engine):
    def sleeper(e):
        try:
            yield e.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, e.now)
        return "slept"

    proc = engine.process(sleeper(engine))
    engine.call_later(1.0, proc.interrupt, "wake up")
    assert engine.run(proc) == ("interrupted", "wake up", 1.0)


def test_interrupt_finished_process_rejected(engine):
    def quick(e):
        yield e.timeout(0.1)

    proc = engine.process(quick(engine))
    engine.run(proc)
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_all_of_waits_for_everything(engine):
    def waiter(e):
        results = yield e.all_of([e.timeout(1.0, "a"), e.timeout(3.0, "b")])
        return (e.now, sorted(results))

    assert engine.run(engine.process(waiter(engine))) == (3.0, ["a", "b"])


def test_any_of_fires_on_first(engine):
    def waiter(e):
        value = yield e.any_of([e.timeout(5.0, "slow"), e.timeout(1.0, "fast")])
        return (e.now, value)

    assert engine.run(engine.process(waiter(engine))) == (1.0, "fast")


def test_any_of_empty_rejected(engine):
    with pytest.raises(SimulationError):
        engine.any_of([])


def test_run_until_absolute_time(engine):
    hits = []
    for delay in (1.0, 2.0, 3.0):
        engine.call_later(delay, hits.append, delay)
    engine.run(until=2.5)
    assert hits == [1.0, 2.0]
    assert engine.now == 2.5
    engine.run()
    assert hits == [1.0, 2.0, 3.0]


def test_run_backwards_rejected(engine):
    engine.run(until=5.0)
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_run_until_event_exhausted_queue_is_error(engine):
    never = engine.event()
    with pytest.raises(SimulationError):
        engine.run(never)


def test_call_at(engine):
    stamps = []
    engine.call_at(4.0, stamps.append, "x")
    engine.run()
    assert stamps == ["x"]
    assert engine.now == 4.0


def test_call_at_past_rejected(engine):
    engine.run(until=2.0)
    with pytest.raises(SimulationError):
        engine.call_at(1.0, lambda: None)


def test_determinism_two_engines():
    def trace(engine):
        log = []

        def ticker(e, tag, period):
            for _ in range(5):
                yield e.timeout(period)
                log.append((round(e.now, 9), tag))

        engine.process(ticker(engine, "a", 0.3))
        engine.process(ticker(engine, "b", 0.7))
        engine.run()
        return log

    assert trace(Engine()) == trace(Engine())


def test_unwaited_failed_event_raises_loudly(engine):
    event = engine.event()
    event.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        engine.run()


def test_timeout_carries_value(engine):
    timeout = Timeout(engine, 1.0, value="payload")

    def waiter(e, t):
        value = yield t
        return value

    assert engine.run(engine.process(waiter(engine, timeout))) == "payload"


def test_event_value_before_trigger_rejected(engine):
    event = Event(engine)
    with pytest.raises(SimulationError):
        _ = event.value


def test_yield_already_processed_event_resumes_inline(engine):
    marker = engine.timeout(0.5, value="early")

    def late_waiter(e):
        yield e.timeout(2.0)
        value = yield marker  # fired long ago; delivered inline
        return value

    before = engine.perf.immediate_resumes
    assert engine.run(engine.process(late_waiter(engine))) == "early"
    assert engine.perf.immediate_resumes == before + 1


def test_yield_already_processed_failed_event_throws(engine):
    boom = engine.event()
    boom.fail(RuntimeError("late boom"))

    def absorber(e):
        try:
            yield boom
        except RuntimeError:
            return "absorbed"

    def late(e):
        yield e.timeout(1.0)
        yield boom  # processed and failed: the exception is thrown inline
        return "unreachable"

    engine.process(absorber(engine))
    late_proc = engine.process(late(engine))
    with pytest.raises(RuntimeError, match="late boom"):
        engine.run(late_proc)


def test_any_of_mixed_processed_and_pending(engine):
    early = engine.timeout(0.5, value="early")
    never = engine.event()

    def waiter(e):
        yield e.timeout(2.0)  # let `early` fire and be processed
        value = yield e.any_of([early, never])
        return (value, e.now)

    assert engine.run(engine.process(waiter(engine))) == ("early", 2.0)


def test_all_of_mixed_processed_and_pending(engine):
    early = engine.timeout(0.5, value="a")

    def waiter(e):
        yield e.timeout(2.0)  # `early` is already processed here
        late = e.timeout(1.0, value="b")
        results = yield e.all_of([early, late])
        return (sorted(results), e.now)

    assert engine.run(engine.process(waiter(engine))) == (["a", "b"], 3.0)


def test_stale_interrupt_after_completion_is_benign(engine):
    proc_holder = []

    def rival(e):
        yield e.timeout(1.0)
        # The target is still alive at this instant; its own timeout
        # (same timestamp, later in FIFO order) completes it before the
        # interrupt event is dispatched.
        proc_holder[0].interrupt("stale")

    def sleeper(e):
        yield e.timeout(1.0)
        return "slept"

    engine.process(rival(engine))
    proc_holder.append(engine.process(sleeper(engine)))
    assert engine.run(proc_holder[0]) == "slept"
    engine.run()  # drain the stale interrupt event; must not raise


def test_bare_timeout_uses_timer_fast_path(engine):
    engine.timeout(1.0)
    engine.run()
    assert engine.perf.timer_fast_path == 1
    assert engine.perf.events_dispatched == 1
    assert engine.now == 1.0
