"""Edge cases across modules that the main suites don't reach."""

import pytest

from repro import scenarios
from repro.errors import ConfigError, ReproError


# ---- qemu config parser corners -------------------------------------------


def test_parse_monitor_variants():
    from repro.qemu.config import _parse_monitor

    spec = _parse_monitor("telnet:0.0.0.0:5601,server,nowait")
    assert spec.host == "0.0.0.0"
    assert spec.port == 5601
    with pytest.raises(ConfigError):
        _parse_monitor("vc:80Cx24C")


def test_parse_incoming_variants():
    from repro.qemu.config import _parse_incoming

    assert _parse_incoming("tcp:0:4444") == 4444
    with pytest.raises(ConfigError):
        _parse_incoming("rdma:0:4444")


def test_dangling_flag_rejected():
    from repro.qemu.config import QemuConfig

    with pytest.raises(ConfigError):
        QemuConfig.from_command_line("qemu-system-x86_64 -m")


def test_drive_without_file_rejected():
    from repro.qemu.config import QemuConfig

    with pytest.raises(ConfigError):
        QemuConfig.from_command_line(
            "qemu-system-x86_64 -drive if=virtio,format=qcow2"
        )


def test_netdev_requires_user_and_id():
    from repro.qemu.config import QemuConfig

    with pytest.raises(ConfigError):
        QemuConfig.from_command_line("qemu-system-x86_64 -netdev tap,id=n0")
    with pytest.raises(ConfigError):
        QemuConfig.from_command_line("qemu-system-x86_64 -netdev user,net=10.0.2.0")


# ---- shell formatting --------------------------------------------------------


def test_stime_wraps_at_midnight():
    from repro.guest.shell import _format_stime

    assert _format_stime(0.0) == "00:00"
    assert _format_stime(3600.0) == "01:00"
    assert _format_stime(25 * 3600.0) == "01:00"  # wraps a day


# ---- migration stats ---------------------------------------------------------


def test_migration_stats_failure_text(engine):
    from repro.migration.stats import MigrationStats

    stats = MigrationStats(engine)
    stats.fail(RuntimeError("link down"))
    text = stats.monitor_text()
    assert "Migration status: failed" in text
    assert "error: link down" in text


def test_migration_stats_throughput_zero_elapsed(engine):
    from repro.migration.stats import MigrationStats

    stats = MigrationStats(engine)
    assert stats.throughput_mbps == 0.0


# ---- workloads ---------------------------------------------------------------


def test_pace_zero_cost(host):
    from repro.workloads.idle import IdleWorkload

    workload = IdleWorkload()

    def run(e):
        yield from workload._pace(host, 0.0)
        return "ok"

    assert host.engine.run(host.engine.process(run(host.engine))) == "ok"


def test_charge_syscalls_scales_linearly(host):
    kernel = host.kernel
    kernel.jitter_rsd = 0.0
    one = kernel.charge_syscalls("stat", 1)
    ten = kernel.charge_syscalls("stat", 10)
    assert ten == pytest.approx(10 * one, rel=0.05)


def test_kernel_alloc_pages_cost_grows_with_depth(nested_env):
    _host, report = nested_env
    l1 = report.guestx_vm.guest.kernel
    l2 = report.nested_vm.guest.kernel
    l1.jitter_rsd = l2.jitter_rsd = 0.0
    _pfns1, cost1 = l1.alloc_pages(10)
    _pfns2, cost2 = l2.alloc_pages(10)
    assert cost2 > cost1


# ---- analysis ---------------------------------------------------------------


def test_render_comparison_negative_change():
    from repro.analysis.report import render_comparison_labels

    text = render_comparison_labels([("a", 100.0, "b", 80.0)])
    assert "-20.0%" in text


def test_summary_rsd_of_constant_series():
    from repro.analysis.stats import summarize

    assert summarize([5.0, 5.0, 5.0]).rsd_percent == 0.0


# ---- scenario internals --------------------------------------------------------


def test_host_lineage_is_self(host):
    assert host.lineage() == [host]
    assert host.host() is host


def test_victim_config_customization():
    config = scenarios.victim_config(
        name="x", memory_mb=2048, ssh_host_port=4000, monitor_port=4001
    )
    assert config.memory_mb == 2048
    assert config.nics[0].hostfwds == [("tcp", 4000, 22)]
    assert config.monitor.port == 4001


def test_errors_form_one_hierarchy():
    import repro.errors as errors

    roots = [
        getattr(errors, name)
        for name in dir(errors)
        if isinstance(getattr(errors, name), type)
        and issubclass(getattr(errors, name), Exception)
    ]
    for exc_type in roots:
        if exc_type is not ReproError:
            assert issubclass(exc_type, ReproError) or exc_type is ReproError
