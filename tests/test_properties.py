"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.guest.filesystem import File
from repro.hardware.memory import PAGE_SIZE, PhysicalMemory, content_digest
from repro.hypervisor.ept import GuestMemory
from repro.hypervisor.exits import CostModel, ExitReason
from repro.qemu.config import DriveSpec, MonitorSpec, NicSpec, QemuConfig
from repro.sim.engine import Engine

contents = st.binary(min_size=0, max_size=128)


# ---- memory ----------------------------------------------------------------


@given(st.lists(contents, min_size=1, max_size=40))
def test_write_read_roundtrip(payloads):
    memory = PhysicalMemory(size_mb=16)
    pfns = [memory.allocate(c) for c in payloads]
    for pfn, content in zip(pfns, payloads):
        assert memory.read(pfn) == content


@given(st.lists(contents, min_size=2, max_size=30))
def test_refcounts_match_mappings(payloads):
    """Sum of refcounts over distinct frames == number of mappings,
    no matter how pages are merged."""
    memory = PhysicalMemory(size_mb=16)
    pfns = [memory.allocate(c, mergeable=True) for c in payloads]
    # Merge every identical pair the way KSM would.
    by_content = {}
    for pfn in pfns:
        frame = memory.frame(pfn)
        key = frame.content
        if key in by_content:
            memory.remap(pfn, by_content[key])
        else:
            by_content[key] = frame
    frames = {id(memory.frame(p)): memory.frame(p) for p in pfns}
    assert sum(f.refcount for f in frames.values()) == len(pfns)


@given(st.lists(contents, min_size=2, max_size=30), st.data())
def test_cow_preserves_other_mappers(payloads, data):
    memory = PhysicalMemory(size_mb=16)
    shared_content = payloads[0]
    pfns = [memory.allocate(shared_content, mergeable=True) for _ in range(4)]
    target = memory.frame(pfns[0])
    for pfn in pfns[1:]:
        memory.remap(pfn, target)
    writer = data.draw(st.sampled_from(pfns))
    new_content = data.draw(contents)
    memory.write(writer, new_content)
    for pfn in pfns:
        expected = new_content if pfn == writer else shared_content
        assert memory.read(pfn) == expected


@given(st.binary(min_size=0, max_size=PAGE_SIZE))
def test_digest_deterministic_and_content_sensitive(content):
    assert content_digest(content) == content_digest(content)
    if content:
        flipped = bytes([content[0] ^ 1]) + content[1:]
        assert content_digest(flipped) != content_digest(content)


@given(
    st.integers(min_value=1, max_value=3),
    st.lists(contents, min_size=1, max_size=20),
)
def test_nested_memory_roundtrip_any_depth(depth, payloads):
    memory = PhysicalMemory(size_mb=64)
    domain = memory
    for level in range(depth):
        domain = GuestMemory(domain, 8, name=f"g{level}")
    pfns = []
    for content in payloads:
        gpfn = domain.alloc_page()
        domain.write(gpfn, content)
        pfns.append(gpfn)
    for gpfn, content in zip(pfns, payloads):
        assert domain.read(gpfn) == content
        backing, host_pfn = domain.resolve(gpfn)
        assert backing is memory
        assert memory.read(host_pfn) == content


# ---- cost model --------------------------------------------------------------


@given(
    st.sampled_from(list(ExitReason)),
    st.integers(min_value=0, max_value=4),
)
def test_exit_costs_positive_and_monotone(reason, depth):
    model = CostModel()
    cost = model.exit_cost(reason, depth)
    assert cost >= 0
    assert model.exit_cost(reason, depth + 1) > cost or depth == 0 and cost == 0 or (
        model.exit_cost(reason, depth + 1) > 0
    )


@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_cpu_cost_at_least_native(seconds, depth, intensity):
    model = CostModel()
    assert model.cpu_cost(seconds, depth, intensity) >= seconds * 0.999


# ---- engine ordering -----------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_engine_fires_in_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.call_later(delay, fired.append, delay)
    engine.run()
    assert fired == sorted(delays)
    assert engine.now == max(delays)


# ---- qemu config round trip ------------------------------------------------------


config_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=12,
)
ports = st.integers(min_value=1024, max_value=60000)


@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    name=config_names,
    memory_mb=st.integers(min_value=64, max_value=16384),
    smp=st.integers(min_value=1, max_value=8),
    nested=st.booleans(),
    fwd_pairs=st.lists(st.tuples(ports, ports), max_size=3, unique_by=lambda t: t[0]),
    monitor_port=st.one_of(st.none(), ports),
    incoming=st.one_of(st.none(), ports),
)
def test_config_command_line_roundtrip(
    name, memory_mb, smp, nested, fwd_pairs, monitor_port, incoming
):
    config = QemuConfig(
        name=name,
        memory_mb=memory_mb,
        smp=smp,
        drives=[DriveSpec(f"/img/{name}.qcow2")],
        nics=[NicSpec("net0", hostfwds=[("tcp", h, g) for h, g in fwd_pairs])],
        monitor=MonitorSpec(port=monitor_port) if monitor_port else None,
        nested_vmx=nested,
        incoming_port=incoming,
    )
    parsed = QemuConfig.from_command_line(config.to_command_line())
    assert parsed.name == name
    assert parsed.memory_mb == memory_mb
    assert parsed.smp == smp
    assert parsed.nested_vmx == nested
    assert parsed.nics == config.nics
    assert parsed.monitor == config.monitor
    assert parsed.incoming_port == incoming
    assert config.mismatches(parsed) == []


# ---- file paging -------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=64 * 1024))
def test_file_page_count_covers_size(size_bytes):
    file = File("/f", size_bytes)
    if size_bytes == 0:
        assert file.num_pages == 0
    else:
        assert (file.num_pages - 1) * PAGE_SIZE < size_bytes <= file.num_pages * PAGE_SIZE


# ---- classifier ----------------------------------------------------------------------


@given(
    base=st.floats(min_value=0.1, max_value=2.0),
    merged=st.floats(min_value=100.0, max_value=1000.0),
    noise=st.floats(min_value=0.8, max_value=1.2),
)
def test_classifier_verdicts_partition(base, merged, noise):
    from repro.core.detection.classifier import classify

    t0 = [base] * 10
    both = classify(t0, [merged * noise] * 10, [merged] * 10)
    assert both.verdict == "nested"
    only_t1 = classify(t0, [merged] * 10, [base * noise] * 10)
    assert only_t1.verdict == "clean"
    neither = classify(t0, [base * noise] * 10, [base] * 10)
    assert neither.verdict == "inconclusive"
