"""Differential determinism: chaos runs replay byte-for-byte.

Two guarantees, each guarding a different edge of the fault subsystem:

* the same campaign seed produces a byte-identical
  :meth:`ChaosReport.to_json` — injections, recall, latencies, virtual
  timestamps, everything;
* a run with an *empty* :class:`FaultPlan` is byte-identical to one
  with no plan at all, down to the recorded ``fleet_sweep_4x12``
  benchmark fingerprint — the injection hooks must cost nothing (and
  consume no RNG) when no fault is armed.
"""

import pytest

from repro.cloud.fleet import run_fleet
from repro.faults import ChaosCampaign, FaultPlan
from tests.fleet_helpers import (
    FLEET_4X12,
    FLEET_SWEEP_4X12_PIN,
    fleet_sweep_fingerprint,
)

pytestmark = pytest.mark.chaos

#: Small campaign (two legs on a 3-host fleet) to keep the double run fast.
CHAOS_PARAMS = dict(
    mixes=("infra", "migration"),
    faults_per_mix=3,
    horizon=200.0,
    fleet_params=dict(hosts=3, tenants=8, churn_operations=4),
)


def test_same_seed_chaos_reports_are_byte_identical():
    first = ChaosCampaign(seed=7, **CHAOS_PARAMS).run()
    second = ChaosCampaign(seed=7, **CHAOS_PARAMS).run()
    assert first.to_json() == second.to_json()


def test_different_seeds_produce_different_reports():
    lhs = ChaosCampaign(seed=7, **CHAOS_PARAMS).run().to_json()
    rhs = ChaosCampaign(seed=8, **CHAOS_PARAMS).run().to_json()
    assert lhs != rhs


def test_empty_plan_reproduces_fleet_sweep_fingerprint():
    result = run_fleet(faults=FaultPlan(), **FLEET_4X12)
    engine = result.datacenter.engine
    # The recorded fleet_sweep_4x12 fingerprint, matched exactly — any
    # drift means an injection hook perturbed the fault-free baseline.
    assert fleet_sweep_fingerprint(result) == FLEET_SWEEP_4X12_PIN
    assert engine.perf.faults_injected == 0
    assert engine.perf.faults_recovered == 0
    assert result.injector.injections == []


def test_empty_plan_summary_matches_fault_free_run():
    baseline = run_fleet(**FLEET_4X12)
    empty = run_fleet(faults=FaultPlan(), **FLEET_4X12)
    assert empty.summary() == baseline.summary()
    assert baseline.injector is None
