"""VMI: introspection, DKSM subversion, the nested semantic gap."""

import pytest

from repro.errors import DetectionError
from repro.vmi.introspect import SemanticGapError, introspect, introspect_nested
from repro.vmi.kernel_structs import layout_for
from repro.vmi.subversion import (
    forge_process_view,
    restore_process_view,
    snapshot_for_impersonation,
)


def test_introspect_reports_real_processes(victim):
    report = introspect(victim)
    assert report.kernel_version == victim.guest.kernel_version
    names = report.process_names
    assert "systemd" in names
    assert "sshd" in names
    assert not report.subverted


def test_introspect_sees_new_process(victim):
    victim.guest.kernel.spawn("nginx", "/usr/sbin/nginx")
    report = introspect(victim)
    assert "nginx" in report.process_names


def test_kvm_modules_visible_when_loaded(nested_env):
    _host, report = nested_env
    guestx_report = introspect(report.guestx_vm)
    assert "kvm" in guestx_report.modules


def test_forged_view_replaces_reality(victim):
    forge_process_view(victim.guest, [(1, "systemd", "root"), (99, "decoy", "root")])
    report = introspect(victim)
    assert report.subverted
    assert report.process_names == ["decoy", "systemd"]
    restore_process_view(victim.guest)
    assert not introspect(victim).subverted


def test_forge_validates_entries(victim):
    from repro.errors import RootkitError

    with pytest.raises(RootkitError):
        forge_process_view(victim.guest, [("bad",)])


def test_snapshot_for_impersonation(victim):
    snapshot = snapshot_for_impersonation(victim.guest)
    assert (1, "systemd", "root") in snapshot


def test_nested_introspection_refused(nested_env):
    _host, report = nested_env
    with pytest.raises(SemanticGapError, match="semantic gap"):
        introspect_nested(report.guestx_vm)


def test_unknown_layout_rejected():
    with pytest.raises(DetectionError):
        layout_for("plan9", "4e")


def test_known_layouts_have_offsets():
    layout = layout_for("fedora22", "4.4.14-200.fc22.x86_64")
    assert "init_task" in layout.offsets
    assert "task_struct.pid" in layout.offsets


def test_introspect_requires_guest(host):
    from repro.qemu.config import DriveSpec, QemuConfig
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm

    qemu_img_create(host, "/vmi-dest.img", 5)
    config = QemuConfig(
        "vmi-dest", 256, drives=[DriveSpec("/vmi-dest.img")], incoming_port=4700
    )
    vm, _ = launch_vm(host, config)
    with pytest.raises(DetectionError):
        introspect(vm)
