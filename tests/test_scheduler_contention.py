"""Host CPU contention: co-residence interference."""

import pytest

from repro import scenarios
from repro.errors import HypervisorError
from repro.hypervisor.scheduler import CpuScheduler
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload


def test_scheduler_basic():
    from repro.hardware.cpu import CpuPackage

    scheduler = CpuScheduler(CpuPackage(cores=2, threads_per_core=1))
    assert scheduler.slowdown_factor() == 1.0
    scheduler.occupy("a")
    scheduler.occupy("b")
    assert scheduler.slowdown_factor() == 1.0
    scheduler.occupy("c")
    assert scheduler.slowdown_factor() == pytest.approx(1.5)
    scheduler.release("c")
    assert scheduler.slowdown_factor() == 1.0
    with pytest.raises(HypervisorError):
        scheduler.release("c")
    with pytest.raises(HypervisorError):
        scheduler.occupy("a")


def test_undersubscribed_host_no_interference(host, victim):
    """One busy guest on 8 logical CPUs runs at full speed."""
    workload = KernelCompileWorkload(units=50)
    result = host.engine.run(workload.start(victim.guest))
    solo = result.metrics["build_seconds"]
    assert host.machine.scheduler.busy_count == 0  # released at finish
    assert solo > 0


def test_oversubscription_stretches_cpu_work(host, victim):
    """Nine busy tenants on eight logical CPUs: ~9/8 slowdown."""
    scheduler = host.machine.scheduler
    hogs = [object() for _ in range(8)]
    for hog in hogs:
        scheduler.occupy(hog)
    try:
        workload = KernelCompileWorkload(units=50)
        result = host.engine.run(workload.start(victim.guest))
        contended = result.metrics["build_seconds"]
    finally:
        for hog in hogs:
            scheduler.release(hog)
    solo = host.engine.run(
        KernelCompileWorkload(units=50).start(victim.guest)
    ).metrics["build_seconds"]
    assert contended / solo == pytest.approx(9 / 8, rel=0.05)


def test_idle_workload_occupies_no_slot(host, victim):
    workload = IdleWorkload()
    process = workload.start(victim.guest, duration=2.0)
    assert host.machine.scheduler.busy_count == 0
    host.engine.run(process)


def test_slot_released_on_stop(host, victim):
    workload = KernelCompileWorkload()
    process = workload.start(victim.guest, loop_forever=True)
    assert host.machine.scheduler.busy_count == 1
    host.engine.run(until=host.engine.now + 5.0)
    workload.stop()
    host.engine.run(process)
    assert host.machine.scheduler.busy_count == 0
