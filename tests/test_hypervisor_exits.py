"""The calibrated cost model — the single source of every overhead."""

import pytest

from repro.errors import HypervisorError
from repro.hardware.memory import WriteOutcome
from repro.hypervisor.exits import CostModel, ExitReason


@pytest.fixture
def model():
    return CostModel()


def test_bare_metal_exits_free(model):
    for reason in ExitReason:
        assert model.exit_cost(reason, 0) == 0.0


def test_depth1_cost_is_base_plus_handler(model):
    cost = model.exit_cost(ExitReason.HLT, 1)
    assert cost == pytest.approx(
        model.base_exit_cost + model.handler_cost[ExitReason.HLT]
    )


def test_nested_exits_multiply(model):
    """The Turtles trampoline: L2 exits cost an order of magnitude more."""
    for reason in (ExitReason.HLT, ExitReason.IO_PORT, ExitReason.VIRTIO_KICK):
        d1 = model.exit_cost(reason, 1)
        d2 = model.exit_cost(reason, 2)
        assert d2 > 5 * d1


def test_ept_violation_has_fast_path(model):
    """Shadow-EPT refills resolve mostly in L0: small nested multiplier."""
    ept_ratio = model.exit_cost(ExitReason.EPT_VIOLATION, 2) / model.exit_cost(
        ExitReason.EPT_VIOLATION, 1
    )
    hlt_ratio = model.exit_cost(ExitReason.HLT, 2) / model.exit_cost(
        ExitReason.HLT, 1
    )
    assert ept_ratio < hlt_ratio / 2


def test_cost_grows_with_depth(model):
    for reason in ExitReason:
        costs = [model.exit_cost(reason, d) for d in range(4)]
        assert costs == sorted(costs)
        assert costs[3] > costs[2] > costs[1]


def test_unknown_reason_rejected(model):
    with pytest.raises(HypervisorError):
        model.exit_cost("not-a-reason", 1)


def test_cpu_tax_register_bound_work_nearly_free(model):
    """Table II's claim: arithmetic is virtualization-insensitive."""
    assert model.cpu_tax_factor(2, 0.12) < 1.04
    assert model.cpu_tax_factor(1, 0.12) < 1.01


def test_cpu_tax_tlb_heavy_work_pays_at_depth2(model):
    """Fig 2's claim: compile-class work pays ~25% at L2."""
    tax = model.cpu_tax_factor(2, 1.0)
    assert 1.2 < tax < 1.35
    assert model.cpu_tax_factor(1, 1.0) < 1.05


def test_cpu_tax_extends_beyond_table(model):
    assert model.cpu_tax_factor(3, 1.0) > model.cpu_tax_factor(2, 1.0)


def test_cpu_tax_validates_intensity(model):
    with pytest.raises(HypervisorError):
        model.cpu_tax_factor(1, 1.5)


def test_cpu_cost_includes_timer_exits(model):
    pure = 1.0 * model.cpu_tax_factor(1, 0.0)
    with_timer = model.cpu_cost(1.0, 1, mem_intensity=0.0)
    expected_timer = model.timer_hz * model.exit_cost(ExitReason.TIMER, 1)
    assert with_timer == pytest.approx(pure + expected_timer)


def test_cpu_cost_negative_rejected(model):
    with pytest.raises(HypervisorError):
        model.cpu_cost(-1.0, 0)


def test_write_outcome_plain(model):
    outcome = WriteOutcome()
    assert model.write_outcome_cost(outcome, 0) == pytest.approx(
        model.page_write_cost
    )


def test_write_outcome_cow_dominates(model):
    outcome = WriteOutcome()
    outcome.cow_broken = True
    cost = model.write_outcome_cost(outcome, 0)
    assert cost > 1000 * model.page_write_cost


def test_write_outcome_first_touch_charges_per_level(model):
    one = WriteOutcome()
    one.first_touch_levels = 1
    two = WriteOutcome()
    two.first_touch_levels = 2
    assert model.write_outcome_cost(two, 2) > model.write_outcome_cost(one, 2)
