"""Reboot survival — the §VII comparison with SubVirt/BluePill.

"even if in the future system administrators decide to reboot,
CloudSkulk will still survive."
"""

import pytest

from repro import scenarios
from repro.errors import GuestError


def test_reboot_mechanics(host, victim):
    guest = victim.guest
    guest.fs.create("/tmp/scratch", 4096)
    guest.kernel.load_file("/tmp/scratch")
    guest.kernel.spawn("leftover", "/usr/bin/leftover")
    pages_before = host.memory.allocated_pages
    cost = guest.kernel.reboot()
    assert cost > 10.0
    assert guest.kernel.booted
    assert guest.kernel.page_cache == {}
    assert guest.kernel.table.find_by_name("leftover") == []
    assert guest.kernel.table.find_by_name("systemd")
    # No memory leak: the old boot working set was freed.
    assert host.memory.allocated_pages <= pages_before + 100


def test_double_boot_rejected(host):
    with pytest.raises(GuestError):
        host.kernel.boot()


def test_cloudskulk_survives_victim_reboot(nested_env):
    host, report = nested_env
    victim = report.nested_vm.guest
    cost = victim.kernel.reboot()
    host.engine.run(until=host.engine.now + cost)

    # The victim came back up — still at depth 2, still inside GuestX.
    assert victim.kernel.booted
    assert victim.depth == 2
    assert victim.qemu_vm is report.nested_vm
    assert victim.parent is report.guestx_vm.guest
    # The RITM's network position is untouched.
    assert host.net_node.listener(2222) is not None
    # GuestX still wears the victim's PID.
    assert report.guestx_vm.process.pid == report.victim_pid


def test_keystroke_logger_survives_victim_reboot(nested_env):
    """Hypervisor-side taps live below the guest kernel: reboots don't
    clear them (unlike in-guest rootkit hooks)."""
    from repro.core.rootkit.services import KeystrokeLogger

    host, report = nested_env
    victim = report.nested_vm.guest
    logger = KeystrokeLogger()
    logger.install(victim)
    victim.kernel.syscall_cost("write")
    victim.kernel.reboot()
    victim.kernel.syscall_cost("write")
    assert logger.keystrokes_logged == 2


def test_guestx_impersonation_needs_reapplying_after_its_own_reboot(nested_env):
    """The DKSM forgery lives in GuestX's kernel structures: if GuestX
    itself reboots, the attacker must re-forge — an operational cost of
    the impersonation, worth knowing for both sides."""
    from repro.vmi.introspect import introspect

    _host, report = nested_env
    guestx = report.guestx_vm.guest
    assert introspect(report.guestx_vm).subverted
    guestx.kernel.reboot()
    assert not introspect(report.guestx_vm).subverted
