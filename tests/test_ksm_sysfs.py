"""The KSM sysfs surface."""

from repro.hardware.machine import Machine
from repro.hypervisor.ksm import KsmDaemon


def test_sysfs_text_reflects_state():
    machine = Machine(memory_mb=512, seed=3)
    ksm = KsmDaemon(machine, pages_to_scan=200, sleep_millisecs=20)
    text = ksm.sysfs_text()
    assert "run: 0" in text
    assert "pages_to_scan: 200" in text
    assert "sleep_millisecs: 20" in text

    ksm.start()
    machine.memory.allocate(b"pair", mergeable=True)
    machine.memory.allocate(b"pair", mergeable=True)
    machine.engine.run(until=machine.engine.now + 1.0)
    text = ksm.sysfs_text()
    assert "run: 1" in text
    assert "pages_shared: 1" in text
    assert "pages_sharing: 1" in text
    assert "full_scans:" in text
    ksm.stop()
    machine.engine.run(until=machine.engine.now + 0.1)
    assert "run: 0" in ksm.sysfs_text()
