"""Migration cancellation and stream failure (failure injection)."""

import pytest

from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload


def _destination(host, source_vm, name="dest0", port=4444):
    qemu_img_create(host, f"/var/lib/images/{name}.qcow2", 20)
    config = source_vm.config.clone_for_destination(
        name, incoming_port=port, keep_hostfwds=False
    )
    config.drives = [DriveSpec(f"/var/lib/images/{name}.qcow2")]
    vm, _ = launch_vm(host, config)
    return vm


def test_cancel_mid_migration_leaves_guest_running(host, victim):
    workload = KernelCompileWorkload()
    workload.start(victim.guest, loop_forever=True)
    dest = _destination(host, victim)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    # Let a few seconds of the first iteration pass, then cancel.
    host.engine.run(until=host.engine.now + 5.0)
    out = victim.monitor.execute("migrate_cancel")
    assert out == ""
    host.engine.run(until=host.engine.now + 3.0)
    workload.stop()

    assert victim.migration_stats.status == "cancelled"
    assert victim.status == "running"
    assert victim.guest is not None
    assert not victim.paused
    assert victim.guest.kernel.cpu_throttle == 0.0
    # The destination QEMU exits on the broken stream (as -incoming does).
    assert dest.status == "terminated"


def test_cancelled_source_can_retry(host, victim):
    _destination(host, victim, name="dest-a", port=4444)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(until=host.engine.now + 2.0)
    victim.monitor.execute("migrate_cancel")
    host.engine.run(until=host.engine.now + 2.0)

    # Retry toward a fresh destination.
    dest_b = _destination(host, victim, name="dest-b", port=4445)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4445")
    host.engine.run(victim.migration_process)
    assert victim.migration_stats.status == "completed"
    assert dest_b.guest is victim_guest_of(dest_b)
    assert dest_b.status == "running"


def victim_guest_of(dest_vm):
    return dest_vm.guest


def test_cancel_without_migration(host, victim):
    assert victim.monitor.execute("migrate_cancel") == "No migration in progress"


def test_cancel_after_completion_refused(host, victim):
    _destination(host, victim)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(victim.migration_process)
    out = victim.monitor.execute("migrate_cancel")
    assert "cannot be cancelled" in out or out == "No migration in progress"
    assert victim.migration_stats.status == "completed"


def test_info_migrate_shows_cancelled(host, victim):
    _destination(host, victim)
    workload = IdleWorkload()
    workload.start(victim.guest)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(until=host.engine.now + 2.0)
    victim.monitor.execute("migrate_cancel")
    host.engine.run(until=host.engine.now + 1.0)
    workload.stop()
    assert "Migration status: cancelled" in victim.monitor.execute("info migrate")
