"""The KVM facade: VM creation, nesting gates, VMCS pages."""

import pytest

from repro.errors import HypervisorError
from repro.hypervisor.exits import ExitReason
from repro.hypervisor.vmcs import VMCS_REVISION_MAGIC, VMCB_MAGIC, looks_like_vmcs


def test_create_vm(host):
    vm = host.kvm.create_vm("t1", vcpus=2, memory_mb=512)
    assert vm.depth == 1
    assert len(vm.vmcs) == 2
    assert vm.memory.size_mb == 512


def test_duplicate_name_rejected(host):
    host.kvm.create_vm("dup")
    with pytest.raises(HypervisorError):
        host.kvm.create_vm("dup")


def test_zero_vcpus_rejected(host):
    with pytest.raises(HypervisorError):
        host.kvm.create_vm("bad", vcpus=0)


def test_vmcs_pages_carry_signature(host):
    vm = host.kvm.create_vm("sig")
    content = host.memory.read(vm.vmcs[0].backing_pfn)
    assert looks_like_vmcs(content)
    assert content.startswith(VMCS_REVISION_MAGIC)


def test_amd_vmcb_not_vmcs_signature():
    from repro.guest.system import make_testbed
    from repro.hardware.cpu import CpuPackage
    from repro.hardware.machine import Machine
    from repro.guest.system import System

    machine = Machine(cpu=CpuPackage(vendor="amd"), memory_mb=2048)
    host = System.bare_metal(machine)
    cost = host.boot()
    machine.engine.run(until=cost)
    host.enable_kvm()
    vm = host.kvm.create_vm("amd-vm")
    content = host.memory.read(vm.vmcs[0].backing_pfn)
    assert content.startswith(VMCB_MAGIC)
    assert not looks_like_vmcs(content)


def test_vpids_unique_and_reused(host):
    a = host.kvm.create_vm("a", vcpus=2)
    b = host.kvm.create_vm("b", vcpus=2)
    vpids = [v.vpid for v in a.vmcs + b.vmcs]
    assert len(set(vpids)) == 4
    a.destroy()
    c = host.kvm.create_vm("c", vcpus=1)
    assert c.vmcs[0].vpid in {1, 2}


def test_destroy_releases_memory_and_vmcs(host):
    before = host.memory.allocated_pages
    vm = host.kvm.create_vm("temp", memory_mb=64)
    gpfn = vm.memory.alloc_page()
    vm.memory.write(gpfn, b"payload")
    vm.destroy()
    assert host.memory.allocated_pages == before
    assert "temp" not in host.kvm.vms
    vm.destroy()  # idempotent


def test_destroy_unknown_rejected(host):
    with pytest.raises(HypervisorError):
        host.kvm.destroy_vm("ghost")


def test_exit_accounting(host):
    vm = host.kvm.create_vm("counts")
    vm.record_exit(ExitReason.HLT, 3)
    vm.record_exit(ExitReason.HLT, 0.5)
    assert vm.exit_count(ExitReason.HLT) == pytest.approx(3.5)
    assert vm.total_exits == pytest.approx(3.5)


def test_kvm_requires_vmx():
    from repro.hardware.cpu import CpuPackage
    from repro.hardware.machine import Machine
    from repro.guest.system import System
    from repro.hypervisor.kvm import Kvm

    machine = Machine(cpu=CpuPackage(vmx=False), memory_mb=1024)
    host = System.bare_metal(machine)
    with pytest.raises(HypervisorError):
        Kvm(host)
