"""Detection robustness under realistic interference."""

import pytest

from repro import scenarios
from repro.core.detection.dedup_detector import DedupDetector
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload


def _detect_under_load(nested, workload_factory, seed=42):
    host, cloud, _ksm, locator = scenarios.detection_setup(nested=nested, seed=seed)
    workload = workload_factory()
    kwargs = (
        {"loop_forever": True}
        if isinstance(workload, KernelCompileWorkload)
        else {"duration": 10_000.0}
    )
    workload.start(locator(), **kwargs)
    detector = DedupDetector(host, cloud, file_pages=30)
    report = host.engine.run(host.engine.process(detector.run()))
    workload.stop()
    return report


def test_detection_correct_while_victim_compiles():
    """A busy victim dirties pages constantly — but never File-A's."""
    clean = _detect_under_load(False, KernelCompileWorkload)
    assert clean.verdict.verdict == "clean"
    nested = _detect_under_load(True, KernelCompileWorkload)
    assert nested.verdict.verdict == "nested"


def test_detection_correct_during_io_load():
    clean = _detect_under_load(False, FilebenchWorkload)
    assert clean.verdict.verdict == "clean"
    nested = _detect_under_load(True, FilebenchWorkload)
    assert nested.verdict.verdict == "nested"


def test_detection_repeatable_back_to_back():
    """Two consecutive protocol runs on the same host agree.

    The second run must not be confused by the first run's leftovers
    (mutated guest copies, broken merges).
    """
    host, cloud, _ksm, _loc = scenarios.detection_setup(nested=True, seed=42)
    first = DedupDetector(host, cloud, file_pages=15, file_path="/d/one.bin")
    second = DedupDetector(host, cloud, file_pages=15, file_path="/d/two.bin")
    report1 = host.engine.run(host.engine.process(first.run()))
    report2 = host.engine.run(host.engine.process(second.run()))
    assert report1.verdict.verdict == "nested"
    assert report2.verdict.verdict == "nested"


def test_detection_after_benign_migration():
    """An L0-L0 migration is not a rootkit: the verdict stays clean."""
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm
    from repro.core.detection.dedup_detector import CloudInterface
    from repro.hypervisor.ksm import KsmDaemon

    host = scenarios.testbed(seed=42)
    vm = scenarios.launch_victim(host)
    state = {"guest": vm.guest}
    KsmDaemon(host.machine).start()
    qemu_img_create(host, "/var/lib/images/benign.qcow2", 20)
    config = vm.config.clone_for_destination(
        "benign", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/benign.qcow2")]
    launch_vm(host, config)
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)

    cloud = CloudInterface(host, lambda: state["guest"])
    detector = DedupDetector(host, cloud, file_pages=20)
    report = host.engine.run(host.engine.process(detector.run()))
    assert state["guest"].depth == 1
    assert report.verdict.verdict == "clean"


def test_migration_of_ksm_shared_pages_preserves_content():
    """Pages merged by KSM on the source migrate with correct content
    and without disturbing the co-resident sharer."""
    from repro.hypervisor.ksm import KsmDaemon
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm

    host = scenarios.testbed(seed=43)
    vm = scenarios.launch_victim(host)
    neighbor = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="neighbor",
            image="/var/lib/images/neighbor.qcow2",
            ssh_host_port=2322,
            monitor_port=5522,
        ),
    )
    KsmDaemon(host.machine).start()
    shared_content = b"identical-across-vms"
    a = vm.guest.memory.alloc_page()
    vm.guest.memory.write(a, shared_content)
    b = neighbor.guest.memory.alloc_page()
    neighbor.guest.memory.write(b, shared_content)
    host.engine.run(until=host.engine.now + 5.0)  # let KSM merge
    backing_a, pfn_a = vm.guest.memory.resolve(a)
    backing_b, pfn_b = neighbor.guest.memory.resolve(b)
    assert backing_a.frame(pfn_a) is backing_b.frame(pfn_b)

    qemu_img_create(host, "/var/lib/images/ksmdst.qcow2", 20)
    config = vm.config.clone_for_destination(
        "ksmdst", incoming_port=4447, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/ksmdst.qcow2")]
    launch_vm(host, config)
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4447")
    host.engine.run(vm.migration_process)

    assert vm.guest is None  # handed off
    migrated = host.kvm.vms["ksmdst"]
    assert migrated.memory.read(a) == shared_content
    assert neighbor.guest.memory.read(b) == shared_content
