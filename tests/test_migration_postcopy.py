"""Post-copy migration: tiny downtime, workload-independent duration."""

import pytest

from repro.migration.postcopy import PostCopyDestination, PostCopyMigration
from repro.qemu.config import DriveSpec, QemuConfig
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.kernel_compile import KernelCompileWorkload


def _postcopy_destination(host, source_vm, port=4600):
    qemu_img_create(host, "/var/lib/images/pcdest.qcow2", 20)
    config = source_vm.config.clone_for_destination(
        "pcdest", incoming_port=None, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/pcdest.qcow2")]
    vm, _ = launch_vm(host, config)
    # Turn the freshly booted VM into a receiver: drop its own guest.
    vm.guest = None
    vm.status = "inmigrate"
    vm.pause()
    destination = PostCopyDestination(vm, port)
    destination.start()
    return vm, destination


def _run_postcopy(host, victim, port=4600):
    migration = PostCopyMigration(victim, destination_port=port)
    process = migration.start()
    host.engine.run(process)
    return migration


def test_postcopy_completes(host, victim):
    dest, receiver = _postcopy_destination(host, victim)
    migration = _run_postcopy(host, victim)
    assert migration.stats.status == "completed"
    assert receiver.completed
    assert dest.status == "running"
    assert dest.guest is not None
    assert dest.guest.depth == 1


def test_postcopy_downtime_tiny(host, victim):
    _postcopy_destination(host, victim)
    migration = _run_postcopy(host, victim)
    assert migration.stats.downtime < 0.05


def test_postcopy_duration_workload_independent(host, victim):
    """Unlike pre-copy, a dirty-page storm cannot stall post-copy."""
    workload = KernelCompileWorkload()
    workload.start(victim.guest, loop_forever=True)
    _postcopy_destination(host, victim)
    migration = _run_postcopy(host, victim)
    workload.stop()
    # Pre-copy under compile takes hundreds of seconds; post-copy just
    # streams the RAM once.
    assert migration.stats.total_time < 60.0


def test_postcopy_penalty_decays_to_zero(host, victim):
    dest, _receiver = _postcopy_destination(host, victim)
    _run_postcopy(host, victim)
    assert dest.guest.kernel.extra_op_latency == 0.0
