"""Differential pins: the wrapped KSM-timing probe vs the pre-refactor path.

The probe-catalog refactor moved the sweep's detector invocation behind
:class:`repro.probes.catalog.KsmTimingProbe`.  These tests pin that the
move is a pure refactor: same verdicts, same Fig 5/6 medians, same
virtual clock, byte for byte, on the single-host scenario and on the
pinned 4x12 fleet.
"""

from repro import scenarios
from repro.cloud.fleet import run_fleet
from repro.core.detection.dedup_detector import CloudInterface, DedupDetector
from repro.core.detection.service import MonitoringService
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from tests.fleet_helpers import (
    DETECTION_PINS_SEED7,
    FLEET_4X12,
    FLEET_SWEEP_4X12_PIN,
    detection_fingerprint,
    fleet_sweep_fingerprint,
)


def _wrapped_sweep(nested, seed=7, file_pages=8, wait_seconds=6.0):
    """The post-refactor path: MonitoringService with default probes."""
    host, cloud, _ksm, locator = scenarios.detection_setup(
        nested=nested, seed=seed
    )
    service = MonitoringService(
        host, file_pages=file_pages, wait_seconds=wait_seconds
    )
    interface = service.register_tenant("victim", locator)
    # Keep the rootkit's vendor-channel mirror wired, as FleetMonitor does.
    interface.observers.extend(cloud.observers)
    report = host.engine.run(host.engine.process(service.sweep()))
    finding = report.findings[0]
    verdict = finding.detection_report.verdict
    return {
        "verdict": finding.verdict,
        "median_t0": verdict.median_t0,
        "median_t1": verdict.median_t1,
        "median_t2": verdict.median_t2,
        "virtual_now": host.engine.now,
    }


def _prerefactor_sweep(nested, seed=7, file_pages=8, wait_seconds=6.0):
    """A literal replica of the pre-catalog sweep loop for one tenant:
    DedupDetector with the sweep's File-A path, then the VMCS scan."""
    host, cloud, _ksm, locator = scenarios.detection_setup(
        nested=nested, seed=seed
    )
    interface = CloudInterface(host, locator)
    interface.observers.extend(cloud.observers)
    detector = DedupDetector(
        host,
        interface,
        file_pages=file_pages,
        wait_seconds=wait_seconds,
        file_path="/root/detect/sweep-0-0-victim.bin",
    )

    def loop():
        report = yield from detector.run()
        yield from scan_for_hypervisors(host)
        return report

    report = host.engine.run(host.engine.process(loop()))
    verdict = report.verdict
    return {
        "verdict": verdict.verdict,
        "median_t0": verdict.median_t0,
        "median_t1": verdict.median_t1,
        "median_t2": verdict.median_t2,
        "virtual_now": host.engine.now,
    }


def test_wrapped_probe_is_byte_identical_on_clean_host():
    assert _wrapped_sweep(nested=False) == _prerefactor_sweep(nested=False)


def test_wrapped_probe_is_byte_identical_on_nested_host():
    wrapped = _prerefactor_sweep(nested=True)
    assert wrapped["verdict"] == "nested"
    assert _wrapped_sweep(nested=True) == wrapped


def test_fig56_fingerprints_still_match_the_pre_refactor_pins():
    """The underlying detector is untouched: Fig 5/6 medians hold."""
    assert detection_fingerprint(nested=False) == DETECTION_PINS_SEED7["clean"]
    assert detection_fingerprint(nested=True) == DETECTION_PINS_SEED7["nested"]


def test_explicit_ksm_probe_matches_the_4x12_fleet_pin():
    """Spelling the default out (probes=('ksm_timing',)) changes nothing:
    the pinned pre-refactor fleet fingerprint holds exactly."""
    result = run_fleet(probes=("ksm_timing",), **FLEET_4X12)
    assert fleet_sweep_fingerprint(result) == FLEET_SWEEP_4X12_PIN