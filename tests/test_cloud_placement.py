"""The bin-packing placer: packing, anti-affinity, KSM co-location."""

import pytest

from repro.cloud.datacenter import Datacenter
from repro.cloud.placement import BinPackingPlacer
from repro.cloud.tenants import Tenant, TenantSpec
from repro.errors import PlacementError


def _place_and_register(placer, spec, state="running"):
    host = placer.place(spec)
    tenant = Tenant(spec, host)
    tenant.state = state
    placer.datacenter.register_tenant(tenant)
    return host, tenant


def test_first_placement_picks_a_deterministic_host():
    dc = Datacenter(hosts=3, seed=1)
    placer = BinPackingPlacer(dc)
    host = placer.place(TenantSpec("t0", memory_mb=1024))
    again = BinPackingPlacer(Datacenter(hosts=3, seed=1)).place(
        TenantSpec("t0", memory_mb=1024)
    )
    assert host.name == again.name
    assert placer.decisions[-1].reason == "cold-boot"
    assert dc.engine.perf.cloud_placements == 1


def test_up_host_preferred_over_cold_boot():
    dc = Datacenter(hosts=3, seed=1)
    placer = BinPackingPlacer(dc)
    first, _ = _place_and_register(placer, TenantSpec("t0", memory_mb=1024))
    dc.engine.run(dc.engine.process(dc.ensure_up(first)))
    # Plenty of offline capacity exists; the up host still wins.
    second = placer.place(TenantSpec("t1", memory_mb=1024))
    assert second is first
    assert placer.decisions[-1].reason == "up-host-fit"


def test_anti_affinity_spreads_group_and_can_exhaust():
    dc = Datacenter(hosts=2, seed=1)
    placer = BinPackingPlacer(dc)
    used = set()
    for index in range(2):
        spec = TenantSpec(
            f"ha{index}", memory_mb=512, anti_affinity_group="web"
        )
        host, _ = _place_and_register(placer, spec)
        used.add(host.name)
    assert len(used) == 2  # spread across both hosts
    with pytest.raises(PlacementError):
        placer.place(TenantSpec("ha2", memory_mb=512, anti_affinity_group="web"))


def test_ksm_affinity_colocates_profile_mates():
    dc = Datacenter(hosts=3, seed=1)
    placer = BinPackingPlacer(dc)
    engine = dc.engine
    # Seed two up hosts with different profiles.
    lamp_host, _ = _place_and_register(
        placer, TenantSpec("t0", memory_mb=512, image_profile="lamp")
    )
    engine.run(engine.process(dc.ensure_up(lamp_host)))
    cache_spec = TenantSpec("t1", memory_mb=512, image_profile="cache")
    cache_host = next(
        h for h in dc.hosts.values() if h is not lamp_host
    )
    tenant = Tenant(cache_spec, cache_host)
    tenant.state = "running"
    dc.register_tenant(tenant)
    engine.run(engine.process(dc.ensure_up(cache_host)))
    # A new lamp tenant lands with its profile mate, not the cache host,
    # even when the cache host would be the tighter best-fit.
    chosen = placer.place(TenantSpec("t2", memory_mb=512, image_profile="lamp"))
    assert chosen is lamp_host
    # With KSM affinity off, pure best-fit decides instead.
    unaware = BinPackingPlacer(dc, ksm_affinity=False)
    smaller = min(
        (lamp_host, cache_host), key=lambda h: h.free_mb(dc.overcommit)
    )
    assert unaware.place(TenantSpec("t3", memory_mb=512)) is smaller


def test_capacity_exhaustion_raises_placement_error():
    dc = Datacenter(hosts=1, seed=1)
    placer = BinPackingPlacer(dc)
    big = dc.host("h00").spec.memory_mb
    _place_and_register(placer, TenantSpec("t0", memory_mb=big))
    with pytest.raises(PlacementError):
        placer.place(TenantSpec("t1", memory_mb=512))


def test_exclude_and_draining_hosts_are_skipped():
    dc = Datacenter(hosts=2, seed=1)
    placer = BinPackingPlacer(dc)
    a, b = dc.host("h00"), dc.host("h01")
    assert placer.place(TenantSpec("t0", memory_mb=512), exclude=(a,)) is b
    a.state = "draining"
    assert placer.place(TenantSpec("t1", memory_mb=512)) is b
    a.state = "offline"


def test_most_loaded_up_host():
    dc = Datacenter(hosts=2, seed=1)
    placer = BinPackingPlacer(dc)
    assert placer.most_loaded_up_host() is None
    engine = dc.engine

    def both():
        yield from dc.ensure_up("h00")
        yield from dc.ensure_up("h01")

    engine.run(engine.process(both()))
    a, b = dc.host("h00"), dc.host("h01")
    for name, host, mb in (("t0", a, 512), ("t1", b, 4096)):
        tenant = Tenant(TenantSpec(name, memory_mb=mb), host)
        tenant.state = "running"
        dc.register_tenant(tenant)
    assert placer.most_loaded_up_host() is b
    assert placer.most_loaded_up_host(exclude=(b,)) is a
