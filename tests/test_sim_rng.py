"""Deterministic named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=7).stream("x")
    b = RngRegistry(seed=7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    registry = RngRegistry(seed=7)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    registry = RngRegistry()
    assert registry.stream("x") is registry.stream("x")


def test_adding_consumer_does_not_perturb_existing():
    r1 = RngRegistry(seed=3)
    first = [r1.stream("main").random() for _ in range(3)]
    r2 = RngRegistry(seed=3)
    r2.stream("newcomer").random()  # a consumer r1 never had
    second = [r2.stream("main").random() for _ in range(3)]
    assert first == second


def test_state_restore_round_trip():
    registry = RngRegistry(seed=9)
    registry.stream("a").random()  # "a" is mid-sequence at state time
    state = registry.state()
    expected_a = [registry.stream("a").random() for _ in range(5)]
    # "b" was unborn at state time: first materialized only now.
    expected_b = [registry.stream("b").random() for _ in range(5)]
    registry.restore(state)
    assert [registry.stream("a").random() for _ in range(5)] == expected_a
    # Derive-by-name preserved: restore dropped "b", so asking again
    # re-derives it from the root seed exactly as the first time.
    assert [registry.stream("b").random() for _ in range(5)] == expected_b


def test_state_restores_onto_fresh_registry():
    original = RngRegistry(seed=9)
    original.stream("x").random()
    state = original.state()
    clone = RngRegistry(seed=0).restore(state)
    assert clone.seed == 9
    assert clone.stream("x").random() == original.stream("x").random()
    # Streams neither registry has born yet still derive identically.
    assert clone.stream("y").random() == original.stream("y").random()


def test_gauss_jitter_floor():
    registry = RngRegistry(seed=11)
    samples = [registry.gauss_jitter("j", 1.0, 5.0) for _ in range(200)]
    assert min(samples) >= 0.1  # floored at 10% of the mean
    assert all(s > 0 for s in samples)


def test_gauss_jitter_centered():
    registry = RngRegistry(seed=11)
    samples = [registry.gauss_jitter("c", 100.0, 0.02) for _ in range(500)]
    mean = sum(samples) / len(samples)
    assert 99.0 < mean < 101.0


def test_page_bytes_deterministic_and_sized():
    a = RngRegistry(seed=5).page_bytes("page:1", length=48)
    b = RngRegistry(seed=5).page_bytes("page:1", length=48)
    c = RngRegistry(seed=5).page_bytes("page:2", length=48)
    assert a == b
    assert a != c
    assert len(a) == 48


def test_state_restore_round_trip_is_nestable():
    # A branch that restores a nested mark must come back to exactly
    # that mark, including streams born after it (dropped, re-derived).
    parent = RngRegistry(seed=21)
    parent.stream("flow").random()
    fork_point = parent.state()
    branch = RngRegistry(seed=0).restore(fork_point)
    inner_mark = branch.state()
    branch.stream("flow").random()
    branch.stream("branch-only").random()
    branch.restore(inner_mark)
    expected = [parent.stream("flow").random() for _ in range(4)]
    assert [branch.stream("flow").random() for _ in range(4)] == expected


def test_restore_inside_forked_branch_leaves_parent_stream_alone():
    # The fork-determinism property at the RNG layer: a forked engine
    # carries a deep-copied registry, so state()/restore() gymnastics
    # inside the branch never move the parent's live streams.
    from repro.hardware.machine import Machine

    machine = Machine(memory_mb=16, seed=33)
    parent_rng = machine.rng
    parent_rng.stream("campaign").random()
    mark = parent_rng.state()
    continuation = RngRegistry(seed=0).restore(mark)
    expected = [continuation.stream("campaign").random() for _ in range(4)]

    snapshot = machine.engine.snapshot(machine, label="rng-isolation")
    fork = snapshot.fork()
    fork_rng = fork.root.rng
    assert fork_rng is not parent_rng
    fork_rng.restore(mark)
    assert [fork_rng.stream("campaign").random() for _ in range(4)] == expected
    # Restore again inside the branch: replays again, still isolated.
    fork_rng.restore(mark)
    assert [fork_rng.stream("campaign").random() for _ in range(4)] == expected
    fork.dispose()
    snapshot.dispose()
    # The parent stream resumes from the mark as if the fork (and its
    # restores) never existed.
    assert [
        parent_rng.stream("campaign").random() for _ in range(4)
    ] == expected
