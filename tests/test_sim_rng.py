"""Deterministic named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=7).stream("x")
    b = RngRegistry(seed=7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    registry = RngRegistry(seed=7)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    registry = RngRegistry()
    assert registry.stream("x") is registry.stream("x")


def test_adding_consumer_does_not_perturb_existing():
    r1 = RngRegistry(seed=3)
    first = [r1.stream("main").random() for _ in range(3)]
    r2 = RngRegistry(seed=3)
    r2.stream("newcomer").random()  # a consumer r1 never had
    second = [r2.stream("main").random() for _ in range(3)]
    assert first == second


def test_gauss_jitter_floor():
    registry = RngRegistry(seed=11)
    samples = [registry.gauss_jitter("j", 1.0, 5.0) for _ in range(200)]
    assert min(samples) >= 0.1  # floored at 10% of the mean
    assert all(s > 0 for s in samples)


def test_gauss_jitter_centered():
    registry = RngRegistry(seed=11)
    samples = [registry.gauss_jitter("c", 100.0, 0.02) for _ in range(500)]
    mean = sum(samples) / len(samples)
    assert 99.0 < mean < 101.0


def test_page_bytes_deterministic_and_sized():
    a = RngRegistry(seed=5).page_bytes("page:1", length=48)
    b = RngRegistry(seed=5).page_bytes("page:1", length=48)
    c = RngRegistry(seed=5).page_bytes("page:2", length=48)
    assert a == b
    assert a != c
    assert len(a) == 48
