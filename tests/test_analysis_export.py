"""Export archive and the overhead characterization tool."""

import json

import pytest

from repro.analysis.characterize import WorkloadOverhead, characterize_overhead
from repro.analysis.export import ExperimentArchive, series_to_dict
from repro.errors import ReproError


def test_series_to_dict():
    record = series_to_dict("L0", [1.0, 2.0, 3.0])
    assert record["label"] == "L0"
    assert record["n"] == 3
    assert record["mean"] == 2.0
    assert record["samples"] == [1.0, 2.0, 3.0]


def test_archive_roundtrip(tmp_path):
    archive = ExperimentArchive("demo", seed_info={"seeds": [1, 2]})
    archive.record_series("fig2", {"L0": [1.0], "L1": [3.8]}, unit="s")
    archive.record_table("table1", ["year", "count"], [[2015, 13]])
    path = archive.save(tmp_path / "results.json")
    loaded = ExperimentArchive.load(path)
    assert loaded["title"] == "demo"
    assert loaded["experiments"]["fig2"]["kind"] == "figure"
    assert loaded["experiments"]["fig2"]["series"][1]["mean"] == 3.8
    assert loaded["experiments"]["table1"]["rows"] == [[2015, 13]]


def test_archive_rejects_duplicates():
    archive = ExperimentArchive("demo")
    archive.record_series("x", {"a": [1.0]})
    with pytest.raises(ReproError):
        archive.record_series("x", {"a": [1.0]})
    with pytest.raises(ReproError):
        archive.record_table("x", ["c"], [])


def test_archive_json_is_valid():
    archive = ExperimentArchive("demo")
    archive.record_series("fig", {"a": [0.5, 0.7]})
    parsed = json.loads(archive.to_json())
    assert parsed["experiments"]["fig"]["series"][0]["n"] == 2


def test_workload_overhead_direction():
    slower = WorkloadOverhead("compile", 100.0, 125.0, "s", higher_is_better=False)
    assert slower.degradation_percent == pytest.approx(25.0)
    assert slower.noticeable
    fewer_ops = WorkloadOverhead("io", 1000.0, 900.0, "ops/s", higher_is_better=True)
    assert fewer_ops.degradation_percent == pytest.approx(10.0)
    assert not fewer_ops.noticeable


def test_characterize_overhead_shapes():
    overheads = characterize_overhead(seed=11, compile_units=120,
                                      filebench_seconds=4.0)
    by_name = {o.name.split()[0]: o for o in overheads}
    # Compile degradation lands near the paper's 25.7%.
    assert 15 < by_name["CPU/memory"].degradation_percent < 35
    # Interactivity (pipe latency) degrades by ~10-20x: very noticeable.
    assert by_name["interactivity"].degradation_percent > 300
    assert by_name["interactivity"].noticeable
    # I/O throughput drops but far less than interactivity.
    assert 0 < by_name["I/O"].degradation_percent < 80
