"""Shared fixtures for the test suite."""

import pytest

from repro import scenarios
from repro.hardware.machine import Machine
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def machine():
    return Machine(memory_mb=2048, seed=42)


@pytest.fixture
def host():
    """A booted bare-metal host with KVM loaded."""
    return scenarios.testbed(seed=42)


@pytest.fixture
def victim(host):
    """Guest0 launched and booted on the host."""
    return scenarios.launch_victim(host)


@pytest.fixture
def nested_env():
    """(host, install_report) with CloudSkulk fully installed."""
    return scenarios.nested_environment(seed=42)


@pytest.fixture
def shrink_fault_plan():
    """Delta-debugging shrinker for failing :class:`FaultPlan`s.

    ``shrink(plan, still_fails)`` returns a minimal sub-plan for which
    ``still_fails(sub_plan)`` is still true: specs are dropped one at a
    time (scanning from the back, so late specs — usually incidental —
    go first) until no single removal keeps the failure.  Deterministic,
    and pure spec-list surgery: the predicate re-runs the experiment,
    so the shrunk plan is guaranteed to reproduce.
    """
    from repro.faults.plan import FaultPlan

    def shrink(plan, still_fails):
        specs = list(plan)
        if not still_fails(FaultPlan(specs)):
            raise ValueError("plan must fail before shrinking")
        changed = True
        while changed:
            changed = False
            for index in range(len(specs) - 1, -1, -1):
                candidate = specs[:index] + specs[index + 1 :]
                if candidate and still_fails(FaultPlan(candidate)):
                    specs = candidate
                    changed = True
        return FaultPlan(specs)

    return shrink
