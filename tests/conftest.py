"""Shared fixtures for the test suite."""

import pytest

from repro import scenarios
from repro.hardware.machine import Machine
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def machine():
    return Machine(memory_mb=2048, seed=42)


@pytest.fixture
def host():
    """A booted bare-metal host with KVM loaded."""
    return scenarios.testbed(seed=42)


@pytest.fixture
def victim(host):
    """Guest0 launched and booted on the host."""
    return scenarios.launch_victim(host)


@pytest.fixture
def nested_env():
    """(host, install_report) with CloudSkulk fully installed."""
    return scenarios.nested_environment(seed=42)
