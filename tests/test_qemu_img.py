"""Disk images and qemu-img."""

import pytest

from repro.errors import QemuError
from repro.qemu.qemu_img import (
    host_images,
    qemu_img_create,
    qemu_img_info,
)


def test_create_and_info(host):
    qemu_img_create(host, "/var/lib/images/test.qcow2", 20)
    info = qemu_img_info(host, "/var/lib/images/test.qcow2")
    assert "file format: qcow2" in info
    assert "virtual size: 20G" in info
    assert "disk size:" in info


def test_backing_file_reported(host):
    registry = host_images(host)
    registry.create("/base.qcow2", 10)
    registry.create("/overlay.qcow2", 10, backing_file="/base.qcow2")
    info = qemu_img_info(host, "/overlay.qcow2")
    assert "backing file: /base.qcow2" in info


def test_duplicate_create_rejected(host):
    qemu_img_create(host, "/dup.qcow2", 5)
    with pytest.raises(QemuError):
        qemu_img_create(host, "/dup.qcow2", 5)


def test_missing_info_rejected(host):
    with pytest.raises(QemuError):
        qemu_img_info(host, "/nothing.qcow2")


def test_zero_size_rejected(host):
    with pytest.raises(QemuError):
        qemu_img_create(host, "/zero.qcow2", 0)


def test_registry_scoped_per_system(nested_env):
    """GuestX's images are invisible to the L0 registry and vice versa."""
    host, report = nested_env
    inner = host_images(report.guestx_vm.guest)
    outer = host_images(host)
    assert inner is not outer
    assert inner.exists("/srv/images/nested.qcow2")
    assert not outer.exists("/srv/images/nested.qcow2")
