"""Property-based checks of the fault-injection subsystem.

The seeded generator (:meth:`FaultPlan.random`) draws arbitrary plans;
whatever it throws at a fleet run, the invariants below must hold:

* **No tenant is ever lost** — every tenant the churn layer created is
  either still registered (in an allowed state) or has an explicit
  ``delete``/``fail`` churn event.  Faults may degrade tenants, never
  vanish them.
* **KSM page conservation** — across stalls and host crashes, every
  daemon satisfies ``pages_shared == pages_shared_total -
  pages_unshared`` (promotions minus drops).
* **Injection ledger coherence** — the injector's record, the perf
  counters, and the emitted ``fault.*`` trace instants all agree.

Failures reproduce from the generator seed alone; the
``shrink_fault_plan`` fixture (tests/conftest.py) minimizes a failing
plan to the guilty specs.
"""

import random
from collections import Counter

import pytest

from repro.cloud.fleet import run_fleet
from repro.faults import FAULT_KINDS, FaultError, FaultPlan
from repro.faults.plan import FaultSpec

#: Small fleet so each property run stays well under a second.
FLEET = dict(
    hosts=3,
    tenants=8,
    churn_operations=4,
    rebalance_moves=1,
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)

#: States a still-registered tenant may end a run in.
ALLOWED_PRESENT = {"provisioning", "running", "stopped", "degraded"}


def _chaos_run(plan, seed=42):
    return run_fleet(seed=seed, faults=plan, trace=True, **FLEET)


def _assert_no_tenant_lost(result):
    dc = result.datacenter
    created = {name for _at, op, name in result.churn.events if op == "create"}
    removed = {
        name
        for _at, op, name in result.churn.events
        if op in ("delete", "fail")
    }
    for name in created:
        tenant = dc.tenants.get(name)
        if tenant is None:
            assert name in removed, (
                f"tenant {name} vanished without a delete/fail event"
            )
        else:
            assert tenant.state in ALLOWED_PRESENT, (
                f"tenant {name} ended in {tenant.state!r}"
            )


def _assert_ksm_conservation(result):
    for host in result.datacenter.hosts.values():
        daemon = host.ksm
        if daemon is None:
            continue
        stats = daemon.stats
        assert daemon.pages_shared == (
            stats.pages_shared_total - stats.pages_unshared
        ), f"{host.name}: KSM stable-frame ledger out of balance"


def _assert_injection_ledger(result):
    injector = result.injector
    engine = result.datacenter.engine
    recorded = Counter(entry["phase"] for entry in injector.injections)
    # Perf counters agree with the record.
    assert engine.perf.faults_injected == recorded["inject"]
    assert engine.perf.faults_recovered == recorded["recover"]
    # Every recorded phase has a matching trace instant (and vice versa).
    traced = Counter(
        event[1].split(".", 1)[1]
        for event in engine.tracer.events()
        if event[0] == "i" and event[1].startswith("fault.")
    )
    assert traced == recorded
    # The record is in virtual-time order, within the run.
    times = [entry["at"] for entry in injector.injections]
    assert times == sorted(times)
    assert all(0.0 <= at <= engine.now for at in times)


@pytest.mark.chaos
@pytest.mark.parametrize("generator_seed", [3, 11, 2026])
def test_random_plan_invariants(generator_seed):
    rng = random.Random(generator_seed)
    plan = FaultPlan.random(rng, faults=6, horizon=300.0)
    result = _chaos_run(plan)
    _assert_no_tenant_lost(result)
    _assert_ksm_conservation(result)
    _assert_injection_ledger(result)


@pytest.mark.chaos
def test_host_crash_degrades_and_recovery_restores():
    plan = FaultPlan().host_crash(150.0, "#0", duration=120.0)
    result = _chaos_run(plan)
    phases = [e["phase"] for e in result.injector.injections]
    assert phases == ["inject", "recover"]
    _assert_no_tenant_lost(result)
    _assert_ksm_conservation(result)
    # Recovery happened before the end: nobody stays degraded.
    dc = result.datacenter
    assert not [t for t in dc.tenants.values() if t.state == "degraded"]


@pytest.mark.chaos
def test_unrecovered_crash_reports_tenants_unreachable():
    plan = FaultPlan().host_crash(200.0, "#0")
    result = _chaos_run(plan)
    crashed = [
        h.name
        for h in result.datacenter.hosts.values()
        if h.state == "crashed"
    ]
    assert len(crashed) == 1
    sweep = result.monitor.reports[0]
    findings = sweep.host_reports[crashed[0]].findings
    assert findings, "crashed host missing from the fleet sweep"
    assert all(f.verdict == "unreachable" for f in findings)
    _assert_no_tenant_lost(result)


def test_random_plans_are_pure_functions_of_the_rng():
    first = FaultPlan.random(random.Random(5), faults=8)
    second = FaultPlan.random(random.Random(5), faults=8)
    assert first.as_dict() == second.as_dict()
    different = FaultPlan.random(random.Random(6), faults=8)
    assert first.as_dict() != different.as_dict()


def test_spec_validation_rejects_malformed_faults():
    with pytest.raises(FaultError):
        FaultSpec("disk_melt", 1.0)
    with pytest.raises(FaultError):
        FaultSpec("host_crash", -1.0)
    with pytest.raises(FaultError):
        FaultSpec("host_crash", 1.0, duration=0.0)
    with pytest.raises(FaultError):
        FaultSpec("migration_drop", 1.0, mode="teleport")
    with pytest.raises(FaultError):
        FaultSpec("migration_drop", 1.0, iteration=0)
    with pytest.raises(FaultError):
        FaultSpec("latency_spike", 1.0, factor=1.0)
    assert set(FAULT_KINDS) >= {"host_crash", "migration_drop"}


def test_shrink_fault_plan_minimizes_to_guilty_spec(shrink_fault_plan):
    plan = (
        FaultPlan()
        .ksm_stall(10.0, "#0", duration=20.0)
        .host_crash(40.0, "#1")
        .probe_timeout(60.0, "#2", duration=15.0)
        .latency_spike(80.0, "#0", duration=30.0)
    )

    def still_fails(candidate):
        return any(spec.kind == "host_crash" for spec in candidate)

    shrunk = shrink_fault_plan(plan, still_fails)
    assert len(shrunk) == 1
    assert shrunk.specs[0].kind == "host_crash"
    # A passing plan refuses to shrink.
    with pytest.raises(ValueError):
        shrink_fault_plan(FaultPlan().ksm_stall(1.0, "#0", duration=5.0),
                          still_fails)
