"""The kernel's charging API, page cache, taps, boot."""

import pytest

from repro.errors import GuestError
from repro.guest.kernel import SyscallTap
from repro.guest.syscalls import SYSCALL_PROFILES


@pytest.fixture
def kernel(host):
    host.kernel.jitter_rsd = 0.0
    return host.kernel


def test_l0_syscall_costs_match_paper(kernel):
    """Table III's L0 column is the model's input: exact by design."""
    expectations = {
        "sig_install": 0.075,
        "sig_handle": 0.50,
        "protection_fault": 0.27,
        "pipe_latency": 3.49,
        "af_unix_latency": 3.58,
        "fork_exit": 74.6,
        "fork_execve": 245.8,
        "fork_sh": 918.7,
    }
    for name, expected_us in expectations.items():
        assert kernel.syscall_cost(name) * 1e6 == pytest.approx(
            expected_us, rel=0.01
        )


def test_unknown_syscall_rejected(kernel):
    with pytest.raises(GuestError):
        kernel.syscall_cost("frobnicate")


def test_throttle_stretches_costs(kernel):
    base = kernel.syscall_cost("pipe_latency")
    kernel.cpu_throttle = 0.5
    assert kernel.syscall_cost("pipe_latency") == pytest.approx(base * 2, rel=0.01)
    kernel.cpu_throttle = 0.0


def test_bad_throttle_rejected(kernel):
    kernel.cpu_throttle = 1.5
    with pytest.raises(GuestError):
        kernel.charge_cpu(1.0)
    kernel.cpu_throttle = 0.0


def test_extra_op_latency_applies(kernel):
    base = kernel.syscall_cost("getpid")
    kernel.extra_op_latency = 1e-3
    assert kernel.syscall_cost("getpid") == pytest.approx(base + 1e-3, rel=0.01)
    kernel.extra_op_latency = 0.0


def test_charge_cpu_scales(kernel):
    assert kernel.charge_cpu(2.0, jitter=False) == pytest.approx(
        2 * kernel.charge_cpu(1.0, jitter=False), rel=1e-6
    )


def test_load_file_populates_page_cache(host, kernel):
    host.fs.create("/data/blob", 8 * 4096, content_seed="blob")
    pfns, cost = kernel.load_file("/data/blob")
    assert len(pfns) == 8
    assert cost > 0
    assert host.memory.read(pfns[0]) == host.fs.open("/data/blob").page_content(0)


def test_load_file_idempotent(host, kernel):
    host.fs.create("/data/blob2", 4096)
    first, _ = kernel.load_file("/data/blob2")
    second, _ = kernel.load_file("/data/blob2")
    assert first is second


def test_evict_file(host, kernel):
    host.fs.create("/data/tmp", 2 * 4096)
    pfns, _ = kernel.load_file("/data/tmp")
    kernel.evict_file("/data/tmp")
    assert "/data/tmp" not in kernel.page_cache
    with pytest.raises(GuestError):
        kernel.evict_file("/data/tmp")


def test_write_file_page_updates_cache_and_fs(host, kernel):
    host.fs.create("/data/doc", 2 * 4096, content_seed="doc")
    pfns, _ = kernel.load_file("/data/doc")
    cost = kernel.write_file_page("/data/doc", 1, b"edited")
    assert cost > 0
    assert host.memory.read(pfns[1]) == b"edited"
    assert host.fs.open("/data/doc").page_content(1) == b"edited"


def test_write_page_reports_outcome(host, kernel):
    pfns, _ = kernel.alloc_pages(1)
    outcome, cost = kernel.write_page(pfns[0], b"x")
    assert not outcome.cow_broken
    assert cost > 0


def test_syscall_tap_fires_and_charges(kernel):
    events = []
    tap = SyscallTap("write", lambda system, name: events.append(name))
    kernel.install_tap(tap)
    tapped = kernel.syscall_cost("write")
    kernel.remove_tap(tap)
    untapped = kernel.syscall_cost("write")
    assert events == ["write"]
    assert tap.hits == 1
    # At depth 0 the tap exit is priced at depth >= 1 (hypervisor trap).
    assert tapped > untapped


def test_remove_missing_tap_rejected(kernel):
    with pytest.raises(Exception):
        kernel.remove_tap(SyscallTap("write", None))


def test_boot_only_once(host):
    with pytest.raises(GuestError):
        host.kernel.boot()


def test_boot_populates_processes(host):
    names = {p.name for p in host.kernel.table.processes()}
    assert "systemd" in names
    assert "sshd" in names


def test_spawn_and_kill_cost(host, kernel):
    proc, cost = kernel.spawn("nginx", "/usr/sbin/nginx")
    assert cost > 0
    assert kernel.table.get(proc.pid).name == "nginx"
    kill_cost = kernel.kill(proc.pid)
    assert kill_cost > 0
    assert kernel.table.get(proc.pid) is None


def test_all_profiles_priced_at_all_depths():
    from repro.hypervisor.exits import CostModel

    model = CostModel()
    for name, profile in SYSCALL_PROFILES.items():
        base = model.cpu_cost(profile.cpu_seconds, 0, profile.mem_intensity)
        assert base >= 0, name
