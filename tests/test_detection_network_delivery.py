"""Detection with network-path file delivery (the realistic channel).

The direct-delivery mode places File-A in the guest by fiat; this mode
streams it over the VM's public endpoint to an in-VM agent, so the
rootkit's impersonation mirror must operate as a *packet hook* on the
RITM's forwarding layer — no magic observers.  The detection outcome
must be identical in both modes.
"""

import pytest

from repro import scenarios
from repro.core.detection.dedup_detector import (
    CLOUD_AGENT_HOST_PORT,
    DedupDetector,
)
from repro.errors import DetectionError


def _detect(nested, seed=42):
    host, cloud, _ksm, _loc = scenarios.detection_setup(
        nested=nested, seed=seed, delivery="network"
    )
    detector = DedupDetector(host, cloud, file_pages=20)
    report = host.engine.run(host.engine.process(detector.run()))
    return host, cloud, report


def test_network_delivery_clean_verdict():
    _host, _cloud, report = _detect(nested=False)
    assert report.verdict.verdict == "clean"


def test_network_delivery_nested_verdict():
    _host, _cloud, report = _detect(nested=True)
    assert report.verdict.verdict == "nested"


def test_agent_receives_over_public_endpoint():
    host, cloud, _report = _detect(nested=False)
    guest = cloud.victim_locator()
    assert guest.fs.exists("/root/detect/file-a.mp3")


def test_mirror_hook_sees_and_copies_the_stream():
    host, cloud, _report = _detect(nested=True)
    # Find the mirror hook on the RITM's agent-port rule.
    from repro.core.rootkit.services import NetworkFileMirror

    guestx_procs = host.kernel.table.find_by_name("qemu-system-x86_64")
    assert guestx_procs  # GuestX wears the victim's identity
    # The mirrored copy exists in some system's fs at depth 1 (GuestX).
    victim = cloud.victim_locator()
    assert victim.depth == 2
    guestx = victim.parent
    assert guestx.depth == 1
    assert guestx.fs.exists("/root/detect/file-a.mp3")
    assert "/root/detect/file-a.mp3" in guestx.kernel.page_cache


def test_delivery_through_rootkit_still_lands_in_victim():
    _host, cloud, _report = _detect(nested=True)
    victim = cloud.victim_locator()
    assert victim.fs.exists("/root/detect/file-a.mp3")
    # The victim's copy was mutated to v2 during the protocol while the
    # mirror's copy (in GuestX) kept the original first page.
    guestx = victim.parent
    victim_page = victim.fs.open("/root/detect/file-a.mp3").page_content(0)
    mirror_page = guestx.fs.open("/root/detect/file-a.mp3").page_content(0)
    assert victim_page != mirror_page


def test_bad_delivery_mode_rejected(host):
    from repro.core.detection.dedup_detector import CloudInterface

    with pytest.raises(DetectionError):
        CloudInterface(host, lambda: None, delivery="carrier-pigeon")


def test_agent_port_forward_survives_takeover():
    host, _cloud, _report = _detect(nested=True)
    assert host.net_node.listener(CLOUD_AGENT_HOST_PORT) is not None
