"""Guest memory: translation chains, dirty logging, bulk pages."""

import pytest

from repro.errors import MemoryError_
from repro.hardware.memory import PhysicalMemory
from repro.hypervisor.ept import GuestMemory


@pytest.fixture
def physical():
    return PhysicalMemory(size_mb=256)


@pytest.fixture
def guest(physical):
    return GuestMemory(physical, 64, name="g1")


@pytest.fixture
def nested(guest):
    return GuestMemory(guest, 32, name="g2")


def test_depths(physical, guest, nested):
    assert physical.nesting_depth == 0
    assert guest.nesting_depth == 1
    assert nested.nesting_depth == 2


def test_write_read_roundtrip(guest):
    gpfn = guest.alloc_page()
    guest.write(gpfn, b"data")
    assert guest.read(gpfn) == b"data"


def test_untouched_reads_zero(guest):
    assert guest.read(100) == b""


def test_nested_write_lands_in_host_frame(physical, nested):
    gpfn = nested.alloc_page()
    nested.write(gpfn, b"deep")
    backing, host_pfn = nested.resolve(gpfn)
    assert backing is physical
    assert physical.read(host_pfn) == b"deep"


def test_nested_write_dirties_every_level(guest, nested):
    guest.start_dirty_log()
    nested.start_dirty_log()
    gpfn = nested.alloc_page()
    nested.write(gpfn, b"x")
    nested_dirty, _ = nested.fetch_and_reset_dirty()
    guest_dirty, _ = guest.fetch_and_reset_dirty()
    assert gpfn in nested_dirty
    assert len(guest_dirty) >= 1


def test_write_outcome_depth_and_faults(nested):
    gpfn = nested.alloc_page()  # materializes through both levels
    outcome = nested.write(gpfn, b"y")
    assert outcome.depth == 2
    assert not outcome.cow_broken


def test_alloc_page_gpfns_unique(guest):
    pfns = guest.alloc_pages(50)
    assert len(set(pfns)) == 50


def test_out_of_range_rejected(guest):
    with pytest.raises(MemoryError_):
        guest.write(guest.total_pages + 1, b"x")


def test_ensure_mapped_idempotent(guest):
    parent_a = guest.ensure_mapped(7)
    parent_b = guest.ensure_mapped(7)
    assert parent_a == parent_b


def test_ensure_mapped_records_first_touch_levels(physical, nested):
    from repro.hardware.memory import WriteOutcome

    outcome = WriteOutcome()
    nested.ensure_mapped(9, outcome)
    assert outcome.first_touch_levels == 2  # nested + its parent


def test_dirty_log_disabled_by_default(guest):
    gpfn = guest.alloc_page()
    guest.write(gpfn, b"x")
    dirty, bulk = guest.fetch_and_reset_dirty()
    # Writes are tracked in the set regardless; the log flag gates bulk.
    assert gpfn in dirty
    assert bulk == 0


def test_bulk_touch_and_dirty(guest):
    guest.touch_bulk(1000)
    assert guest.bulk_touched == 1000
    guest.start_dirty_log()
    guest.dirty_bulk(300)
    _dirty, bulk = guest.fetch_and_reset_dirty()
    assert bulk == 300


def test_bulk_dirty_capped_at_touched(guest):
    guest.touch_bulk(100)
    guest.start_dirty_log()
    guest.dirty_bulk(500)
    _dirty, bulk = guest.fetch_and_reset_dirty()
    assert bulk == 100


def test_bulk_negative_rejected(guest):
    with pytest.raises(MemoryError_):
        guest.touch_bulk(-1)
    with pytest.raises(MemoryError_):
        guest.dirty_bulk(-1)


def test_untracked_pages_accounting(guest):
    guest.alloc_pages(10)
    guest.touch_bulk(20)
    assert guest.untracked_pages == guest.total_pages - 30
    assert guest.touched_pages == 10
    assert guest.untouched_pages == guest.total_pages - 10


def test_release_frees_backing(physical, guest):
    before = physical.allocated_pages
    pfns = guest.alloc_pages(5)
    for gpfn, content in zip(pfns, [b"a", b"b", b"c", b"d", b"e"]):
        guest.write(gpfn, content)
    assert physical.allocated_pages == before + 5
    guest.release()
    assert physical.allocated_pages == before


def test_nested_release_chains(physical, guest, nested):
    gpfn = nested.alloc_page()
    nested.write(gpfn, b"z")
    base = physical.allocated_pages
    nested.release()
    assert physical.allocated_pages == base - 1


def test_allocate_adapter(guest):
    gpfn = guest.allocate(b"adapter")
    assert guest.read(gpfn) == b"adapter"
    guest.free(gpfn)
    assert guest.read(gpfn) == b""


def test_zero_size_rejected(physical):
    with pytest.raises(MemoryError_):
        GuestMemory(physical, 0)


def test_read_many_matches_read(nested):
    gpfns = nested.alloc_pages(4)
    for i, gpfn in enumerate(gpfns):
        nested.write(gpfn, f"nested-{i}".encode())
    probe = gpfns + [nested.total_pages - 1]  # never materialized: zero page
    assert nested.read_many(probe) == [(g, nested.read(g)) for g in probe]
