"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "CloudSkulk" in out


def test_attack(capsys):
    assert main(["--seed", "11", "attack"]) == 0
    out = capsys.readouterr().out
    assert "CloudSkulk installation: OK" in out
    assert "step4-migrate" in out


def test_detect(capsys):
    assert main(["--seed", "11", "detect", "--pages", "8"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "NESTED" in out


def test_sweep(capsys):
    assert main(["--seed", "11", "sweep"]) == 0
    out = capsys.readouterr().out
    assert "tenant-b     nested" in out


def test_covert(capsys):
    assert main(["--seed", "11", "covert", "--message", "hi"]) == 0
    out = capsys.readouterr().out
    assert "received b'hi'" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fleet_status(capsys):
    assert main(["fleet", "status", "--hosts", "2", "--tenants", "2"]) == 0
    out = capsys.readouterr().out
    assert "<Datacenter hosts=2" in out
    assert "h00" in out and "h01" in out


def test_fleet_run_detects_campaign(capsys):
    assert (
        main(
            [
                "fleet", "run", "--hosts", "2", "--tenants", "3",
                "--seed", "17", "--churn", "2", "--migrations", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "fleet run: hosts=2 seed=17" in out
    assert "detected         1 (recall 1.00)" in out
    assert "nested" in out


def test_fleet_sweep_command(capsys):
    assert main(["fleet", "sweep", "--hosts", "2", "--tenants", "3"]) == 0
    out = capsys.readouterr().out
    assert "fleet sweep 0:" in out
    assert "recall: 1.00" in out


def test_fleet_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fleet"])
