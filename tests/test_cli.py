"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "CloudSkulk" in out


def test_attack(capsys):
    assert main(["--seed", "11", "attack"]) == 0
    out = capsys.readouterr().out
    assert "CloudSkulk installation: OK" in out
    assert "step4-migrate" in out


def test_detect(capsys):
    assert main(["--seed", "11", "detect", "--pages", "8"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "NESTED" in out


def test_sweep(capsys):
    assert main(["--seed", "11", "sweep"]) == 0
    out = capsys.readouterr().out
    assert "tenant-b     nested" in out


def test_covert(capsys):
    assert main(["--seed", "11", "covert", "--message", "hi"]) == 0
    out = capsys.readouterr().out
    assert "received b'hi'" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
