"""Fleet sweeps, campaign scoring, determinism, and sweep edge cases."""

import pytest

from repro.cloud import run_fleet
from repro.cloud.campaign import AttackCampaign
from repro.cloud.datacenter import Datacenter
from repro.cloud.fleet_monitor import FleetMonitor
from repro.cloud.placement import BinPackingPlacer
from repro.cloud.tenants import TenantChurn, TenantSpec
from repro.errors import CloudError

FAST = dict(file_pages=6, wait_seconds=8.0)


def _fleet(hosts=2, seed=53):
    dc = Datacenter(hosts=hosts, seed=seed)
    placer = BinPackingPlacer(dc)
    churn = TenantChurn(dc, placer)
    monitor = FleetMonitor(dc, **FAST)
    return dc, placer, churn, monitor


def _run(dc, generator):
    return dc.engine.run(dc.engine.process(generator))


def test_fleet_sweep_finds_the_injected_campaign():
    dc, _placer, churn, monitor = _fleet(seed=53)
    campaign = AttackCampaign(dc, count=1)

    def control():
        yield from churn.bring_up(4)
        events = yield from campaign.run()
        report = yield from monitor.sweep_fleet()
        return events, report

    events, report = _run(dc, control())
    assert len(events) == 1
    compromised = report.compromised
    assert [name for name, _host in compromised] == [events[0].tenant_name]
    assert compromised[0][1] == events[0].host_name
    # Everyone else is clean — no false positives among innocents.
    assert report.inconclusive == [] and report.unreachable == []
    recall, latencies = campaign.score(monitor.alerts)
    assert recall == 1.0
    assert len(latencies) == 1 and latencies[0] > 0
    assert events[0].detected
    assert dc.engine.perf.fleet_sweeps == 1
    assert dc.engine.perf.fleet_detections == 1


def test_concurrency_budget_serializes_host_probes():
    dc, _placer, churn, monitor = _fleet(hosts=3, seed=59)
    monitor.max_concurrent_probes = 1

    def control():
        # Force tenants onto distinct hosts so three probes exist.
        for index, host_name in enumerate(sorted(dc.hosts)):
            target = dc.host(host_name)
            yield from dc.ensure_up(target)
            hidden = [
                h for h in dc.up_hosts if h is not target
            ]
            for host in hidden:
                host.state = "draining"
            yield from churn.provision(TenantSpec(f"t{index}", memory_mb=512))
            for host in hidden:
                host.state = "up"
            assert f"t{index}" in target.tenants
        report = yield from monitor.sweep_fleet()
        return report

    report = _run(dc, control())
    assert len(report.host_reports) == 3
    # max_concurrent_probes=1: host sweep windows must not overlap.
    windows = sorted(
        (r.started_at, r.finished_at) for r in report.host_reports.values()
    )
    for (_s1, e1), (s2, _e2) in zip(windows, windows[1:]):
        assert s2 >= e1


def test_identical_seed_fleet_runs_are_byte_identical():
    kwargs = dict(
        hosts=3,
        tenants=5,
        seed=1701,
        churn_operations=3,
        rebalance_moves=1,
        campaigns=1,
        sweeps=1,
        **FAST,
    )
    first = run_fleet(**kwargs)
    second = run_fleet(**kwargs)
    assert first.summary() == second.summary()
    assert first.summary().encode() == second.summary().encode()
    report_a, report_b = first.monitor.reports[0], second.monitor.reports[0]
    assert report_a.summary() == report_b.summary()
    # And a different seed genuinely changes the trajectory.
    third = run_fleet(**{**kwargs, "seed": 1702})
    assert third.summary() != first.summary()


def test_campaign_requires_running_tenants():
    dc, _placer, _churn, _monitor = _fleet(seed=61)
    campaign = AttackCampaign(dc, count=1)

    def control():
        with pytest.raises(CloudError):
            yield from campaign.run()
        return True

    assert _run(dc, control())


def test_campaign_installs_at_most_one_per_host():
    dc, _placer, churn, _monitor = _fleet(hosts=2, seed=67)
    campaign = AttackCampaign(dc, count=4)

    def control():
        yield from churn.bring_up(4)
        events = yield from campaign.run()
        return events

    events = _run(dc, control())
    hosts_hit = [event.host_name for event in events]
    assert len(hosts_hit) == len(set(hosts_hit))
    assert 1 <= len(events) <= 2


def test_periodic_fleet_sweeps_accumulate_reports():
    dc, _placer, churn, monitor = _fleet(seed=71)
    monitor.sweeps_per_hour = 60.0  # one a minute keeps the test quick
    campaign = AttackCampaign(dc, count=1)
    alerts = []

    def control():
        yield from churn.bring_up(3)
        yield from campaign.run()
        yield monitor.run_periodic(max_sweeps=2, alert_callback=alerts.append)

    _run(dc, control())
    assert len(monitor.reports) == 2
    assert [r.sweep_id for r in monitor.reports] == [0, 1]
    assert len(alerts) == 2  # both sweeps saw the standing compromise
    # First-detection bookkeeping records the tenant exactly once.
    assert len(monitor.alerts) == 1
    assert dc.engine.perf.fleet_detections == 2


def test_mixed_compromised_inconclusive_and_unreachable_tenants():
    """One sweep, four verdict classes at once.

    A tenant whose registration went stale (its guest now lives on a
    *different* host's memory) must come back inconclusive — KSM can't
    merge across physical machines — and a deleted tenant unreachable;
    neither may mask the real detection or flag an innocent.
    """
    dc, _placer, churn, monitor = _fleet(hosts=2, seed=73)
    campaign = AttackCampaign(dc, count=1)

    def control():
        yield from churn.bring_up(4)
        events = yield from campaign.run()
        home = dc.host(events[0].host_name)
        other = next(h for h in dc.hosts.values() if h is not home)
        yield from dc.ensure_up(other)
        # Force "stray" onto the other machine, then probe it from
        # home's service — a stale registration after a migration.
        home.state = "draining"
        stray = yield from churn.provision(TenantSpec("stray", memory_mb=512))
        home.state = "up"
        assert stray.host is other
        ghost = yield from churn.provision(TenantSpec("ghost", memory_mb=512))
        churn.delete(ghost)
        from repro.core.detection.service import MonitoringService

        service = MonitoringService(
            home.system,
            file_pages=monitor.file_pages,
            wait_seconds=monitor.wait_seconds,
        )
        for name in sorted(home.tenants):
            tenant = home.tenants[name]
            interface = service.register_tenant(name, tenant.locator())
            if tenant.mirror is not None:
                interface.observers.append(tenant.mirror)
        service.register_tenant("stray", stray.locator())
        service.register_tenant("ghost", ghost.locator())
        report = yield from service.sweep()
        return events, report

    events, report = _run(dc, control())
    verdicts = {f.tenant_name: f.verdict for f in report.findings}
    assert verdicts[events[0].tenant_name] == "nested"
    assert verdicts["ghost"] == "unreachable"
    assert verdicts["stray"] == "inconclusive"
    clean = [
        name
        for name in verdicts
        if name not in (events[0].tenant_name, "ghost", "stray")
    ]
    assert clean and all(verdicts[name] == "clean" for name in clean)
    assert report.unreachable_tenants == ["ghost"]
    assert report.inconclusive_tenants == ["stray"]
    assert report.compromised_tenants == [events[0].tenant_name]


def test_deregistered_tenant_skipped_mid_sweep():
    dc, _placer, churn, monitor = _fleet(hosts=1, seed=79)

    def control():
        yield from churn.bring_up(3)
        host = dc.up_hosts[0]
        services = monitor._build_host_services()
        assert len(services) == 1
        _name, service = services[0]
        names = service.tenant_names
        assert len(names) == 3

        def dropper():
            # Wait until the sweep is mid-flight, then pull the last
            # tenant (sorted order: its turn has not come yet).
            yield dc.engine.timeout(monitor.wait_seconds / 2)
            service.deregister_tenant(names[-1])

        dc.engine.process(dropper(), name="dropper")
        report = yield from service.sweep()
        return host, names, report

    _host, names, report = _run(dc, control())
    probed = [f.tenant_name for f in report.findings]
    assert names[-1] not in probed
    assert probed == names[:-1]


def test_deregister_unknown_tenant_raises():
    from repro.core.detection.service import MonitoringService
    from repro.errors import DetectionError

    dc, _placer, _churn, _monitor = _fleet(hosts=1, seed=83)

    def control():
        host = yield from dc.ensure_up("h00")
        return host

    host = _run(dc, control())
    service = MonitoringService(host.system)
    with pytest.raises(DetectionError):
        service.deregister_tenant("nobody")
    service.register_tenant("t0", lambda: None)
    service.deregister_tenant("t0")
    with pytest.raises(DetectionError):
        service.deregister_tenant("t0")
