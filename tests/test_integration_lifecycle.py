"""Grand end-to-end lifecycle with cross-module conservation invariants.

One simulation, the whole story: multi-tenant host, attack with live
services, detection by three channels, incident response, and recovery
— asserting along the way that the substrate conserves what it should
(memory, ports, processes).
"""

import pytest

from repro import scenarios
from repro.core.detection.dedup_detector import CloudInterface, DedupDetector
from repro.core.detection.exit_census import exit_census
from repro.core.detection.forensics import TenantRecord, collect_evidence
from repro.core.detection.response import respond_and_recover
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.core.rootkit.services import KeystrokeLogger, PacketCaptureService
from repro.core.rootkit.stealth import ImpersonationMirror
from repro.hypervisor.ksm import KsmDaemon
from repro.net.stack import Link, NetworkNode
from repro.workloads.filebench import FilebenchWorkload


@pytest.fixture(scope="module")
def story():
    """Run the full narrative once; tests assert different facets."""
    facts = {}
    host = scenarios.testbed(seed=777)
    engine = host.engine

    # Two tenants; tenant-a will be attacked.
    vm_a = scenarios.launch_victim(host)
    vm_b = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="tenant-b",
            image="/var/lib/images/tenant-b.qcow2",
            ssh_host_port=2223,
            monitor_port=5560,
        ),
    )
    state = {"guest": vm_a.guest}
    KsmDaemon(host.machine).start()
    facts["pages_after_setup"] = host.memory.allocated_pages

    # The attack, with services.
    install = scenarios.install_cloudskulk(host, target_name="guest0")
    victim = install.nested_vm.guest
    facts["install"] = install
    rule = next(
        r for nic in install.guestx_vm.nics for r in nic.forward_rules
        if r.outer_port == 2222
    )
    capture = PacketCaptureService()
    rule.add_hook(capture)
    logger = KeystrokeLogger()
    logger.install(victim)

    # The victim works; a customer logs in; the attacker records it all.
    workload = FilebenchWorkload()
    workload.start(victim, duration=30.0)
    customer = NetworkNode(engine, "customer")
    Link(customer, host.net_node, 941e6, 1e-4)

    def session(e):
        endpoint = customer.connect(host.net_node, 2222)
        yield endpoint.send(b"PASS=s3cret")

    def sshd(e):
        conn = yield victim.net_node.listener(22).accept()
        while True:
            yield conn.server.recv()

    engine.process(sshd(engine))
    engine.run(engine.process(session(engine)))
    # The user types into a shell inside the victim: write(2) calls the
    # L1 tap sees.
    for _ in range(12):
        victim.kernel.syscall_cost("write")
    engine.run(until=engine.now + 35.0)
    facts["capture"] = capture
    facts["logger"] = logger

    # Detection: three channels.
    cloud = CloudInterface(host, lambda: state["guest"])
    cloud.observers.append(ImpersonationMirror(install.guestx_vm.guest))
    detector = DedupDetector(host, cloud, file_pages=15)
    facts["dedup"] = engine.run(engine.process(detector.run())).verdict
    facts["census"] = engine.run(engine.process(exit_census(host)))
    facts["scan"] = engine.run(engine.process(scan_for_hypervisors(host)))

    # Response.
    record = TenantRecord("guest0", 1024, public_ports=(2222,))
    record_b = TenantRecord("tenant-b", 1024, public_ports=(2223,))
    evidence = engine.run(
        engine.process(collect_evidence(host, [record, record_b]))
    )
    facts["evidence"] = evidence
    recovery = engine.run(
        engine.process(
            respond_and_recover(
                host, evidence, record, "/var/lib/images/guest0.qcow2"
            )
        )
    )
    facts["recovery"] = recovery
    facts["host"] = host
    facts["vm_b"] = vm_b
    return facts


def test_attack_phase_worked(story):
    assert story["install"].success
    assert b"PASS=s3cret" in story["capture"].payloads("inbound")
    assert story["logger"].keystrokes_logged > 0


def test_all_three_channels_agreed(story):
    assert story["dedup"].verdict == "nested"
    assert story["census"].flagged == ["guestx"]
    assert story["scan"].nested_hypervisor_detected


def test_evidence_names_everything(story):
    kinds = {e.kind for e in story["evidence"].critical}
    assert {"vmcs-census", "unknown-vm", "bulk-flow"} <= kinds
    # The innocent tenant drew no evidence.
    subjects = {e.subject for e in story["evidence"].critical}
    assert "tenant-b" not in subjects


def test_recovery_restored_service(story):
    recovery = story["recovery"]
    assert recovery.clean
    assert recovery.recovered_vm.guest.depth == 1


def test_innocent_tenant_untouched_throughout(story):
    vm_b = story["vm_b"]
    assert vm_b.status == "running"
    assert vm_b.guest.depth == 1
    assert vm_b.guest.booted
    assert story["host"].net_node.listener(2223) is not None


def test_memory_conservation(story):
    """After eviction + relaunch, host memory is near the two-tenant
    baseline: the rootkit stack's pages were all reclaimed."""
    host = story["host"]
    # Allow slack for the detector's artifacts and recovered-VM deltas.
    assert host.memory.allocated_pages < story["pages_after_setup"] * 1.3


def test_final_process_table_clean(story):
    host = story["host"]
    qemu_procs = [
        p for p in host.kernel.table.find_by_name("qemu-system-x86_64")
        if p.alive
    ]
    assert len(qemu_procs) == 2  # tenant-b + recovered guest0
    names = {p.cmdline.split("-name ")[1].split()[0] for p in qemu_procs}
    assert names == {"guest0", "tenant-b"}
