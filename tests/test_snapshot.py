"""Engine snapshot/fork: COW sharing, counters, determinism, failure.

The snapshot layer (`repro.sim.snapshot`) is what lets drivers pay a
warm-up prefix once and fan out N divergent branches.  These tests pin
its contract at the engine/machine level:

* forking shares `PageRecord`s by refcount — no byte copies, and a
  branch write diverges copy-on-write without touching the snapshot
  or sibling branches;
* `snapshot_captures` / `engine_forks` / `fork_pages_shared` /
  `fork_cow_breaks` count exactly, `snapshot.*` trace instants land in
  the trace, and the counters mirror into `perf.*` gauges;
* a fork resumes the original timeline byte-identically (same KSM
  passes, same perf counters) — the fleet-level twin of this check
  lives in test_fleet_fanout.py;
* a live process without the resumable protocol fails the capture
  loudly instead of silently dropping state.
"""

import gc

import pytest

from repro.hardware.machine import Machine
from repro.hypervisor.ksm import KsmDaemon
from repro.sim.snapshot import SnapshotError, heap_frozen

#: Perf counters that legitimately differ between a forked engine and
#: the original timeline (the fork pays bookkeeping the original never
#: sees, and vice versa).
_FORK_ONLY_COUNTERS = {
    "snapshot_captures",
    "engine_forks",
    "fork_pages_shared",
    "fork_cow_breaks",
}


def _comparable_perf(engine):
    return {
        name: value
        for name, value in engine.perf.as_dict().items()
        if name not in _FORK_ONLY_COUNTERS
    }


def _warm_machine(seed=11, duplicates=6):
    """A small machine with KSM running and merged duplicate pages."""
    machine = Machine(memory_mb=32, seed=seed)
    ksm = KsmDaemon(machine, pages_to_scan=500)
    ksm.start()
    memory = machine.memory
    pfns = [
        memory.allocate(b"shared template", mergeable=True)
        for _ in range(duplicates)
    ]
    pfns.append(memory.allocate(b"loner", mergeable=True))
    machine.engine.run(until=30.0)  # several KSM passes: merge settles
    return machine, ksm, pfns


def test_fork_shares_pages_and_diverges_cow():
    machine, _ksm, pfns = _warm_machine()
    engine = machine.engine
    memory = machine.memory
    saved_before = memory.pages_saved_by_sharing
    assert saved_before > 0

    snapshot = engine.snapshot(machine, label="unit")
    fork_a = snapshot.fork()
    fork_b = snapshot.fork()
    assert fork_a.pages_shared == fork_b.pages_shared > 0

    # Shared by identity: the records backing the fork's frames are the
    # very objects the original store holds.
    target = pfns[0]
    mem_a = fork_a.root.memory
    assert mem_a.frame(target).record is memory.frame(target).record

    # A branch write breaks COW for that branch only.
    mem_a.write(target, b"branch A diverged")
    assert mem_a.read(target) == b"branch A diverged"
    assert memory.read(target) == b"shared template"
    assert fork_b.root.memory.read(target) == b"shared template"
    assert snapshot.root.memory.read(target) == b"shared template"
    assert fork_a.engine.perf.fork_cow_breaks >= 1
    assert fork_b.engine.perf.fork_cow_breaks == 0
    assert engine.perf.fork_cow_breaks == 0

    fork_a.dispose()
    fork_b.dispose()
    snapshot.dispose()
    # Nothing about the original changed across the whole fan-out.
    assert memory.pages_saved_by_sharing == saved_before


def test_counters_instants_and_gauges():
    machine, _ksm, _pfns = _warm_machine(seed=3)
    engine = machine.engine
    engine.tracer.enable()
    snapshot = engine.snapshot(machine, label="counted")
    assert engine.perf.snapshot_captures == 1
    fork = snapshot.fork()
    assert engine.perf.engine_forks == 1
    assert snapshot.forks_taken == 1
    assert fork.engine.perf.fork_pages_shared == fork.pages_shared > 0

    names = [event[1] for event in engine.tracer.events()]
    assert "snapshot.capture" in names
    assert "snapshot.fork" in names

    # The PR-5 gauge mirror picks the new counters up for free.
    engine.tracer.flush()
    metrics = engine.tracer.metrics.as_dict()
    assert metrics["perf.snapshot_captures"]["value"] == 1
    assert metrics["perf.engine_forks"]["value"] == 1
    fork.dispose()
    snapshot.dispose()


def test_fork_resumes_original_timeline_byte_identically():
    machine, _ksm, _pfns = _warm_machine(seed=29)
    engine = machine.engine
    snapshot = engine.snapshot(machine, label="determinism")
    fork_a = snapshot.fork()
    fork_b = snapshot.fork()

    # Continue all three timelines — original and both forks — to the
    # same horizon.  KSM keeps scanning in each; every counter the
    # simulation touches must agree.
    for eng in (engine, fork_a.engine, fork_b.engine):
        eng.run(until=150.0)
    assert _comparable_perf(fork_a.engine) == _comparable_perf(engine)
    assert _comparable_perf(fork_b.engine) == _comparable_perf(engine)
    assert (
        fork_a.root.memory.pages_saved_by_sharing
        == fork_b.root.memory.pages_saved_by_sharing
        == machine.memory.pages_saved_by_sharing
    )
    fork_a.dispose()
    fork_b.dispose()
    snapshot.dispose()


def test_unresumable_process_fails_capture_loudly():
    machine = Machine(memory_mb=16, seed=1)
    engine = machine.engine

    def opaque():
        yield engine.timeout(1000.0)

    engine.process(opaque(), name="opaque")
    with pytest.raises(SnapshotError):
        engine.snapshot(machine)


def test_disposed_snapshot_refuses_forks():
    machine = Machine(memory_mb=16, seed=1)
    snapshot = machine.engine.snapshot(machine)
    snapshot.dispose()
    with pytest.raises(SnapshotError):
        snapshot.fork()


def test_heap_frozen_restores_collector_state():
    was_enabled = gc.isenabled()
    frozen_before = gc.get_freeze_count()
    with heap_frozen():
        assert gc.get_freeze_count() > frozen_before
    assert gc.get_freeze_count() == frozen_before
    assert gc.isenabled() == was_enabled


def test_heap_frozen_nests_without_early_thaw():
    # gc.unfreeze() thaws the whole permanent generation, so an inner
    # fan-out must not strip an enclosing driver's freeze — only the
    # outermost exit may thaw (the fanout benchmark freezes around its
    # cold comparator legs while fan_out freezes internally).
    frozen_before = gc.get_freeze_count()
    with heap_frozen():
        outer_frozen = gc.get_freeze_count()
        assert outer_frozen > frozen_before
        with heap_frozen():
            pass
        # Inner exit must NOT have thawed the outer freeze.
        assert gc.get_freeze_count() >= outer_frozen
    assert gc.get_freeze_count() == frozen_before


def test_empty_never_booted_machine_captures_and_forks():
    # An empty capture is the degenerate warm-up: no processes, no
    # allocations, virtual time zero.  It must capture and fork cleanly
    # (the scenario matrix hits this with settle-free, churn-free warm
    # prefixes), and the fork must be a fully independent world.
    machine = Machine(memory_mb=16, seed=2)
    engine = machine.engine
    assert engine.now == 0.0
    snapshot = engine.snapshot(machine, label="empty")
    fork = snapshot.fork()
    assert fork.engine.now == 0.0
    assert fork.pages_shared == 0
    # The branch can boot real work the parent never sees.
    pfn = fork.root.memory.allocate(b"branch page", mergeable=True)
    assert fork.root.memory.read(pfn) == b"branch page"
    assert machine.memory.allocated_pages == 0
    fork.dispose()
    snapshot.dispose()
