"""Protocol-level tests for `repro.sim.shard`.

These run real :class:`ShardRuntime` meshes — every replica its own
:class:`Engine` plus duplex pipes — inside threads of one process, so
the conservative-sync edge cases are exercised without the cost (or
nondeterminism surface) of a whole fleet:

* a cross-shard completion landing exactly at the lookahead horizon
  (the migration-in-flight case) replays byte-identically to the
  serial interleaving;
* the zero-lookahead degenerate config neither deadlocks nor reorders;
* the horizon promise guard, self/unknown-owner misuse, peer death and
  error transport all fail loudly.

Fleet-scale differential pins live in ``test_fleet_sharded.py``.
"""

import threading

from multiprocessing import Pipe

import pytest

from repro.errors import MigrationError
from repro.sim.engine import Engine
from repro.sim.shard import (
    ShardError,
    ShardPlan,
    ShardRuntime,
    describe_error,
    rebuild_error,
)

pytestmark = pytest.mark.shard

#: Wall-clock ceiling for every blocking wait in these meshes: protocol
#: bugs should fail in seconds, not the production 120s.
TEST_RECV_TIMEOUT = 20.0


def mesh_conns(count):
    """Fully-connected duplex pipes; returns per-shard conns dicts."""
    conns = [dict() for _ in range(count)]
    for left in range(count):
        for right in range(left + 1, count):
            left_conn, right_conn = Pipe(duplex=True)
            conns[left][right] = left_conn
            conns[right][left] = right_conn
    return conns


def run_mesh(replicas, lookahead=0.0):
    """Run one callable per shard in its own thread; returns results.

    Each replica callable receives ``(engine, runtime)`` with the
    runtime already installed as ``engine.governor``.  Any replica
    exception fails the whole mesh (re-raised in the caller).
    """
    conns = mesh_conns(len(replicas))
    results = [None] * len(replicas)
    errors = [None] * len(replicas)

    def worker(index, replica):
        engine = Engine()
        runtime = ShardRuntime(
            engine, index, conns[index], lookahead=lookahead
        )
        runtime.recv_timeout = TEST_RECV_TIMEOUT
        engine.governor = runtime
        try:
            results[index] = replica(engine, runtime)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors[index] = exc
            runtime.announce_failure(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(index, replica), daemon=True)
        for index, replica in enumerate(replicas)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=TEST_RECV_TIMEOUT + 10.0)
        assert not thread.is_alive(), "mesh deadlocked (thread still alive)"
    for exc in errors:
        if exc is not None:
            raise exc
    return results


def owner_replica(log, complete_at, value="page-stream-done"):
    """Shard 0: publish one owned operation completing at ``complete_at``."""

    def replica(engine, runtime):
        def owned_op():
            yield engine.timeout(complete_at)
            log.append(("owner-done", engine.now))
            return value

        def control():
            result = yield runtime.publish(
                ("mig", "t1"), engine.process(owned_op())
            )
            log.append(("owner-control", engine.now, result))

        process = engine.process(control())
        runtime.taint(process)
        engine.run(process)
        return runtime.finish("owner")

    return replica


def waiter_replica(log, local_times):
    """Shard 1: tick local timers while awaiting the remote completion."""

    def replica(engine, runtime):
        def ticker(at):
            yield engine.timeout(at)
            log.append(("tick", engine.now))

        for at in local_times:
            engine.process(ticker(at))

        def control():
            value = yield runtime.remote(("mig", "t1"), 0)
            log.append(("ghost", engine.now, value))

        process = engine.process(control())
        runtime.taint(process)
        engine.run(until=None)
        assert process.processed
        return runtime.finish("waiter")

    return replica


def serial_reference(complete_at, local_times, value="page-stream-done"):
    """The serial interleaving the waiter shard must reproduce."""
    engine = Engine()
    log = []

    def ticker(at):
        yield engine.timeout(at)
        log.append(("tick", engine.now))

    for at in local_times:
        engine.process(ticker(at))

    def completion():
        yield engine.timeout(complete_at)
        return value

    def control():
        got = yield engine.process(completion())
        log.append(("ghost", engine.now, got))

    engine.process(control())
    engine.run(until=None)
    return log


class TestCrossShardCompletion:
    def test_completion_at_lookahead_horizon_matches_serial(self):
        # The waiter has local events just before, exactly at, and past
        # the lookahead horizon of the in-flight remote operation
        # (complete_at + lookahead) — the boundary the conservative
        # ceiling must not let it cross early.
        complete_at, lookahead = 5.0, 0.25
        local_times = [4.9, complete_at, complete_at + lookahead, 5.5]
        owner_log, waiter_log = [], []
        run_mesh(
            [
                owner_replica(owner_log, complete_at),
                waiter_replica(waiter_log, local_times),
            ],
            lookahead=lookahead,
        )
        assert waiter_log == serial_reference(complete_at, local_times)
        assert ("owner-done", complete_at) in owner_log

    def test_zero_lookahead_degenerate_matches_serial(self):
        # lookahead=0.0 is the fleet configuration: the ceiling gives no
        # slack at all, so the ghost must land exactly at its timestamp
        # with same-time local events ordered as the serial heap would.
        complete_at = 3.0
        local_times = [2.5, complete_at, 3.5]
        owner_log, waiter_log = [], []
        run_mesh(
            [
                owner_replica(owner_log, complete_at),
                waiter_replica(waiter_log, local_times),
            ],
            lookahead=0.0,
        )
        assert waiter_log == serial_reference(complete_at, local_times)

    def test_error_completion_rebuilds_peer_exception(self):
        def owner(engine, runtime):
            def failing_op():
                yield engine.timeout(1.0)
                raise MigrationError("uplink severed mid-stream")

            def control():
                try:
                    yield runtime.publish(
                        ("mig", "t9"), engine.process(failing_op())
                    )
                except MigrationError:
                    pass

            process = engine.process(control())
            runtime.taint(process)
            engine.run(process)
            return runtime.finish("owner")

        caught = []

        def waiter(engine, runtime):
            def control():
                try:
                    yield runtime.remote(("mig", "t9"), 0)
                except MigrationError as exc:
                    caught.append((engine.now, str(exc)))

            process = engine.process(control())
            runtime.taint(process)
            engine.run(until=None)
            assert process.processed
            return runtime.finish("waiter")

        run_mesh([owner, waiter])
        assert caught == [(1.0, "uplink severed mid-stream")]

    def test_fin_barrier_collects_digests_and_stats(self):
        def replica_for(index):
            def replica(engine, runtime):
                fins = runtime.finish(
                    f"digest-{index}", extra={"events_dispatched": 10 + index}
                )
                return fins, runtime.stats()

            return replica

        results = run_mesh([replica_for(0), replica_for(1), replica_for(2)])
        for index, (fins, stats) in enumerate(results):
            assert fins == {0: "digest-0", 1: "digest-1", 2: "digest-2"}
            assert stats["per_shard"] == {
                0: {"events_dispatched": 10},
                1: {"events_dispatched": 11},
                2: {"events_dispatched": 12},
            }
            assert stats["shard"] == index


class TestFailureModes:
    def test_peer_death_before_fin_raises_shard_error(self):
        def waiter(engine, runtime):
            def control():
                yield runtime.remote(("op",), 1)

            process = engine.process(control())
            runtime.taint(process)
            engine.run(until=None)

        def dying(engine, runtime):
            for conn in runtime.conns.values():
                conn.close()

        with pytest.raises(ShardError, match="peer died|pipe"):
            run_mesh([waiter, dying])

    def test_completion_below_advertised_horizon_raises(self):
        engine = Engine()
        runtime = ShardRuntime(engine, 0, {})
        runtime._hz_sent = 10.0
        with pytest.raises(ShardError, match="violates the advertised"):
            runtime._broadcast_done(("op",), True, None)

    def test_remote_to_self_and_unknown_owner_raise(self):
        engine = Engine()
        runtime = ShardRuntime(engine, 0, {})
        with pytest.raises(ShardError, match="cannot wait on itself"):
            runtime.remote(("op",), 0)
        with pytest.raises(ShardError, match="no pipe to shard"):
            runtime.remote(("op",), 3)

    def test_error_transport_round_trip(self):
        rebuilt = rebuild_error(describe_error(MigrationError("boom")))
        assert isinstance(rebuilt, MigrationError)
        assert str(rebuilt) == "boom"
        odd = rebuild_error(("ValueError", "not a repro error"))
        assert isinstance(odd, ShardError)


class TestShardPlan:
    def test_rack_aligned_keeps_racks_together(self):
        host_racks = [(f"h{i:02d}", f"r{i // 4}") for i in range(16)]
        plan = ShardPlan.rack_aligned(host_racks, 4)
        assert plan.shards == 4
        assert all(len(group) == 4 for group in plan.groups)
        for group in plan.groups:
            racks = {dict(host_racks)[name] for name in group}
            assert len(racks) == 1

    def test_more_shards_than_racks_splits_evenly(self):
        host_racks = [(f"h{i}", "r0") for i in range(6)]
        plan = ShardPlan.rack_aligned(host_racks, 3)
        assert [len(group) for group in plan.groups] == [2, 2, 2]

    def test_owner_of_unknown_host_raises(self):
        plan = ShardPlan.rack_aligned([("h0", "r0"), ("h1", "r0")], 2)
        assert plan.owner_of("h0") == 0
        assert plan.owner_of("h1") == 1
        with pytest.raises(ShardError, match="in no shard group"):
            plan.owner_of("h9")

    @pytest.mark.parametrize("shards", [0, -1, True, 1.5, "2"])
    def test_non_positive_int_shards_rejected(self, shards):
        with pytest.raises(ShardError, match="positive integer"):
            ShardPlan.rack_aligned([("h0", "r0")], shards)

    def test_more_shards_than_hosts_rejected(self):
        with pytest.raises(ShardError, match="exceeds the fleet's 2 host"):
            ShardPlan.rack_aligned([("h0", "r0"), ("h1", "r0")], 3)

    def test_duplicate_host_rejected(self):
        with pytest.raises(ShardError, match="two shard groups"):
            ShardPlan([("h0",), ("h0",)])
