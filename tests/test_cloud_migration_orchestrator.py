"""Cross-host migration: happy path, transport failure -> retry, rebalance."""

import pytest

from repro.cloud.datacenter import Datacenter
from repro.cloud.migration_orchestrator import MigrationOrchestrator
from repro.cloud.placement import BinPackingPlacer
from repro.cloud.tenants import TenantChurn, TenantSpec
from repro.errors import CloudError


def _fleet(hosts=2, seed=11):
    dc = Datacenter(hosts=hosts, seed=seed)
    placer = BinPackingPlacer(dc)
    churn = TenantChurn(dc, placer)
    orchestrator = MigrationOrchestrator(dc)
    return dc, placer, churn, orchestrator


def _run(dc, generator):
    return dc.engine.run(dc.engine.process(generator))


def test_cross_host_migration_rehomes_tenant(mode="precopy"):
    dc, _placer, churn, orchestrator = _fleet()

    def control():
        tenant = yield from churn.provision(TenantSpec("t0", memory_mb=512))
        source = tenant.host
        dest = next(h for h in dc.hosts.values() if h is not source)
        source_vm = tenant.vm
        record = yield from orchestrator.migrate_tenant(tenant, dest, mode=mode)
        return tenant, source, dest, source_vm, record

    tenant, source, dest, source_vm, record = _run(dc, control())
    assert record.status == "completed"
    assert record.attempt_count == 1
    assert tenant.host is dest
    assert tenant.name in dest.tenants and tenant.name not in source.tenants
    assert tenant.guest is not None
    assert tenant.vm is not source_vm
    assert source_vm.status == "terminated"
    assert tenant.vm.host_system is dest.system
    assert dc.engine.perf.cloud_migrations == 1


def test_cross_host_postcopy_migration():
    test_cross_host_migration_rehomes_tenant(mode="postcopy")


def test_migrating_to_same_host_or_deleted_tenant_raises():
    dc, _placer, churn, orchestrator = _fleet()

    def control():
        tenant = yield from churn.provision(TenantSpec("t0", memory_mb=512))
        with pytest.raises(CloudError):
            yield from orchestrator.migrate_tenant(tenant, tenant.host)
        with pytest.raises(CloudError):
            yield from orchestrator.migrate_tenant(
                tenant, tenant.host, mode="warp"
            )
        churn.delete(tenant)
        other = next(h for h in dc.hosts.values())
        with pytest.raises(CloudError):
            yield from orchestrator.migrate_tenant(tenant, other)
        return True

    assert _run(dc, control())


def test_transport_failure_retries_until_fabric_heals():
    dc, _placer, churn, orchestrator = _fleet(seed=23)
    orchestrator.max_retries = 4

    def control():
        tenant = yield from churn.provision(TenantSpec("t0", memory_mb=512))
        dest = next(h for h in dc.hosts.values() if h is not tenant.host)
        yield from dc.ensure_up(dest)
        dest.partition()

        def healer():
            yield dc.engine.timeout(5.0)
            dest.heal()

        dc.engine.process(healer(), name="healer")
        record = yield from orchestrator.migrate_tenant(tenant, dest)
        return tenant, dest, record

    tenant, dest, record = _run(dc, control())
    assert record.status == "completed"
    assert record.attempt_count >= 2
    # Every failed attempt logged the transport error; the last is "ok".
    assert all(
        outcome is not None for _at, outcome in record.attempts
    )
    assert record.attempts[-1][1] == "ok"
    for _at, outcome in record.attempts[:-1]:
        assert "destination port" in outcome
    assert tenant.host is dest
    assert tenant.guest is not None


def test_transport_failure_exhausts_retries():
    dc, _placer, churn, orchestrator = _fleet(seed=29)
    orchestrator.max_retries = 1
    orchestrator.backoff_base_s = 0.5

    def control():
        tenant = yield from churn.provision(TenantSpec("t0", memory_mb=512))
        source = tenant.host
        dest = next(h for h in dc.hosts.values() if h is not source)
        yield from dc.ensure_up(dest)
        dest.partition()
        with pytest.raises(CloudError) as excinfo:
            yield from orchestrator.migrate_tenant(tenant, dest)
        return tenant, source, dest, excinfo.value

    tenant, source, dest, error = _run(dc, control())
    record = orchestrator.records[-1]
    assert record.status == "failed"
    assert record.attempt_count == 2  # initial + one retry
    assert "failed after 2 attempts" in str(error)
    # The tenant stays where it was, still serving.
    assert tenant.host is source
    assert tenant.guest is not None
    assert dc.engine.perf.cloud_migrations == 0
    # The destination holds no half-migrated orphan VM.
    assert tenant.name not in dest.system.kvm.vms


def test_exhausted_retries_release_ports_and_incoming_processes():
    """Regression: the final failed attempt must clean up like the rest.

    Every attempt launches a ``-incoming`` destination VM whose receive
    process parks on ``accept()``; abandoning an attempt without
    interrupting it leaked one immortal process (and its port
    reservation) per retry.
    """
    dc, _placer, churn, orchestrator = _fleet(seed=29)
    orchestrator.max_retries = 2
    orchestrator.backoff_base_s = 0.5
    launched = []
    inner = orchestrator._launch_incoming

    def spying_launch(tenant, dest_host):
        vm, port = inner(tenant, dest_host)
        launched.append((vm, port))
        return vm, port

    orchestrator._launch_incoming = spying_launch

    def control():
        tenant = yield from churn.provision(TenantSpec("t0", memory_mb=512))
        dest = next(h for h in dc.hosts.values() if h is not tenant.host)
        yield from dc.ensure_up(dest)
        dest.partition()
        with pytest.raises(CloudError):
            yield from orchestrator.migrate_tenant(tenant, dest)
        # Let the interrupted receive loops run their cleanup.
        yield dc.engine.timeout(1.0)
        return tenant, dest

    tenant, dest = _run(dc, control())
    assert len(launched) == 3  # initial + two retries
    node = dest.system.net_node
    for vm, port in launched:
        assert not vm.incoming_process.is_alive
        assert node.listener(port) is None
        assert vm.name not in dest.system.kvm.vms
    assert tenant.guest is not None


def test_evacuate_drains_every_tenant():
    dc, placer, churn, orchestrator = _fleet(hosts=3, seed=31)

    def control():
        tenants = []
        for index in range(2):
            tenants.append(
                (
                    yield from churn.provision(
                        TenantSpec(f"t{index}", memory_mb=512)
                    )
                )
            )
        source = tenants[0].host
        records = yield from orchestrator.evacuate(source, placer)
        return tenants, source, records

    tenants, source, records = _run(dc, control())
    moved = [t for t in tenants if t.host is not source]
    assert len(records) == len(moved) >= 1
    assert not source.tenants
    for tenant in moved:
        assert tenant.guest is not None


def test_rebalance_moves_from_most_loaded_host():
    dc, placer, churn, orchestrator = _fleet(hosts=2, seed=37)

    def control():
        for index in range(3):
            yield from churn.provision(TenantSpec(f"t{index}", memory_mb=1024))
        loaded = placer.most_loaded_up_host()
        before = len(loaded.tenants)
        records = yield from orchestrator.rebalance(placer, moves=1)
        return loaded, before, records

    loaded, before, records = _run(dc, control())
    assert len(records) == 1
    assert records[0].source == loaded.name
    assert len(loaded.tenants) == before - 1
