"""Device models: virtio block and net."""

import pytest

from repro.errors import QemuError


@pytest.fixture
def block(victim):
    return victim.block_devices[0]


def test_block_read_write_accounting(block):
    block.read(8)
    block.write(4)
    block.write(4)
    assert block.rd_ops == 1
    assert block.wr_ops == 2
    assert block.rd_bytes == 8 * 4096
    assert block.wr_bytes == 8 * 4096


def test_block_latency_scales_with_size(block):
    small = block.read(1)
    large = block.read(64)
    assert large > small
    assert small > 0


def test_block_flush(block):
    cost = block.flush()
    assert cost > 0
    assert block.flush_ops == 1


def test_block_negative_rejected(block):
    with pytest.raises(QemuError):
        block.read(-1)
    with pytest.raises(QemuError):
        block.write(-1)


def test_blockstats_line_format(block):
    block.write(2)
    line = block.blockstats_line(0)
    assert line.startswith("virtio0:")
    assert "wr_bytes=8192" in line


def test_nic_info_line(victim):
    line = victim.nics[0].info_line()
    assert "type=user" in line
    assert "hostfwd=tcp::2222-:22" in line
    assert "virtio-net-pci" in line


def test_nic_depth_scales_per_packet_cost(nested_env):
    _host, report = nested_env
    outer = report.guestx_vm.nics[0].link.per_packet_cost
    inner = report.nested_vm.nics[0].link.per_packet_cost
    assert inner == pytest.approx(2 * outer)


def test_nic_teardown_frees_all_ports(host, victim):
    nic = victim.nics[0]
    nic.add_hostfwd("tcp", 9100, 9100)
    assert host.net_node.listener(9100) is not None
    nic.teardown()
    assert host.net_node.listener(2222) is None
    assert host.net_node.listener(9100) is None
    assert nic.forward_rules == []


def test_remove_hostfwd_missing_returns_false(victim):
    assert victim.nics[0].remove_hostfwd("tcp", 65001) is False
