"""Differential pins: sharded fleet runs replay byte-for-byte.

Every test here runs the same seeded experiment serial (``shards=1``)
and sharded, then diffs the richest fingerprint we have —
:func:`~tests.fleet_helpers.fleet_fingerprint` covers verdicts,
latencies, campaign timestamps, sweep summaries, injections, and the
final inventory.  The edge cases target the protocol's hairiest seams:

* a CloudSkulk install whose victim host belongs to a *non-reporting*
  shard — the nested-VM migration is in flight on the owner while every
  other replica waits at the install ghost's lookahead horizon;
* an uplink partition fired mid-sweep on a host another shard owns —
  fault interrupts land while cross-shard sweep publishes are open;
* the trace-merge invariants of a sharded traced run;
* ``--shards`` validation (positive int, shards <= hosts).

Protocol-level timing cases live in ``test_shard_protocol.py``.
"""

import pytest

from repro.cloud.fleet import run_fleet
from repro.faults.plan import FaultPlan
from repro.sim.shard import ShardError, ShardPlan
from tests.fleet_helpers import FLEET_4X12, fleet_fingerprint

pytestmark = pytest.mark.shard


def test_sharded_fleet_matches_serial():
    serial = fleet_fingerprint(run_fleet(**FLEET_4X12))
    for shards in (2, 4):
        sharded = run_fleet(shards=shards, **FLEET_4X12)
        assert fleet_fingerprint(sharded) == serial, f"shards={shards}"
        assert sharded.shard_stats is not None
        assert sharded.shard_stats["messages_sent"] > 0


def test_shards_1_is_the_serial_path():
    result = run_fleet(shards=1, **FLEET_4X12)
    assert result.shard_stats is None
    assert fleet_fingerprint(result) == fleet_fingerprint(
        run_fleet(**FLEET_4X12)
    )


def test_cross_boundary_install_migration():
    # At this seed the campaign's victim lands on h02 — owned by shard 1
    # under a 2-way split of 4 hosts.  The reporting replica (shard 0)
    # therefore waits at the install ghost while the owner streams the
    # nested-VM migration, which is exactly the in-flight-at-the-
    # boundary case; the ghost count proves the wait actually crossed.
    serial = run_fleet(**FLEET_4X12)
    victim_host = serial.campaign.events[0].host_name
    plan = ShardPlan.rack_aligned(
        [
            (name, host.spec.rack)
            for name, host in serial.datacenter.hosts.items()
        ],
        2,
    )
    assert plan.owner_of(victim_host) != 0, (
        "seed drifted: the victim must live on a non-reporting shard "
        "for this test to exercise the cross-boundary install"
    )
    sharded = run_fleet(shards=2, **FLEET_4X12)
    assert fleet_fingerprint(sharded) == fleet_fingerprint(serial)
    assert sharded.shard_stats["ghosts_injected"] >= 1


@pytest.mark.chaos
def test_uplink_partition_mid_sweep_matches_serial():
    # The partition severs a shard-1-owned host's uplink while the fleet
    # sweep is mid-flight: probe processes die on the owner and surface
    # as unreachable findings in every replica's sweep report.  This is
    # the riskiest differential — fault interrupts land while
    # cross-shard publishes are open — so the whole injection record is
    # part of the diff.
    plan = FaultPlan()
    plan.partition(at=430.0, target="h03", duration=40.0)
    plan.partition(at=80.0, target="h02", duration=30.0)
    params = dict(FLEET_4X12, faults=plan)
    serial = run_fleet(**params)
    sharded = run_fleet(shards=2, **params)
    assert fleet_fingerprint(sharded) == fleet_fingerprint(serial)
    assert serial.injector.injections, "plan never fired — retime the test"


@pytest.mark.chaos
def test_mixed_chaos_sharded_matches_serial():
    from repro.faults.chaos import standard_mix_plan

    plan = standard_mix_plan("mixed", 42, faults=3, horizon=180.0)
    params = dict(FLEET_4X12, faults=plan)
    serial = run_fleet(**params)
    sharded = run_fleet(shards=2, **params)
    assert fleet_fingerprint(sharded) == fleet_fingerprint(serial)


def test_warm_fork_branches_sharded_and_serial_agree():
    from repro.cloud import warm_fleet

    branch = dict(
        campaigns=1, sweeps=1, file_pages=12, wait_seconds=10.0
    )
    with warm_fleet(
        hosts=4, tenants=12, seed=42, churn_operations=6, rebalance_moves=1
    ) as fleet:
        serial = fleet.branch(**branch)
        sharded = fleet.branch(shards=2, **branch)
        assert fleet_fingerprint(sharded) == fleet_fingerprint(serial)


def test_sharded_trace_merge_invariants():
    params = dict(FLEET_4X12, trace=True)
    serial = run_fleet(**params)
    sharded = run_fleet(shards=2, **params)

    def rows_by_track(result, prefixes):
        rows = {}
        for event in result.tracer.events():
            track = event[3]
            if isinstance(track, str) and track.split(":")[0] in prefixes:
                # kind, name, cat, track, ts, dur — args excluded: rows
                # embedding engine-global counter snapshots report each
                # shard's local view (documented in INTERNALS §14).
                rows.setdefault(track, []).append(event[:6])
        return rows

    # Host-scoped rows are owner-authoritative: the merged trace must
    # carry every host's stream with serial-identical timing.
    serial_rows = rows_by_track(serial, {"host", "ksm"})
    sharded_rows = rows_by_track(sharded, {"host", "ksm"})
    assert set(sharded_rows) == set(serial_rows)
    for track in serial_rows:
        assert sorted(sharded_rows[track]) == sorted(serial_rows[track]), track

    # Emission-time ordering: the merged buffer must be sorted by the
    # time each row was appended (ts, or ts+dur for duration spans).
    def emission_key(event):
        return event[4] + (event[5] if event[0] == "X" else 0.0)

    keys = [emission_key(event) for event in sharded.tracer.events()]
    assert keys == sorted(keys)


def test_more_shards_than_hosts_raises():
    with pytest.raises(ShardError, match="exceeds the fleet's"):
        run_fleet(
            hosts=2,
            tenants=4,
            seed=42,
            churn_operations=0,
            rebalance_moves=0,
            campaigns=0,
            sweeps=1,
            shards=3,
        )


def test_cli_rejects_non_positive_shards():
    import argparse

    from repro.matrix.cli import positive_int

    for bad in ("0", "-2", "nope"):
        with pytest.raises(argparse.ArgumentTypeError):
            positive_int(bad)
    assert positive_int("4") == 4
