"""Guest-side detection and the L1 timing-deception counter (§VI-A)."""

import pytest

from repro import scenarios
from repro.core.detection.guest_side import (
    GuestSideDetector,
    apply_timing_deception,
)
from repro.errors import DetectionError, GuestError


def _run(host, guest, **kwargs):
    detector = GuestSideDetector(guest, **kwargs)
    return host.engine.run(host.engine.process(detector.run()))


def test_plain_guest_reads_clean():
    host, guest = scenarios.system_at_level(1, seed=42)
    verdict = _run(host, guest)
    assert not verdict.nested_suspected
    assert verdict.measured_us == pytest.approx(6.75, rel=0.15)


def test_naive_l2_detector_spots_nesting(nested_env):
    """Without countermeasures, the L2 timing anomaly is glaring."""
    _host, report = nested_env
    victim = report.nested_vm.guest
    verdict = _run(_host, victim)
    assert verdict.nested_suspected
    assert verdict.measured_us > 40  # ~65us at L2
    assert "another hypervisor" in verdict.explanation()


def test_timing_deception_defeats_guest_side_detector(nested_env):
    """The paper's §VI-A point: L1 controls what L2's clock says."""
    _host, report = nested_env
    victim = report.nested_vm.guest
    factor = apply_timing_deception(victim)
    assert 0 < factor < 1
    verdict = _run(_host, victim)
    assert not verdict.nested_suspected
    assert "nothing suspicious" in verdict.explanation()


def test_deception_does_not_fool_host_side_detector():
    """The dedup detector's stopwatch lives in L0: immune by design."""
    from repro.core.detection.dedup_detector import DedupDetector

    host, cloud, _ksm, locator = scenarios.detection_setup(nested=True, seed=42)
    apply_timing_deception(locator())
    detector = DedupDetector(host, cloud, file_pages=20)
    report = host.engine.run(host.engine.process(detector.run()))
    assert report.verdict.verdict == "nested"


def test_guest_clock_mechanics(host):
    assert host.guest_now() == host.engine.now
    host.set_tsc_scaling(0.5)
    anchor_real = host.engine.now
    anchor_guest = host.guest_now()
    host.engine.run(until=host.engine.now + 10.0)
    assert host.guest_now() - anchor_guest == pytest.approx(5.0)
    # Re-scaling anchors continuously (no time jumps).
    host.set_tsc_scaling(1.0)
    mid = host.guest_now()
    host.engine.run(until=host.engine.now + 2.0)
    assert host.guest_now() - mid == pytest.approx(2.0)
    assert host.engine.now - anchor_real == pytest.approx(12.0)


def test_tsc_scaling_validation(host):
    with pytest.raises(GuestError):
        host.set_tsc_scaling(0)


def test_detector_validation(host):
    with pytest.raises(DetectionError):
        GuestSideDetector(host, repetitions=0)
