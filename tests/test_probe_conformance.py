"""Every registered probe × every conformance check.

The kit itself lives in :mod:`tests.probe_conformance`; this module is
just the cross-product so a failing cell reads
``test_conformance[vmi_invariance-budget]`` in the report.
"""

import pytest

from repro.probes.base import get_probe, registered_probes
from tests.probe_conformance import CONFORMANCE_CHECKS


@pytest.mark.parametrize("check_name", sorted(CONFORMANCE_CHECKS))
@pytest.mark.parametrize("probe_name", registered_probes())
def test_conformance(probe_name, check_name):
    check = CONFORMANCE_CHECKS[check_name]
    check(lambda: get_probe(probe_name))


def test_registry_has_the_catalog():
    """The three built-ins register on import, KSM timing is default."""
    from repro.probes.base import DEFAULT_PROBES

    assert registered_probes() == ["dedup_spy", "ksm_timing", "vmi_invariance"]
    assert DEFAULT_PROBES == ("ksm_timing",)
