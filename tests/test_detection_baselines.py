"""The two baseline detectors and their structural failure modes."""

import pytest

from repro import scenarios
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.core.detection.vmi_fingerprint import (
    check_fingerprint,
    take_fingerprint,
)
from repro.errors import DetectionError


def _scan(host):
    return host.engine.run(host.engine.process(scan_for_hypervisors(host)))


# ---- VMCS memory forensics ---------------------------------------------------


def test_scan_clean_host(host, victim):
    result = _scan(host)
    assert not result.nested_hypervisor_detected
    assert result.vmcs_pages_found == 1
    assert result.expected_vmcs_pages == 1


def test_scan_detects_nested_hypervisor(nested_env):
    host, report = nested_env
    result = _scan(host)
    assert result.nested_hypervisor_detected
    assert result.extra_vmcs_pages >= 1


def test_scan_counts_every_nested_vcpu(nested_env):
    host, report = nested_env
    from repro.core.rootkit.services import ParallelMaliciousOs

    service = ParallelMaliciousOs(report.guestx_vm)
    host.engine.run(host.engine.process(service.launch()))
    result = _scan(host)
    assert result.extra_vmcs_pages >= 2  # victim + parallel OS


def test_scan_fails_on_amd():
    """§VI-E: the signature is VT-x-only; AMD hosts defeat the scan."""
    from repro.guest.system import System
    from repro.hardware.cpu import CpuPackage
    from repro.hardware.machine import Machine

    machine = Machine(cpu=CpuPackage(vendor="amd"), memory_mb=4096)
    host = System.bare_metal(machine)
    machine.engine.run(until=host.boot())
    host.enable_kvm()
    host.kvm.create_vm("amd-guest", memory_mb=64)
    result = _scan(host)
    assert result.scan_failed
    assert "signature" in result.failure_reason
    assert not result.nested_hypervisor_detected


def test_scan_requires_l0(nested_env):
    _host, report = nested_env
    with pytest.raises(DetectionError):
        next(scan_for_hypervisors(report.guestx_vm.guest))


# ---- VMI fingerprinting --------------------------------------------------------


def test_fingerprint_stable_on_honest_vm(host, victim):
    baseline = take_fingerprint(victim)
    assert check_fingerprint(victim, baseline) == []


def test_fingerprint_detects_unexpected_process(host, victim):
    baseline = take_fingerprint(victim)
    victim.guest.kernel.spawn("cryptominer", "/tmp/xmrig")
    mismatches = check_fingerprint(victim, baseline)
    assert any(m.field == "process_names" for m in mismatches)


def test_fingerprint_evaded_by_impersonation(nested_env):
    """The paper's point: a careful CloudSkulk passes the VMI check.

    The administrator took Guest0's fingerprint before the attack; they
    now (unknowingly) introspect GuestX, which the attacker forged to
    match.
    """
    host, report = nested_env
    victim_fingerprint = take_fingerprint(report.nested_vm)
    mismatches = check_fingerprint(report.guestx_vm, victim_fingerprint)
    assert mismatches == []


def test_fingerprint_catches_sloppy_attacker(nested_env):
    """Without impersonation, GuestX's own processes betray it."""
    from repro.vmi.subversion import restore_process_view

    host, report = nested_env
    victim_fingerprint = take_fingerprint(report.nested_vm)
    restore_process_view(report.guestx_vm.guest)
    mismatches = check_fingerprint(report.guestx_vm, victim_fingerprint)
    assert mismatches != []
