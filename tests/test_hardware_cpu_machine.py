"""CPU package and machine composition."""

import pytest

from repro.errors import HardwareError
from repro.hardware.cpu import CpuPackage
from repro.hardware.machine import Machine


def test_default_cpu_matches_testbed():
    cpu = CpuPackage()
    assert "i7-4790" in cpu.model
    assert cpu.logical_cpus == 8
    assert cpu.vmx
    assert cpu.vendor == "intel"


def test_virtual_copy_without_vmx_exposure():
    cpu = CpuPackage()
    vcpu = cpu.virtual_copy(2, expose_vmx=False)
    assert vcpu.cores == 2
    assert not vcpu.vmx


def test_virtual_copy_with_vmx_exposure():
    vcpu = CpuPackage().virtual_copy(1, expose_vmx=True)
    assert vcpu.vmx
    # Exposure cannot conjure VMX the hardware lacks.
    no_vtx = CpuPackage(vmx=False).virtual_copy(1, expose_vmx=True)
    assert not no_vtx.vmx


def test_vendor_propagates():
    amd = CpuPackage(vendor="amd")
    assert amd.virtual_copy(1, expose_vmx=True).vendor == "amd"


def test_bad_vendor_rejected():
    with pytest.raises(HardwareError):
        CpuPackage(vendor="via")


def test_zero_vcpus_rejected():
    with pytest.raises(HardwareError):
        CpuPackage().virtual_copy(0, expose_vmx=False)


def test_machine_defaults():
    machine = Machine()
    assert machine.memory.size_mb == 16384
    assert machine.engine.now == 0.0
    assert machine.cost_model is not None
    assert machine.rng.stream("x") is machine.rng.stream("x")
