"""Table I dataset and the stats/report helpers."""

import pytest

from repro.analysis.report import (
    render_comparison_labels,
    render_figure_series,
    render_table,
)
from repro.analysis.stats import (
    overlapping_within_noise,
    pct_decrease,
    pct_increase,
    summarize,
)
from repro.data.cve import (
    CVE_DATABASE,
    HYPERVISORS,
    YEARS,
    cves_by_hypervisor,
    cves_by_year,
    table1_matrix,
)
from repro.errors import ReproError


# ---- Table I data -----------------------------------------------------------


def test_totals_match_paper():
    _matrix, totals = table1_matrix()
    assert totals == {
        "VMware": 29,
        "VirtualBox": 15,
        "Xen": 15,
        "Hyper-V": 14,
        "KVM/QEMU": 23,
    }


def test_grand_total():
    assert len(CVE_DATABASE) == 29 + 15 + 15 + 14 + 23


def test_spot_check_cells():
    matrix, _totals = table1_matrix()
    assert matrix[2015]["VMware"] == 5
    assert matrix[2018]["VirtualBox"] == 11
    assert matrix[2017]["Xen"] == 6
    assert matrix[2019]["Hyper-V"] == 4
    assert matrix[2020]["KVM/QEMU"] == 2
    assert matrix[2016]["VirtualBox"] == 0


def test_years_parse_from_ids():
    for record in CVE_DATABASE:
        assert record.cve_id.split("-")[1] == str(record.year)
        assert record.year in YEARS


def test_no_duplicate_cves():
    ids = [r.cve_id for r in CVE_DATABASE]
    assert len(ids) == len(set(ids))


def test_query_helpers():
    assert len(cves_by_hypervisor("Xen")) == 15
    assert len(cves_by_year(2015)) == 5 + 0 + 1 + 2 + 5
    assert {r.hypervisor for r in CVE_DATABASE} == set(HYPERVISORS)


# ---- statistics ---------------------------------------------------------------


def test_summary_mean_and_rsd():
    summary = summarize([10.0, 12.0, 8.0, 10.0, 10.0])
    assert summary.mean == 10.0
    assert summary.n == 5
    assert 10.0 < summary.rsd_percent < 20.0


def test_summary_single_sample():
    summary = summarize([5.0])
    assert summary.stdev == 0.0
    assert summary.rsd_percent == 0.0


def test_summary_empty_rejected():
    with pytest.raises(ReproError):
        summarize([])


def test_pct_increase_decrease():
    assert pct_increase(100, 125.7) == pytest.approx(25.7)
    assert pct_decrease(100, 75) == pytest.approx(25.0)
    with pytest.raises(ReproError):
        pct_increase(0, 1)


def test_overlap_within_noise():
    a = summarize([100, 110, 90])
    b = summarize([105, 95, 108])
    assert overlapping_within_noise(a, b)
    c = summarize([500, 501, 502])
    assert not overlapping_within_noise(a, c)


# ---- rendering ------------------------------------------------------------------


def test_render_table():
    text = render_table(
        "TABLE X", ["Config", "a", "b"], [["L0", 1.0, 2.0], ["L1", 3.0, 4.0]]
    )
    assert "TABLE X" in text
    assert "L0" in text and "L1" in text
    assert text.count("\n") >= 3


def test_render_figure_series():
    series = {"L0": summarize([10.0, 11.0]), "L1": summarize([40.0, 42.0])}
    text = render_figure_series("Fig N", series, unit="s")
    assert "L0" in text and "L1" in text
    assert "RSD" in text
    assert "#" in text


def test_render_comparison_labels():
    text = render_comparison_labels([("L0-L0", 10.0, "L0-L1", 26.0)])
    assert "+160.0%" in text
