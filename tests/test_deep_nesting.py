"""Depth-3 integration: the stack holds one level past the paper.

If the victim itself runs nested workloads (the cloud-vendor use case
for exposing VMX), CloudSkulk must still swallow it — and the victim's
own virtualization ability must survive at depth 3.  Also checks that
the cost model keeps ordering at depth 3 and that the VMCS scan counts
every layer.
"""

import pytest

from repro import scenarios
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.qemu.config import DriveSpec, QemuConfig
from repro.qemu.qemu_img import host_images
from repro.qemu.vm import launch_vm


@pytest.fixture
def deep_env():
    """A vmx-enabled victim, CloudSkulked, then running its own guest."""
    host = scenarios.testbed(seed=37)
    config = scenarios.victim_config()
    config.nested_vmx = True  # the vendor sold nested virtualization
    scenarios.launch_victim(host, config)
    report = scenarios.install_cloudskulk(host)
    victim = report.nested_vm.guest  # depth 2 now, still has VMX
    victim.enable_kvm()
    images = host_images(victim)
    images.create("/inner/tiny.qcow2", 4.0)
    inner_config = QemuConfig(
        "inner-l3",
        memory_mb=128,
        drives=[DriveSpec("/inner/tiny.qcow2")],
        nics=[],
    )
    inner_vm, boot = launch_vm(victim, inner_config)
    host.engine.run(boot)
    return host, report, victim, inner_vm


def test_victim_keeps_vmx_through_migration(deep_env):
    _host, _report, victim, inner_vm = deep_env
    assert victim.depth == 2
    assert victim.cpu.vmx
    assert inner_vm.guest.depth == 3
    assert inner_vm.guest.booted


def test_depth3_memory_resolves_to_host(deep_env):
    host, _report, _victim, inner_vm = deep_env
    gpfn = inner_vm.guest.memory.alloc_page()
    inner_vm.guest.memory.write(gpfn, b"three-deep")
    backing, host_pfn = inner_vm.guest.memory.resolve(gpfn)
    assert backing is host.memory
    assert host.memory.read(host_pfn) == b"three-deep"


def test_depth3_costs_exceed_depth2(deep_env):
    _host, report, victim, inner_vm = deep_env
    inner_vm.guest.kernel.jitter_rsd = 0
    victim.kernel.jitter_rsd = 0
    l3 = inner_vm.guest.kernel.syscall_cost("pipe_latency")
    l2 = victim.kernel.syscall_cost("pipe_latency")
    # One more trampoline layer: each reflected exit's privileged ops
    # are themselves nested exits now (~3x on HLT-class operations).
    assert l3 > 2.5 * l2


def test_vmcs_scan_counts_all_layers(deep_env):
    host, _report, _victim, _inner_vm = deep_env

    result = host.engine.run(host.engine.process(scan_for_hypervisors(host)))
    # Host accounts only for GuestX; the nested victim AND its inner VM
    # each contribute an unexplained VMCS page.
    assert result.extra_vmcs_pages >= 2
    assert result.nested_hypervisor_detected


def test_victim_without_vmx_cannot_go_deeper():
    host, report = scenarios.nested_environment(seed=37)
    victim = report.nested_vm.guest
    assert not victim.cpu.vmx  # default victim config has no +vmx
    from repro.errors import HypervisorError

    with pytest.raises(HypervisorError):
        victim.enable_kvm()
