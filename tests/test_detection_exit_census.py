"""The exit-census detector and trampoline attribution."""

import pytest

from repro import scenarios
from repro.core.detection.exit_census import exit_census
from repro.errors import DetectionError
from repro.hypervisor.exits import ExitReason
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.lmbench.proc import LmbenchProc


def _census(host):
    return host.engine.run(host.engine.process(exit_census(host)))


def test_trampoline_exits_land_on_the_parent(nested_env):
    host, report = nested_env
    victim = report.nested_vm.guest
    guestx_handle = report.guestx_vm.kvm_vm
    before = guestx_handle.exit_count(ExitReason.PRIV_INSTRUCTION)
    for _ in range(100):
        victim.kernel.syscall_cost("pipe_latency")
    after = guestx_handle.exit_count(ExitReason.PRIV_INSTRUCTION)
    # 100 pipe round trips x 2 HLT exits x 20 trampoline ops each.
    assert after - before == pytest.approx(4000, rel=0.01)


def test_depth1_guest_generates_no_trampoline(host, victim):
    victim.guest.kernel.syscall_cost("pipe_latency")
    assert victim.kvm_vm.exit_count(ExitReason.PRIV_INSTRUCTION) == 0


def test_census_flags_busy_ritm(nested_env):
    host, report = nested_env
    victim = report.nested_vm.guest
    # The victim does ordinary work; GuestX does *nothing* on its own,
    # yet its counters fill with trampoline exits.
    host.engine.run(FilebenchWorkload().start(victim, duration=20.0))
    result = _census(host)
    assert result.flagged == ["guestx"]
    assert result.hypervisor_detected
    assert "HYPERVISOR" in result.summary()


def test_census_quiet_on_honest_host(host):
    """Two busy ordinary guests: plenty of exits, none privileged."""
    vm_a = scenarios.launch_victim(host)
    vm_b = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="other",
            image="/var/lib/images/other.qcow2",
            ssh_host_port=2223,
            monitor_port=5556,
        ),
    )
    host.engine.run(LmbenchProc().start(vm_a.guest, repetition_scale=0.2))
    host.engine.run(FilebenchWorkload().start(vm_b.guest, duration=20.0))
    result = _census(host)
    assert result.flagged == []
    assert all(count == 0 for count in result.per_vm.values())


def test_census_silent_on_idle_sandwich(nested_env):
    """Known limitation: an idle victim keeps GuestX's counters quiet —
    which is exactly why the dedup detector (idle-friendly) is primary."""
    host, _report = nested_env
    result = _census(host)
    assert result.flagged == []


def test_census_requires_l0(nested_env):
    _host, report = nested_env
    with pytest.raises(DetectionError):
        next(exit_census(report.guestx_vm.guest))
