"""Channels, resources, stopwatch."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Channel, ChannelClosed, Resource, Stopwatch


def test_channel_put_then_get(engine):
    channel = Channel(engine)
    channel.put("a")
    channel.put("b")

    def consumer(e, ch):
        first = yield ch.get()
        second = yield ch.get()
        return [first, second]

    assert engine.run(engine.process(consumer(engine, channel))) == ["a", "b"]


def test_channel_get_blocks_until_put(engine):
    channel = Channel(engine)

    def consumer(e, ch):
        item = yield ch.get()
        return (item, e.now)

    proc = engine.process(consumer(engine, channel))
    engine.call_later(2.0, channel.put, "late")
    assert engine.run(proc) == ("late", 2.0)


def test_channel_fifo_across_getters(engine):
    channel = Channel(engine)
    results = []

    def consumer(e, ch, tag):
        item = yield ch.get()
        results.append((tag, item))

    engine.process(consumer(engine, channel, "first"))
    engine.process(consumer(engine, channel, "second"))
    engine.call_later(1.0, channel.put, "x")
    engine.call_later(2.0, channel.put, "y")
    engine.run()
    assert results == [("first", "x"), ("second", "y")]


def test_channel_close_drains_then_fails(engine):
    channel = Channel(engine)
    channel.put("leftover")
    channel.close()

    def consumer(e, ch):
        item = yield ch.get()
        try:
            yield ch.get()
        except ChannelClosed:
            return (item, "closed")

    assert engine.run(engine.process(consumer(engine, channel))) == (
        "leftover",
        "closed",
    )


def test_channel_close_wakes_pending_getters(engine):
    channel = Channel(engine)

    def consumer(e, ch):
        try:
            yield ch.get()
        except ChannelClosed:
            return "woken"

    proc = engine.process(consumer(engine, channel))
    engine.call_later(1.0, channel.close)
    assert engine.run(proc) == "woken"


def test_channel_put_after_close_rejected(engine):
    channel = Channel(engine)
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.put("too late")


def test_channel_len(engine):
    channel = Channel(engine)
    assert len(channel) == 0
    channel.put(1)
    channel.put(2)
    assert len(channel) == 2


def test_resource_serializes(engine):
    resource = Resource(engine, capacity=1)
    order = []

    def user(e, res, tag, hold):
        yield res.acquire()
        order.append(("in", tag, e.now))
        yield e.timeout(hold)
        order.append(("out", tag, e.now))
        res.release()

    engine.process(user(engine, resource, "a", 2.0))
    engine.process(user(engine, resource, "b", 1.0))
    engine.run()
    assert order == [
        ("in", "a", 0.0),
        ("out", "a", 2.0),
        ("in", "b", 2.0),
        ("out", "b", 3.0),
    ]


def test_resource_capacity_two(engine):
    resource = Resource(engine, capacity=2)
    entered = []

    def user(e, res, tag):
        yield res.acquire()
        entered.append((tag, e.now))
        yield e.timeout(1.0)
        res.release()

    for tag in ("a", "b", "c"):
        engine.process(user(engine, resource, tag))
    engine.run()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_idle_rejected(engine):
    resource = Resource(engine)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_bad_capacity(engine):
    with pytest.raises(SimulationError):
        Resource(engine, capacity=0)


def test_stopwatch(engine):
    watch = Stopwatch(engine)

    def proc(e):
        with watch:
            yield e.timeout(3.5)
        return watch.elapsed

    assert engine.run(engine.process(proc(engine))) == pytest.approx(3.5)


def test_stopwatch_misuse(engine):
    watch = Stopwatch(engine)
    with pytest.raises(SimulationError):
        watch.stop()
    watch.start()
    with pytest.raises(SimulationError):
        watch.start()
