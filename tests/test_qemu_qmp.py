"""The QMP structured monitor."""

import pytest

from repro.errors import MonitorError
from repro.qemu.qmp import QmpClient, QmpServer


@pytest.fixture
def qmp(host, victim):
    return QmpServer(victim, 4600)


def _drive(host, generator):
    return host.engine.run(host.engine.process(generator))


def test_greeting_and_negotiation(host, victim, qmp):
    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        greeting = yield from client.open()
        client.close()
        return greeting

    greeting = _drive(host, run(host.engine))
    assert greeting["QMP"]["version"]["qemu"]["major"] == 2


def test_command_before_negotiation_rejected(host, victim, qmp):
    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        yield client.endpoint.recv()  # greeting, skip negotiation
        try:
            yield from client.execute("query-status")
        except MonitorError as error:
            return str(error)

    assert "negotiation" in _drive(host, run(host.engine))


def test_query_status_and_kvm(host, victim, qmp):
    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        yield from client.open()
        status = yield from client.execute("query-status")
        kvm = yield from client.execute("query-kvm")
        client.close()
        return status, kvm

    status, kvm = _drive(host, run(host.engine))
    assert status == {"status": "running", "running": True, "singlestep": False}
    assert kvm == {"enabled": True, "present": True}


def test_query_block(host, victim, qmp):
    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        yield from client.open()
        blocks = yield from client.execute("query-block")
        client.close()
        return blocks

    blocks = _drive(host, run(host.engine))
    assert blocks[0]["inserted"]["file"] == "/var/lib/images/guest0.qcow2"
    assert blocks[0]["inserted"]["drv"] == "qcow2"


def test_stop_cont_over_qmp(host, victim, qmp):
    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        yield from client.open()
        yield from client.execute("stop")
        paused = victim.paused
        yield from client.execute("cont")
        client.close()
        return paused, victim.paused

    paused, resumed = _drive(host, run(host.engine))
    assert paused is True
    assert resumed is False


def test_migrate_over_qmp(host, victim, qmp):
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm

    qemu_img_create(host, "/qmp-dest.img", 20)
    config = victim.config.clone_for_destination(
        "qmpdest", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/qmp-dest.img")]
    dest, _ = launch_vm(host, config)

    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        yield from client.open()
        yield from client.execute("migrate", {"uri": "tcp:127.0.0.1:4444"})
        yield victim.migration_process
        info = yield from client.execute("query-migrate")
        client.close()
        return info

    info = _drive(host, run(host.engine))
    assert info["status"] == "completed"
    assert info["ram"]["transferred"] > 0
    assert dest.guest is not None


def test_unknown_command(host, victim, qmp):
    def run(e):
        client = QmpClient(host.net_node, host.net_node, 4600)
        yield from client.open()
        try:
            yield from client.execute("query-flux-capacitor")
        except MonitorError as error:
            return str(error)

    assert "has not been found" in _drive(host, run(host.engine))


def test_invalid_json(host, victim, qmp):
    import json

    def run(e):
        endpoint = host.net_node.connect(host.net_node, 4600)
        yield endpoint.recv()  # greeting
        endpoint.send(b"this is not json", kind="qmp")
        packet = yield endpoint.recv()
        return json.loads(packet.payload.decode("ascii"))

    response = _drive(host, run(host.engine))
    assert response["error"]["class"] == "GenericError"
