"""Property and regression tests for the content-addressed page store.

The page store swap (frames hold refcounted PageRecords instead of
private byte copies) must be invisible in every simulated result:

* refcount/intern invariants survive arbitrary alloc/write/free/merge
  interleavings (seeded random lifecycle property);
* a page freed and re-allocated with identical content starts a fresh
  KSM volatility cycle instead of resurrecting stale digest state;
* the candidate-parking fast path (singletons retired from the active
  scan index) wakes pages the moment a duplicate appears;
* the Fig 5/6 detection fingerprints are byte-identical to values
  captured on the pre-swap representation.
"""

import random

import pytest

from repro.hardware.machine import Machine
from repro.hardware.memory import PAGE_SIZE, PhysicalMemory
from repro.hardware.page_store import PageStore, content_digest
from repro.hypervisor.ksm import KsmDaemon
from repro.migration.transport import RamChunk, dedup_entries
from repro.sim.perf import PerfCounters


# ---------------------------------------------------------------------------
# PageStore unit behaviour
# ---------------------------------------------------------------------------


def test_intern_is_content_addressed():
    perf = PerfCounters()
    store = PageStore(perf)
    a = store.intern(b"alpha")
    b = store.intern(b"alpha")
    c = store.intern(b"beta")
    assert a is b
    assert a is not c
    assert a.refs == 2
    assert c.refs == 1
    assert perf.page_store_interns == 2
    assert perf.page_store_hits == 1
    assert store.unique_contents == 2
    store.release(a)
    assert a.refs == 1
    store.release(a)
    assert store.unique_contents == 1


def test_digest_computed_once_and_stable():
    store = PageStore(PerfCounters())
    record = store.intern(b"digest me")
    assert record.digest == content_digest(b"digest me")
    # Same-content reintern keeps the record (and its cached digest).
    again = store.reintern(record, b"digest me")
    assert again is record


def test_oversized_content_rejected():
    store = PageStore(PerfCounters())
    with pytest.raises(Exception):
        store.intern(b"x" * (PAGE_SIZE + 1))


# ---------------------------------------------------------------------------
# Random lifecycle property
# ---------------------------------------------------------------------------


def _check_invariants(memory, ksm, shadow):
    # Read-back correctness: the store swap must never change what a
    # pfn reads as.
    for pfn, content in shadow.items():
        assert memory.read(pfn) == content

    frames = memory._frames
    # Mapping refcounts: each frame's refcount equals the number of
    # pfns that map it, and every live frame has at least one mapper.
    by_frame = {}
    for frame in frames.values():
        by_frame[id(frame)] = by_frame.get(id(frame), 0) + 1
    for frame in frames.values():
        assert frame.refcount == by_frame[id(frame)] >= 1

    # Record refcounts: each record's refs equals the number of
    # *distinct* frames holding it (standalone handles aside).
    by_record = {}
    for frame in memory.iter_distinct_frames():
        key = id(frame.record)
        by_record[key] = by_record.get(key, 0) + 1
        assert frame.record.refs >= 1
    for frame in memory.iter_distinct_frames():
        assert frame.record.refs == by_record[id(frame.record)]

    # Sharing arithmetic is a pure counter read.
    assert memory.distinct_frames == len(by_frame)
    assert (
        memory.pages_saved_by_sharing
        == memory.allocated_pages - memory.distinct_frames
        >= 0
    )

    # KSM conservation: shared == shared_total - unshared.
    stats = ksm.stats
    assert ksm.pages_shared == stats.pages_shared_total - stats.pages_unshared

    # Candidate index partition: active + parked candidates are exactly
    # the mergeable, unshared pfns; counts agree with the index.
    parked_pfns = {
        pfn for bucket in memory._parked.values() for pfn in bucket
    }
    active_pfns = set(memory._scan_records)
    assert not (parked_pfns & active_pfns)
    expected = {
        pfn
        for pfn, frame in frames.items()
        if frame.mergeable and not frame.ksm_shared
    }
    assert active_pfns | parked_pfns == expected
    counted = sum(memory._candidate_count.values())
    assert counted == len(expected)


def _ksm_pass(ksm):
    """One full synchronous scan pass (no virtual time needed)."""
    ksm._begin_pass()
    cursor = ksm._cursor
    ksm._cursor = []
    ksm._scan_batch(cursor[::-1])
    ksm._end_pass()


@pytest.mark.parametrize("seed", [3, 17, 4242])
def test_random_lifecycle_property(seed):
    rng = random.Random(seed)
    machine = Machine(memory_mb=64, seed=seed)
    memory = machine.memory
    ksm = KsmDaemon(machine, pages_to_scan=500)
    contents = [
        f"page-{i}".encode("utf-8") * rng.randint(1, 4) for i in range(8)
    ]
    shadow = {}
    for step in range(400):
        op = rng.random()
        if op < 0.45 or not shadow:
            content = rng.choice(contents)
            pfn = memory.allocate(content, mergeable=rng.random() < 0.8)
            shadow[pfn] = content
        elif op < 0.70:
            pfn = rng.choice(list(shadow))
            content = rng.choice(contents)
            memory.write(pfn, content)
            shadow[pfn] = content
        elif op < 0.85:
            pfn = rng.choice(list(shadow))
            memory.free(pfn)
            del shadow[pfn]
        else:
            _ksm_pass(ksm)
        if step % 25 == 0:
            _check_invariants(memory, ksm, shadow)
    _check_invariants(memory, ksm, shadow)


# ---------------------------------------------------------------------------
# Fork/dispose refcount conservation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [5, 271])
def test_fork_dispose_refcount_conservation(seed):
    """Forking, mutating one branch, and disposing it is invisible.

    The snapshot layer shares `PageRecord`s by identity across forks,
    so the original store's refcount partition reflects every holder on
    every side.  After the branch (and the snapshot's pristine copy)
    are disposed, the partition must return to the pre-fork state
    *exactly* — any drift means a leaked or double-released reference.
    """
    rng = random.Random(seed)
    machine = Machine(memory_mb=64, seed=seed)
    memory = machine.memory
    ksm = KsmDaemon(machine, pages_to_scan=500)
    contents = [
        f"page-{i}".encode("utf-8") * rng.randint(1, 4) for i in range(6)
    ]
    shadow = {}
    for _ in range(150):
        op = rng.random()
        if op < 0.5 or not shadow:
            content = rng.choice(contents)
            pfn = memory.allocate(content, mergeable=rng.random() < 0.8)
            shadow[pfn] = content
        elif op < 0.75:
            pfn = rng.choice(list(shadow))
            content = rng.choice(contents)
            memory.write(pfn, content)
            shadow[pfn] = content
        elif op < 0.9:
            pfn = rng.choice(list(shadow))
            memory.free(pfn)
            del shadow[pfn]
        else:
            _ksm_pass(ksm)
    _ksm_pass(ksm)
    before = memory.page_store.refs_partition()

    snapshot = machine.engine.snapshot(machine, label="conservation")
    fork = snapshot.fork()
    fork_memory = fork.root.memory

    # While the branch lives, every resident content's refcount is
    # strictly elevated (pristine copy + fork each adopted one ref per
    # distinct frame).
    during = memory.page_store.refs_partition()
    assert set(during) == set(before)
    assert all(during[content] > before[content] for content in before)

    # Mutate the branch: rewrites, frees, and fresh allocations — the
    # original and its shadow stay untouched (COW), and the rewrites of
    # fork-shared records count as divergence.
    fork_rng = random.Random(seed + 1)
    for pfn in list(shadow)[:20]:
        fork_memory.write(pfn, b"branch rewrite %d" % pfn)
    for pfn in list(shadow)[20:30]:
        fork_memory.free(pfn)
    for i in range(10):
        fork_memory.allocate(
            b"branch only %d" % i, mergeable=fork_rng.random() < 0.5
        )
    assert fork.engine.perf.fork_cow_breaks >= 1
    for pfn, content in shadow.items():
        assert memory.read(pfn) == content

    fork.dispose()
    snapshot.dispose()
    assert memory.page_store.refs_partition() == before
    _check_invariants(memory, ksm, shadow)


# ---------------------------------------------------------------------------
# Free -> realloc regression (stale digest-bucket state)
# ---------------------------------------------------------------------------


def test_free_realloc_does_not_double_count_shared_total():
    machine = Machine(memory_mb=64, seed=1)
    memory = machine.memory
    ksm = KsmDaemon(machine)
    content = b"recycled content"
    a = memory.allocate(content, mergeable=True)
    b = memory.allocate(content, mergeable=True)
    _ksm_pass(ksm)  # volatility filter: both newly seen
    _ksm_pass(ksm)  # stabilized: merge
    assert ksm.stats.pages_shared_total == 1
    assert memory.pages_saved_by_sharing == 1

    memory.free(a)
    memory.free(b)
    # Last reference gone: the stable frame dropped and the content
    # left the store entirely.
    assert ksm.pages_shared == 0
    assert ksm.stats.pages_unshared == 1
    assert memory.page_store.unique_contents == 0

    # Identical content reallocated: a *fresh* volatility cycle, no
    # instant merge against stale state, no double counting.
    c = memory.allocate(content, mergeable=True)
    d = memory.allocate(content, mergeable=True)
    _ksm_pass(ksm)
    assert ksm.stats.pages_shared_total == 1  # not merged yet
    _ksm_pass(ksm)
    assert ksm.stats.pages_shared_total == 2  # merged exactly once more
    assert ksm.pages_shared == 1
    assert (
        ksm.pages_shared
        == ksm.stats.pages_shared_total - ksm.stats.pages_unshared
    )
    assert memory.read(c) == memory.read(d) == content


# ---------------------------------------------------------------------------
# Candidate parking
# ---------------------------------------------------------------------------


def test_parked_singleton_wakes_on_duplicate_and_merges():
    machine = Machine(memory_mb=64, seed=1)
    memory = machine.memory
    ksm = KsmDaemon(machine)
    pfn = memory.allocate(b"unique for now", mergeable=True)
    _ksm_pass(ksm)  # newly seen
    assert pfn in memory._scan_records
    _ksm_pass(ksm)  # stabilized singleton: parked
    assert pfn not in memory._scan_records
    assert any(pfn in bucket for bucket in memory._parked.values())
    # A duplicate arrives: the parked page must wake...
    dup = memory.allocate(b"unique for now", mergeable=True)
    assert pfn in memory._scan_records
    # ...and the pair merges once the newcomer stabilizes.
    _ksm_pass(ksm)
    _ksm_pass(ksm)
    assert ksm.pages_shared == 1
    assert memory.frame(pfn) is memory.frame(dup)


def test_parked_singleton_wakes_on_rewrite():
    machine = Machine(memory_mb=64, seed=1)
    memory = machine.memory
    ksm = KsmDaemon(machine)
    pfn = memory.allocate(b"original", mergeable=True)
    _ksm_pass(ksm)
    _ksm_pass(ksm)
    assert pfn not in memory._scan_records
    memory.write(pfn, b"rewritten")
    assert pfn in memory._scan_records
    assert not memory._parked


# ---------------------------------------------------------------------------
# Migration dedup transport
# ---------------------------------------------------------------------------


def test_dedup_entries_grouping_and_wire_accounting():
    entries = [(1, b"a"), (2, b"b"), (3, b"a"), (4, b"a"), (5, b"b")]
    unique, table = dedup_entries(entries)
    assert unique == [(1, b"a"), (2, b"b")]
    assert table == [(3, 0), (4, 0), (5, 1)]
    deduped = RamChunk(unique, dedup_table=table)
    plain = RamChunk(entries)
    # Same logical page population, strictly fewer wire bytes.
    assert deduped.page_count == plain.page_count == 5
    assert deduped.wire_bytes < plain.wire_bytes


# ---------------------------------------------------------------------------
# Detection fingerprints: byte-identical across the representation swap
# ---------------------------------------------------------------------------


def test_detection_fingerprints_byte_identical():
    """Figs 5/6 medians pinned on the pre-page-store representation.

    The pinned constants were captured by running this exact scenario on
    the commit preceding the page-store swap; equality must be exact —
    the data plane refactor may not move a single float.
    """
    from tests.fleet_helpers import DETECTION_PINS_SEED7, detection_fingerprint

    for key, nested in (("clean", False), ("nested", True)):
        assert detection_fingerprint(nested) == DETECTION_PINS_SEED7[key]
