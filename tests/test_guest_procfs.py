"""/proc rendering."""

import pytest

from repro.errors import ProcessError
from repro.guest import procfs


def test_list_pids(host):
    pids = procfs.list_pids(host)
    assert 1 in pids
    assert pids == sorted(pids)


def test_cmdline_nul_separated(host, victim):
    text = procfs.proc_cmdline(host, victim.process.pid)
    assert "\x00-name\x00guest0\x00" in text
    assert text.endswith("\x00")


def test_status_fields(host):
    text = procfs.proc_status(host, 1)
    assert "Name:\tsystemd" in text
    assert "State:\tR (running)" in text
    assert "PPid:\t0" in text


def test_missing_pid_rejected(host):
    with pytest.raises(ProcessError):
        procfs.proc_cmdline(host, 99999)
    with pytest.raises(ProcessError):
        procfs.proc_status(host, 99999)


def test_meminfo_accounts_usage(victim):
    text = procfs.meminfo(victim.guest)
    lines = dict(
        line.split(":", 1) for line in text.strip().splitlines()
    )
    total = int(lines["MemTotal"].strip().split()[0])
    free = int(lines["MemFree"].strip().split()[0])
    assert total == 1024 * 1024
    assert 0 < free < total


def test_cpuinfo_vmx_flag_tracks_exposure(nested_env):
    host, report = nested_env
    # The host and GuestX (launched with +vmx) see the flag...
    assert " vmx" in procfs.cpuinfo(host)
    assert " vmx" in procfs.cpuinfo(report.guestx_vm.guest)
    # ...the victim, which never had nested exposure, does not.
    assert " vmx" not in procfs.cpuinfo(report.nested_vm.guest)


def test_cpuinfo_stanza_per_cpu(host):
    text = procfs.cpuinfo(host)
    assert text.count("processor\t:") == host.cpu.logical_cpus
    assert "GenuineIntel" in text
