"""Malicious services on an installed CloudSkulk (§IV-B)."""

import pytest

from repro.core.rootkit.services import (
    ActiveTamperService,
    KeystrokeLogger,
    PacketCaptureService,
    PageSyncEvasion,
    ParallelMaliciousOs,
)
from repro.errors import RootkitError
from repro.net.stack import Link, NetworkNode


@pytest.fixture
def attacked(nested_env):
    """(host, report, the GuestX-level forward rule carrying victim ssh)."""
    host, report = nested_env
    rule = next(
        rule
        for nic in report.guestx_vm.nics
        for rule in nic.forward_rules
        if rule.outer_port == 2222
    )
    return host, report, rule


def _client(host):
    client = NetworkNode(host.engine, "customer")
    Link(client, host.net_node, 941e6, 1e-4)
    return client


def _session(host, client, payloads, collect_replies=False):
    """Dial the victim's public port, send payloads, return replies."""
    replies = []

    def run(e):
        endpoint = client.connect(host.net_node, 2222)
        for payload in payloads:
            endpoint.send(payload)
            if collect_replies:
                reply = yield endpoint.recv()
                replies.append(reply.payload)
        yield e.timeout(0.5)

    host.engine.run(host.engine.process(run(host.engine)))
    return replies


def test_packet_capture_sees_victim_traffic(attacked):
    host, report, rule = attacked
    capture = PacketCaptureService()
    rule.add_hook(capture)
    victim = report.nested_vm.guest
    victim.net_node.listener(22)  # sshd carried over

    def sshd(e):
        conn = yield victim.net_node.listener(22).accept()
        while True:
            yield conn.server.recv()

    host.engine.process(sshd(host.engine))
    _session(host, _client(host), [b"user=admin", b"pass=hunter2"])
    assert b"pass=hunter2" in capture.payloads("inbound")
    assert capture.bytes_seen > 0


def test_capture_truncates_at_cap(attacked):
    host, _report, rule = attacked
    capture = PacketCaptureService(max_entries=1)
    rule.add_hook(capture)
    victim_guest = _echo_on_victim(host, _report)
    _session(host, _client(host), [b"a", b"b", b"c"])
    assert len(capture.log) == 1
    assert capture.truncated


def _echo_on_victim(host, report):
    victim = report.nested_vm.guest

    def sshd(e):
        conn = yield victim.net_node.listener(22).accept()
        while True:
            packet = yield conn.server.recv()
            conn.server.send(b"ok:" + packet.payload)

    host.engine.process(sshd(host.engine))
    return victim


def test_keystroke_logger_traps_writes(nested_env):
    host, report = nested_env
    victim = report.nested_vm.guest
    logger = KeystrokeLogger()
    logger.install(victim)
    for _ in range(5):
        victim.kernel.syscall_cost("write")
    victim.kernel.syscall_cost("read")  # not trapped
    assert logger.keystrokes_logged == 5
    logger.remove()
    victim.kernel.syscall_cost("write")
    assert logger.keystrokes_logged == 5


def test_keystroke_logger_single_install(nested_env):
    _host, report = nested_env
    logger = KeystrokeLogger()
    logger.install(report.nested_vm.guest)
    with pytest.raises(RootkitError):
        logger.install(report.nested_vm.guest)


def test_active_drop(attacked):
    host, report, rule = attacked
    _echo_on_victim(host, report)
    tamper = ActiveTamperService(
        match=lambda packet, direction: direction == "inbound"
        and b"DELETE" in (packet.payload or b""),
        action="drop",
    )
    rule.add_hook(tamper)
    client = _client(host)

    def run(e):
        endpoint = client.connect(host.net_node, 2222)
        endpoint.send(b"GET /inbox")
        first = yield endpoint.recv()
        endpoint.send(b"DELETE /inbox/1")
        race = yield e.any_of([endpoint.recv(), e.timeout(1.0, "dropped")])
        return first.payload, race

    first, second = host.engine.run(host.engine.process(run(host.engine)))
    assert first == b"ok:GET /inbox"
    assert second == "dropped"
    assert tamper.hits == 1


def test_active_modify(attacked):
    host, report, rule = attacked
    _echo_on_victim(host, report)
    tamper = ActiveTamperService(
        match=lambda packet, direction: direction == "outbound",
        action="modify",
        transform=lambda packet: packet.replace(
            payload=packet.payload.replace(b"ok:", b"FORGED:")
        ),
    )
    rule.add_hook(tamper)
    replies = _session(
        host, _client(host), [b"balance?"], collect_replies=True
    )
    assert replies == [b"FORGED:balance?"]


def test_tamper_validation():
    with pytest.raises(RootkitError):
        ActiveTamperService(match=lambda p, d: True, action="explode")
    with pytest.raises(RootkitError):
        ActiveTamperService(match=lambda p, d: True, action="modify")


def test_parallel_malicious_os(nested_env):
    host, report = nested_env
    service = ParallelMaliciousOs(report.guestx_vm, service_port=8080)
    vm = host.engine.run(host.engine.process(service.launch()))
    assert vm.guest.depth == 2  # runs beside the victim, under GuestX
    # The phishing page answers through GuestX's forward.
    client = _client(host)
    report.guestx_vm.nics[0].add_hostfwd("tcp", 8080, 8080)

    def browse(e):
        endpoint = client.connect(host.net_node, 8080)
        endpoint.send(b"GET / HTTP/1.1")
        page = yield endpoint.recv()
        return page.payload

    page = host.engine.run(host.engine.process(browse(host.engine)))
    assert b"login" in page
    assert service.requests_served == 1


def test_page_sync_evasion_mirrors_changes(nested_env):
    host, report = nested_env
    victim = report.nested_vm.guest
    guestx = report.guestx_vm.guest
    victim.fs.create("/data/tracked", 3 * 4096, content_seed="tracked")
    victim.kernel.load_file("/data/tracked")
    evasion = PageSyncEvasion(victim, guestx, ["/data/tracked"])
    evasion.enable()
    cost = victim.kernel.write_file_page("/data/tracked", 1, b"changed")
    assert evasion.syncs == 1
    assert cost > PageSyncEvasion.SYNC_COST_PER_PAGE
    # The mirrored content landed in GuestX's memory.
    pfn = evasion._mirror_pfns[("/data/tracked", 1)]
    assert guestx.memory.read(pfn) == b"changed"
    # The hook itself is a detectable L1 modification (§VI-D).
    assert guestx.kernel.hypervisor_code_modified
    evasion.disable()
    victim.kernel.write_file_page("/data/tracked", 2, b"untracked-now")
    assert evasion.syncs == 1


def test_page_sync_evasion_does_not_scale(nested_env):
    """The paper's argument: syncing millions of pages is unrealistic."""
    host, report = nested_env
    evasion = PageSyncEvasion(
        report.nested_vm.guest, report.guestx_vm.guest, []
    )
    # A million tracked pages changing once a minute each:
    burn = evasion.projected_cost_per_second(1_000_000, 1 / 60)
    assert burn > 5.0  # >5 CPU-seconds per second: impossible to hide


def test_page_sync_double_enable_rejected(nested_env):
    _host, report = nested_env
    evasion = PageSyncEvasion(report.nested_vm.guest, report.guestx_vm.guest, [])
    evasion.enable()
    with pytest.raises(RootkitError):
        evasion.enable()
    evasion.disable()
    evasion.disable()  # idempotent
