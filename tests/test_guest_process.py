"""Process table: spawn, kill, reap, and the rootkit's PID reassignment."""

import pytest

from repro.errors import ProcessError
from repro.guest.process import ProcessTable


@pytest.fixture
def table():
    return ProcessTable()


def test_spawn_assigns_increasing_pids(table):
    a = table.spawn("one")
    b = table.spawn("two")
    assert b.pid == a.pid + 1


def test_kill_makes_zombie(table):
    proc = table.spawn("victim")
    table.kill(proc.pid, exit_code=1)
    assert not proc.alive
    assert proc.exit_code == 1
    assert table.get(proc.pid) is proc  # still visible


def test_reap_removes_zombie(table):
    proc = table.spawn("victim")
    table.kill(proc.pid)
    table.reap(proc.pid)
    assert table.get(proc.pid) is None


def test_reap_live_process_rejected(table):
    proc = table.spawn("alive")
    with pytest.raises(ProcessError):
        table.reap(proc.pid)


def test_kill_unknown_rejected(table):
    with pytest.raises(ProcessError):
        table.kill(999)


def test_reassign_pid(table):
    victim = table.spawn("qemu-victim")
    attacker = table.spawn("qemu-guestx")
    old_victim_pid = victim.pid
    table.kill(victim.pid)
    table.reap(victim.pid)
    moved = table.reassign_pid(attacker.pid, old_victim_pid)
    assert moved.pid == old_victim_pid
    assert table.get(old_victim_pid) is attacker


def test_reassign_to_busy_pid_rejected(table):
    a = table.spawn("a")
    b = table.spawn("b")
    with pytest.raises(ProcessError):
        table.reassign_pid(a.pid, b.pid)


def test_reassign_unknown_rejected(table):
    with pytest.raises(ProcessError):
        table.reassign_pid(42, 43)


def test_pid_never_collides_after_reassign(table):
    a = table.spawn("a")
    table.reassign_pid(a.pid, 500)
    fresh = table.spawn("fresh")
    assert fresh.pid != 500


def test_find_helpers(table):
    table.spawn("qemu-system-x86_64", "qemu-system-x86_64 -name g0 -m 1024")
    table.spawn("bash", "-bash")
    assert len(table.find_by_name("qemu-system-x86_64")) == 1
    assert len(table.find_by_cmdline_substring("-name g0")) == 1
    assert table.find_by_name("nope") == []


def test_contains_and_len(table):
    proc = table.spawn("x")
    assert proc.pid in table
    assert len(table) == 1
    table.remove(proc.pid)
    assert proc.pid not in table


def test_remove_unknown_rejected(table):
    with pytest.raises(ProcessError):
        table.remove(1)
