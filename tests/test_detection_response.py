"""Incident response: eviction and recovery."""

import pytest

from repro import scenarios
from repro.core.detection.forensics import TenantRecord, collect_evidence
from repro.core.detection.response import respond_and_recover
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.errors import DetectionError
from repro.net.stack import Link, NetworkNode

RECORD = TenantRecord(
    "guest0", memory_mb=1024, nested_allowed=False, public_ports=(2222,)
)


def _respond(host):
    evidence = host.engine.run(
        host.engine.process(collect_evidence(host, [RECORD]))
    )
    process = host.engine.process(
        respond_and_recover(
            host, evidence, RECORD, "/var/lib/images/guest0.qcow2"
        )
    )
    return host.engine.run(process)


def test_recovery_cleans_the_host(nested_env):
    host, _install = nested_env
    report = _respond(host)
    assert report.terminated_vms == ["guestx"]
    assert report.ram_state_lost  # the live RAM state existed only in GuestX
    assert report.clean
    scan = host.engine.run(host.engine.process(scan_for_hypervisors(host)))
    assert not scan.nested_hypervisor_detected


def test_recovered_tenant_serves_again(nested_env):
    host, _install = nested_env
    report = _respond(host)
    vm = report.recovered_vm
    assert vm.status == "running"
    assert vm.guest.depth == 1
    client = NetworkNode(host.engine, "customer")
    Link(client, host.net_node, 941e6, 1e-4)

    got = []

    def sshd(e):
        conn = yield vm.guest.net_node.listener(22).accept()
        packet = yield conn.server.recv()
        got.append(packet.payload)

    def dial(e):
        endpoint = client.connect(host.net_node, 2222)
        yield endpoint.send(b"hello-again")

    host.engine.process(sshd(host.engine))
    host.engine.run(host.engine.process(dial(host.engine)))
    host.engine.run(until=host.engine.now + 1.0)
    assert got == [b"hello-again"]


def test_recovery_downtime_is_boot_bounded(nested_env):
    host, _install = nested_env
    report = _respond(host)
    # Kill + relaunch + boot: tens of seconds, not hours.
    assert 5.0 < report.downtime_seconds < 60.0


def test_response_requires_evidence(host, victim):
    from repro.core.detection.forensics import EvidenceReport

    empty = EvidenceReport(host.name)
    with pytest.raises(DetectionError, match="no rogue VM"):
        next(
            respond_and_recover(
                host, empty, RECORD, "/var/lib/images/guest0.qcow2"
            )
        )


def test_response_requires_l0(nested_env):
    _host, install = nested_env
    from repro.core.detection.forensics import EvidenceReport

    report = EvidenceReport("x")
    report.add("unknown-vm", "critical", "x", subject="guestx")
    with pytest.raises(DetectionError):
        next(
            respond_and_recover(
                install.guestx_vm.guest, report, RECORD, "/img"
            )
        )


def test_summary_renders(nested_env):
    host, _install = nested_env
    report = _respond(host)
    text = report.summary()
    assert "terminated rogue VM 'guestx'" in text
    assert "relaunched tenant VM 'guest0'" in text
    assert "clean" in text
