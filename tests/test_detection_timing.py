"""The write-timing probe in isolation."""

import pytest

from repro.core.detection.timing import WriteTimingProbe
from repro.errors import DetectionError
from repro.guest.filesystem import make_random_file


@pytest.fixture
def probe(host):
    return WriteTimingProbe(host)


def _file(host, pages=10):
    file = make_random_file("/probe/file.bin", pages, host.rng)
    host.fs.add(file)
    return file


def test_probe_requires_l0(nested_env):
    _host, report = nested_env
    with pytest.raises(DetectionError):
        WriteTimingProbe(report.guestx_vm.guest)


def test_load_measure_returns_per_page_times(host, probe):
    _file(host, pages=10)

    def run(e):
        times = yield from probe.load_wait_measure("/probe/file.bin", 1.0)
        return times

    times = host.engine.run(host.engine.process(run(host.engine)))
    assert len(times) == 10
    assert all(t > 0 for t in times)


def test_measure_unloaded_rejected(host, probe):
    _file(host)
    with pytest.raises(DetectionError):
        next(probe.measure("/probe/file.bin"))


def test_negative_wait_rejected(host, probe):
    with pytest.raises(DetectionError):
        next(probe.wait(-1.0))


def test_measure_consumes_virtual_time(host, probe):
    _file(host, pages=32)

    def run(e):
        start = e.now
        yield from probe.load_wait_measure("/probe/file.bin", 2.0)
        return e.now - start

    elapsed = host.engine.run(host.engine.process(run(host.engine)))
    assert elapsed > 2.0


def test_probe_writes_detect_merged_pages(host, probe):
    """With a second identical copy + KSM, measured times jump."""
    from repro.hypervisor.ksm import KsmDaemon

    file = _file(host, pages=8)
    ksm = KsmDaemon(host.machine, pages_to_scan=500)
    ksm.start()
    # A twin copy of every page, madvised.
    for index in range(file.num_pages):
        host.memory.allocate(file.page_content(index), mergeable=True)

    def run(e):
        times = yield from probe.load_wait_measure("/probe/file.bin", 5.0)
        return times

    times = host.engine.run(host.engine.process(run(host.engine)))
    assert min(times) > 100.0  # every write broke CoW (µs scale)
