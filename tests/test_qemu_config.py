"""QemuConfig: rendering, parsing, matching — the recon round trip."""

import pytest

from repro.errors import ConfigError
from repro.qemu.config import (
    DriveSpec,
    MonitorSpec,
    NicSpec,
    QemuConfig,
)


@pytest.fixture
def config():
    return QemuConfig(
        name="guest0",
        memory_mb=1024,
        smp=2,
        drives=[DriveSpec("/var/lib/images/guest0.qcow2")],
        nics=[NicSpec("net0", hostfwds=[("tcp", 2222, 22), ("tcp", 8080, 80)])],
        monitor=MonitorSpec(port=5555),
        nested_vmx=True,
    )


def test_command_line_round_trip(config):
    cmdline = config.to_command_line()
    parsed = QemuConfig.from_command_line(cmdline)
    assert parsed.name == "guest0"
    assert parsed.memory_mb == 1024
    assert parsed.smp == 2
    assert parsed.enable_kvm
    assert parsed.nested_vmx
    assert parsed.drives == config.drives
    assert parsed.nics == config.nics
    assert parsed.monitor == config.monitor
    assert config.mismatches(parsed) == []


def test_command_line_contents(config):
    cmdline = config.to_command_line()
    assert "-m 1024" in cmdline
    assert "-enable-kvm" in cmdline
    assert "-cpu host,+vmx" in cmdline
    assert "hostfwd=tcp::2222-:22" in cmdline
    assert "-monitor telnet:127.0.0.1:5555,server,nowait" in cmdline


def test_incoming_rendered_and_parsed(config):
    config.incoming_port = 4444
    parsed = QemuConfig.from_command_line(config.to_command_line())
    assert parsed.incoming_port == 4444


def test_non_qemu_cmdline_rejected():
    with pytest.raises(ConfigError):
        QemuConfig.from_command_line("ls -la /tmp")


def test_unknown_flag_rejected():
    with pytest.raises(ConfigError):
        QemuConfig.from_command_line("qemu-system-x86_64 -frobnicate yes")


def test_bad_hostfwd_rejected():
    with pytest.raises(ConfigError):
        QemuConfig.from_command_line(
            "qemu-system-x86_64 -netdev user,id=n0,hostfwd=junk"
        )


def test_device_with_unknown_netdev_rejected():
    with pytest.raises(ConfigError):
        QemuConfig.from_command_line(
            "qemu-system-x86_64 -device virtio-net-pci,netdev=ghost"
        )


def test_mismatches_detect_memory_and_smp(config):
    other = QemuConfig(
        "dest",
        memory_mb=2048,
        smp=1,
        drives=[DriveSpec("/other.qcow2")],
        nics=[NicSpec("net0")],
    )
    problems = config.mismatches(other)
    assert any("memory" in p for p in problems)
    assert any("smp" in p for p in problems)


def test_mismatches_ignore_cosmetic_differences(config):
    clone = config.clone_for_destination("renamed", incoming_port=9999)
    clone.drives = [DriveSpec("/different/path.qcow2")]  # path may differ
    assert config.mismatches(clone) == []


def test_mismatches_catch_drive_type(config):
    clone = config.clone_for_destination("dest")
    clone.drives = [DriveSpec("/x.raw", interface="ide", fmt="raw")]
    assert any("drive type" in p for p in config.mismatches(clone))


def test_clone_strips_hostfwds_when_asked(config):
    clone = config.clone_for_destination("dest", keep_hostfwds=False)
    assert clone.nics[0].hostfwds == []
    kept = config.clone_for_destination("dest2", keep_hostfwds=True)
    assert kept.nics[0].hostfwds == config.nics[0].hostfwds


def test_validation_rejects_nonsense():
    with pytest.raises(ConfigError):
        QemuConfig("x", memory_mb=0)
    with pytest.raises(ConfigError):
        QemuConfig("x", smp=0)


def test_hda_legacy_flag():
    parsed = QemuConfig.from_command_line(
        "qemu-system-x86_64 -name old -m 512 -hda /old.img"
    )
    assert parsed.drives[0].interface == "ide"
