"""XBZRLE delta compression of resent dirty pages."""

import pytest

from repro.errors import MonitorError
from repro.migration.transport import RamChunk, XBZRLE_DELTA_FRACTION
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.kernel_compile import KernelCompileWorkload


def test_chunk_wire_bytes_shrink_with_xbzrle():
    plain = RamChunk(bulk_pages=100)
    encoded = RamChunk(bulk_pages=100, xbzrle_pages=100)
    assert encoded.wire_bytes < plain.wire_bytes
    expected_savings = int(100 * 4096 * (1 - XBZRLE_DELTA_FRACTION))
    assert plain.wire_bytes - encoded.wire_bytes == expected_savings


def test_capability_command(victim):
    victim.monitor.execute("migrate_set_capability xbzrle on")
    assert victim.migration_capabilities["xbzrle"] is True
    victim.monitor.execute("migrate_set_capability xbzrle off")
    assert victim.migration_capabilities["xbzrle"] is False
    with pytest.raises(MonitorError):
        victim.monitor.execute("migrate_set_capability warp-drive on")
    with pytest.raises(MonitorError):
        victim.monitor.execute("migrate_set_capability xbzrle maybe")


def _compile_migration(host, vm, port, xbzrle):
    workload = KernelCompileWorkload()
    workload.start(vm.guest, loop_forever=True)
    qemu_img_create(host, f"/var/lib/images/x{port}.qcow2", 20)
    config = vm.config.clone_for_destination(
        f"x{port}", incoming_port=port, keep_hostfwds=False
    )
    config.drives = [DriveSpec(f"/var/lib/images/x{port}.qcow2")]
    launch_vm(host, config)
    if xbzrle:
        vm.monitor.execute("migrate_set_capability xbzrle on")
    vm.monitor.execute(f"migrate -d tcp:127.0.0.1:{port}")
    host.engine.run(vm.migration_process)
    workload.stop()
    return vm.migration_stats


def test_xbzrle_speeds_up_dirty_heavy_migration():
    from repro import scenarios

    times = {}
    for xbzrle in (False, True):
        host = scenarios.testbed(seed=81)
        vm = scenarios.launch_victim(host)
        stats = _compile_migration(host, vm, 4444, xbzrle)
        assert stats.status == "completed"
        times[xbzrle] = (stats.total_time, stats.throttle_percentage)
    plain_time, plain_throttle = times[False]
    xbzrle_time, xbzrle_throttle = times[True]
    # Resends compress ~4x: the dirty-heavy migration converges much
    # faster and needs less (or equal) throttling.
    assert xbzrle_time < plain_time * 0.6
    assert xbzrle_throttle <= plain_throttle


def test_xbzrle_does_not_change_first_pass_cost():
    """An idle migration is all first-sends: xbzrle buys nothing."""
    from repro import scenarios

    times = {}
    for xbzrle in (False, True):
        host = scenarios.testbed(seed=82)
        vm = scenarios.launch_victim(host)
        qemu_img_create(host, "/var/lib/images/idle-dst.qcow2", 20)
        config = vm.config.clone_for_destination(
            "idle-dst", incoming_port=4445, keep_hostfwds=False
        )
        config.drives = [DriveSpec("/var/lib/images/idle-dst.qcow2")]
        launch_vm(host, config)
        if xbzrle:
            vm.monitor.execute("migrate_set_capability xbzrle on")
        vm.monitor.execute("migrate -d tcp:127.0.0.1:4445")
        host.engine.run(vm.migration_process)
        times[xbzrle] = vm.migration_stats.total_time
    assert times[True] == pytest.approx(times[False], rel=0.05)
