"""Fleet inventory, lazy host boot, fabric fault injection."""

import pytest

from repro.cloud.datacenter import Datacenter
from repro.cloud.inventory import HOST_SHAPES, HostSpec, heterogeneous_specs
from repro.cloud.tenants import Tenant, TenantSpec
from repro.errors import CloudError, NetworkError


def test_heterogeneous_specs_cycle_shapes_and_racks():
    specs = heterogeneous_specs(6, rack_width=4)
    assert [s.name for s in specs] == ["h00", "h01", "h02", "h03", "h04", "h05"]
    assert [s.rack for s in specs] == ["rack0"] * 4 + ["rack1"] * 2
    assert specs[0].model == HOST_SHAPES[0]["model"]
    assert specs[3].model == HOST_SHAPES[0]["model"]  # cycles mod 3
    # Deterministic: same call, same inventory.
    again = heterogeneous_specs(6, rack_width=4)
    assert [(s.name, s.model, s.memory_mb) for s in specs] == [
        (s.name, s.model, s.memory_mb) for s in again
    ]


def test_host_spec_validation():
    with pytest.raises(CloudError):
        HostSpec("bad", memory_mb=0)
    with pytest.raises(CloudError):
        HostSpec("bad", cores=0)
    with pytest.raises(CloudError):
        heterogeneous_specs(0)


def test_capacity_accounting_and_overcommit():
    dc = Datacenter(hosts=1, seed=3)
    host = dc.host("h00")
    assert host.free_mb() == host.spec.memory_mb
    tenant = Tenant(TenantSpec("t0", memory_mb=4096), host)
    tenant.host = host
    dc.register_tenant(tenant)
    assert host.committed_mb == 4096
    assert host.can_fit(host.spec.memory_mb - 4096)
    assert not host.can_fit(host.spec.memory_mb - 4095)
    # 1.5x overcommit opens headroom beyond physical.
    assert host.can_fit(host.spec.memory_mb, overcommit=1.5)
    assert host.utilization == pytest.approx(4096 / host.spec.memory_mb)


def test_port_blocks_are_monotonic_and_disjoint():
    dc = Datacenter(hosts=1, seed=3)
    host = dc.host("h00")
    blocks = [host.next_port_block() for _ in range(4)]
    flat = [port for block in blocks for port in block]
    assert len(set(flat)) == len(flat)
    assert blocks[0] == (2300, 5600, 9000)
    assert blocks[3] == (2303, 5603, 9003)


def test_lazy_boot_attaches_fabric_and_ksm():
    dc = Datacenter(hosts=2, seed=5)
    host = dc.host("h00")
    assert host.state == "offline" and host.system is None
    engine = dc.engine
    engine.run(engine.process(dc.ensure_up(host)))
    assert host.state == "up"
    assert host.system.depth == 0
    assert host.system.kvm is not None
    assert host.ksm is not None and host.ksm.running
    assert host.uplink is not None
    # Second ensure_up is a no-op, not a re-boot.
    system = host.system
    engine.run(engine.process(dc.ensure_up("h00")))
    assert host.system is system
    assert dc.host("h01").state == "offline"


def test_unknown_host_and_duplicate_tenant_raise():
    dc = Datacenter(hosts=1, seed=5)
    with pytest.raises(CloudError):
        dc.host("h99")
    host = dc.host("h00")
    tenant = Tenant(TenantSpec("t0"), host)
    dc.register_tenant(tenant)
    with pytest.raises(CloudError):
        dc.register_tenant(Tenant(TenantSpec("t0"), host))


def test_move_and_forget_tenant_rehome_registry():
    dc = Datacenter(hosts=2, seed=5)
    a, b = dc.host("h00"), dc.host("h01")
    tenant = Tenant(TenantSpec("t0", memory_mb=2048), a)
    dc.register_tenant(tenant)
    assert "t0" in a.tenants
    dc.move_tenant(tenant, b)
    assert "t0" not in a.tenants and "t0" in b.tenants
    assert tenant.host is b
    assert a.committed_mb == 0 and b.committed_mb == 2048
    dc.forget_tenant(tenant)
    assert not b.tenants and not dc.tenants


def test_partition_and_heal_toggle_fabric_reachability():
    dc = Datacenter(hosts=2, seed=9)
    engine = dc.engine

    def bring_both():
        yield from dc.ensure_up("h00")
        yield from dc.ensure_up("h01")

    engine.run(engine.process(bring_both()))
    a, b = dc.host("h00"), dc.host("h01")
    b.system.net_node.listen(9999)
    # Reachable across the switch fabric.
    endpoint = a.system.net_node.connect(b.system.net_node, 9999)
    endpoint.close()
    b.partition()
    assert b.partitioned
    with pytest.raises(NetworkError):
        a.system.net_node.connect(b.system.net_node, 9999)
    b.heal()
    assert not b.partitioned
    endpoint = a.system.net_node.connect(b.system.net_node, 9999)
    endpoint.close()
