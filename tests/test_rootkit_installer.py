"""The four-step installation, end to end."""

import pytest

from repro import scenarios
from repro.core.rootkit.ritm import plan_ritm
from repro.errors import RootkitError
from repro.net.stack import Link, NetworkNode


def test_install_succeeds(nested_env):
    _host, report = nested_env
    assert report.success
    assert [step for step, _s, _e in report.steps] == [
        "step1-recon",
        "step2-guestx",
        "step3-nested",
        "step4-migrate",
        "step5-cleanup",
    ]


def test_victim_lands_at_depth_two(nested_env):
    _host, report = nested_env
    guest = report.nested_vm.guest
    assert guest.depth == 2
    assert guest.qemu_vm is report.nested_vm
    assert guest.booted


def test_ritm_topology(nested_env):
    _host, report = nested_env
    assert report.guestx_vm.guest.kvm is not None
    assert report.nested_vm.host_system is report.guestx_vm.guest
    assert report.guestx_vm.kvm_vm.depth == 1
    assert report.nested_vm.kvm_vm.depth == 2


def test_pid_swap(nested_env):
    host, report = nested_env
    assert report.guestx_vm.process.pid == report.victim_pid
    qemu_procs = host.kernel.table.find_by_name("qemu-system-x86_64")
    assert len(qemu_procs) == 1  # original victim process is gone


def test_port_takeover_reaches_victim(nested_env):
    host, report = nested_env
    engine = host.engine
    client = NetworkNode(engine, "customer")
    Link(client, host.net_node, 941e6, 1e-4)
    got = []

    victim_guest = report.nested_vm.guest
    listener = victim_guest.net_node.listener(22)
    assert listener is not None

    def sshd(e):
        conn = yield listener.accept()
        packet = yield conn.server.recv()
        got.append(packet.payload)

    def customer(e):
        endpoint = client.connect(host.net_node, 2222)
        yield endpoint.send(b"SSH-2.0-OpenSSH")

    engine.process(sshd(engine))
    engine.run(engine.process(customer(engine)))
    engine.run(until=engine.now + 1.0)
    assert got == [b"SSH-2.0-OpenSSH"]


def test_history_scrubbed(nested_env):
    host, report = nested_env
    assert report.history_lines_removed > 0
    assert not any("qemu" in line for line in host.shell.history)


def test_impersonation_forged(nested_env):
    from repro.vmi.introspect import introspect

    _host, report = nested_env
    assert report.impersonated
    guestx_view = introspect(report.guestx_vm)
    assert guestx_view.subverted
    # GuestX introspects like a plain Fedora guest, not like a hypervisor
    # host: the victim's process list, no QEMU process visible.
    assert "qemu-system-x86_64" not in guestx_view.process_names


def test_install_time_in_paper_band(nested_env):
    """§V-A: installation on an idle guest lands around a minute."""
    _host, report = nested_env
    assert report.total_seconds < 90.0
    assert report.migration_seconds < 60.0


def test_migration_dominates_install(nested_env):
    _host, report = nested_env
    assert report.migration_seconds > 0.4 * report.total_seconds


def test_source_vm_terminated(nested_env):
    host, _report = nested_env
    # Only GuestX's monitor port remains on the host node.
    assert host.net_node.listener(5555) is None


def test_plan_requires_kvm_victim(host, victim):
    from repro.core.rootkit.recon import ReconReport

    report = ReconReport("guest0")
    report.config = scenarios.victim_config()
    report.config.enable_kvm = False
    with pytest.raises(RootkitError):
        plan_ritm(report)


def test_plan_port_choreography(host, victim):
    from repro.core.rootkit.recon import TargetRecon

    recon = host.engine.run(host.engine.process(TargetRecon(host).run()))
    plan = plan_ritm(recon)
    assert plan.guestx_config.nested_vmx
    assert plan.guestx_config.memory_mb > recon.config.memory_mb
    assert plan.nested_config.incoming_port == plan.rootkit_port_bbbb
    assert plan.nested_config.memory_mb == recon.config.memory_mb
    assert plan.victim_hostfwds == [("tcp", 2222, 22)]
    # GuestX starts with NO victim forwards (no collision with the
    # still-running victim).
    assert plan.guestx_config.nics[0].hostfwds == []


def test_install_against_second_tenant(host):
    """Recon + install picks the named target among several VMs."""
    scenarios.launch_victim(host)
    other_cfg = scenarios.victim_config(
        name="tenant-b",
        image="/var/lib/images/tenant-b.qcow2",
        ssh_host_port=2223,
        monitor_port=5560,
    )
    scenarios.launch_victim(host, other_cfg)
    report = scenarios.install_cloudskulk(host, target_name="tenant-b")
    assert report.success
    assert report.recon.target_name == "tenant-b"
