"""Migration wire-format accounting."""

import pytest

from repro.migration.transport import (
    ACK_BYTES,
    Complete,
    DeviceState,
    PAGE_WIRE_BYTES,
    RamChunk,
    ZERO_WIRE_BYTES,
)


def test_real_pages_cost_full_size():
    chunk = RamChunk(entries=[(0, b"a"), (1, b"b")])
    assert chunk.wire_bytes == 2 * PAGE_WIRE_BYTES + 16
    assert chunk.page_count == 2


def test_zero_pages_cost_headers_only():
    chunk = RamChunk(zero_pages=1000)
    assert chunk.wire_bytes == 1000 * ZERO_WIRE_BYTES + 16
    assert chunk.page_count == 0


def test_bulk_pages_cost_full_size():
    chunk = RamChunk(bulk_pages=10)
    assert chunk.wire_bytes == 10 * PAGE_WIRE_BYTES + 16


def test_mixed_chunk_sums():
    chunk = RamChunk(entries=[(0, b"x")], bulk_pages=3, zero_pages=100)
    expected = 4 * PAGE_WIRE_BYTES + 100 * ZERO_WIRE_BYTES + 16
    assert chunk.wire_bytes == expected
    assert chunk.page_count == 4


def test_wire_bytes_never_negative():
    chunk = RamChunk(bulk_pages=1, xbzrle_pages=1000)  # absurd over-claim
    assert chunk.wire_bytes >= 32


def test_zero_page_savings_dominate():
    """A mostly-empty 1 GiB guest must not cost 1 GiB on the wire."""
    chunk = RamChunk(bulk_pages=1000, zero_pages=200_000)
    assert chunk.wire_bytes < 0.01 * (201_000 * PAGE_WIRE_BYTES)


def test_device_state_default_size():
    assert DeviceState().size_bytes == 256 * 1024


def test_complete_carries_handoff():
    complete = Complete("guest-obj", alloc_floor=500, bulk_pages_total=42)
    assert complete.guest_system == "guest-obj"
    assert complete.alloc_floor == 500
    assert complete.bulk_pages_total == 42


def test_ack_is_small():
    assert ACK_BYTES < 4096
