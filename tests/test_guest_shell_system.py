"""Shell history / ps output and the System abstraction."""

import pytest

from repro.errors import HypervisorError
from repro.guest.system import System, make_testbed
from repro.hardware.cpu import CpuPackage
from repro.hardware.machine import Machine


def test_history_records_and_renders(host):
    host.shell.record("ls -la")
    host.shell.record("qemu-system-x86_64 -name g0")
    text = host.shell.history_text()
    assert "1  ls -la" in text
    assert "qemu-system-x86_64" in text


def test_clear_history(host):
    host.shell.record("secret")
    host.shell.clear_history()
    assert host.shell.history == []


def test_ps_ef_format(host):
    lines = host.shell.ps_ef().splitlines()
    assert lines[0].startswith("UID")
    assert any("systemd" in line for line in lines)
    # PID column is numeric.
    first = lines[1].split()
    assert first[1].isdigit()


def test_bare_metal_system(machine):
    system = System.bare_metal(machine)
    assert system.depth == 0
    assert system.net_node is not None
    assert not system.booted
    assert system.paused is False


def test_make_testbed_boots_and_loads_kvm():
    host = make_testbed(seed=1)
    assert host.booted
    assert host.kvm is not None
    assert host.engine.now > 0


def test_enable_kvm_requires_vmx():
    machine = Machine(cpu=CpuPackage(vmx=False), memory_mb=1024)
    system = System.bare_metal(machine)
    with pytest.raises(HypervisorError):
        system.enable_kvm()


def test_enable_kvm_idempotent(host):
    assert host.enable_kvm() is host.kvm


def test_lineage(nested_env):
    host, report = nested_env
    l2 = report.nested_vm.guest
    chain = l2.lineage()
    assert chain[0] is host
    assert chain[-1] is l2
    assert [s.depth for s in chain] == [0, 1, 2]
    assert l2.host() is host
