"""Forensic evidence collection."""

import pytest

from repro import scenarios
from repro.core.detection.forensics import (
    TenantRecord,
    collect_evidence,
)
from repro.errors import DetectionError

INVENTORY = [
    TenantRecord(
        "guest0", memory_mb=1024, nested_allowed=False, public_ports=(2222,)
    )
]


def _collect(host, inventory=None):
    if inventory is None:
        inventory = INVENTORY
    process = host.engine.process(collect_evidence(host, inventory))
    return host.engine.run(process)


def test_clean_host_yields_no_critical_evidence(host, victim):
    report = _collect(host)
    assert not report.suspicious
    assert report.findings == [] or all(
        e.severity != "critical" for e in report.findings
    )


def test_cloudskulk_leaves_three_artifact_classes(nested_env):
    """GuestX swapped the victim's PID but still says '-name guestx':
    it reads as an unknown VM, with the VMCS census and the migration
    flow as corroboration."""
    host, _install = nested_env
    report = _collect(host)
    assert report.suspicious
    kinds = {e.kind for e in report.critical}
    assert "vmcs-census" in kinds
    assert "unknown-vm" in kinds
    assert "bulk-flow" in kinds


def test_disguised_ritm_betrayed_by_size_and_exposure(nested_env):
    """Suppose the attacker also forged a provisioning record (or hid
    behind a legitimately-named second tenant): the RITM still runs
    with more memory than any 1 GiB tenant and with '+vmx' nobody
    bought."""
    host, _install = nested_env
    inventory = INVENTORY + [
        TenantRecord("guestx", memory_mb=1024, nested_allowed=False)
    ]
    report = _collect(host, inventory=inventory)
    oversize = report.by_kind("memory-oversize")
    assert len(oversize) == 1
    assert oversize[0].subject == "guestx"
    assert "2048" in oversize[0].description
    exposure = report.by_kind("nested-exposure")
    assert len(exposure) == 1
    assert exposure[0].subject == "guestx"


def test_unknown_vm_flagged(host, victim):
    report = _collect(host, inventory=[])
    unknown = report.by_kind("unknown-vm")
    assert len(unknown) == 1
    assert unknown[0].subject == "guest0"


def test_bulk_flow_reports_migration_bytes(nested_env):
    host, install = nested_env
    report = _collect(host)
    flows = report.by_kind("bulk-flow")
    assert flows
    assert str(install.plan.host_port_aaaa) in flows[0].description


def test_benign_service_traffic_not_flagged(host, victim):
    """A big download over the published ssh port is not evidence."""
    from repro.net.stack import Link, NetworkNode

    client = NetworkNode(host.engine, "backup-client")
    Link(client, host.net_node, 1e9, 1e-4)

    def backup(e):
        endpoint = client.connect(host.net_node, 2222)
        for _ in range(30):
            yield endpoint.send(None, size_bytes=8 * 1024 * 1024)

    def sink(e):
        conn = yield victim.guest.net_node.listener(22).accept()
        while True:
            yield conn.server.recv()

    host.engine.process(sink(host.engine))
    host.engine.run(host.engine.process(backup(host.engine)))
    report = _collect(host, inventory=INVENTORY)
    # 240 MB moved, but to the known ssh service port: not suspicious.
    assert report.by_kind("bulk-flow") == []


def test_forensics_requires_l0(nested_env):
    _host, install = nested_env
    with pytest.raises(DetectionError):
        next(collect_evidence(install.guestx_vm.guest, INVENTORY))


def test_summary_renders(nested_env):
    host, _install = nested_env
    report = _collect(host)
    text = report.summary()
    assert "forensic evidence" in text
    assert "critical" in text
