"""Workload generators: metrics, pacing, pause interaction."""

import pytest

from repro.net.stack import Link, NetworkNode
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload
from repro.workloads.netperf import NetperfServer, NetperfWorkload


def test_idle_runs_for_duration(host, victim):
    result = host.engine.run(IdleWorkload().start(victim.guest, duration=10.0))
    assert result.metrics["ticks"] == pytest.approx(20, abs=2)
    assert result.elapsed == pytest.approx(10.0, rel=0.1)


def test_idle_stop(host, victim):
    workload = IdleWorkload()
    process = workload.start(victim.guest)
    host.engine.call_later(5.0, workload.stop)
    result = host.engine.run(process)
    assert result.stopped_early


def test_compile_build_seconds_sane(host, victim):
    workload = KernelCompileWorkload(units=100)
    result = host.engine.run(workload.start(victim.guest))
    assert result.metrics["units"] == 100
    assert result.metrics["build_seconds"] > 10.0


def test_compile_ccache_speeds_up(host):
    slow = host.engine.run(
        KernelCompileWorkload(units=150, ccache_enabled=False).start(host)
    )
    fast = host.engine.run(
        KernelCompileWorkload(units=150, ccache_enabled=True).start(host)
    )
    ratio = slow.metrics["build_seconds"] / fast.metrics["build_seconds"]
    assert 3.0 < ratio < 5.0  # the paper's ~3.8x ccache confound


def test_compile_dirties_guest_memory(host, victim):
    victim.kvm_vm.memory.start_dirty_log()
    host.engine.run(KernelCompileWorkload(units=20).start(victim.guest))
    _dirty, bulk = victim.kvm_vm.memory.fetch_and_reset_dirty()
    assert bulk > 10000


def test_netperf_wire_bound(host, victim):
    peer = NetworkNode(host.engine, "netserver")
    Link(peer, host.net_node, 941e6, 1.2e-4)
    server = NetperfServer(peer)
    result = host.engine.run(
        NetperfWorkload(server).start(victim.guest, duration=5.0)
    )
    mbps = result.metrics["throughput_mbps"]
    assert 700 < mbps < 941


def test_filebench_reports_ops(host, victim):
    result = host.engine.run(
        FilebenchWorkload().start(victim.guest, duration=5.0)
    )
    assert result.metrics["ops"] > 100
    assert result.metrics["ops_per_second"] > 50


def test_filebench_fixed_op_count(host, victim):
    result = host.engine.run(FilebenchWorkload().start(victim.guest, ops=50))
    assert result.metrics["ops"] == 50


def test_filebench_touches_block_device(host, victim):
    device = victim.block_devices[0]
    host.engine.run(FilebenchWorkload().start(victim.guest, ops=30))
    assert device.wr_ops >= 30
    assert device.rd_ops >= 30


def test_workload_blocks_while_paused(host, victim):
    workload = IdleWorkload()
    process = workload.start(victim.guest, duration=30.0)
    host.engine.run(until=host.engine.now + 2.0)
    victim.pause()
    paused_at = host.engine.now
    host.engine.run(until=paused_at + 10.0)
    ticks_during_pause = None
    victim.resume()
    result = host.engine.run(process)
    # 10 of the 30 seconds were frozen: far fewer ticks than 60.
    assert result.metrics["ticks"] < 50


def test_result_elapsed_requires_finish(host):
    from repro.workloads.base import WorkloadResult
    from repro.errors import GuestError

    result = WorkloadResult("w", "s")
    with pytest.raises(GuestError):
        _ = result.elapsed
