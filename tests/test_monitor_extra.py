"""The newer monitor commands: hostfwd_add/remove, info cpus/kvm."""

import pytest

from repro.errors import MonitorError
from repro.net.stack import Link, NetworkNode


def test_info_cpus(victim):
    out = victim.monitor.execute("info cpus")
    assert "CPU #0" in out
    assert out.count("CPU #") == victim.config.smp


def test_info_kvm(victim):
    assert victim.monitor.execute("info kvm") == "kvm support: enabled"


def test_hostfwd_add_makes_guest_reachable(host, victim):
    victim.monitor.execute("hostfwd_add tcp::8080-:80")
    victim.guest.net_node.listen(80)
    client = NetworkNode(host.engine, "web-client")
    Link(client, host.net_node, 1e9, 1e-4)
    endpoint = client.connect(host.net_node, 8080)
    assert endpoint is not None
    assert ("tcp", 8080, 80) in victim.nics[0].spec.hostfwds
    # info network reflects the runtime addition.
    assert "hostfwd=tcp::8080-:80" in victim.monitor.execute("info network")


def test_hostfwd_remove(host, victim):
    victim.monitor.execute("hostfwd_remove tcp::2222")
    assert victim.nics[0].spec.hostfwds == []
    assert host.net_node.listener(2222) is None
    with pytest.raises(MonitorError):
        victim.monitor.execute("hostfwd_remove tcp::2222")


def test_hostfwd_add_validation(victim):
    with pytest.raises(MonitorError):
        victim.monitor.execute("hostfwd_add nonsense")
    with pytest.raises(MonitorError):
        victim.monitor.execute("hostfwd_add")
    with pytest.raises(MonitorError):
        victim.monitor.execute("hostfwd_remove tcp::abc")


def test_command_log_records_everything(victim):
    victim.monitor.execute("info status")
    victim.monitor.execute("info kvm")
    assert victim.monitor.command_log[-2:] == ["info status", "info kvm"]
