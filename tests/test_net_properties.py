"""Property-based tests on the network stack."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.nat import ForwardRule, PacketHook
from repro.net.stack import Link, NetworkNode
from repro.sim.engine import Engine

_net_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

sizes = st.lists(
    st.integers(min_value=1, max_value=512 * 1024), min_size=1, max_size=30
)


@_net_settings
@given(payload_sizes=sizes, bandwidth_mbps=st.integers(1, 10_000))
def test_delivery_is_fifo_regardless_of_sizes(payload_sizes, bandwidth_mbps):
    """A connection delivers packets in send order whatever their sizes
    and whatever the link speed."""
    engine = Engine()
    a = NetworkNode(engine, "a")
    b = NetworkNode(engine, "b")
    Link(a, b, bandwidth_mbps * 1e6, 1e-4)
    listener = b.listen(1)
    received = []

    def server(e):
        conn = yield listener.accept()
        for _ in payload_sizes:
            packet = yield conn.server.recv()
            received.append(packet.payload)

    def client(e):
        endpoint = a.connect(b, 1)
        for index, size in enumerate(payload_sizes):
            endpoint.send(index, size_bytes=size)
        yield e.timeout(3600.0)

    engine.process(server(engine))
    engine.process(client(engine))
    engine.run(until=7200.0)
    assert received == list(range(len(payload_sizes)))


@_net_settings
@given(payload_sizes=sizes)
def test_delivery_time_lower_bounded_by_serialization(payload_sizes):
    """Total delivery time >= total bytes / bandwidth."""
    engine = Engine()
    a = NetworkNode(engine, "a")
    b = NetworkNode(engine, "b")
    bandwidth = 1e8  # 100 Mbit
    Link(a, b, bandwidth, 0.0)
    listener = b.listen(1)
    done = []

    def server(e):
        conn = yield listener.accept()
        for _ in payload_sizes:
            yield conn.server.recv()
        done.append(e.now)

    def client(e):
        endpoint = a.connect(b, 1)
        for size in payload_sizes:
            endpoint.send(None, size_bytes=size)
        yield e.timeout(0)

    engine.process(server(engine))
    engine.process(client(engine))
    engine.run(until=7200.0)
    assert done
    minimum = sum(payload_sizes) * 8.0 / bandwidth
    assert done[0] >= minimum * 0.999


@_net_settings
@given(
    drop_mask=st.lists(st.booleans(), min_size=1, max_size=25),
)
def test_forward_rule_accounting_consistent(drop_mask):
    """packets_forwarded + dropped == packets offered, for any drop
    pattern a hook applies."""
    engine = Engine()
    client = NetworkNode(engine, "c")
    host = NetworkNode(engine, "h")
    guest = NetworkNode(engine, "g")
    Link(client, host, 1e9, 1e-5)
    Link(host, guest, 1e9, 1e-5, inbound_allowed=False)
    guest.listen(9)
    rule = ForwardRule(host, 99, guest, 9)

    class MaskDrop(PacketHook):
        def __init__(self, mask):
            self.mask = list(mask)
            self.index = 0

        def on_packet(self, packet, direction, rule):
            drop = self.mask[self.index % len(self.mask)]
            self.index += 1
            return None if drop else packet

    rule.add_hook(MaskDrop(drop_mask))

    def run(e):
        endpoint = client.connect(host, 99)
        for _ in drop_mask:
            endpoint.send(b"x")
        yield e.timeout(10.0)

    engine.process(run(engine))
    engine.run(until=20.0)
    offered = len(drop_mask)
    assert rule.stats.packets["inbound"] + rule.stats.dropped == offered
    assert rule.stats.dropped == sum(drop_mask)
