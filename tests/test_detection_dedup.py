"""The memory-deduplication detector (Figs 5/6) and its classifier."""

import statistics

import pytest

from repro import scenarios
from repro.core.detection.classifier import classify
from repro.core.detection.dedup_detector import DedupDetector
from repro.errors import DetectionError


def _detect(nested, **detector_kwargs):
    host, cloud, ksm, _loc = scenarios.detection_setup(nested=nested, seed=42)
    detector = DedupDetector(host, cloud, **detector_kwargs)
    report = host.engine.run(host.engine.process(detector.run()))
    return host, report


@pytest.fixture(scope="module")
def clean_report():
    return _detect(nested=False)[1]


@pytest.fixture(scope="module")
def nested_report():
    return _detect(nested=True)[1]


# ---- Fig 5: no nested VM -------------------------------------------------


def test_clean_verdict(clean_report):
    assert clean_report.verdict.verdict == "clean"
    assert not clean_report.verdict.nested_vm_detected


def test_clean_t1_much_larger_than_t2(clean_report):
    m1 = statistics.median(clean_report.t1_us)
    m2 = statistics.median(clean_report.t2_us)
    assert m1 > 50 * m2


def test_clean_t2_tracks_baseline(clean_report):
    m0 = statistics.median(clean_report.t0_us)
    m2 = statistics.median(clean_report.t2_us)
    assert m2 == pytest.approx(m0, rel=0.5)


def test_series_have_one_entry_per_page(clean_report):
    assert len(clean_report.t0_us) == 100
    assert len(clean_report.t1_us) == 100
    assert len(clean_report.t2_us) == 100


# ---- Fig 6: nested VM present ---------------------------------------------


def test_nested_verdict(nested_report):
    assert nested_report.verdict.verdict == "nested"
    assert nested_report.verdict.nested_vm_detected


def test_nested_t1_and_t2_both_merged(nested_report):
    m0 = statistics.median(nested_report.t0_us)
    m1 = statistics.median(nested_report.t1_us)
    m2 = statistics.median(nested_report.t2_us)
    assert m1 > 100 * m0
    assert m2 > 100 * m0


def test_nested_t1_t2_statistically_indistinguishable(nested_report):
    assert nested_report.verdict.t1_vs_t2_p_value > 0.01


def test_explanations_mention_the_mechanism(clean_report, nested_report):
    assert "no hidden hypervisor" in clean_report.verdict.explanation()
    assert "CloudSkulk" in nested_report.verdict.explanation()


# ---- protocol robustness ----------------------------------------------------


def test_single_page_file_suffices():
    """§VI-D: defenders can use one page."""
    _host, report = _detect(nested=True, file_pages=1)
    assert report.verdict.verdict == "nested"
    _host, report = _detect(nested=False, file_pages=1)
    assert report.verdict.verdict == "clean"


def test_inconclusive_when_ksm_off():
    host, cloud, ksm, _loc = scenarios.detection_setup(nested=False, seed=42)
    ksm.stop()
    detector = DedupDetector(host, cloud, wait_seconds=5.0)
    report = host.engine.run(host.engine.process(detector.run()))
    assert report.verdict.verdict == "inconclusive"


def test_timeline_is_ordered(nested_report):
    stamps = [t for _label, t in nested_report.timeline]
    assert stamps == sorted(stamps)


def test_detector_validates_pages():
    host, cloud, _ksm, _loc = scenarios.detection_setup(nested=False, seed=42)
    with pytest.raises(DetectionError):
        DedupDetector(host, cloud, file_pages=0)


# ---- classifier unit behaviour -----------------------------------------------


def test_classify_clean_pattern():
    verdict = classify([0.3] * 10, [400.0] * 10, [0.31] * 10)
    assert verdict.verdict == "clean"
    assert verdict.t1_merged and not verdict.t2_merged


def test_classify_nested_pattern():
    verdict = classify([0.3] * 10, [400.0] * 10, [395.0] * 10)
    assert verdict.verdict == "nested"


def test_classify_inconclusive_pattern():
    verdict = classify([0.3] * 10, [0.32] * 10, [0.29] * 10)
    assert verdict.verdict == "inconclusive"


def test_classify_robust_to_outliers():
    t1 = [400.0] * 9 + [0.3]  # one page failed to merge
    verdict = classify([0.3] * 10, t1, [0.3] * 10)
    assert verdict.verdict == "clean"


def test_classify_empty_series_rejected():
    with pytest.raises(DetectionError):
        classify([], [1.0], [1.0])


def test_classify_degenerate_baseline_rejected():
    with pytest.raises(DetectionError):
        classify([0.0, 0.0, 0.0], [1.0], [1.0])
