"""The observability layer: tracer, metrics, exporters, CLI wiring."""

import json

import pytest

from repro import obs, scenarios
from repro.cli import main
from repro.core.detection.dedup_detector import DedupDetector
from repro.obs.export import chrome_trace, validate_trace
from repro.obs.metrics import Histogram, MetricRegistry
from repro.sim.engine import Engine


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Process-global obs config must never leak between tests."""
    obs.reset()
    yield
    obs.reset()


def run_detection(seed=11, nested=True, enable=True, pages=8):
    host, cloud, _ksm, _loc = scenarios.detection_setup(
        nested=nested, seed=seed
    )
    if enable:
        host.engine.tracer.enable()
    detector = DedupDetector(host, cloud, file_pages=pages)
    host.engine.run(host.engine.process(detector.run()))
    return host


# -- metrics ----------------------------------------------------------------


def test_counter_gauge_labels():
    registry = MetricRegistry()
    registry.counter("hits", vm="a").inc()
    registry.counter("hits", vm="a").inc(2)
    registry.counter("hits", vm="b").inc()
    registry.gauge("depth").set(3)
    dump = registry.as_dict()
    assert dump["hits{vm=a}"] == {"kind": "counter", "value": 3}
    assert dump["hits{vm=b}"]["value"] == 1
    assert dump["depth"] == {"kind": "gauge", "value": 3}


def test_histogram_log2_buckets():
    hist = Histogram()
    hist.record(0.0)  # dedicated zero bucket
    hist.record(0.3)  # (0.25, 0.5]
    hist.record(1.0)  # (0.5, 1]
    hist.record(380.0)  # (256, 512]
    assert hist.count == 4
    assert hist.total == pytest.approx(381.3)
    value = hist.as_value()
    assert value["buckets"]["le_0"] == 1
    assert value["buckets"]["le_0.5"] == 1
    assert value["buckets"]["le_1"] == 1
    assert value["buckets"]["le_512"] == 1
    # The quantile falls in the right bucket across 3 orders of magnitude.
    assert hist.quantile(0.99) == 512.0


def test_histogram_distinguishes_fault_classes():
    """The Fig 5/6 signal: ~0.25us private writes vs ~380us CoW breaks
    land in well-separated buckets."""
    hist = Histogram()
    hist.record_many([0.25] * 50)
    hist.record_many([380.0] * 50)
    assert hist.quantile(0.25) <= 0.25
    assert hist.quantile(0.75) == 512.0


def test_histogram_quantile_edges():
    hist = Histogram()
    # Empty histograms have no quantiles — None, never a guess.  The
    # emptiness check wins even over an out-of-range q.
    assert hist.quantile(0.5) is None
    assert hist.quantile(7.0) is None
    hist.record(3.0)  # single sample, lands in (2, 4]
    # Upper-bound biased: every quantile of a one-sample histogram is
    # that sample's bucket bound, including both extremes.
    assert hist.quantile(0.0) == 4.0
    assert hist.quantile(0.5) == 4.0
    assert hist.quantile(1.0) == 4.0
    with pytest.raises(ValueError):
        hist.quantile(-0.1)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_registry_values_by_name():
    registry = MetricRegistry()
    registry.counter("probe_s", tenant="t001").inc(2.5)
    registry.counter("probe_s", tenant="t000").inc(1.0)
    registry.counter("other").inc()
    values = registry.values("probe_s")
    assert values == [
        ((("tenant", "t000"),), 1.0),
        ((("tenant", "t001"),), 2.5),
    ]
    assert registry.values("absent") == []


def test_registry_deterministic_order():
    registry = MetricRegistry()
    registry.counter("z").inc()
    registry.counter("a", vm="x").inc()
    registry.gauge("m").set(1)
    assert [name for name, _ in registry] == sorted(
        name for name, _ in registry
    )
    assert "a{vm=x}" in registry.format()


# -- tracer core ------------------------------------------------------------


def test_disabled_tracer_records_nothing():
    host = run_detection(enable=False)
    tracer = host.engine.tracer
    assert not tracer.enabled
    assert tracer.events() == []
    assert len(tracer.metrics) == 0


def test_enabled_tracer_captures_span_families():
    host = run_detection(enable=True)
    names = {event[1] for event in host.engine.tracer.events()}
    assert "ksm.pass" in names
    assert "vm_exit" in names
    assert {"detect.t0", "detect.t1", "detect.t2", "detect.run"} <= names
    metrics = host.engine.tracer.metrics.as_dict()
    assert metrics["detect.verdicts{verdict=nested}"]["value"] == 1
    assert metrics["detect.write_fault_us{phase=t1}"]["value"]["count"] == 8


def test_trace_determinism_same_seed_byte_identical():
    dumps = []
    for _ in range(2):
        host = run_detection(seed=23)
        trace = host.engine.tracer.to_chrome()
        dumps.append(json.dumps(trace, sort_keys=True))
        obs.reset()
    assert dumps[0] == dumps[1]


def test_wall_clock_excluded_by_default():
    host = run_detection()
    trace = host.engine.tracer.to_chrome()
    assert not any(
        "wall_ns" in event.get("args", {})
        for event in trace["traceEvents"]
    )
    walled = host.engine.tracer.to_chrome(include_wall=True)
    assert any(
        "wall_ns" in event.get("args", {})
        for event in walled["traceEvents"]
        if event["ph"] != "M"
    )


def test_ring_buffer_caps_and_counts_drops():
    engine = Engine()
    tracer = engine.tracer.enable(ring_capacity=10)
    for index in range(25):
        tracer.instant(f"e{index}", "test")
    events = tracer.events()
    assert len(events) == 10
    assert tracer.dropped_events == 15
    # Oldest dropped, newest kept.
    assert events[-1][1] == "e24"
    trace = chrome_trace([tracer])
    assert trace["otherData"]["dropped_events"] == 15


def test_ring_buffer_drops_exposed_as_gauge():
    engine = Engine()
    tracer = engine.tracer.enable(ring_capacity=4)
    for index in range(9):
        tracer.instant(f"e{index}", "test")
    tracer.flush()
    dump = tracer.metrics.as_dict()
    assert dump["trace.drops"] == {"kind": "gauge", "value": 5}
    # No drops → gauge reads zero rather than being absent, so a diff
    # of two metric dumps always has the key to compare.
    other = Engine().tracer.enable()
    other.instant("only", "test")
    other.flush()
    assert other.metrics.as_dict()["trace.drops"]["value"] == 0


def test_vm_exit_aggregation_flushes_deterministically():
    engine = Engine()
    tracer = engine.tracer.enable()
    tracer.exit_sample_interval = 4

    class Reason:
        def __init__(self, value):
            self.value = value

    timer = Reason("timer")
    for _ in range(10):
        tracer.vm_exit("vm0", timer, 2, 1)
    events = tracer.events()  # flushes the remainder
    exits = [e for e in events if e[1] == "vm_exit"]
    assert len(exits) == 3  # 4 + 4 + flush(2)
    assert sum(e[7]["count"] for e in exits) == 20
    assert (
        tracer.metrics.as_dict()["vm_exits{reason=timer,vm=vm0}"]["value"] == 20
    )


# -- export / validation ----------------------------------------------------


def test_chrome_trace_structure():
    engine = Engine()
    tracer = engine.tracer.enable()
    tracer.instant("marker", "test", track="a")
    tracer.complete("span", "test", 0.0, track="b", args={"k": 1})
    tracer.counter_sample("series", {"v": 2})
    trace = chrome_trace([tracer])
    by_phase = {}
    for event in trace["traceEvents"]:
        by_phase.setdefault(event["ph"], []).append(event)
    # One process_name + three thread_name metadata events.
    assert len(by_phase["M"]) == 4
    assert by_phase["i"][0]["s"] == "t"
    assert by_phase["X"][0]["args"] == {"k": 1}
    assert by_phase["C"][0]["args"] == {"v": 2}
    assert validate_trace(trace) == []


def test_chrome_trace_counter_tracks_with_labels():
    """Counter samples become ph=C events on their own named track, so
    Perfetto renders them as stacked area charts next to the spans."""
    engine = Engine()
    tracer = engine.tracer.enable()
    tracer.complete("work", "test", 0.0, track="spans")
    tracer.counter_sample(
        "queue", {"pending": 3, "depth": 2}, track="counters"
    )
    tracer.counter_sample("queue", {"pending": 1, "depth": 5}, track="counters")
    trace = chrome_trace([tracer])
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert [e["args"] for e in counters] == [
        {"pending": 3, "depth": 2},
        {"pending": 1, "depth": 5},
    ]
    # The counter track gets its own tid + thread_name metadata, distinct
    # from the span track.
    track_names = {
        e["args"]["name"]: e["tid"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "counters" in track_names
    assert "spans" in track_names
    assert {e["tid"] for e in counters} == {track_names["counters"]}
    assert validate_trace(trace) == []


def test_validate_trace_catches_problems():
    assert validate_trace([]) != []
    bad = {
        "traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "X", "name": "y", "pid": 1, "ts": -1, "dur": "no"},
            {"ph": "i", "pid": 1, "ts": 0},
        ]
    }
    problems = validate_trace(bad, require_names=["absent"])
    assert any("bad phase" in p for p in problems)
    assert any("bad ts" in p for p in problems)
    assert any("missing name" in p for p in problems)
    assert any("'absent'" in p for p in problems)


def test_validate_cli_prints_first_offending_event(tmp_path, capsys):
    from repro.obs import validate as validate_cli

    good = {
        "traceEvents": [
            {"ph": "i", "name": "ok", "pid": 1, "ts": 0.0, "s": "t"}
        ]
    }
    path = tmp_path / "good.json"
    path.write_text(json.dumps(good))
    assert validate_cli.main([str(path)]) == 0

    bad = dict(good)
    bad["traceEvents"] = good["traceEvents"] + [
        {"ph": "X", "name": "broken", "pid": 1, "ts": -5.0, "dur": 1.0}
    ]
    bad_path = tmp_path / "bad.json"
    bad_path.write_text(json.dumps(bad))
    assert validate_cli.main([str(bad_path)]) == 1
    err = capsys.readouterr().err
    # The failure is actionable without opening the file: it names the
    # index and dumps the offending event itself.
    assert "first offending event traceEvents[1]" in err
    assert '"broken"' in err


def test_merged_export_assigns_pids():
    engines = [Engine(), Engine()]
    for index, engine in enumerate(engines):
        engine.tracer.label = f"host-{index}"
        engine.tracer.enable()
        engine.tracer.instant("tick", "test")
    trace = chrome_trace()  # registered order
    pids = {e["pid"] for e in trace["traceEvents"]}
    assert pids == {1, 2}
    names = [
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["name"] == "process_name"
    ]
    assert names == ["host-0", "host-1"]


# -- config reach-through ---------------------------------------------------


def test_configure_enables_new_engines():
    obs.configure(enabled=True, ring_capacity=100)
    engine = Engine()
    assert engine.tracer.enabled
    assert engine.tracer.ring_capacity == 100
    assert engine.tracer in obs.tracers()
    obs.reset()
    assert obs.tracers() == []
    assert not Engine().tracer.enabled


# -- perf counters ----------------------------------------------------------


def test_perf_snapshot_delta():
    engine = Engine()
    before = engine.perf.snapshot()
    engine.perf.events_dispatched += 5
    engine.perf.ksm_pages_scanned += 7
    delta = engine.perf.delta(before)
    assert delta["events_dispatched"] == 5
    assert delta["ksm_pages_scanned"] == 7
    assert delta["migration_pages"] == 0


# -- CLI wiring -------------------------------------------------------------


def test_cli_trace_out_produces_valid_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert (
        main(
            ["--seed", "11", "--trace-out", str(path), "detect", "--pages", "8"]
        )
        == 0
    )
    err = capsys.readouterr().err
    assert "[trace] wrote" in err
    trace = json.loads(path.read_text())
    problems = validate_trace(
        trace,
        require_names=["vm_exit", "ksm.pass", "migration.", "detect."],
    )
    assert problems == []
    # detect builds two engines: the clean and the compromised host.
    assert {e["pid"] for e in trace["traceEvents"]} == {1, 2}


def test_cli_metrics_to_stderr(capsys):
    assert main(["--seed", "11", "--metrics", "detect", "--pages", "8"]) == 0
    captured = capsys.readouterr()
    assert "[metrics]" in captured.err
    assert "detect.write_fault_us" in captured.err
    assert "[metrics]" not in captured.out


def test_cli_perf_to_stderr(capsys):
    assert main(["--seed", "11", "--perf", "detect", "--pages", "8"]) == 0
    captured = capsys.readouterr()
    assert "[perf]" in captured.err
    assert "events_dispatched" in captured.err
    assert "[perf]" not in captured.out


def test_cli_perf_json(capsys):
    assert main(["--seed", "11", "--perf-json", "detect", "--pages", "8"]) == 0
    captured = capsys.readouterr()
    records = [
        json.loads(line)
        for line in captured.err.splitlines()
        if line.startswith("{")
    ]
    assert len(records) == 2
    assert all(r["events_dispatched"] > 0 for r in records)
    assert records[0]["label"] == "clean guest"


def test_cli_resets_obs_state(tmp_path):
    path = tmp_path / "trace.json"
    assert (
        main(
            ["--seed", "11", "--trace-out", str(path), "detect", "--pages", "8"]
        )
        == 0
    )
    assert obs.tracers() == []
    assert not obs.active_config().enabled


# -- fleet ------------------------------------------------------------------


def test_run_fleet_trace(tmp_path):
    from repro.cloud import run_fleet

    result = run_fleet(
        hosts=2,
        tenants=4,
        seed=42,
        churn_operations=0,
        rebalance_moves=0,
        campaigns=1,
        sweeps=1,
        file_pages=8,
        wait_seconds=10.0,
    )
    assert result.tracer.events() == []  # trace defaults off

    obs.reset()
    result = run_fleet(
        hosts=2,
        tenants=4,
        seed=42,
        churn_operations=0,
        rebalance_moves=0,
        campaigns=1,
        sweeps=1,
        file_pages=8,
        wait_seconds=10.0,
        trace=True,
    )
    names = {event[1] for event in result.tracer.events()}
    assert "fleet.place" in names
    assert "fleet.sweep" in names
    assert "detect.probe" in names
    path = tmp_path / "fleet.json"
    trace = result.write_trace(path)
    assert validate_trace(trace) == []
    assert path.exists()
