"""The monitoring service: multi-tenant sweeps."""

import pytest

from repro import scenarios
from repro.core.detection.service import MonitoringService
from repro.core.rootkit.stealth import ImpersonationMirror
from repro.errors import DetectionError
from repro.hypervisor.ksm import KsmDaemon


def _multi_tenant_host(compromise="tenant-b"):
    """Three tenants; optionally one behind an installed CloudSkulk."""
    host = scenarios.testbed(seed=64)
    locators = {}
    for index, name in enumerate(("tenant-a", "tenant-b", "tenant-c")):
        config = scenarios.victim_config(
            name=name,
            image=f"/var/lib/images/{name}.qcow2",
            ssh_host_port=2300 + index,
            monitor_port=5600 + index,
        )
        vm = scenarios.launch_victim(host, config)
        state = {"guest": vm.guest}
        locators[name] = (lambda s: (lambda: s["guest"]))(state)
    ksm = KsmDaemon(host.machine)
    ksm.start()
    service = MonitoringService(host, file_pages=12)
    mirror = None
    if compromise is not None:
        report = scenarios.install_cloudskulk(host, target_name=compromise)
        mirror = ImpersonationMirror(report.guestx_vm.guest)
    for name, locator in locators.items():
        interface = service.register_tenant(name, locator)
        if name == compromise and mirror is not None:
            interface.observers.append(mirror)
    return host, service


def test_sweep_singles_out_the_compromised_tenant():
    host, service = _multi_tenant_host(compromise="tenant-b")
    report = host.engine.run(host.engine.process(service.sweep()))
    assert report.compromised_tenants == ["tenant-b"]
    assert report.inconclusive_tenants == []
    verdicts = {f.tenant_name: f.verdict for f in report.findings}
    assert verdicts == {
        "tenant-a": "clean",
        "tenant-b": "nested",
        "tenant-c": "clean",
    }


def test_sweep_clean_host_all_clean():
    host, service = _multi_tenant_host(compromise=None)
    report = host.engine.run(host.engine.process(service.sweep()))
    assert report.compromised_tenants == []
    assert all(f.verdict == "clean" for f in report.findings)


def test_sweep_agrees_with_vmcs_scan():
    host, service = _multi_tenant_host(compromise="tenant-b")
    report = host.engine.run(host.engine.process(service.sweep()))
    assert report.consistent is True
    assert report.vmcs_scan.nested_hypervisor_detected


def test_sweep_summary_renders():
    host, service = _multi_tenant_host(compromise="tenant-b")
    report = host.engine.run(host.engine.process(service.sweep()))
    text = report.summary()
    assert "tenant-b" in text
    assert "nested" in text
    assert "vmcs-scan" in text


def test_service_validation(host):
    service = MonitoringService(host)
    with pytest.raises(DetectionError):
        host.engine.run(host.engine.process(service.sweep()))
    service.register_tenant("x", lambda: None)
    with pytest.raises(DetectionError):
        service.register_tenant("x", lambda: None)


def test_service_requires_l0(nested_env):
    _host, report = nested_env
    with pytest.raises(DetectionError):
        MonitoringService(report.guestx_vm.guest)
