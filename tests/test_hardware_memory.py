"""Physical memory: frames, CoW mechanics, sharing bookkeeping."""

import pytest

from repro.errors import MemoryError_
from repro.hardware.memory import (
    PAGE_SIZE,
    Frame,
    PhysicalMemory,
    WriteOutcome,
    content_digest,
)


@pytest.fixture
def memory():
    return PhysicalMemory(size_mb=64)


def test_allocate_and_read(memory):
    pfn = memory.allocate(b"hello")
    assert memory.read(pfn) == b"hello"


def test_untouched_page_reads_zero(memory):
    assert memory.read(12345) == b""


def test_write_to_unmapped_rejected(memory):
    with pytest.raises(MemoryError_):
        memory.write(999, b"x")


def test_content_size_limit():
    with pytest.raises(MemoryError_):
        Frame(0, b"x" * (PAGE_SIZE + 1))


def test_write_updates_content_and_digest(memory):
    pfn = memory.allocate(b"before")
    frame = memory.frame(pfn)
    old_digest = frame.digest
    memory.write(pfn, b"after")
    assert memory.read(pfn) == b"after"
    assert memory.frame(pfn).digest != old_digest


def test_digest_matches_content_digest(memory):
    pfn = memory.allocate(b"abc")
    assert memory.frame(pfn).digest == content_digest(b"abc")


def test_free_unmapped_rejected(memory):
    with pytest.raises(MemoryError_):
        memory.free(77)


def test_free_then_read_zero(memory):
    pfn = memory.allocate(b"bye")
    memory.free(pfn)
    assert memory.read(pfn) == b""


def test_remap_shares_frame(memory):
    a = memory.allocate(b"same")
    b = memory.allocate(b"same")
    target = memory.frame(a)
    memory.remap(b, target)
    assert memory.frame(b) is target
    assert target.refcount == 2
    assert memory.allocated_pages == 2
    assert memory.distinct_frames == 1
    assert memory.pages_saved_by_sharing == 1


def test_cow_break_on_shared_write(memory):
    a = memory.allocate(b"same")
    b = memory.allocate(b"same")
    memory.remap(b, memory.frame(a))
    outcome = memory.write(b, b"changed")
    assert outcome.cow_broken
    assert memory.read(a) == b"same"
    assert memory.read(b) == b"changed"
    assert memory.frame(a).refcount == 1


def test_write_to_private_page_no_cow(memory):
    pfn = memory.allocate(b"private")
    outcome = memory.write(pfn, b"still private")
    assert not outcome.cow_broken


def test_sole_mapper_of_stable_frame_still_cows(memory):
    pfn = memory.allocate(b"stable")
    memory.frame(pfn).ksm_shared = True
    outcome = memory.write(pfn, b"changed")
    assert outcome.cow_broken
    assert not memory.frame(pfn).ksm_shared


def test_mergeable_generation_tracks_allocs(memory):
    before = memory.mergeable_generation
    memory.allocate(b"x", mergeable=False)
    assert memory.mergeable_generation == before
    memory.allocate(b"y", mergeable=True)
    assert memory.mergeable_generation == before + 1


def test_write_epoch_tracks_mergeable_writes(memory):
    plain = memory.allocate(b"p")
    mergeable = memory.allocate(b"m", mergeable=True)
    before = memory.write_epoch
    memory.write(plain, b"p2")
    assert memory.write_epoch == before
    memory.write(mergeable, b"m2")
    assert memory.write_epoch == before + 1


def test_iter_mergeable(memory):
    memory.allocate(b"no")
    yes = memory.allocate(b"yes", mergeable=True)
    found = dict(memory.iter_mergeable())
    assert list(found) == [yes]


def test_alloc_page_counts_first_touch(memory):
    outcome = WriteOutcome()
    memory.alloc_page(outcome)
    assert outcome.first_touch_levels == 1


def test_exhaustion():
    tiny = PhysicalMemory(size_mb=1)  # 256 pages
    for _ in range(tiny.total_pages):
        tiny.allocate()
    with pytest.raises(MemoryError_):
        tiny.allocate()


def test_bulk_noops_at_host_level(memory):
    assert memory.touch_bulk(100) == 0
    memory.dirty_bulk(50)  # must not raise


def test_read_many_matches_read(memory):
    pfns = [memory.allocate(f"page-{i}".encode()) for i in range(8)]
    probe = pfns + [424242]  # include a never-allocated pfn
    assert memory.read_many(probe) == [(pfn, memory.read(pfn)) for pfn in probe]


def test_mergeable_pfns_tracks_allocate_and_free(memory):
    plain = memory.allocate(b"plain", mergeable=False)
    merge_a = memory.allocate(b"a", mergeable=True)
    merge_b = memory.allocate(b"b", mergeable=True)
    assert memory.mergeable_pfns() == [merge_a, merge_b]
    assert plain not in memory.mergeable_pfns()
    memory.free(merge_a)
    assert memory.mergeable_pfns() == [merge_b]
