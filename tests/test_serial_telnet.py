"""Telnet monitor server/client edge cases."""

import pytest

from repro.qemu.devices.serial import PROMPT, TelnetClient, TelnetMonitorServer


def test_banner_carries_version_and_prompt(host, victim):
    def run(e):
        client = TelnetClient(host.net_node, host.net_node, 5555)
        banner = yield from client.open()
        client.close()
        return banner

    banner = host.engine.run(host.engine.process(run(host.engine)))
    assert "QEMU" in banner
    assert banner.endswith(PROMPT)


def test_multiple_sequential_sessions(host, victim):
    def run(e):
        outputs = []
        for _ in range(3):
            client = TelnetClient(host.net_node, host.net_node, 5555)
            yield from client.open()
            out = yield from client.command("info status")
            outputs.append(out)
            client.close()
        return outputs

    outputs = host.engine.run(host.engine.process(run(host.engine)))
    assert outputs == ["VM status: running"] * 3


def test_concurrent_sessions(host, victim):
    results = []

    def session(e, tag):
        client = TelnetClient(host.net_node, host.net_node, 5555)
        yield from client.open()
        out = yield from client.command("info kvm")
        results.append((tag, out))
        client.close()

    host.engine.process(session(host.engine, "a"))
    host.engine.process(session(host.engine, "b"))
    host.engine.run(until=host.engine.now + 2.0)
    assert sorted(results) == [
        ("a", "kvm support: enabled"),
        ("b", "kvm support: enabled"),
    ]


def test_error_reply_format(host, victim):
    def run(e):
        client = TelnetClient(host.net_node, host.net_node, 5555)
        yield from client.open()
        out = yield from client.command("bogus_command")
        client.close()
        return out

    out = host.engine.run(host.engine.process(run(host.engine)))
    assert out.startswith("error:")
    assert "bogus_command" in out


def test_empty_command_returns_prompt_only(host, victim):
    def run(e):
        client = TelnetClient(host.net_node, host.net_node, 5555)
        yield from client.open()
        out = yield from client.command("")
        client.close()
        return out

    assert host.engine.run(host.engine.process(run(host.engine))) == ""


def test_server_close_idempotent_and_frees_port(host, victim):
    server = victim.monitor_server
    server.close()
    server.close()
    assert host.net_node.listener(5555) is None
    # A fresh server can rebind the port.
    TelnetMonitorServer(host.net_node, 5555, victim.monitor)
    assert host.net_node.listener(5555) is not None


def test_client_close_does_not_kill_server(host, victim):
    def run(e):
        first = TelnetClient(host.net_node, host.net_node, 5555)
        yield from first.open()
        first.close()
        yield e.timeout(0.1)
        second = TelnetClient(host.net_node, host.net_node, 5555)
        yield from second.open()
        out = yield from second.command("info status")
        second.close()
        return out

    assert (
        host.engine.run(host.engine.process(run(host.engine)))
        == "VM status: running"
    )
