"""Shared fleet/detection fingerprint helpers and pinned baselines.

One place for the constants and fingerprint extractors that several
suites (chaos determinism, fleet fan-out, page store, scenario matrix)
previously each carried a private copy of:

* ``FLEET_4X12`` — the exact parameter set of the ``fleet_sweep_4x12``
  benchmark scenario, whose fingerprint is pinned in BASELINE /
  BENCH_core.json;
* ``FLEET_SWEEP_4X12_PIN`` / :func:`fleet_sweep_fingerprint` — the
  recorded outcome of that scenario and the extractor that reproduces
  its shape from any :class:`FleetRunResult`;
* :func:`fleet_fingerprint` — the rich everything-a-branch-computed
  fingerprint used by the fork-determinism bar;
* ``DETECTION_PINS_SEED7`` / :func:`detection_fingerprint` — the paper's
  Figs 5/6 single-host medians at seed 7, pinned pre-page-store-swap.

Any drift against a pin means simulated behaviour changed — these are
regression tripwires, not tunables.  Re-pin only with a bench baseline
refresh.
"""

#: The exact parameter set of the ``fleet_sweep_4x12`` benchmark
#: scenario (benchmarks/perf_report.py).
FLEET_4X12 = dict(
    hosts=4,
    tenants=12,
    seed=42,
    churn_operations=6,
    rebalance_moves=1,
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)

#: The recorded ``fleet_sweep_4x12`` fingerprint, matched exactly — any
#: drift means something perturbed the fault-free baseline.
FLEET_SWEEP_4X12_PIN = {
    "virtual_now": 538.6211645267207,
    "placements": 15,
    "migrations": 1,
    "tenants_probed": 13,
    "compromised": ["t000@h02"],
    "recall": 1.0,
}


def fleet_sweep_fingerprint(result):
    """The ``FLEET_SWEEP_4X12_PIN``-shaped summary of a fleet run."""
    engine = result.datacenter.engine
    sweep = result.monitor.reports[0]
    return {
        "virtual_now": engine.now,
        "placements": engine.perf.cloud_placements,
        "migrations": engine.perf.cloud_migrations,
        "tenants_probed": sweep.tenants_probed,
        "compromised": [f"{t}@{h}" for t, h in sweep.compromised],
        "recall": result.recall,
    }


def fleet_fingerprint(result):
    """Everything a branch computed, down to the sweep summaries.

    The fork-determinism comparator: a branch forked off a warmed fleet
    must produce a fingerprint equal to the same branch run cold.
    """
    engine = result.datacenter.engine
    return {
        "virtual_now": engine.now,
        "recall": result.recall,
        "latencies": tuple(result.detection_latencies),
        "campaigns": [
            (e.tenant_name, e.host_name, e.installed_at, e.detected_at)
            for e in result.campaign.events
        ],
        "sweeps": [report.summary() for report in result.monitor.reports],
        "injections": (
            None if result.injector is None else result.injector.injections
        ),
        "inventory": result.datacenter.inventory_lines(),
    }


#: Figs 5/6 medians at seed 7 (file_pages=8, wait_seconds=6.0), captured
#: on the commit preceding the page-store swap.
DETECTION_PINS_SEED7 = {
    "clean": {
        "verdict": "clean",
        "median_t0": 0.2514679386400156,
        "median_t1": 382.90126544443945,
        "median_t2": 0.2512034459957102,
        "virtual_now": 47.725200102624754,
    },
    "nested": {
        "verdict": "nested",
        "median_t0": 0.2514679386400156,
        "median_t1": 382.90126544443945,
        "median_t2": 382.08044135947523,
        "virtual_now": 89.96699765255683,
    },
}


def detection_fingerprint(nested, seed=7, file_pages=8, wait_seconds=6.0):
    """Run one single-host detection scenario and fingerprint it."""
    from repro import scenarios
    from repro.core.detection.dedup_detector import DedupDetector

    host, cloud, _ksm, _locator = scenarios.detection_setup(
        nested=nested, seed=seed
    )
    detector = DedupDetector(
        host, cloud, file_pages=file_pages, wait_seconds=wait_seconds
    )
    report = host.engine.run(host.engine.process(detector.run()))
    verdict = report.verdict
    return {
        "verdict": verdict.verdict,
        "median_t0": verdict.median_t0,
        "median_t1": verdict.median_t1,
        "median_t2": verdict.median_t2,
        "virtual_now": host.engine.now,
    }
