"""Pre-copy live migration: convergence, downtime, identity transfer."""

import pytest

from repro.errors import MigrationError
from repro.migration.precopy import PreCopyMigration
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload
from repro import scenarios


def _destination(host, source_vm, name="dest0", port=4444):
    qemu_img_create(host, f"/var/lib/images/{name}.qcow2", 20)
    config = source_vm.config.clone_for_destination(
        name, incoming_port=port, keep_hostfwds=False
    )
    config.drives = [DriveSpec(f"/var/lib/images/{name}.qcow2")]
    vm, _ = launch_vm(host, config)
    return vm


def _migrate(host, vm, port=4444):
    start = host.engine.now
    vm.monitor.execute(f"migrate -d tcp:127.0.0.1:{port}")
    host.engine.run(vm.migration_process)
    return host.engine.now - start


def test_idle_migration_completes(host, victim):
    dest = _destination(host, victim)
    elapsed = _migrate(host, victim)
    stats = victim.migration_stats
    assert stats.status == "completed"
    assert victim.status == "postmigrate"
    assert dest.status == "running"
    assert 5.0 < elapsed < 60.0


def test_guest_identity_preserved(host, victim):
    guest = victim.guest
    guest.fs.create("/home/user/notes.txt", 4096, content_seed="notes")
    pfns, _ = guest.kernel.load_file("/home/user/notes.txt")
    original = guest.memory.read(pfns[0])
    dest = _destination(host, victim)
    _migrate(host, victim)
    assert dest.guest is guest
    assert guest.depth == 1
    assert guest.qemu_vm is dest
    # Page-cache pfns still resolve to the same content on the new side.
    assert guest.memory.read(pfns[0]) == original
    assert guest.kernel.booted


def test_downtime_under_cap(host, victim):
    _destination(host, victim)
    _migrate(host, victim)
    assert victim.migration_stats.downtime < 0.5


def test_dirty_workload_forces_iterations(host, victim):
    workload = IdleWorkload()
    workload.start(victim.guest)
    _destination(host, victim)
    _migrate(host, victim)
    workload.stop()
    assert victim.migration_stats.iterations >= 2


def test_compile_workload_triggers_auto_converge(host, victim):
    workload = KernelCompileWorkload()
    workload.start(victim.guest, loop_forever=True)
    _destination(host, victim)
    elapsed = _migrate(host, victim)
    workload.stop()
    stats = victim.migration_stats
    assert stats.throttle_percentage >= 20
    assert stats.iterations > 5
    assert elapsed > 100.0
    # Throttle released after completion.
    assert victim.migration_stats.status == "completed"


def test_throttle_reset_after_migration(host, victim):
    workload = KernelCompileWorkload()
    workload.start(victim.guest, loop_forever=True)
    dest = _destination(host, victim)
    _migrate(host, victim)
    workload.stop()
    assert dest.guest.kernel.cpu_throttle == 0.0


def test_workload_survives_switchover(host, victim):
    workload = IdleWorkload()
    process = workload.start(victim.guest)
    dest = _destination(host, victim)
    _migrate(host, victim)
    ticks_at_switch = None
    host.engine.run(until=host.engine.now + 10.0)
    workload.stop()
    result = host.engine.run(process)
    assert result.metrics["ticks"] > 0
    assert dest.guest.qemu_vm is dest


def test_migrate_without_guest_rejected(host, victim):
    dest = _destination(host, victim)
    with pytest.raises(MigrationError):
        PreCopyMigration(dest)  # destination has no guest yet


def test_migrate_to_missing_port_fails(host, victim):
    migration = PreCopyMigration(victim, destination_port=9999)
    process = migration.start()
    with pytest.raises(MigrationError):
        host.engine.run(process)
    assert migration.stats.status == "failed"


def test_info_migrate_reports_progress(host, victim):
    _destination(host, victim)
    victim.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(victim.migration_process)
    text = victim.monitor.execute("info migrate")
    assert "Migration status: completed" in text
    assert "dirty sync count:" in text
    assert "transferred ram:" in text


def test_zero_pages_cheap(host, victim):
    """Never-touched RAM must not dominate the transfer volume."""
    _destination(host, victim)
    _migrate(host, victim)
    stats = victim.migration_stats
    memory_bytes = victim.config.memory_mb * 1024 * 1024
    assert stats.zero_pages > 0
    assert stats.ram_bytes < memory_bytes  # zeros compressed to headers


def test_bandwidth_cap_respected(host, victim):
    _destination(host, victim)
    victim.monitor.execute("migrate_set_speed 8m")
    elapsed_slow = _migrate(host, victim)
    # 8 MiB/s over ~650 MB of resident pages takes > 60 s.
    assert elapsed_slow > 60.0


def test_faster_speed_shortens_migration(host):
    times = {}
    for speed, port in (("32m", 4444), ("128m", 4445)):
        vm = scenarios.launch_victim(
            host,
            scenarios.victim_config(
                name=f"v{port}",
                image=f"/var/lib/images/v{port}.qcow2",
                ssh_host_port=20000 + port,
                monitor_port=30000 + port,
            ),
        )
        _destination(host, vm, name=f"d{port}", port=port)
        vm.monitor.execute(f"migrate_set_speed {speed}")
        vm.monitor.execute(f"migrate -d tcp:127.0.0.1:{port}")
        host.engine.run(vm.migration_process)
        times[speed] = vm.migration_stats.total_time
    assert times["128m"] < times["32m"] / 2
