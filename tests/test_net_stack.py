"""Network nodes, links, NAT routing, connections."""

import pytest

from repro.errors import NetworkError
from repro.net.stack import Link, NetworkNode


@pytest.fixture
def net(engine):
    client = NetworkNode(engine, "client")
    host = NetworkNode(engine, "host")
    guest = NetworkNode(engine, "guest")
    Link(client, host, 1e9, 1e-4, name="wire")
    Link(host, guest, 5e9, 5e-5, name="usernet", inbound_allowed=False)
    return client, host, guest


def test_route_direct(net):
    client, host, _ = net
    path = client.route_to(host)
    assert len(path) == 1


def test_route_to_self_empty(net):
    client, _, _ = net
    assert client.route_to(client) == []


def test_nat_blocks_external_origin(net):
    client, _, guest = net
    with pytest.raises(NetworkError):
        client.route_to(guest)


def test_nat_allows_guest_outbound(net):
    client, _, guest = net
    path = guest.route_to(client)
    assert len(path) == 2


def test_nat_allows_owner_into_guest(net):
    _, host, guest = net
    path = host.route_to(guest)
    assert len(path) == 1


def test_connect_requires_listener(net):
    client, host, _ = net
    with pytest.raises(NetworkError):
        client.connect(host, 80)


def test_port_conflict_rejected(net):
    _, host, _ = net
    host.listen(80)
    with pytest.raises(NetworkError):
        host.listen(80)


def test_close_port_then_rebind(net):
    _, host, _ = net
    host.listen(80)
    host.close_port(80)
    host.listen(80)
    with pytest.raises(NetworkError):
        host.close_port(9999)


def test_send_and_recv(engine, net):
    client, host, _ = net
    listener = host.listen(7)
    got = []

    def server(e):
        conn = yield listener.accept()
        packet = yield conn.server.recv()
        got.append(packet.payload)
        conn.server.send(b"pong")

    def run(e):
        ep = client.connect(host, 7)
        ep.send(b"ping")
        reply = yield ep.recv()
        return reply.payload

    engine.process(server(engine))
    result = engine.run(engine.process(run(engine)))
    assert result == b"pong"
    assert got == [b"ping"]


def test_in_order_delivery(engine, net):
    client, host, _ = net
    listener = host.listen(9)
    received = []

    def server(e):
        conn = yield listener.accept()
        for _ in range(10):
            packet = yield conn.server.recv()
            received.append(packet.payload)

    def run(e):
        ep = client.connect(host, 9)
        for index in range(10):
            ep.send(None, size_bytes=1000 * (10 - index), kind=index)
        yield e.timeout(1.0)

    engine.process(server(engine))
    # payload None: check via kind meta instead
    def run2(e):
        ep = client.connect(host, 9)
        for index in range(10):
            ep.send(bytes([index]), size_bytes=1000)
        yield e.timeout(1.0)

    engine.run(engine.process(run2(engine)))
    assert received == [bytes([i]) for i in range(10)]


def test_bandwidth_serialization(engine):
    a = NetworkNode(engine, "a")
    b = NetworkNode(engine, "b")
    Link(a, b, 8e6, 0.0)  # 1 MB/s, zero latency
    listener = b.listen(1)
    arrivals = []

    def server(e):
        conn = yield listener.accept()
        while True:
            yield conn.server.recv()
            arrivals.append(e.now)

    def run(e):
        ep = a.connect(b, 1)
        ep.send(None, size_bytes=1_000_000)
        ep.send(None, size_bytes=1_000_000)
        yield e.timeout(5.0)

    engine.process(server(engine))
    engine.run(engine.process(run(engine)))
    assert arrivals[0] == pytest.approx(1.0, rel=0.01)
    assert arrivals[1] == pytest.approx(2.0, rel=0.01)


def test_latency_added(engine):
    a = NetworkNode(engine, "a")
    b = NetworkNode(engine, "b")
    Link(a, b, 1e12, 0.5)
    listener = b.listen(1)
    stamp = []

    def server(e):
        conn = yield listener.accept()
        yield conn.server.recv()
        stamp.append(e.now)

    def run(e):
        ep = a.connect(b, 1)
        ep.send(b"x")
        yield e.timeout(2.0)

    engine.process(server(engine))
    engine.run(engine.process(run(engine)))
    assert stamp[0] == pytest.approx(0.5, rel=0.05)


def test_send_on_closed_connection_rejected(engine, net):
    client, host, _ = net
    host.listen(5)
    endpoint = client.connect(host, 5)
    endpoint.close()
    with pytest.raises(NetworkError):
        endpoint.send(b"too late")


def test_link_validation(engine):
    a = NetworkNode(engine, "a")
    b = NetworkNode(engine, "b")
    with pytest.raises(NetworkError):
        Link(a, b, 0, 0.1)
    with pytest.raises(NetworkError):
        Link(a, b, 1e9, -0.1)


def test_min_bandwidth_along_path(engine):
    a = NetworkNode(engine, "a")
    mid = NetworkNode(engine, "m")
    c = NetworkNode(engine, "c")
    Link(a, mid, 10e9, 0.0)
    Link(mid, c, 1e6, 0.0)
    c.listen(2)
    endpoint = a.connect(c, 2)
    assert endpoint.connection.bandwidth_bps == 1e6
