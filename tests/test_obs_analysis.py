"""Trace analytics, run diffing, the bench ledger, and the obs CLI."""

import json
import math

import pytest

from repro import obs
from repro.cli import main
from repro.obs.analysis import (
    TraceAnalysis,
    analyze_trace,
    write_collapsed_stacks,
)
from repro.obs.history import (
    append_bench_history,
    bench_history_record,
    diff_history,
    diff_runs,
    flatten,
    format_diff,
    load_bench_history,
    write_diff_report,
)


@pytest.fixture(autouse=True)
def _obs_isolation():
    obs.reset()
    yield
    obs.reset()


# -- synthetic span trees ----------------------------------------------------


def _span(name, ts, dur, pid=1, tid=1, cat="test", args=None):
    event = {
        "ph": "X",
        "name": name,
        "cat": cat,
        "pid": pid,
        "tid": tid,
        "ts": ts,
        "dur": dur,
    }
    if args is not None:
        event["args"] = args
    return event


def _meta(pid, process=None, tid=None, track=None):
    if process is not None:
        return {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process},
        }
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "name": "thread_name",
        "args": {"name": track},
    }


def synthetic_trace():
    """outer(0..100) { mid(10..60) { leaf(20..40) }, tail(70..95) },
    in recording order (innermost spans complete first)."""
    return {
        "traceEvents": [
            _meta(1, process="engine-a"),
            _meta(1, tid=1, track="work"),
            _span("leaf", 20.0, 20.0),
            _span("mid", 10.0, 50.0),
            _span("tail", 70.0, 25.0),
            _span("outer", 0.0, 100.0),
            {"ph": "i", "name": "mark", "pid": 1, "tid": 1, "ts": 5.0, "s": "t"},
            {"ph": "C", "name": "q", "pid": 1, "tid": 2, "ts": 5.0, "args": {"v": 1}},
        ],
        "otherData": {"dropped_events": 3},
    }


def test_span_tree_nesting_and_self_time():
    analysis = TraceAnalysis(synthetic_trace())
    assert analysis.span_count == 4
    assert analysis.instant_counts == {"mark": 1}
    assert analysis.counter_samples == 1
    assert analysis.dropped_events == 3
    assert analysis.window_us == (0.0, 100.0)
    roots = analysis.tracks[("engine-a", "work")]
    assert [root.name for root in roots] == ["outer"]
    outer = roots[0]
    assert [child.name for child in outer.children] == ["mid", "tail"]
    mid = outer.children[0]
    assert [child.name for child in mid.children] == ["leaf"]
    assert [span.depth for span in outer.walk()] == [0, 1, 2, 1]
    # Self time = duration minus children, the profiler split.
    assert outer.self_us == pytest.approx(25.0)
    assert mid.self_us == pytest.approx(30.0)
    assert mid.children[0].self_us == pytest.approx(20.0)
    assert outer.end_us == 100.0


def test_rejects_non_trace_input():
    with pytest.raises(ValueError, match="traceEvents"):
        TraceAnalysis([1, 2, 3])
    with pytest.raises(ValueError, match="traceEvents"):
        TraceAnalysis({"entries": []})


def test_exact_twin_spans_nest_by_completion_order():
    """Two spans with identical (start, dur): recording is completion
    order, so the later-recorded one finished later — it is the parent."""
    trace = {
        "traceEvents": [
            _span("inner_done_first", 0.0, 10.0),
            _span("outer_done_last", 0.0, 10.0),
        ]
    }
    analysis = TraceAnalysis(trace)
    roots = next(iter(analysis.tracks.values()))
    assert [root.name for root in roots] == ["outer_done_last"]
    assert [c.name for c in roots[0].children] == ["inner_done_first"]
    # The outer twin is fully covered by its child: zero self time.
    assert roots[0].self_us == 0.0


def test_attribution_tracks_names_categories():
    att = TraceAnalysis(synthetic_trace()).attribution()
    track = att["by_track"]["engine-a/work"]
    assert track["spans"] == 4
    # Roots only — nested work is not double-counted.
    assert track["total_us"] == pytest.approx(100.0)
    # Children tile with gaps: self times sum back to the root total.
    assert track["self_us"] == pytest.approx(100.0)
    assert att["by_name"]["mid"] == {
        "count": 1,
        "total_us": pytest.approx(50.0),
        "self_us": pytest.approx(30.0),
    }
    assert att["by_category"]["test"]["count"] == 4
    assert att["by_category"]["test"]["self_us"] == pytest.approx(100.0)


def test_critical_path_descends_longest_child():
    analysis = TraceAnalysis(synthetic_trace())
    path = analysis.critical_path()
    assert path["track"] == "engine-a/work"
    assert path["total_us"] == pytest.approx(100.0)
    # mid (50us) beats tail (25us) at depth 1.
    assert [seg["name"] for seg in path["segments"]] == [
        "outer",
        "mid",
        "leaf",
    ]
    assert [seg["depth"] for seg in path["segments"]] == [0, 1, 2]
    # Track filtering: substring match, or None when nothing matches.
    assert analysis.critical_path(track="work")["track"] == "engine-a/work"
    assert analysis.critical_path(track="nonexistent") is None
    assert TraceAnalysis({"traceEvents": []}).critical_path() is None


def test_collapsed_stacks_self_time_in_virtual_ns():
    lines = TraceAnalysis(synthetic_trace()).collapsed_stacks()
    assert lines == [
        "engine-a;work;outer 25000",
        "engine-a;work;outer;mid 30000",
        "engine-a;work;outer;mid;leaf 20000",
        "engine-a;work;outer;tail 25000",
    ]


def test_write_collapsed_stacks_roundtrip(tmp_path):
    path = tmp_path / "flame.folded"
    count = write_collapsed_stacks(path, TraceAnalysis(synthetic_trace()))
    assert count == 4
    lines = path.read_text().splitlines()
    assert len(lines) == 4
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert stack
        assert int(value) > 0  # integer virtual nanoseconds


# -- probe-overhead attribution ---------------------------------------------


def test_probe_overhead_buckets_by_tenant():
    trace = {
        "traceEvents": [
            _meta(1, process="host-0"),
            _meta(1, tid=1, track="detect"),
            _span("detect.run", 0.0, 5.0),
            _span("detect.probe", 0.0, 5.0, args={"tenant": "t000"}),
            _span("detect.run", 10.0, 7.0),
            _span("detect.probe", 10.0, 7.0, args={"tenant": "t001"}),
        ]
    }
    overhead = TraceAnalysis(trace).probe_overhead()
    assert overhead["source"] == "detect.probe"
    assert overhead["window_us"] == pytest.approx(17.0)
    assert overhead["tenants"]["t000"] == {
        "probes": 1,
        "probe_us": pytest.approx(5.0),
        "overhead_pct": pytest.approx(100.0 * 5.0 / 17.0),
    }
    assert overhead["tenants"]["t001"]["probe_us"] == pytest.approx(7.0)
    # Conservation: per-tenant buckets sum to the detector total.
    assert overhead["total_probe_us"] == overhead["detector_total_us"]
    assert overhead["total_probe_us"] == pytest.approx(12.0)
    assert overhead["overhead_pct"] == pytest.approx(100.0 * 12.0 / 17.0)


def test_probe_overhead_falls_back_to_detector_spans():
    trace = {
        "traceEvents": [
            _meta(2, process="clean guest"),
            _meta(2, tid=1, track="detect"),
            _span("detect.run", 0.0, 40.0, pid=2),
        ]
    }
    overhead = TraceAnalysis(trace).probe_overhead()
    assert overhead["source"] == "detect.run"
    assert list(overhead["tenants"]) == ["clean guest/detect"]
    assert overhead["total_probe_us"] == pytest.approx(40.0)
    assert overhead["detector_total_us"] == pytest.approx(40.0)


def test_probe_overhead_conserves_detector_time_in_fleet():
    """The ISSUE acceptance bar: per-tenant probe attribution sums to
    the scenario's total detector virtual time — *exactly*, because the
    probe span is bit-identical to the detect.run it wraps and fsum of
    the same multiset is correctly rounded regardless of grouping."""
    from repro.cloud import run_fleet

    result = run_fleet(
        hosts=2,
        tenants=4,
        seed=42,
        churn_operations=0,
        rebalance_moves=0,
        campaigns=1,
        sweeps=1,
        file_pages=8,
        wait_seconds=10.0,
        trace=True,
    )
    analysis = TraceAnalysis.from_tracers([result.tracer])
    overhead = analysis.probe_overhead()
    assert overhead["source"] == "detect.probe"
    assert len(overhead["tenants"]) == 4
    # Exact float equality, not approx: this is the conservation check.
    assert overhead["total_probe_us"] == overhead["detector_total_us"]
    assert overhead["total_probe_us"] > 0
    per_tenant = math.fsum(
        entry["probe_us"] for entry in overhead["tenants"].values()
    )
    assert per_tenant == overhead["total_probe_us"]
    # Cross-check against the live-metrics view the matrix runner uses:
    # same number from detect.probe_seconds counters, in seconds.
    metrics = result.probe_metrics()
    assert set(metrics["probe_seconds"]) == set(overhead["tenants"])
    assert metrics["probe_seconds_total"] * 1e6 == pytest.approx(
        overhead["total_probe_us"], rel=1e-9
    )


# -- run diffing -------------------------------------------------------------


def test_flatten_nested_documents():
    assert flatten({"a": {"b": 1}, "c": [2, {"d": "x"}], "e": None}) == {
        "a.b": 1,
        "c[0]": 2,
        "c[1].d": "x",
        "e": "null",
    }
    assert flatten(7) == {"": 7}


def test_diff_runs_clean_on_identical_documents():
    doc = {"x": 1.5, "nested": {"y": [1, 2]}, "s": "ok"}
    report = diff_runs(doc, json.loads(json.dumps(doc)))
    assert report["clean"]
    assert report["compared"] == 4
    assert report["regressions"] == []
    assert "clean: no regressions" in format_diff(report)


def test_diff_runs_thresholds_and_kinds():
    old = {"wall": 10.0, "zero": 0.0, "mode": "fast", "gone": 1}
    new = {"wall": 10.5, "zero": 0.2, "mode": "slow", "fresh": 2}
    # 5% drift passes a 10% threshold; the zero-baseline jump (infinite
    # relative drift, rel_pct=None) and the string flip never do.
    report = diff_runs(old, new, threshold_pct=10.0)
    assert not report["clean"]
    keys = {entry["key"]: entry for entry in report["regressions"]}
    assert "wall" not in keys
    assert keys["zero"]["rel_pct"] is None
    assert keys["mode"]["old"] == "fast"
    assert report["added"] == ["fresh"]
    assert report["removed"] == ["gone"]
    # Threshold 0 demands byte-identical numbers.
    strict = diff_runs(old, {**old, "wall": 10.0000001})
    assert [e["key"] for e in strict["regressions"]] == ["wall"]
    assert strict["regressions"][0]["rel_pct"] == pytest.approx(1e-6)


def test_write_diff_report(tmp_path):
    path = tmp_path / "diff.json"
    report = diff_runs({"a": 1}, {"a": 2})
    write_diff_report(path, report)
    assert json.loads(path.read_text())["regressions"][0]["key"] == "a"


def test_same_seed_summaries_are_byte_identical():
    """Two same-seed detection runs → byte-identical analysis summaries
    → a clean zero-threshold diff: the determinism bar `obs diff` holds
    CI to."""
    from repro import scenarios
    from repro.core.detection.dedup_detector import DedupDetector

    dumps = []
    summaries = []
    for _ in range(2):
        host, cloud, _ksm, _loc = scenarios.detection_setup(
            nested=True, seed=23
        )
        host.engine.tracer.enable()
        detector = DedupDetector(host, cloud, file_pages=8)
        host.engine.run(host.engine.process(detector.run()))
        summary = TraceAnalysis.from_tracers(
            [host.engine.tracer]
        ).summary()
        summaries.append(summary)
        dumps.append(json.dumps(summary, sort_keys=True))
        obs.reset()
    assert dumps[0] == dumps[1]
    report = diff_runs(summaries[0], summaries[1])
    assert report["clean"]
    assert report["compared"] > 50


# -- the bench-history ledger ------------------------------------------------


def _fake_report(wall):
    return {
        "fleet_sweep": {
            "wall_seconds": wall,
            "fingerprint_matches_baseline": True,
            "within_budget": True,
            "fingerprint": {"bulky": list(range(50))},
            "metrics": {"noise": 1},
        }
    }


def test_bench_history_record_condenses():
    record = bench_history_record(
        _fake_report(1.0), quick=True, timestamp="2026-08-08T00:00:00Z"
    )
    assert record["quick"] is True
    assert record["timestamp"] == "2026-08-08T00:00:00Z"
    entry = record["scenarios"]["fleet_sweep"]
    assert entry == {
        "wall_seconds": 1.0,
        "fingerprint_matches_baseline": True,
        "within_budget": True,
    }


def test_history_ledger_append_load_diff(tmp_path):
    ledger = tmp_path / "BENCH_history.jsonl"
    assert load_bench_history(ledger) == []
    assert diff_history(ledger) is None
    append_bench_history(
        ledger,
        bench_history_record(
            _fake_report(1.0), timestamp="2026-08-08T00:00:00Z"
        ),
    )
    assert diff_history(ledger) is None  # one record: nothing to diff
    append_bench_history(
        ledger,
        bench_history_record(
            _fake_report(1.3), timestamp="2026-08-08T01:00:00Z"
        ),
    )
    records = load_bench_history(ledger)
    assert len(records) == 2
    # +30% wall regresses at the default loose threshold...
    report = diff_history(ledger)
    assert not report["clean"]
    assert report["regressions"][0]["key"] == "fleet_sweep.wall_seconds"
    assert report["old"] == "2026-08-08T00:00:00Z"
    # ...and passes a looser one.
    assert diff_history(ledger, threshold_pct=50.0)["clean"]


# -- CLI ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_artifacts(tmp_path_factory):
    """One traced detection run shared by the CLI tests (read-only)."""
    base = tmp_path_factory.mktemp("obs_cli")
    trace = base / "trace.json"
    metrics = base / "metrics.json"
    status = main(
        [
            "--seed",
            "17",
            "--trace-out",
            str(trace),
            "--metrics-out",
            str(metrics),
            "detect",
            "--pages",
            "8",
        ]
    )
    assert status == 0
    return trace, metrics


def test_cli_obs_report_text_and_json(traced_artifacts, tmp_path, capsys):
    trace, metrics = traced_artifacts
    summary_path = tmp_path / "summary.json"
    status = main(
        [
            "obs",
            "report",
            str(trace),
            "--metrics",
            str(metrics),
            "--json",
            str(summary_path),
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "top span names by self time" in out
    assert "probe overhead" in out
    summary = json.loads(summary_path.read_text())
    assert summary["events"]["spans"] > 0
    assert "attribution" in summary
    # --metrics embeds the metrics dump alongside the trace summary, so
    # one file diffs both surfaces.
    assert "metrics" in summary
    # detect has no per-tenant probes: the fallback attribution kicks in.
    assert summary["probe_overhead"]["source"] == "detect.run"


def test_cli_obs_diff_exit_codes(traced_artifacts, tmp_path, capsys):
    trace, _metrics = traced_artifacts
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["obs", "report", str(trace), "--json", str(a)]) == 0
    summary = json.loads(a.read_text())
    b.write_text(json.dumps(summary))
    capsys.readouterr()
    # Identical summaries: clean, exit 0.
    assert main(["obs", "diff", str(a), str(b)]) == 0
    assert "clean: no regressions" in capsys.readouterr().out
    # Perturb one number: dirty, exit 1, report written.
    summary["events"]["spans"] += 1
    b.write_text(json.dumps(summary))
    report_path = tmp_path / "report.json"
    status = main(
        ["obs", "diff", str(a), str(b), "--report-out", str(report_path)]
    )
    assert status == 1
    assert "REGRESSION events.spans" in capsys.readouterr().out
    assert json.loads(report_path.read_text())["clean"] is False
    # Usage error: no files and no --history.
    assert main(["obs", "diff"]) == 2


def test_cli_obs_diff_accepts_raw_traces(traced_artifacts, capsys):
    """Diffing two trace files directly summarizes each on the fly."""
    trace, _metrics = traced_artifacts
    assert main(["obs", "diff", str(trace), str(trace)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_obs_diff_history(tmp_path, capsys):
    ledger = tmp_path / "history.jsonl"
    assert main(["obs", "diff", "--history", str(ledger)]) == 2
    for wall, stamp in ((1.0, "t0"), (1.4, "t1")):
        append_bench_history(
            ledger, bench_history_record(_fake_report(wall), timestamp=stamp)
        )
    capsys.readouterr()
    assert (
        main(["obs", "diff", "--history", str(ledger), "--threshold", "10"])
        == 1
    )
    assert "REGRESSION" in capsys.readouterr().out
    assert (
        main(["obs", "diff", "--history", str(ledger), "--threshold", "100"])
        == 0
    )


def test_cli_obs_flame(traced_artifacts, tmp_path, capsys):
    trace, _metrics = traced_artifacts
    folded = tmp_path / "out.folded"
    assert main(["obs", "flame", str(trace), "-o", str(folded)]) == 0
    lines = folded.read_text().splitlines()
    assert lines == sorted(lines)
    assert any("detect.run" in line for line in lines)
    for line in lines:
        assert int(line.rpartition(" ")[2]) > 0
    capsys.readouterr()
    # Without -o the stacks go to stdout.
    assert main(["obs", "flame", str(trace)]) == 0
    assert capsys.readouterr().out.splitlines() == lines


def test_cli_obs_critical_path(traced_artifacts, tmp_path, capsys):
    trace, _metrics = traced_artifacts
    assert main(["obs", "critical-path", str(trace)]) == 0
    assert "critical path [" in capsys.readouterr().out
    assert main(["obs", "critical-path", str(trace), "--json"]) == 0
    path = json.loads(capsys.readouterr().out)
    assert path["segments"][0]["depth"] == 0
    # A trace with no spans has no critical path: exit 1.
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"traceEvents": []}))
    assert main(["obs", "critical-path", str(empty)]) == 1


def test_analyze_trace_reads_files(traced_artifacts):
    trace, _metrics = traced_artifacts
    analysis = analyze_trace(trace)
    assert analysis.span_count > 0
    assert analysis.format(top=3)


# -- matrix per-variant metric capture ---------------------------------------


CAPTURE_SPEC = """\
name = capture
seed = 11
hosts = 3
tenants = 6
churn_operations = 2
rebalance_moves = 1
campaigns = 1
sweeps = 1
wait_seconds = 6.0

[axis probe]
shallow: file_pages = 8
deep:    file_pages = 16
"""


def test_matrix_capture_metrics_rides_outside_canonical_json():
    from repro.matrix import MatrixRunner, MatrixSpec

    spec = MatrixSpec.loads(CAPTURE_SPEC)
    report = MatrixRunner(spec, capture_metrics=True).run()
    metrics = report.variant_metrics()
    assert set(metrics) == {"probe=shallow", "probe=deep"}
    for entry in metrics.values():
        assert entry["window_virtual_seconds"] > 0
        assert entry["probe_seconds"]  # per-tenant buckets present
        assert entry["probe_seconds_total"] == pytest.approx(
            math.fsum(entry["probe_seconds"].values())
        )
        assert entry["probe_overhead_pct"] > 0
    # Canonical JSON (the pinned surface) excludes the capture, like
    # wall clocks; the timing form keeps it.
    assert '"metrics"' not in report.to_json()
    assert '"metrics"' in report.to_json(include_timing=True)
    # The budget gate: everything violates 0%, nothing violates 1000%.
    violations = report.probe_budget_violations(0.0)
    assert [v for v, _pct in violations] == sorted(
        metrics, key=lambda v: (-metrics[v]["probe_overhead_pct"], v)
    )
    assert report.probe_budget_violations(1000.0) == []
