"""The ``repro`` console-script entry point and module execution."""

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _project_scripts():
    import tomllib

    with open(ROOT / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)["project"]["scripts"]


def test_entry_point_is_declared():
    scripts = _project_scripts()
    assert scripts == {"repro": "repro.cli:main"}


def test_entry_point_target_resolves_and_runs(capsys):
    """Drive exactly what the console script would: the declared callable."""
    import importlib

    target = _project_scripts()["repro"]
    module_name, _, attr = target.partition(":")
    main = getattr(importlib.import_module(module_name), attr)
    assert callable(main)
    assert main(["info"]) == 0
    assert "CloudSkulk" in capsys.readouterr().out


def test_python_dash_m_repro_smoke():
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "info"],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "CloudSkulk" in result.stdout
