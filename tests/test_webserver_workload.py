"""The web service workload and latency probe."""

import pytest

from repro.errors import GuestError
from repro.net.stack import Link, NetworkNode
from repro.workloads.webserver import LatencyProbe, WebService


@pytest.fixture
def served(host):
    from repro import scenarios

    config = scenarios.victim_config()
    config.nics[0].hostfwds.append(("tcp", 8080, 80))
    vm = scenarios.launch_victim(host, config)
    service = WebService(vm.guest, port=80)
    client = NetworkNode(host.engine, "browser")
    Link(client, host.net_node, 941e6, 1.2e-4)
    return host, vm, service, client


def test_requests_round_trip(served):
    host, _vm, service, client = served
    probe = LatencyProbe(client, host.net_node, 8080)
    result = host.engine.run(probe.start(host, requests=20))
    assert len(result.metrics["rtts_ms"]) == 20
    assert service.requests_served == 20
    assert result.metrics["median_ms"] > 0


def test_latency_plausible(served):
    host, _vm, _service, client = served
    probe = LatencyProbe(client, host.net_node, 8080)
    result = host.engine.run(probe.start(host, requests=30))
    median = result.metrics["median_ms"]
    assert 0.3 < median < 5.0


def test_service_blocks_while_vm_paused(served):
    host, vm, service, client = served
    vm.pause()
    probe = LatencyProbe(client, host.net_node, 8080)
    process = probe.start(host, requests=1)
    host.engine.run(until=host.engine.now + 5.0)
    assert service.requests_served == 0
    vm.resume()
    result = host.engine.run(process)
    assert service.requests_served == 1
    # That first request waited out the pause.
    assert result.metrics["rtts_ms"][0] > 1000


def test_probe_stop(served):
    host, _vm, _service, client = served
    probe = LatencyProbe(client, host.net_node, 8080)
    process = probe.start(host, requests=10_000)
    host.engine.call_later(1.0, probe.stop)
    result = host.engine.run(process)
    assert result.stopped_early
    assert 0 < len(result.metrics["rtts_ms"]) < 10_000


def test_service_requires_network():
    from repro.guest.system import System
    from repro.hardware.machine import Machine

    machine = Machine(memory_mb=1024)
    system = System.bare_metal(machine)
    system.net_node = None
    with pytest.raises(GuestError):
        WebService(system)
