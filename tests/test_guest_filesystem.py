"""Files with real per-page content."""

import pytest

from repro.errors import FileSystemError
from repro.guest.filesystem import File, FileSystem, make_random_file
from repro.sim.rng import RngRegistry


def test_file_page_count():
    assert File("/x", 0).num_pages == 0
    assert File("/x", 1).num_pages == 1
    assert File("/x", 4096).num_pages == 1
    assert File("/x", 4097).num_pages == 2
    assert File("/x", 10 * 1024).num_pages == 3


def test_negative_size_rejected():
    with pytest.raises(FileSystemError):
        File("/x", -1)


def test_page_content_deterministic_per_seed():
    a = File("/a", 8192, content_seed="same-seed")
    b = File("/b", 8192, content_seed="same-seed")
    assert a.page_content(0) == b.page_content(0)
    assert a.page_content(0) != a.page_content(1)


def test_default_seed_is_path():
    a = File("/a", 4096)
    b = File("/b", 4096)
    assert a.page_content(0) != b.page_content(0)


def test_explicit_page_contents():
    file = File("/x", 0, page_contents=[b"p0", b"p1"])
    assert file.num_pages == 2
    assert file.page_content(0) == b"p0"
    assert file.page_content(1) == b"p1"


def test_set_page_content():
    file = File("/x", 8192)
    original = file.page_content(1)
    file.set_page_content(1, b"edited")
    assert file.page_content(1) == b"edited"
    assert file.page_content(0) != b"edited"
    assert file.page_content(1) != original


def test_page_out_of_range():
    file = File("/x", 4096)
    with pytest.raises(FileSystemError):
        file.page_content(5)
    with pytest.raises(FileSystemError):
        file.set_page_content(5, b"x")


def test_filesystem_crud():
    fs = FileSystem()
    fs.create("/etc/passwd", 1000)
    assert fs.exists("/etc/passwd")
    assert fs.open("/etc/passwd").size_bytes == 1000
    fs.unlink("/etc/passwd")
    assert not fs.exists("/etc/passwd")
    with pytest.raises(FileSystemError):
        fs.open("/etc/passwd")
    with pytest.raises(FileSystemError):
        fs.unlink("/etc/passwd")


def test_filesystem_listdir():
    fs = FileSystem()
    fs.create("/var/a", 1)
    fs.create("/var/b", 1)
    fs.create("/etc/c", 1)
    assert fs.listdir("/var") == ["/var/a", "/var/b"]
    assert len(fs) == 3


def test_distinct_file_instances_do_not_share_edits():
    """Host and guest copies must diverge independently (File-A-v2)."""
    pages = [b"page0", b"page1"]
    host_copy = File("/f", 0, page_contents=list(pages))
    guest_copy = File("/f", 0, page_contents=list(pages))
    guest_copy.set_page_content(0, b"v2")
    assert host_copy.page_content(0) == b"page0"


def test_make_random_file_deterministic():
    rng_a = RngRegistry(seed=9)
    rng_b = RngRegistry(seed=9)
    a = make_random_file("/m.mp3", 5, rng_a, seed_label="file-a")
    b = make_random_file("/m.mp3", 5, rng_b, seed_label="file-a")
    assert [a.page_content(i) for i in range(5)] == [
        b.page_content(i) for i in range(5)
    ]
    # Pages are unique within the file.
    assert len({a.page_content(i) for i in range(5)}) == 5
