"""Stealth actions: PID swap, history scrub, impersonation mirror."""

import pytest

from repro.core.rootkit.stealth import (
    ImpersonationMirror,
    impersonate_fingerprint,
    scrub_history,
    swap_pid,
)
from repro.errors import RootkitError
from repro.guest.filesystem import make_random_file


def test_swap_pid(host, victim):
    original = victim.process.pid
    swap_pid(host, victim, 4242)
    assert victim.process.pid == 4242
    assert host.kernel.table.get(4242) is victim.process
    assert host.kernel.table.get(original) is None


def test_swap_pid_same_is_noop(host, victim):
    swap_pid(host, victim, victim.process.pid)
    assert victim.process.pid == victim.process.pid


def test_swap_pid_busy_target_rejected(host, victim):
    with pytest.raises(RootkitError):
        swap_pid(host, victim, 1)  # systemd


def test_scrub_history_removes_attack_commands(host):
    host.shell.record("qemu-system-x86_64 -name guestx ...")
    host.shell.record("telnet 127.0.0.1 5555")
    host.shell.record("qemu-img create /tmp/x.qcow2 20G")
    host.shell.record("vim /etc/motd")
    removed = scrub_history(host)
    assert removed == 3
    assert host.shell.history == ["vim /etc/motd"]


def test_impersonate_fingerprint_copies_victim(nested_env):
    from repro.vmi.introspect import introspect

    _host, report = nested_env
    victim = report.nested_vm.guest
    victim.kernel.spawn("postgres", "/usr/bin/postgres")
    impersonate_fingerprint(report.guestx_vm.guest, victim)
    view = introspect(report.guestx_vm)
    assert "postgres" in view.process_names


def test_mirror_loads_delivered_file(nested_env):
    host, report = nested_env
    guestx = report.guestx_vm.guest
    mirror = ImpersonationMirror(guestx)
    file = make_random_file("/delivered.bin", 4, host.rng)
    mirror(file, report.nested_vm.guest)
    assert guestx.fs.exists("/delivered.bin")
    assert "/delivered.bin" in guestx.kernel.page_cache
    assert mirror.mirrored_paths == ["/delivered.bin"]
    # The mirrored copy is byte-identical but a distinct object.
    assert guestx.fs.open("/delivered.bin") is not file
    assert guestx.fs.open("/delivered.bin").page_content(0) == file.page_content(0)
