"""Port forwarding rules and packet hooks — the RITM's vantage point."""

import pytest

from repro.errors import NetworkError
from repro.net.nat import ForwardRule, PacketHook
from repro.net.stack import Link, NetworkNode


@pytest.fixture
def topology(engine):
    client = NetworkNode(engine, "client")
    host = NetworkNode(engine, "host")
    guest = NetworkNode(engine, "guest")
    Link(client, host, 1e9, 1e-4)
    Link(host, guest, 5e9, 5e-5, inbound_allowed=False)
    return client, host, guest


def _echo_server(engine, node, port):
    listener = node.listen(port)

    def server(e):
        conn = yield listener.accept()
        while True:
            packet = yield conn.server.recv()
            conn.server.send(b"echo:" + packet.payload)

    engine.process(server(engine))
    return listener


def _request(engine, client, host, port, payload=b"hello"):
    def run(e):
        ep = client.connect(host, port)
        ep.send(payload)
        reply = yield ep.recv()
        return reply.payload

    return engine.run(engine.process(run(engine)))


def test_forward_rule_splices(engine, topology):
    client, host, guest = topology
    _echo_server(engine, guest, 22)
    rule = ForwardRule(host, 2222, guest, 22)
    assert _request(engine, client, host, 2222) == b"echo:hello"
    assert rule.stats.connections == 1
    assert rule.stats.packets["inbound"] == 1
    assert rule.stats.packets["outbound"] == 1


def test_hook_observes_both_directions(engine, topology):
    client, host, guest = topology
    _echo_server(engine, guest, 22)
    rule = ForwardRule(host, 2222, guest, 22)
    seen = []

    class Spy(PacketHook):
        def on_packet(self, packet, direction, rule):
            seen.append((direction, packet.payload))
            return packet

    rule.add_hook(Spy())
    _request(engine, client, host, 2222)
    assert ("inbound", b"hello") in seen
    assert ("outbound", b"echo:hello") in seen


def test_hook_can_drop(engine, topology):
    client, host, guest = topology
    _echo_server(engine, guest, 22)
    rule = ForwardRule(host, 2222, guest, 22)

    class DropAll(PacketHook):
        def on_packet(self, packet, direction, rule):
            return None if direction == "inbound" else packet

    rule.add_hook(DropAll())

    def run(e):
        ep = client.connect(host, 2222)
        ep.send(b"never-arrives")
        timeout = e.timeout(1.0, value="timed-out")
        result = yield e.any_of([ep.recv(), timeout])
        return result

    assert engine.run(engine.process(run(engine))) == "timed-out"
    assert rule.stats.dropped == 1


def test_hook_can_modify(engine, topology):
    client, host, guest = topology
    _echo_server(engine, guest, 22)
    rule = ForwardRule(host, 2222, guest, 22)

    class Rewrite(PacketHook):
        def on_packet(self, packet, direction, rule):
            if direction == "inbound":
                return packet.replace(payload=b"tampered")
            return packet

    rule.add_hook(Rewrite())
    assert _request(engine, client, host, 2222) == b"echo:tampered"
    assert rule.stats.modified == 1


def test_hooks_chain_in_order(engine, topology):
    client, host, guest = topology
    _echo_server(engine, guest, 22)
    rule = ForwardRule(host, 2222, guest, 22)

    class Append(PacketHook):
        def __init__(self, tag):
            self.tag = tag

        def on_packet(self, packet, direction, rule):
            if direction == "inbound":
                return packet.replace(payload=packet.payload + self.tag)
            return packet

    rule.add_hook(Append(b"-a"))
    rule.add_hook(Append(b"-b"))
    assert _request(engine, client, host, 2222) == b"echo:hello-a-b"


def test_remove_hook(engine, topology):
    _client, host, guest = topology
    rule = ForwardRule(host, 2222, guest, 22)
    hook = PacketHook()
    rule.add_hook(hook)
    rule.remove_hook(hook)
    with pytest.raises(NetworkError):
        rule.remove_hook(hook)


def test_rule_remove_frees_port(engine, topology):
    _client, host, guest = topology
    rule = ForwardRule(host, 2222, guest, 22)
    rule.remove()
    ForwardRule(host, 2222, guest, 22)  # rebind works
    rule.remove()  # idempotent on the first rule


def test_chained_rules_reach_nested_guest(engine, topology):
    client, host, guest = topology
    nested = NetworkNode(engine, "nested")
    Link(guest, nested, 5e9, 5e-5, inbound_allowed=False)
    _echo_server(engine, nested, 22)
    ForwardRule(guest, 3333, nested, 22)
    ForwardRule(host, 2222, guest, 3333)
    assert _request(engine, client, host, 2222) == b"echo:hello"
