"""lmbench suites: L0 fidelity and the paper's L1/L2 shapes."""

import pytest

from repro import scenarios
from repro.workloads.lmbench.arith import ARITH_OPS, LmbenchArith
from repro.workloads.lmbench.fs import LmbenchFileOps
from repro.workloads.lmbench.proc import LmbenchProc


@pytest.fixture(scope="module")
def levels():
    """Proc/arith/fs metrics at L0, L1, L2 (computed once: L2 needs a
    full CloudSkulk install)."""
    data = {}
    for level in (0, 1, 2):
        host, system = scenarios.system_at_level(level, seed=42)
        arith = host.engine.run(LmbenchArith().start(system, iterations=100))
        proc = host.engine.run(
            LmbenchProc().start(system, repetition_scale=0.05)
        )
        fs = host.engine.run(LmbenchFileOps().start(system, files_per_size=120))
        data[level] = {
            "arith": arith.metrics["latencies_ns"],
            "proc": proc.metrics["latencies_us"],
            "fs_create": fs.metrics["creations_per_s"],
            "fs_delete": fs.metrics["deletions_per_s"],
        }
    return data


# ---- Table II -----------------------------------------------------------


def test_arith_l0_matches_paper(levels):
    for op, expected_ns in ARITH_OPS.items():
        assert levels[0]["arith"][op] == pytest.approx(expected_ns, rel=0.05)


def test_arith_virtualization_nearly_free(levels):
    """Table II: L1 within ~1%, L2 within ~5% of native."""
    for op in ARITH_OPS:
        assert levels[1]["arith"][op] < levels[0]["arith"][op] * 1.02
        assert levels[2]["arith"][op] < levels[0]["arith"][op] * 1.06
        assert levels[2]["arith"][op] > levels[0]["arith"][op] * 1.005


# ---- Table III ----------------------------------------------------------


def test_proc_l0_matches_paper(levels):
    paper_l0 = {
        "signal handler installation": 0.075,
        "signal handler overhead": 0.50,
        "protection fault": 0.27,
        "pipe latency": 3.49,
        "AF_UNIX sock stream latency": 3.58,
        "fork+ exit": 74.6,
        "fork+ execve": 245.8,
        "fork+ /bin/sh -c": 918.7,
    }
    for label, expected in paper_l0.items():
        assert levels[0]["proc"][label] == pytest.approx(expected, rel=0.10)


def test_pipe_latency_explodes_at_l2(levels):
    """The headline Table III effect: ~10-20x pipe blowup at L2."""
    l1 = levels[1]["proc"]["pipe latency"]
    l2 = levels[2]["proc"]["pipe latency"]
    assert 5 < l2 / l1 < 25
    assert l2 == pytest.approx(65.49, rel=0.25)


def test_fork_same_at_l1_triples_at_l2(levels):
    l0 = levels[0]["proc"]["fork+ exit"]
    l1 = levels[1]["proc"]["fork+ exit"]
    l2 = levels[2]["proc"]["fork+ exit"]
    assert l1 == pytest.approx(l0, rel=0.10)  # EPT makes L1 fork ~free
    assert 2.5 < l2 / l1 < 4.5  # extra traps at L2 ([38])


def test_fork_sh_l2_shape(levels):
    l2 = levels[2]["proc"]["fork+ /bin/sh -c"]
    assert l2 == pytest.approx(1826.0, rel=0.25)


def test_proc_costs_monotone_in_depth(levels):
    for label in levels[0]["proc"]:
        assert (
            levels[2]["proc"][label]
            > levels[0]["proc"][label] * 0.95
        )


# ---- Table IV -----------------------------------------------------------


def test_fs_l0_matches_paper(levels):
    paper = {0: 126418, 1: 99112, 4: 99627, 10: 79869}
    for size_kb, expected in paper.items():
        assert levels[0]["fs_create"][size_kb] == pytest.approx(
            expected, rel=0.20
        )


def test_fs_l1_matches_baseline(levels):
    """Table IV: L1 file ops track L0 closely."""
    for size_kb in (0, 1, 4, 10):
        ratio = levels[1]["fs_create"][size_kb] / levels[0]["fs_create"][size_kb]
        assert 0.85 < ratio < 1.05


def test_fs_l2_zero_k_create_anomaly(levels):
    """The paper's Table IV outlier: L2 0K creation collapses ~50x."""
    l2_zero = levels[2]["fs_create"][0]
    assert l2_zero == pytest.approx(2430, rel=0.35)
    assert levels[1]["fs_create"][0] / l2_zero > 20


def test_fs_l2_sized_creates_stay_reasonable(levels):
    """Creates that write data amortize the journal: no collapse."""
    assert levels[2]["fs_create"][1] == pytest.approx(62933, rel=0.30)
    assert levels[2]["fs_create"][1] / levels[2]["fs_create"][0] > 10


def test_fs_deletions_never_collapse(levels):
    for level in (0, 1, 2):
        for size_kb in (0, 1, 4, 10):
            assert levels[level]["fs_delete"][size_kb] > 100_000


def test_fs_anomaly_switchable_off():
    host, system = scenarios.system_at_level(2, seed=43)
    result = host.engine.run(
        LmbenchFileOps(emulate_l2_sync_anomaly=False).start(
            system, files_per_size=100
        )
    )
    assert result.metrics["creations_per_s"][0] > 50_000
