#!/usr/bin/env python3
"""Fleet-scale CloudSkulk: the paper's experiment at datacenter size.

The paper evaluates attack and detection on one Dell T1700; an IaaS
operator runs thousands of hosts.  This demo scales the testbed up a
notch: a small datacenter of heterogeneous hosts, a bin-packing
scheduler placing churning tenants, a cross-host live migration over
the switch fabric, a CloudSkulk campaign injected against a sampled
tenant, and a fleet-wide monitoring sweep that has to find it — with
recall and detection latency scored against ground truth.

Run:  python examples/fleet_demo.py
"""

from repro.cloud import (
    AttackCampaign,
    BinPackingPlacer,
    Datacenter,
    FleetMonitor,
    MigrationOrchestrator,
    TenantChurn,
    run_fleet,
)


def banner(text):
    print(f"\n{'=' * 70}\n{text}\n{'=' * 70}")


def main():
    banner("ONE CALL — the whole experiment")
    result = run_fleet(
        hosts=4,
        tenants=10,
        seed=1701,
        churn_operations=6,
        rebalance_moves=1,
        campaigns=1,
        sweeps=1,
        file_pages=10,
        wait_seconds=10.0,
    )
    print(result.summary())

    banner("PIECE BY PIECE — the same machinery, driven by hand")
    datacenter = Datacenter(hosts=3, seed=42)
    placer = BinPackingPlacer(datacenter)
    churn = TenantChurn(datacenter, placer)
    orchestrator = MigrationOrchestrator(datacenter)
    monitor = FleetMonitor(datacenter, file_pages=10, wait_seconds=10.0)
    campaign = AttackCampaign(datacenter, count=1)
    engine = datacenter.engine

    def control():
        tenants = yield from churn.bring_up(6)
        print(f"provisioned {len(tenants)} tenants across "
              f"{len(datacenter.up_hosts)} hosts")
        for decision in placer.decisions:
            print(f"  placed {decision.tenant_name} -> {decision.host_name} "
                  f"({decision.reason})")
        records = yield from orchestrator.rebalance(placer, moves=1)
        for record in records:
            print(f"  migrated {record.tenant_name} "
                  f"{record.source}->{record.dest} "
                  f"in {record.attempt_count} attempt(s)")
        events = yield from campaign.run()
        for event in events:
            print(f"  CloudSkulk installed on {event.tenant_name}"
                  f"@{event.host_name} at t={event.installed_at:.1f}s")
        report = yield from monitor.sweep_fleet()
        return report

    report = engine.run(engine.process(control(), name="demo-control"))
    print()
    print(report.summary())
    recall, latencies = campaign.score(monitor.alerts)
    print(f"\nrecall {recall:.2f}, "
          f"latencies {[f'{lat:.1f}s' for lat in latencies]}")
    return 0 if recall == 1.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
