#!/usr/bin/env python3
"""Cross-VM covert channel over memory deduplication (refs [41, 42]).

The paper's detector exploits KSM's write-timing side channel
*defensively*; the earlier literature it builds on used the same
primitive *offensively*.  This example runs both directions:

1. two co-resident VMs that cannot reach each other over the network
   smuggle a message through KSM page-merge timing;
2. the victim's only countermeasure — disabling KSM — would also
   disable the CloudSkulk detector, illustrating the deployment
   tension the paper's §VI discussion leaves open.

Run:  python examples/covert_channel.py
"""

from repro import scenarios
from repro.errors import NetworkError
from repro.hypervisor.ksm import KsmDaemon
from repro.sidechannel import DedupCovertChannel

SECRET = b"key=0xDEADBEEF"


def main():
    host = scenarios.testbed(seed=99)
    sender_vm = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="tenant-a", image="/var/lib/images/a.qcow2",
            ssh_host_port=2301, monitor_port=5601,
        ),
    )
    receiver_vm = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="tenant-b", image="/var/lib/images/b.qcow2",
            ssh_host_port=2302, monitor_port=5602,
        ),
    )

    print("== Two co-resident tenants; user-mode NAT isolates them ==")
    try:
        sender_vm.guest.net_node.connect(receiver_vm.guest.net_node, 22)
    except NetworkError as error:
        print(f"   direct network path: REFUSED ({error})")

    print("\n== The host runs KSM (as clouds do, to oversubscribe RAM) ==")
    ksm = KsmDaemon(host.machine)
    ksm.start()

    print(f"\n== Exfiltrating {SECRET!r} through page-merge timing ==")
    channel = DedupCovertChannel(
        sender_vm.guest, receiver_vm.guest, seed="rendezvous", bits_per_frame=8
    )
    process = host.engine.process(channel.transmit(SECRET, settle_seconds=6.0))
    received, elapsed, bps = host.engine.run(process)
    status = "INTACT" if received == SECRET else "CORRUPTED"
    print(f"   received: {received!r}  [{status}]")
    print(f"   {elapsed:.0f} s of virtual time, {bps:.2f} bit/s")
    print(f"   KSM merged {ksm.stats.pages_merged_total} pages along the way")

    print("\n== The tension ==")
    print("   disabling KSM closes this channel — and also blinds the")
    print("   CloudSkulk dedup detector, which needs merging enabled at L0.")


if __name__ == "__main__":
    main()
