#!/usr/bin/env python3
"""Quickstart: the whole paper in sixty lines.

Builds the testbed, launches a victim VM, installs CloudSkulk (the
four-step nested-VM rootkit), then runs the memory-deduplication
detector from the host and prints its verdict.

Run:  python examples/quickstart.py
"""

from repro import scenarios
from repro.core.detection.dedup_detector import DedupDetector


def main():
    print("== 1. Testbed: Dell T1700, 16 GiB, Fedora 22 + KVM ==")
    host = scenarios.testbed(seed=2026)
    print(f"   host booted at t={host.engine.now:.1f}s, KVM loaded")

    print("\n== 2. The victim: Guest0 (1 GiB, ssh forwarded on :2222) ==")
    victim_vm = scenarios.launch_victim(host)
    print(f"   {victim_vm} at depth {victim_vm.guest.depth}")

    print("\n== 3. The attack: install CloudSkulk ==")
    report = scenarios.install_cloudskulk(host)
    print(report.summary())
    victim_guest = report.nested_vm.guest
    print(
        f"   victim now runs at depth {victim_guest.depth} inside "
        f"{report.guestx_vm.name!r}; GuestX wears the victim's old "
        f"PID {report.guestx_vm.process.pid}"
    )

    print("\n== 4. The defence: deduplication write-timing from L0 ==")
    # Stand up the defender's pieces against the *already compromised*
    # host: detection_setup(nested=True) replays the same attack under a
    # fresh host with KSM and the vendor's cloud channel wired in.
    det_host, cloud, _ksm, _locator = scenarios.detection_setup(
        nested=True, seed=2026
    )
    detector = DedupDetector(det_host, cloud)
    result = det_host.engine.run(det_host.engine.process(detector.run()))
    verdict = result.verdict
    print(f"   medians: t0={verdict.median_t0:.2f}us  "
          f"t1={verdict.median_t1:.2f}us  t2={verdict.median_t2:.2f}us")
    print(f"   verdict: {verdict.verdict.upper()}")
    print(f"   {verdict.explanation()}")


if __name__ == "__main__":
    main()
