#!/usr/bin/env python3
"""The defender's study — Figs 5 and 6, plus the baselines.

Runs the memory-deduplication detection protocol against a clean guest
and against an installed CloudSkulk, prints the per-page timing series
the figures plot, and then shows why the two baseline detectors the
paper discusses are weaker: the VMI fingerprint is evaded by
impersonation, and the VMCS scan works here but would fail on non-VT-x
hardware.

Run:  python examples/detection_study.py
"""

from repro import scenarios
from repro.analysis.report import render_figure_series
from repro.analysis.stats import summarize
from repro.core.detection.dedup_detector import DedupDetector
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.core.detection.vmi_fingerprint import check_fingerprint, take_fingerprint


def run_protocol(nested):
    host, cloud, _ksm, _locator = scenarios.detection_setup(
        nested=nested, seed=4242
    )
    detector = DedupDetector(host, cloud)
    report = host.engine.run(host.engine.process(detector.run()))
    return host, report


def show(title, report):
    print(f"\n--- {title} ---")
    series = {
        "t0 (L0 only)": summarize(report.t0_us),
        "t1 (merged)": summarize(report.t1_us),
        "t2 (post-edit)": summarize(report.t2_us),
    }
    print(render_figure_series("per-page write latency", series, unit="us"))
    print(f"verdict: {report.verdict.verdict.upper()}")
    print(report.verdict.explanation())


def main():
    print("== The dedup detector, scenario 1: no nested VM (Fig 5) ==")
    clean_host, clean_report = run_protocol(nested=False)
    show("Fig 5", clean_report)

    print("\n== Scenario 2: CloudSkulk installed (Fig 6) ==")
    nested_host, nested_report = run_protocol(nested=True)
    show("Fig 6", nested_report)

    print("\n== Baseline 1: VMI fingerprinting (§VI-E) ==")
    host, install = scenarios.nested_environment(seed=4242)
    stored = take_fingerprint(install.nested_vm)  # the victim's true print
    mismatches = check_fingerprint(install.guestx_vm, stored)
    print(f"fingerprint of 'guest0' (really GuestX) vs records: "
          f"{'MATCH — rootkit invisible' if not mismatches else mismatches}")

    print("\n== Baseline 2: VMCS memory forensics (§VI-E) ==")
    scan = host.engine.run(host.engine.process(scan_for_hypervisors(host)))
    print(f"VMCS pages found: {scan.vmcs_pages_found}, host accounts for "
          f"{scan.expected_vmcs_pages} -> "
          f"{'NESTED HYPERVISOR' if scan.nested_hypervisor_detected else 'clean'}")
    print("   (works here — but the signature is VT-x-specific; an AMD "
          "host defeats it, while the dedup timing channel does not care)")


if __name__ == "__main__":
    main()
