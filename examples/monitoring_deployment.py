#!/usr/bin/env python3
"""Operating the defence: periodic sweeps on a multi-tenant host.

A cloud operator doesn't run one detection; they run a monitoring
service.  This example deploys periodic sweeps over three tenants,
lets CloudSkulk strike *between* sweeps, and shows the alert firing on
the next pass — with the detection latency that implies.

Run:  python examples/monitoring_deployment.py
"""

from repro import scenarios
from repro.core.detection.service import MonitoringService
from repro.core.rootkit.stealth import ImpersonationMirror
from repro.hypervisor.ksm import KsmDaemon

SWEEP_INTERVAL = 300.0  # five minutes between sweeps


def main():
    host = scenarios.testbed(seed=2028)
    locators = {}
    for index, name in enumerate(("tenant-a", "tenant-b", "tenant-c")):
        config = scenarios.victim_config(
            name=name,
            image=f"/var/lib/images/{name}.qcow2",
            ssh_host_port=2300 + index,
            monitor_port=5600 + index,
        )
        vm = scenarios.launch_victim(host, config)
        state = {"guest": vm.guest}
        locators[name] = (lambda s: (lambda: s["guest"]))(state)
    KsmDaemon(host.machine).start()

    service = MonitoringService(host, file_pages=15)
    interfaces = {
        name: service.register_tenant(name, locator)
        for name, locator in locators.items()
    }

    alerts = []

    def on_alert(report):
        alerts.append(report)
        print(
            f"  !! ALERT at t={report.finished_at:7.0f}s — compromised: "
            f"{', '.join(report.compromised_tenants)}"
        )

    print(f"== Monitoring service: sweep every {SWEEP_INTERVAL:.0f}s over "
          f"{', '.join(service.tenant_names)} ==\n")
    service.run_periodic(
        interval_seconds=SWEEP_INTERVAL, alert_callback=on_alert, max_sweeps=4
    )

    # Let sweep #1 finish clean (3 tenants x ~60s protocol each).
    host.engine.run(until=host.engine.now + 200.0)
    assert service.sweep_history, "first sweep should have completed"
    print(f"t={host.engine.now:7.0f}s  sweep #1: "
          f"{service.sweep_history[0].compromised_tenants or 'all clean'}")

    # The attacker strikes tenant-b between sweeps.
    attack_time = host.engine.now
    print(f"t={attack_time:7.0f}s  [attacker] installing CloudSkulk on tenant-b ...")
    report = scenarios.install_cloudskulk(host, target_name="tenant-b")
    interfaces["tenant-b"].observers.append(
        ImpersonationMirror(report.guestx_vm.guest)
    )
    print(f"t={host.engine.now:7.0f}s  [attacker] done "
          f"({report.total_seconds:.0f}s, PID swapped, history scrubbed)")

    # Run the remaining sweeps.
    host.engine.run(until=host.engine.now + 4 * SWEEP_INTERVAL)
    print()
    for index, sweep in enumerate(service.sweep_history):
        verdicts = {f.tenant_name: f.verdict for f in sweep.findings}
        print(f"sweep #{index + 1} at t={sweep.finished_at:7.0f}s: {verdicts}")
    if alerts:
        latency = alerts[0].finished_at - attack_time
        print(f"\ndetection latency: {latency:.0f}s "
              f"(bounded by interval {SWEEP_INTERVAL:.0f}s + protocol time)")


if __name__ == "__main__":
    main()
