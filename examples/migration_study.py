#!/usr/bin/env python3
"""Migration timing study — Fig 4, plus the post-copy variant.

Measures live-migration end-to-end times for the paper's three guest
workloads, both for an ordinary same-host migration (L0-L0) and for the
CloudSkulk nested migration (L0-L1), and then contrasts pre-copy with
post-copy on the hardest case.

Run:  python examples/migration_study.py
"""

from repro import scenarios
from repro.analysis.report import render_table
from repro.migration.postcopy import PostCopyDestination, PostCopyMigration
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload

WORKLOADS = {
    "idle": (IdleWorkload, {}),
    "filebench": (FilebenchWorkload, {}),
    "kernel-compile": (KernelCompileWorkload, {"loop_forever": True}),
}


def start_workload(name, vm):
    factory, kwargs = WORKLOADS[name]
    workload = factory()
    workload.start(vm.guest, **kwargs)
    return workload


def migrate_l0_l0(name, seed=11):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    workload = start_workload(name, vm)
    qemu_img_create(host, "/var/lib/images/dest.qcow2", 20)
    config = vm.config.clone_for_destination(
        "dest0", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/dest.qcow2")]
    launch_vm(host, config)
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)
    workload.stop()
    return vm.migration_stats


def migrate_l0_l1(name, seed=11):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    workload = start_workload(name, vm)
    report = scenarios.install_cloudskulk(host)
    workload.stop()
    return report


def postcopy_compile(seed=11):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    workload = start_workload("kernel-compile", vm)
    qemu_img_create(host, "/var/lib/images/pc.qcow2", 20)
    config = vm.config.clone_for_destination(
        "pcdest", incoming_port=None, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/pc.qcow2")]
    dest, _ = launch_vm(host, config)
    dest.guest = None
    dest.status = "inmigrate"
    dest.pause()
    PostCopyDestination(dest, 4600).start()
    migration = PostCopyMigration(vm, destination_port=4600)
    host.engine.run(migration.start())
    workload.stop()
    return migration.stats


def main():
    print("== Fig 4: pre-copy end-to-end time by workload ==\n")
    rows = []
    for name in WORKLOADS:
        local = migrate_l0_l0(name)
        nested = migrate_l0_l1(name)
        rows.append(
            [
                name,
                local.total_time,
                nested.migration_seconds,
                (nested.migration_seconds / local.total_time - 1) * 100,
                local.iterations,
            ]
        )
        print(f"   {name}: L0-L0 {local.total_time:.1f}s "
              f"(throttle {local.throttle_percentage}%), "
              f"L0-L1 {nested.migration_seconds:.1f}s")
    print()
    print(
        render_table(
            "Fig 4 (reproduced)",
            ["workload", "L0-L0 (s)", "L0-L1 (s)", "increase %", "iters"],
            rows,
            col_width=16,
        )
    )
    print("paper anchors (L0-L1): idle ~26s, filebench ~29s, compile ~820s")

    print("\n== Ablation: post-copy under the compile workload ==")
    stats = postcopy_compile()
    print(f"   post-copy total {stats.total_time:.1f}s, "
          f"downtime {stats.downtime * 1000:.0f}ms")
    print("   (pre-copy needed auto-converge throttling and minutes; "
          "post-copy is workload-independent — §II-A's 'applies to both')")


if __name__ == "__main__":
    main()
