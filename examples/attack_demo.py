#!/usr/bin/env python3
"""The attack walkthrough — the paper's §V-A demo video as a script.

Plays the attacker: reconnaissance from shell history / ps / the QEMU
monitor, the RITM launch, the nested live migration, stealth cleanup,
and then two of §IV-B's malicious services running in the middle of the
victim's traffic: a passive credential sniffer and an active response
tamperer.

Run:  python examples/attack_demo.py
"""

from repro import scenarios
from repro.core.rootkit.installer import CloudSkulkInstaller
from repro.core.rootkit.recon import TargetRecon
from repro.core.rootkit.services import ActiveTamperService, PacketCaptureService
from repro.net.stack import Link, NetworkNode


def banner(text):
    print(f"\n{'=' * 70}\n{text}\n{'=' * 70}")


def main():
    host = scenarios.testbed(seed=31337)
    victim_vm = scenarios.launch_victim(host)
    engine = host.engine

    banner("STEP 0 — the scene: one victim VM on a compromised host")
    print(host.shell.ps_ef())

    banner("STEP 1 — reconnaissance (history, ps -ef, QEMU monitor)")
    recon = engine.run(engine.process(TargetRecon(host).run()))
    print(f"target: {recon.target_name} (pid {recon.target_pid}), "
          f"config recovered from {recon.config_source}")
    print(f"monitor said:\n{recon.monitor_probes['info mtree']}")
    print(f"qemu-img said:\n{recon.disk_info[recon.config.drives[0].path]}")

    banner("STEPS 2-4 — GuestX, nested destination, live migration")
    installer = CloudSkulkInstaller(host)
    report = engine.run(engine.process(installer.install()))
    print(report.summary())
    print(f"\nmigration telemetry (victim's own monitor, pre-kill):")
    print(report.migration_text)

    banner("AFTERMATH — what the administrator sees")
    print(host.shell.ps_ef())
    print(f"\nhistory lines left: {len(host.shell.history)} "
          f"(attacker scrubbed {report.history_lines_removed})")
    from repro.vmi.introspect import introspect

    view = introspect(report.guestx_vm)
    print(f"VMI of 'guest0' (really GuestX) reports: {view.process_names}")

    banner("SERVICE 1 — passive: credential capture in the middle")
    rule = next(
        r for nic in report.guestx_vm.nics for r in nic.forward_rules
        if r.outer_port == 2222
    )
    sniffer = PacketCaptureService()
    rule.add_hook(sniffer)

    victim_guest = report.nested_vm.guest
    listener = victim_guest.net_node.listener(22)

    def sshd(e):
        conn = yield listener.accept()
        while True:
            packet = yield conn.server.recv()
            conn.server.send(b"auth-ok:" + packet.payload)

    engine.process(sshd(engine))

    customer = NetworkNode(engine, "customer-laptop")
    Link(customer, host.net_node, 941e6, 1e-4)

    def login(e):
        endpoint = customer.connect(host.net_node, 2222)
        endpoint.send(b"USER=alice PASS=correct-horse-battery")
        reply = yield endpoint.recv()
        return reply.payload

    reply = engine.run(engine.process(login(engine)))
    print(f"customer saw a normal login: {reply!r}")
    print(f"attacker captured:          {sniffer.payloads('inbound')!r}")

    banner("SERVICE 2 — active: tampering with a 'banking' response")
    tamper = ActiveTamperService(
        match=lambda packet, direction: direction == "outbound"
        and b"balance" in (packet.payload or b""),
        action="modify",
        transform=lambda packet: packet.replace(
            payload=packet.payload.replace(b"balance=1000", b"balance=13.37")
        ),
    )
    rule.add_hook(tamper)

    def bank(e):
        endpoint = customer.connect(host.net_node, 2222)
        endpoint.send(b"GET /balance")
        reply = yield endpoint.recv()
        return reply.payload

    def bank_server(e):
        conn = yield listener.accept()
        packet = yield conn.server.recv()
        conn.server.send(b"balance=1000 auth-ok:" + packet.payload)

    engine.process(bank_server(engine))
    forged = engine.run(engine.process(bank(engine)))
    print(f"the server sent balance=1000; the customer received: {forged!r}")
    print(f"tamper hits: {tamper.hits}")


if __name__ == "__main__":
    main()
