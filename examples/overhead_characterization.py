#!/usr/bin/env python3
"""The attacker's pre-flight checklist (§V-B).

Before installing CloudSkulk against a particular victim, a careful
attacker asks: *will this user notice?*  The paper frames its Fig 2-3 /
Table II-IV measurements as exactly that case-by-case assessment.  This
example runs the characterization tool over the standard workload mix,
prints the perceived degradation per workload class, and exports the
raw data as JSON for plotting.

Run:  python examples/overhead_characterization.py [output.json]
"""

import sys

from repro.analysis.characterize import characterize_overhead
from repro.analysis.export import ExperimentArchive
from repro.analysis.report import render_table


def main():
    print("Measuring the victim's workload mix at L1 (before) and L2 "
          "(after the rootkit)...\n")
    overheads = characterize_overhead(seed=2027)

    rows = []
    for overhead in overheads:
        rows.append(
            [
                overhead.name,
                overhead.l1_value,
                overhead.l2_value,
                overhead.degradation_percent,
                "RISKY" if overhead.noticeable else "safe",
            ]
        )
    print(
        render_table(
            "Perceived degradation after CloudSkulk insertion",
            ["workload class", "L1", "L2", "degradation %", "verdict"],
            rows,
            col_width=16,
        )
    )
    print("\nreading: network-light interactive users and I/O workloads "
          "won't notice; a user who times kernel builds might.")

    if len(sys.argv) > 1:
        archive = ExperimentArchive(
            "CloudSkulk overhead characterization", seed_info={"seed": 2027}
        )
        archive.record_table(
            "overhead-characterization",
            ["workload", "l1", "l2", "degradation_percent"],
            [
                [o.name, o.l1_value, o.l2_value, o.degradation_percent]
                for o in overheads
            ],
            notes="L1 = victim before attack, L2 = same guest nested "
            "under the RITM",
        )
        path = archive.save(sys.argv[1])
        print(f"\nraw data exported to {path}")


if __name__ == "__main__":
    main()
