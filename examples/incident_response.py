#!/usr/bin/env python3
"""The complete defender's runbook, end to end.

1. **Monitor** — the dedup protocol flags the tenant as nested;
2. **Investigate** — forensic evidence collection names the RITM and
   pins the migration traffic;
3. **Respond** — evict the rootkit stack, relaunch the tenant from its
   untouched disk image, and re-verify the host.

Run:  python examples/incident_response.py
"""

from repro import scenarios
from repro.core.detection.dedup_detector import DedupDetector
from repro.core.detection.forensics import TenantRecord, collect_evidence
from repro.core.detection.response import respond_and_recover

RECORD = TenantRecord(
    "guest0", memory_mb=1024, nested_allowed=False, public_ports=(2222,)
)


def main():
    print("== Background: tenant guest0 has been CloudSkulked ==")
    host, cloud, _ksm, locator = scenarios.detection_setup(
        nested=True, seed=2029
    )
    print(f"   (victim now secretly at depth {locator().depth})\n")

    print("== 1. Monitoring: the dedup protocol ==")
    detector = DedupDetector(host, cloud, file_pages=25)
    verdict = host.engine.run(
        host.engine.process(detector.run())
    ).verdict
    print(f"   verdict: {verdict.verdict.upper()}")
    print(f"   {verdict.explanation()}\n")

    print("== 2. Investigation: forensic evidence ==")
    evidence = host.engine.run(
        host.engine.process(collect_evidence(host, [RECORD]))
    )
    print(evidence.summary())
    print()

    print("== 3. Response: evict and recover ==")
    recovery = host.engine.run(
        host.engine.process(
            respond_and_recover(
                host, evidence, RECORD, "/var/lib/images/guest0.qcow2"
            )
        )
    )
    print(recovery.summary())
    print(f"\n   tenant back at depth {recovery.recovered_vm.guest.depth}, "
          f"public ssh restored on :2222")
    print("   note the honest cost: the in-RAM state died with GuestX — "
          "a crash-consistent restart from disk.")


if __name__ == "__main__":
    main()
