"""Conservative-lookahead shard synchronization for multi-process runs.

One datacenter run is split across OS worker processes.  Each worker
(*shard*) owns a rack-aligned group of hosts, runs its own
:class:`~repro.sim.engine.Engine` replica forward independently, and
synchronizes virtual time with the classic conservative (null-message)
protocol:

* every shard periodically broadcasts its **horizon** — the earliest
  virtual time at which it could still complete a cross-shard
  operation (its next local event time while it owns in-flight work,
  ``+inf`` otherwise);
* a shard with outstanding remote operations only advances to a
  **ceiling** derived from the owners' horizons (plus the lookahead)
  and blocks on its pipes past it.  Because every cross-shard
  operation is awaited alone or through an all-or-nothing barrier,
  the ceiling is the *max* of the owners' horizons, not the textbook
  min — see :meth:`ShardRuntime._ceiling` for the safety argument;
* completed cross-shard operations travel as timestamped **messages**
  over pre-fork pipes and are merged into the local event heap
  deterministically — ordered by ``(timestamp, shard index, per-shard
  sequence)``, injected only once the local clock is about to pass
  their timestamp, so a ghost completion lands in the heap exactly
  where the serial engine would have scheduled the real one.

The *lookahead* is the latency floor of the channel the messages model.
For fabric-borne interactions (migration page streams between racks)
that floor is the uplink latency
(:data:`~repro.cloud.datacenter.FABRIC_LATENCY_S` — see
:meth:`ShardPlan.from_datacenter`); for control-plane aggregations the
serial engine treats as instantaneous (sweep reports, campaign install
completions) it is pinned to ``0.0`` so sharded replay stays
byte-identical to the serial heap.

Deadlock freedom is the textbook argument: before blocking, a shard
broadcasts its current horizon; if two shards block on each other, the
one with the globally minimal next event time finds its ceiling above
that event and proceeds.  Every blocking wait carries a wall-clock
timeout so a crashed peer surfaces as a :class:`ShardError` rather
than a hang.
"""

import heapq
import select

from itertools import count

from repro.errors import SimulationError
from repro.sim.engine import Event, Process, _Condition

_INF = float("inf")

#: Wall-clock seconds a blocked shard waits for *any* peer message
#: before declaring the mesh dead.  Generous: virtual-time stalls are
#: bounded by the null-message cadence, so only a crashed or wedged
#: peer ever gets near this.
RECV_TIMEOUT_S = 120.0

#: A running shard re-broadcasts its horizon and pumps its pipes every
#: this-many engine steps while cross-shard work is in flight.
HORIZON_STRIDE = 64

#: A blocked shard re-broadcasts its horizon on entry and then only
#: every this-many wakeups.  While blocked with nothing owned, the
#: advertised horizon tracks the ceiling, which rises with every peer
#: horizon received — re-broadcasting each rise turns the mesh into an
#: O(shards^2) echo storm per real advance.  Peers that need the
#: ceiling-driven horizon (a shard awaiting one of our *post-resumption*
#: operations) tolerate stride-coarse updates exactly like the running
#: case.
BLOCKED_RESEND_STRIDE = 16


class ShardError(SimulationError):
    """Shard planning or synchronization failure."""


class ShardPlan:
    """The host -> shard partition of one datacenter run.

    ``groups`` is a tuple of host-name tuples, one per shard, in shard
    index order.  Groups are rack-aligned whenever the requested shard
    count allows whole racks to stay together; asking for more shards
    than racks splits racks along sorted host-name boundaries instead.
    """

    def __init__(self, groups, lookahead=0.0):
        self.groups = tuple(tuple(group) for group in groups)
        if not self.groups or any(not group for group in self.groups):
            raise ShardError("every shard group needs at least one host")
        #: Latency floor for fabric-borne cross-shard channels; control
        #: plane aggregation channels run at zero (see module docs).
        self.lookahead = lookahead
        self._owner = {}
        for index, group in enumerate(self.groups):
            for host_name in group:
                if host_name in self._owner:
                    raise ShardError(f"host {host_name!r} in two shard groups")
                self._owner[host_name] = index

    @property
    def shards(self):
        return len(self.groups)

    def owner_of(self, host_name):
        try:
            return self._owner[host_name]
        except KeyError:
            raise ShardError(f"host {host_name!r} is in no shard group") from None

    @classmethod
    def rack_aligned(cls, host_racks, shards, lookahead=0.0):
        """Partition ``[(host_name, rack), ...]`` into ``shards`` groups.

        Hosts are taken in sorted-name order.  When ``shards`` does not
        exceed the rack count, whole racks are kept together and dealt
        into contiguous, size-balanced groups; otherwise racks split and
        the sorted host list is cut into near-equal contiguous chunks.
        """
        pairs = sorted(host_racks)
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ShardError(f"--shards must be a positive integer, got {shards!r}")
        if shards > len(pairs):
            raise ShardError(
                f"--shards {shards} exceeds the fleet's {len(pairs)} host(s); "
                "each shard needs at least one host"
            )
        racks = []  # [(rack, [host, ...])] in first-appearance (sorted-host) order
        for host_name, rack in pairs:
            if racks and racks[-1][0] == rack:
                racks[-1][1].append(host_name)
            else:
                racks.append((rack, [host_name]))
        if shards > len(racks):
            names = [host_name for host_name, _rack in pairs]
            total = len(names)
            groups = [
                names[(index * total) // shards : ((index + 1) * total) // shards]
                for index in range(shards)
            ]
            return cls(groups, lookahead=lookahead)
        groups = []
        rack_cursor = 0
        hosts_left = len(pairs)
        for remaining in range(shards, 0, -1):
            group = []
            # Leave at least one rack for every group still to come.
            while rack_cursor < len(racks) - (remaining - 1):
                block = racks[rack_cursor][1]
                if group and len(group) + len(block) > hosts_left / remaining:
                    break
                group.extend(block)
                rack_cursor += 1
            groups.append(group)
            hosts_left -= len(group)
        return cls(groups, lookahead=lookahead)

    @classmethod
    def from_datacenter(cls, datacenter, shards):
        """Rack-aligned plan over a datacenter's host inventory.

        Derives the fabric lookahead from the uplink latency every
        cross-rack message would pay (the fleet's links are uniform —
        :data:`~repro.cloud.datacenter.FABRIC_LATENCY_S`).
        """
        from repro.cloud.datacenter import FABRIC_LATENCY_S

        host_racks = [
            (name, host.spec.rack) for name, host in datacenter.hosts.items()
        ]
        return cls.rack_aligned(host_racks, shards, lookahead=FABRIC_LATENCY_S)

    def __repr__(self):
        sizes = ",".join(str(len(group)) for group in self.groups)
        return f"<ShardPlan shards={self.shards} hosts=[{sizes}]>"


def describe_error(exc):
    """Wire form of a survivable exception: ``(class name, message)``."""
    return (type(exc).__name__, str(exc))


def rebuild_error(payload):
    """Reconstruct a peer's exception from its wire form.

    Only :mod:`repro.errors` types cross the wire (anything else is a
    shard bug and surfaces as :class:`ShardError`), so every replica
    re-raises the exact class its survivable-error handling matches on.
    """
    import repro.errors as errors_module

    name, message = payload
    exc_type = getattr(errors_module, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        return exc_type(message)
    return ShardError(f"peer failed with non-repro error {name}: {message}")


class _PublishDone:
    """Event callback broadcasting a completed owned operation.

    A class (not a closure) purely for the engine's callback idiom;
    shard runtimes exist only post-fork and are never snapshotted.
    """

    __slots__ = ("runtime", "key", "transform")

    def __init__(self, runtime, key, transform):
        self.runtime = runtime
        self.key = key
        self.transform = transform

    def __call__(self, event):
        runtime = self.runtime
        runtime._published_open -= 1
        if event._ok:
            value = event._value
            if self.transform is not None:
                value = self.transform(value)
            runtime._broadcast_done(self.key, True, value)
        else:
            runtime._broadcast_done(
                self.key, False, describe_error(event._value)
            )


class ShardRuntime:
    """One worker's view of the shard mesh; plugs into ``engine.governor``.

    ``conns`` maps peer shard index -> duplex
    :class:`multiprocessing.connection.Connection`.  The runtime is
    created *after* the OS fork, attached as ``engine.governor`` (the
    engine consults it once per step, mirroring the ``engine.faults``
    one-attribute seam), and drives three duties:

    * **publish** — operations this shard owns: when the underlying
      event fires, the completion is broadcast with its virtual
      timestamp;
    * **remote** — operations another shard owns: the caller gets a
      ghost :class:`~repro.sim.engine.Event` that the governor fulfils
      at the exact virtual time the owner recorded;
    * **gate** — the per-step conservative brake: pump pipes, inject
      ready ghosts in ``(t, shard, seq)`` order, and block while the
      next local event lies beyond the ceiling (:meth:`_ceiling`).
    """

    def __init__(self, engine, index, conns, lookahead=0.0):
        self.engine = engine
        self.index = index
        self.conns = dict(conns)
        self.lookahead = lookahead
        now = engine.now
        self._hz = {peer: now for peer in self.conns}
        self._outstanding = {}  # key -> (Event, owner shard index)
        self._buffered = {}  # key -> (t, sender, seq, ok, payload)
        self._op_seq = count()
        self._published_open = 0
        self._steps = 0
        self._hz_sent = -_INF
        self._fins = {}  # peer -> digest
        self._fin_extras = {}  # peer -> stats dict sent with the fin
        self._dead = set()  # peers whose pipes hit EOF after their fin
        self._payloads = {}  # peer -> out-of-band payload (trace merge)
        # One persistent poller for the whole mesh.  The stdlib's
        # Connection.poll / connection.wait build a fresh selector per
        # call — at null-message cadence that is hundreds of thousands
        # of selector registrations per run and dominates the profile.
        self._poller = select.poll()
        self._fd_peer = {}
        for peer, conn in self.conns.items():
            self._poller.register(conn.fileno(), select.POLLIN)
            self._fd_peer[conn.fileno()] = peer
        self.recv_timeout = RECV_TIMEOUT_S
        #: The *send cone*: scheduled events whose pop can transitively
        #: lead to a cross-shard broadcast (the control process and
        #: everything it waits on, published operations and their
        #: timer chains — but not the independent per-host daemons that
        #: dominate the heap).  ``_cone_heap`` holds ``(fire time, seq,
        #: event)`` for scheduled cone events; ``_cone_unscheduled``
        #: holds cone events whose trigger time is unknown (a pending
        #: Event some other simulation code will succeed) — while any
        #: exists the horizon falls back to the queue head.
        self._cone_heap = []
        self._cone_seq = count()
        self._cone_unscheduled = set()
        #: Protocol work counters (surfaced in bench/test reports).
        self.messages_sent = 0
        self.messages_received = 0
        self.ghosts_injected = 0
        self.blocked_waits = 0

    # -- the send cone -----------------------------------------------------

    def taint(self, event):
        """Mark ``event`` send-relevant and track its cone contribution.

        Recursion mirrors the wait graph: a process contributes whatever
        it currently waits on, a composite contributes its members, a
        scheduled event contributes its fire time, and a pending event
        with an unknown trigger time forces the conservative queue-head
        fallback until it fires.  Ghost events created by
        :meth:`remote` arrive pre-marked, so the cone never descends
        into them — their timing is the ceiling's job.  Called by
        ``Process._resume`` each time a tainted process parks on a new
        wait, so the cone follows the control plane automatically.
        """
        if event.tainted or event.processed:
            return
        event.tainted = True
        if isinstance(event, Process):
            wait = event._waiting_on
            if wait is not None:
                self.taint(wait)
            elif not event.triggered:
                # Initializing or mid-resume: until its first yield the
                # process could do anything "now".
                self._cone_unscheduled.add(event)
            return
        if isinstance(event, _Condition):
            for member in event._events:
                if not member.processed:
                    self.taint(member)
            return
        if event.triggered:
            heapq.heappush(
                self._cone_heap, (event.when, next(self._cone_seq), event)
            )
        else:
            self._cone_unscheduled.add(event)

    def _cone_bound(self):
        """Earliest virtual time a cone event can pop — the shard's
        tightest sound lower bound on its next cross-shard send.

        Falls back to the queue head while any cone event's trigger
        time is unknown (and whenever the cone is empty — an
        under-promise is always safe).
        """
        unscheduled = self._cone_unscheduled
        if unscheduled:
            still = set()
            push = None
            for event in unscheduled:
                if event.processed:
                    continue
                if isinstance(event, Process):
                    wait = event._waiting_on
                    if wait is not None:
                        if not wait.tainted:
                            self.taint(wait)
                        continue
                    if event.triggered:
                        continue
                    still.add(event)
                    continue
                if event.triggered:
                    heapq.heappush(
                        self._cone_heap,
                        (event.when, next(self._cone_seq), event),
                    )
                    continue
                still.add(event)
            self._cone_unscheduled = still
            if still:
                queue = self.engine._queue
                return queue[0][0] if queue else _INF
        heap = self._cone_heap
        while heap and heap[0][2].processed:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        queue = self.engine._queue
        return queue[0][0] if queue else _INF

    # -- ownership helpers -------------------------------------------------

    def publish(self, key, event, transform=None):
        """Broadcast ``event``'s completion to every peer when it fires.

        ``transform`` maps the event value to its wire form (e.g. the
        slimmed sweep report); failures travel as ``(class, message)``
        pairs and re-raise identically in every replica.
        """
        self._published_open += 1
        event._add_callback(_PublishDone(self, key, transform))
        self.taint(event)
        return event

    def begin(self, _key=None):
        """Open an inline owned operation (close with :meth:`complete`).

        While any owned operation is open the shard's horizon stays
        pinned to its next local event time, so peers waiting on the
        completion cannot run past the time it will carry.
        """
        self._published_open += 1

    def complete(self, key, value):
        """Broadcast an inline completion (opened with :meth:`begin`)."""
        self._published_open -= 1
        self._broadcast_done(key, True, value)

    def complete_error(self, key, exc):
        """Broadcast an inline completion that raised ``exc``."""
        self._published_open -= 1
        self._broadcast_done(key, False, describe_error(exc))

    def remote(self, key, owner):
        """A ghost event for an operation ``owner`` runs on our behalf.

        The governor triggers it at the virtual time the owner's
        completion message carries; until then the ceiling keeps this
        shard from advancing past any time the completion could name.
        """
        if owner == self.index:
            raise ShardError(f"shard {owner} cannot wait on itself for {key!r}")
        if owner not in self.conns:
            raise ShardError(f"no pipe to shard {owner} for {key!r}")
        event = Event(self.engine)
        # Pre-marked so cone tracking never descends into ghosts: their
        # fire time is bounded by the ceiling, not by local events.
        event.tainted = True
        self._outstanding[key] = (event, owner)
        return event

    # -- the engine governor hook -----------------------------------------

    def gate(self, _next_time):
        """Called by ``Engine.step`` before every event pop."""
        self._steps += 1
        if self._steps % HORIZON_STRIDE == 0:
            self._pump(block=False)
            # Unconditional: a peer may already be outstanding on an
            # operation we have not reached begin()/publish() for yet,
            # in which case its ceiling tracks our horizon right now.
            # The monotonic throttle in _send_horizon keeps this cheap.
            self._send_horizon()
        if self._buffered and self._outstanding:
            self._inject_ready()
        waits = 0
        while self._outstanding:
            queue = self.engine._queue
            next_time = queue[0][0] if queue else None
            if next_time is not None and next_time <= self._ceiling():
                break
            if waits % BLOCKED_RESEND_STRIDE == 0:
                self._send_horizon()
            waits += 1
            self.blocked_waits += 1
            self._pump(block=True)
            self._inject_ready()

    def _ceiling(self):
        """Highest virtual time this shard may advance to while blocked.

        The textbook conservative bound is ``min(owner horizons) +
        lookahead`` — safe for arbitrary message consumers.  The cloud
        seams obey a stronger contract that licenses ``max``: every
        remote operation is awaited either alone or through an
        all-or-nothing barrier (``engine.all_of``), and control cannot
        resume before the *latest* member completes.  A ghost arriving
        below the local clock is therefore inert — its callback only
        ticks the barrier counter — and :meth:`_inject_ready` clamps
        its enqueue delay to "now".  The completion that actually
        resumes control carries the barrier's max timestamp, which is
        >= every owner horizon, so popping local events up to
        ``max(owner horizons) + lookahead`` can never run past a
        resumption.  (With one outstanding op the two rules coincide.)
        A seam that waits on one of several registered ghosts
        *selectively* would break this contract — none does; the
        differential pins would catch it as divergence.
        """
        hz = self._hz
        return (
            max(hz[owner] for _event, owner in self._outstanding.values())
            + self.lookahead
        )

    def _inject_ready(self):
        """Merge buffered completions into the local heap, in order.

        Deterministic merge rule: ready ghosts sort by ``(t, sender
        shard, sender sequence)`` and are enqueued only once the next
        local event time has reached ``t`` — so their heap sequence
        numbers interleave with local events exactly as the serial
        engine's completion events would.

        Under the max-of-horizons ceiling (:meth:`_ceiling`) the local
        clock may already sit *past* a lagging owner's completion time
        when its message lands.  Such a late ghost is inert — it can
        only tick an all-of barrier whose latest member is still ahead
        of us — so its enqueue delay is clamped to zero: it fires
        "now", the barrier counts it, and the resumption still happens
        at the barrier's max timestamp, carried by an on-time event.
        """
        buffered = self._buffered
        outstanding = self._outstanding
        ready = sorted(
            (entry[0], entry[1], entry[2], key)
            for key, entry in buffered.items()
            if key in outstanding
        )
        if not ready:
            return
        engine = self.engine
        queue = engine._queue
        for t, _sender, _seq, key in ready:
            next_time = queue[0][0] if queue else None
            if next_time is not None and t > next_time:
                break
            _t, _s, _q, ok, payload = buffered.pop(key)
            event, _owner = outstanding.pop(key)
            if ok:
                event._ok = True
                event._value = payload
            else:
                event._ok = False
                event._value = rebuild_error(payload)
            engine._enqueue(event, delay=max(0.0, t - engine._now))
            self.ghosts_injected += 1

    # -- wire protocol -----------------------------------------------------

    def _horizon(self):
        """Lower bound on the timestamp of any done we may still send.

        The bound is the send cone's earliest pop time
        (:meth:`_cone_bound`) — typically a probe settle-wait timer
        seconds of virtual time ahead, licensing peers to free-run
        through thousands of daemon events the myopic queue head would
        have gated one at a time.

        While an owned operation is open, the cone bound stands alone:
        owned completions are driven purely by local cone events (the
        control planes keep inline and published work phase-disjoint,
        and all-of waits cannot resume below an own member's
        completion).  Crucially it is *not* min-ed with the ceiling:
        echoing ``min(local bound, hz[peer])`` back at the peer freezes
        both horizons at whatever stale value they last exchanged, and
        with zero lookahead neither side ever moves — the textbook
        null-message feedback deadlock.

        With nothing owned but remotes outstanding, a ghost injection
        could resume control (and trigger an inline begin+complete) as
        early as the ceiling, so the ceiling joins the min there.  The
        result is ``+inf`` only once this shard is fully drained (queue
        empty, nothing owned or outstanding), i.e. at fin.
        """
        bound = self._cone_bound()
        if self._outstanding and not self._published_open:
            ceiling = self._ceiling()
            if ceiling < bound:
                bound = ceiling
        return bound

    def _send_horizon(self):
        horizon = self._horizon()
        if horizon <= self._hz_sent:
            return
        self._hz_sent = horizon
        self._broadcast(("hz", self.index, horizon))

    def _broadcast_done(self, key, ok, payload):
        t = self.engine.now
        if t < self._hz_sent:
            # An advertised horizon is a promise that no message below
            # it is coming; breaking it means a peer may already have
            # advanced past t and would inject this ghost out of order.
            raise ShardError(
                f"shard {self.index}: completion for {key!r} at t={t!r} "
                f"violates the advertised horizon {self._hz_sent!r} "
                "(owned operations must not depend on cross-shard ghosts)"
            )
        seq = next(self._op_seq)
        self._broadcast(("done", self.index, seq, key, t, ok, payload))

    def _broadcast(self, message):
        for peer, conn in self.conns.items():
            try:
                conn.send(message)
            except (BrokenPipeError, OSError) as exc:
                raise ShardError(
                    f"shard {self.index}: peer {peer} pipe is down ({exc})"
                ) from exc
            self.messages_sent += 1

    def _pump(self, block):
        got = self._drain_ready(self._poller.poll(0))
        if block and not got:
            if len(self._dead) == len(self.conns):
                raise ShardError(
                    f"shard {self.index}: blocked with every peer gone"
                )
            ready = self._poller.poll(int(self.recv_timeout * 1000))
            if not ready:
                raise ShardError(
                    f"shard {self.index}: no peer message within "
                    f"{self.recv_timeout:.0f}s (peer stalled or died)"
                )
            got = self._drain_ready(ready)
        return got

    def _drain_ready(self, events):
        """Dispatch every queued message on ready pipes; EOF-aware.

        Re-polls (one cheap syscall on the persistent poller) until no
        pipe is readable, so a burst of peer messages drains in one
        call.  A pipe at EOF still polls readable, so a peer that
        exited after the fin barrier surfaces here: benign once its fin
        arrived — the fd is unregistered and the peer marked dead — a
        dead-peer error before that.
        """
        got = False
        while events:
            for fd, _mask in events:
                peer = self._fd_peer[fd]
                if peer in self._dead:
                    continue
                try:
                    message = self.conns[peer].recv()
                except (EOFError, ConnectionResetError):
                    # EOF is the clean FIN; a reset happens when the
                    # peer died with our messages still unread in its
                    # receive buffer.  Both mean the peer is gone.
                    if peer not in self._fins:
                        raise ShardError(
                            f"shard {self.index}: pipe to shard {peer} "
                            "closed before its fin (peer died)"
                        ) from None
                    self._dead.add(peer)
                    self._poller.unregister(fd)
                    continue
                self._dispatch(message)
                got = True
            events = self._poller.poll(0)
        return got

    def _dispatch(self, message):
        self.messages_received += 1
        kind = message[0]
        if kind == "hz":
            _kind, sender, horizon = message
            if horizon > self._hz[sender]:
                self._hz[sender] = horizon
        elif kind == "done":
            _kind, sender, seq, key, t, ok, payload = message
            self._buffered[key] = (t, sender, seq, ok, payload)
            # A completion at t promises nothing earlier remains.
            if t > self._hz[sender]:
                self._hz[sender] = t
        elif kind == "fin":
            _kind, sender, digest, extra = message
            self._fins[sender] = digest
            self._fin_extras[sender] = extra
            self._hz[sender] = _INF
        elif kind == "payload":
            _kind, sender, payload = message
            self._payloads[sender] = payload
        elif kind == "fail":
            _kind, sender, text = message
            raise ShardError(
                f"shard {sender} died:\n{text}"
            )
        else:  # pragma: no cover - protocol bug guard
            raise ShardError(f"unknown shard message kind {kind!r}")

    # -- teardown ----------------------------------------------------------

    def send_payload(self, payload):
        """Ship an out-of-band payload (trace merge data) to shard 0."""
        if 0 in self.conns:
            self.conns[0].send(("payload", self.index, payload))
            self.messages_sent += 1

    def announce_failure(self, text):
        """Best-effort death notice so peers fail fast, not on timeout."""
        for conn in self.conns.values():
            try:
                conn.send(("fail", self.index, text))
            except (BrokenPipeError, OSError):
                pass

    def finish(self, digest, extra=None):
        """Fin barrier: exchange digests (and stats) with every peer.

        Returns ``{shard index: digest}`` including our own.  No shard
        leaves the barrier before every peer has arrived, so nobody
        ever writes to a pipe whose reader already exited.  ``extra``
        is a small stats dict shipped alongside the digest — shard 0
        folds every peer's copy into :meth:`stats` so a single-process
        caller can see the whole mesh's work split (the scaling bench
        gates on the per-shard event counts it carries).
        """
        if self._outstanding:
            raise ShardError(
                f"shard {self.index} finished with outstanding remote ops: "
                f"{sorted(map(repr, self._outstanding))[:4]}"
            )
        self._broadcast(("fin", self.index, digest, extra))
        while len(self._fins) < len(self.conns):
            self._pump(block=True)
        self._fin_extras[self.index] = extra
        fins = dict(self._fins)
        fins[self.index] = digest
        return fins

    def stats(self):
        return {
            "shard": self.index,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "ghosts_injected": self.ghosts_injected,
            "blocked_waits": self.blocked_waits,
            "per_shard": {
                shard: dict(extra)
                for shard, extra in sorted(self._fin_extras.items())
                if extra is not None
            },
        }

    def __repr__(self):
        return (
            f"<ShardRuntime shard={self.index} peers={len(self.conns)} "
            f"outstanding={len(self._outstanding)}>"
        )
