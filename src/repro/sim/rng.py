"""Deterministic named random streams.

Every component that needs randomness (workload jitter, file contents,
network noise) asks the registry for a stream by name.  Streams are
independent ``random.Random`` instances derived from the root seed and
the stream name, so adding a new consumer never perturbs existing ones —
an essential property for reproducible experiments.
"""

import hashlib
import random


class RngRegistry:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, seed=1701):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the ``random.Random`` for ``name``, creating it if new."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def state(self):
        """Portable snapshot of the registry: seed + every born stream.

        Only streams that have been materialized appear in the state —
        an unborn stream needs no entry, because :meth:`restore` keeps
        the derive-by-name property: asking a restored registry for a
        name that was never drawn from still derives the stream from
        the root seed exactly as the original registry would have.
        """
        return {
            "seed": self.seed,
            "streams": {
                name: stream.getstate()
                for name, stream in self._streams.items()
            },
        }

    def restore(self, state):
        """Reset this registry to a :meth:`state` snapshot.

        Streams present in the snapshot resume mid-sequence; names
        absent from it are dropped so a later :meth:`stream` call
        re-derives them from the (restored) root seed — same behaviour
        as the registry the state was taken from.
        """
        self.seed = int(state["seed"])
        self._streams = {}
        for name, stream_state in state["streams"].items():
            stream = random.Random()
            stream.setstate(stream_state)
            self._streams[name] = stream
        return self

    def gauss_jitter(self, name, mean, rsd):
        """One sample from N(mean, rsd*mean), floored at 10% of the mean.

        ``rsd`` is the relative standard deviation (e.g. 0.05 for 5%).
        The floor keeps costs and latencies strictly positive.
        """
        sample = self.stream(name).gauss(mean, abs(rsd * mean))
        floor = 0.1 * abs(mean)
        return max(sample, floor)

    def page_bytes(self, name, length=64):
        """Deterministic pseudo-random page content of ``length`` bytes."""
        rng = self.stream(name)
        return bytes(rng.getrandbits(8) for _ in range(length))
