"""Discrete-event simulation kernel.

Everything in the reproduction runs on virtual time provided by
:class:`~repro.sim.engine.Engine`.  Wall-clock time never enters any
measurement, which makes every experiment deterministic given a seed.

Public surface:

* :class:`~repro.sim.engine.Engine` — the event loop and virtual clock.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Process` — the waitable primitives.
* :class:`~repro.sim.process.Channel` — buffered message passing between
  processes (used by the network stack and migration streams).
* :class:`~repro.sim.process.Resource` — counted resource with FIFO queueing.
* :class:`~repro.sim.rng.RngRegistry` — named deterministic random streams.
"""

from repro.sim.engine import AllOf, AnyOf, Engine, Event, Interrupt, Process, Timeout
from repro.sim.process import Channel, Resource, Stopwatch
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "Stopwatch",
    "Timeout",
]
