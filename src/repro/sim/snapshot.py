"""Copy-on-write snapshot/fork of a running engine.

The expensive part of every detection sweep, chaos campaign, and A/B
fault study is the shared warm-up prefix: boot hosts, place tenants,
let KSM converge.  This module lets a driver pay that prefix once —
:func:`capture` freezes the full simulation state (event heap, timers,
process continuations, RNG streams, perf counters) and every
:meth:`EngineSnapshot.fork` call produces an *independent* engine whose
guest memory shares the interned :class:`~repro.hardware.page_store.
PageRecord` objects with the snapshot by refcount.  No page bytes are
copied at fork time; a branch that writes a shared page diverges
through the memory layer's ordinary intern-on-write path.

Mechanics
---------

A snapshot is one :func:`copy.deepcopy` of ``(engine, root)`` with a
pre-seeded memo:

* every resident ``PageRecord`` of every memory the engine has
  registered (:meth:`Engine.register_memory`) is entered as *itself*,
  so the copy shares page contents instead of duplicating them;
* the engine's internal ``_PENDING`` sentinel is entered as itself, so
  pending-event identity checks survive the copy.

After the copy, each copied memory *adopts* one page-store reference
per distinct frame (:meth:`PhysicalMemory.adopt_fork_records`) — the
records' refcounts now account for every holder on both sides, and
disposing a branch (:meth:`Fork.dispose`) returns the refcounts to the
pre-fork partition exactly.

Generators cannot be copied, so every process alive at capture time
must be *resumable*: created with ``engine.process(gen, resumable=obj)``
where ``obj.__resume__()`` returns a fresh generator in resuming mode —
its first yield bare and side-effect-free (no events created, no
counters touched).  :meth:`Process.__deepcopy__` advances the fresh
generator to that bare yield; the copied pending event then delivers
its value through the copied callbacks exactly as the original would
have.  The KSM daemon and every workload implement the protocol; a
live process without it fails the capture loudly.

What is *not* captured: wall-clock state (perf_counter values), the
process-global observability registry (a forked tracer's events stay
reachable through the fork's own engine but are not auto-registered
for merged exports), and OS-level resources — there are none; the
simulation is pure Python state by construction.
"""

import contextlib
import copy
import gc

from repro.errors import ReproError, SimulationError
from repro.sim.engine import _PENDING

__all__ = ["EngineSnapshot", "Fork", "SnapshotError", "capture", "heap_frozen"]


#: Depth of nested :func:`heap_frozen` contexts.  ``gc.unfreeze`` has
#: no nesting of its own — it thaws the *entire* permanent generation —
#: so only the outermost exit may call it, or an inner fan-out would
#: silently strip the protection an enclosing driver (for example a
#: benchmark that also freezes around its cold comparator legs) set up.
_freeze_depth = 0


@contextlib.contextmanager
def heap_frozen():
    """Freeze the live heap around a fan-out loop.

    A fork loop allocates and frees one whole engine copy per branch;
    every disposed branch leaves cycles behind, and the collector's
    full-heap passes re-scan the (large, immortal) warm fleet plus the
    pristine snapshot each time — in practice that roughly doubles
    per-branch wall time.  Freezing moves everything alive at entry
    into the permanent generation so per-branch ``gc.collect()`` calls
    only walk that branch's own garbage.  Drivers use::

        with heap_frozen():
            for spec in branches:
                run_one(spec)
                gc.collect()   # cheap: only the branch's garbage

    Contexts nest: an inner ``heap_frozen`` re-freezes whatever was
    allocated since the outer one (the warm fleet itself, typically)
    and the heap thaws only when the outermost context exits.
    """
    global _freeze_depth
    gc.collect()
    gc.freeze()
    _freeze_depth += 1
    try:
        yield
    finally:
        _freeze_depth -= 1
        if _freeze_depth == 0:
            gc.unfreeze()


class SnapshotError(SimulationError):
    """Capture or fork failed (unresumable process, disposed snapshot)."""


def _seed_memo(memories):
    """Deepcopy memo mapping every page record (and the pending
    sentinel) to itself, so the copy shares them by identity."""
    memo = {id(_PENDING): _PENDING}
    for memory in memories:
        for record in memory.page_store.iter_records():
            memo[id(record)] = record
        for frame in memory.iter_distinct_frames():
            record = frame.record
            memo[id(record)] = record
    return memo


def _copy_world(engine, root, track_divergence):
    """One shared-record deepcopy of ``(engine, root)`` + ref adoption.

    Returns ``(engine_copy, root_copy, pages_shared)``.
    """
    memo = _seed_memo(engine._memories)
    # The copy allocates tens of thousands of objects and frees none;
    # letting the cyclic collector run its full-heap passes mid-copy
    # roughly doubles fork latency for zero reclaim.
    was_collecting = gc.isenabled()
    if was_collecting:
        gc.disable()
    try:
        engine_copy, root_copy = copy.deepcopy((engine, root), memo)
    except (ReproError, TypeError) as exc:
        raise SnapshotError(f"engine state is not snapshotable: {exc}") from exc
    finally:
        if was_collecting:
            gc.enable()
    shared = 0
    for memory in engine_copy._memories:
        shared += memory.adopt_fork_records(track_divergence=track_divergence)
    return engine_copy, root_copy, shared


class Fork:
    """One independent branch forked off an :class:`EngineSnapshot`.

    ``engine`` and ``root`` are full, runnable copies; run the branch
    to any horizon, read its results, then :meth:`dispose` it so the
    page records it shares with the snapshot drop back to the pre-fork
    refcounts.
    """

    def __init__(self, snapshot, engine, root, pages_shared):
        self.snapshot = snapshot
        self.engine = engine
        self.root = root
        self.pages_shared = pages_shared
        self._disposed = False

    @property
    def disposed(self):
        return self._disposed

    def dispose(self):
        """Release every page-store reference this branch holds."""
        if self._disposed:
            return
        self._disposed = True
        for memory in self.engine._memories:
            memory.release_fork_records()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.dispose()
        return False

    def __repr__(self):
        state = "disposed" if self._disposed else "live"
        return f"<Fork of {self.snapshot!r} shared={self.pages_shared} {state}>"


class EngineSnapshot:
    """A frozen, pristine copy of an engine (plus its domain root).

    The capture itself is one shared-record deepcopy held aside; the
    original engine may keep running (or be thrown away) without
    touching the snapshot.  Each :meth:`fork` produces an independent
    branch from the pristine copy.
    """

    def __init__(self, engine, label, pristine_engine, pristine_root, shared):
        #: The engine the snapshot was captured from.
        self.engine = engine
        self.label = label
        self.captured_at = pristine_engine.now
        self.pages_shared = shared
        self._pristine_engine = pristine_engine
        self._pristine_root = pristine_root
        self._disposed = False
        self.forks_taken = 0

    @property
    def root(self):
        """Read-only view of the captured domain root (do not run it)."""
        return self._pristine_root

    def fork(self):
        """Produce an independent branch; returns a :class:`Fork`."""
        if self._disposed:
            raise SnapshotError("snapshot has been disposed")
        engine_copy, root_copy, shared = _copy_world(
            self._pristine_engine, self._pristine_root, track_divergence=True
        )
        self.forks_taken += 1
        self.engine.perf.engine_forks += 1
        engine_copy.perf.fork_pages_shared += shared
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "snapshot.fork",
                "snapshot",
                track="snapshot",
                args={
                    "label": self.label,
                    "fork": self.forks_taken,
                    "pages_shared": shared,
                },
            )
        return Fork(self, engine_copy, root_copy, shared)

    def dispose(self):
        """Release the pristine copy's page-store references."""
        if self._disposed:
            return
        self._disposed = True
        for memory in self._pristine_engine._memories:
            memory.release_fork_records()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.dispose()
        return False

    def __repr__(self):
        label = f" {self.label!r}" if self.label else ""
        return (
            f"<EngineSnapshot{label} at={self.captured_at:.3f}s "
            f"shared={self.pages_shared} forks={self.forks_taken}>"
        )


def capture(engine, root=None, label=None):
    """Snapshot ``engine`` (and the ``root`` object graph) right now.

    Every process alive on the engine must be resumable (see the module
    docstring); raises :class:`SnapshotError` otherwise.  Returns an
    :class:`EngineSnapshot`.
    """
    pristine_engine, pristine_root, shared = _copy_world(
        engine, root, track_divergence=False
    )
    engine.perf.snapshot_captures += 1
    tracer = engine.tracer
    if tracer.enabled:
        tracer.instant(
            "snapshot.capture",
            "snapshot",
            track="snapshot",
            args={"label": label, "pages_shared": shared},
        )
    return EngineSnapshot(engine, label, pristine_engine, pristine_root, shared)
