"""Always-on performance counters for the simulation core.

The counters are *host-side* observability: they measure how much work
the Python simulation performs (events dispatched, heap pushes, pages
scanned), never virtual time.  They exist so perf regressions in the
hot paths — :meth:`repro.sim.engine.Engine.step`, the KSM scan loop,
the migration stream — are visible per run without a profiler, and so
``benchmarks/perf_report.py`` can record a trajectory for later PRs to
beat.

Incrementing a slotted int attribute costs a few tens of nanoseconds,
cheap enough to keep the counters unconditionally on.
"""


class PerfCounters:
    """Cheap always-on counters surfaced through ``Engine.perf``.

    Fields (all plain ints, reset with :meth:`reset`):

    * ``events_dispatched`` — events popped and processed by
      :meth:`Engine.step`;
    * ``heap_pushes`` — entries pushed onto the event heap;
    * ``processes_resumed`` — generator resumptions (``send``/``throw``)
      across all :class:`Process` instances;
    * ``immediate_resumes`` — resumptions delivered inline because the
      yielded event had already been processed (the queue-less path);
    * ``timer_fast_path`` — timeouts that fired with no waiter ever
      attached (their callback list was never materialized);
    * ``ksm_pages_scanned`` — pages examined by the KSM daemon;
    * ``ksm_passes`` — completed KSM full scans;
    * ``ksm_bucket_merges`` — digest buckets the KSM daemon merged as a
      group (each bucket covers one or more individual page merges);
    * ``page_store_interns`` — unique page contents interned into a
      :class:`repro.hardware.page_store.PageStore`;
    * ``page_store_hits`` — page-store interns satisfied by an existing
      record (content already resident, only a refcount bump);
    * ``dirty_words_scanned`` — 64-page bitmap words examined while
      draining guest dirty logs;
    * ``migration_chunks`` — RAM chunks sent by migration sources;
    * ``migration_pages`` — pages carried by those chunks;
    * ``migration_pages_deduped`` — pages shipped as digest-table
      references instead of full content (``dedup`` capability);
    * ``cloud_placements`` — tenant placement decisions by the fleet
      scheduler;
    * ``cloud_migrations`` — completed cross-host tenant migrations;
    * ``fleet_sweeps`` — fleet-wide monitoring sweeps completed;
    * ``fleet_detections`` — compromised-tenant verdicts across fleet
      sweeps (repeat detections of the same tenant count);
    * ``faults_injected`` — fault-plan injections performed by
      :class:`repro.faults.injector.FaultInjector` (skips not counted);
    * ``faults_recovered`` — fault recoveries (heals, crash restores,
      stall expiries) performed by the injector;
    * ``snapshot_captures`` — engine snapshots taken
      (:meth:`repro.sim.engine.Engine.snapshot`);
    * ``engine_forks`` — independent branches forked off a snapshot
      (counted on the parent engine that owns the snapshot);
    * ``fork_pages_shared`` — interned page records a forked branch
      adopted by refcount instead of copying (counted on the branch);
    * ``fork_cow_breaks`` — branch writes that replaced a fork-shared
      page record on the written pfn, i.e. genuine copy-on-write
      divergence from the snapshot (counted on the branch).
    """

    __slots__ = (
        "events_dispatched",
        "heap_pushes",
        "processes_resumed",
        "immediate_resumes",
        "timer_fast_path",
        "ksm_pages_scanned",
        "ksm_passes",
        "ksm_bucket_merges",
        "page_store_interns",
        "page_store_hits",
        "dirty_words_scanned",
        "migration_chunks",
        "migration_pages",
        "migration_pages_deduped",
        "cloud_placements",
        "cloud_migrations",
        "fleet_sweeps",
        "fleet_detections",
        "faults_injected",
        "faults_recovered",
        "snapshot_captures",
        "engine_forks",
        "fork_pages_shared",
        "fork_cow_breaks",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        """Zero every counter."""
        self.events_dispatched = 0
        self.heap_pushes = 0
        self.processes_resumed = 0
        self.immediate_resumes = 0
        self.timer_fast_path = 0
        self.ksm_pages_scanned = 0
        self.ksm_passes = 0
        self.ksm_bucket_merges = 0
        self.page_store_interns = 0
        self.page_store_hits = 0
        self.dirty_words_scanned = 0
        self.migration_chunks = 0
        self.migration_pages = 0
        self.migration_pages_deduped = 0
        self.cloud_placements = 0
        self.cloud_migrations = 0
        self.fleet_sweeps = 0
        self.fleet_detections = 0
        self.faults_injected = 0
        self.faults_recovered = 0
        self.snapshot_captures = 0
        self.engine_forks = 0
        self.fork_pages_shared = 0
        self.fork_cow_breaks = 0

    def as_dict(self):
        """Counters as a plain dict (the BENCH_core.json field order)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def snapshot(self):
        """Point-in-time copy of every counter (a plain dict).

        Pair with :meth:`delta` to report per-phase work instead of
        whole-run totals — benchmarks bracket a phase with
        ``before = perf.snapshot()`` / ``perf.delta(before)``, and the
        tracer's engine sampler emits exactly these deltas.
        """
        return {name: getattr(self, name) for name in self.__slots__}

    def delta(self, since):
        """Counter increments since a :meth:`snapshot` dict."""
        return {
            name: getattr(self, name) - since.get(name, 0)
            for name in self.__slots__
        }

    def format(self, indent="  "):
        """Human-readable multi-line rendering for ``repro --perf``."""
        width = max(len(name) for name in self.__slots__)
        return "\n".join(
            f"{indent}{name:<{width}}  {getattr(self, name):>12,}"
            for name in self.__slots__
        )

    def __repr__(self):
        return (
            f"<PerfCounters events={self.events_dispatched} "
            f"resumes={self.processes_resumed} "
            f"ksm_scanned={self.ksm_pages_scanned}>"
        )
