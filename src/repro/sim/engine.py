"""The discrete-event engine: virtual clock, events, and processes.

The design follows the classic event-list pattern (and will look familiar
to SimPy users): an :class:`Engine` owns a priority queue of triggered
events ordered by virtual time; a :class:`Process` wraps a generator that
yields waitable :class:`Event` objects and is resumed when they fire.

The engine is intentionally small — the substrates built on top (guest
kernels, KSM daemon, migration streams) provide the domain behaviour.
"""

import heapq
from itertools import count

from repro.errors import SimulationError

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence on the engine's timeline.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules its callbacks to run at the current
    virtual time.  Processes wait on events by yielding them.
    """

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        #: True once the engine has popped the event and run its
        #: callbacks.  Distinct from :attr:`triggered`: a Timeout is
        #: "triggered" (value assigned) from birth but fires later.
        self.processed = False

    @property
    def triggered(self):
        """Whether the event has been succeeded or failed."""
        return self._value is not _PENDING

    @property
    def ok(self):
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self):
        """The event's result value (or exception when it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.engine._enqueue(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception, propagated to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._ok = False
        self._value = exception
        self.engine._enqueue(self)
        return self


class Timeout(Event):
    """An event that fires automatically after a virtual-time delay."""

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self._ok = True
        self._value = value
        engine._enqueue(self, delay=delay)


class _Initialize(Event):
    """Internal event used to start a process at the current time."""

    def __init__(self, engine, process):
        super().__init__(engine)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        engine._enqueue(self)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event triggers, the generator is resumed with the event's value (or,
    for failed events, the exception is thrown into it).  The process
    itself is an event whose value is the generator's return value.
    """

    def __init__(self, engine, generator, name=None):
        super().__init__(engine)
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        _Initialize(engine, self)

    @property
    def is_alive(self):
        """Whether the process has not yet finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._resume)
        self.engine._enqueue(interrupt_event)

    def _resume(self, event):
        if self.triggered:
            # The process already ended.  Stale interrupts lose the race
            # benignly; any other failed event with no remaining waiter
            # is a genuine lost error and must not pass silently.
            if (
                not event._ok
                and not event.callbacks
                and not isinstance(event._value, Interrupt)
            ):
                raise event._value
            return
        detach = self._waiting_on
        if detach is not None and detach is not event:
            try:
                detach.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.engine._enqueue(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.engine._enqueue(self)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
        self._waiting_on = target
        if target.processed:
            # The event already fired and its callbacks ran; re-deliver
            # its outcome to this process at the current time.
            immediate = Event(self.engine)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks.append(self._resume)
            self.engine._enqueue(immediate)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    def __init__(self, engine, events):
        super().__init__(engine)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.processed:
                self._observe_now(event)
            else:
                self._pending += 1
                event.callbacks.append(self._observe)
        self._check_initial()

    def _observe_now(self, event):
        raise NotImplementedError

    def _observe(self, event):
        raise NotImplementedError

    def _check_initial(self):
        raise NotImplementedError

    def _results(self):
        return [e._value for e in self._events if e.triggered and e._ok]


class AllOf(_Condition):
    """Fires when every given event has fired (fails fast on failure)."""

    def _observe_now(self, event):
        if not event._ok:
            if not self.triggered:
                self.fail(event._value)

    def _observe(self, event):
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results())

    def _check_initial(self):
        if self.triggered:
            return
        if self._pending == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any one of the given events fires."""

    def _observe_now(self, event):
        if not self.triggered:
            if event._ok:
                self.succeed(event._value)
            else:
                self.fail(event._value)

    def _observe(self, event):
        if self.triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def _check_initial(self):
        if not self.triggered and not self._events:
            raise SimulationError("AnyOf requires at least one event")


class Engine:
    """The virtual clock and event loop.

    All durations and timestamps are floats in *seconds of virtual time*.
    """

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._sequence = count()

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start a :class:`Process` running ``generator`` immediately."""
        return Process(self, generator, name=name)

    def call_at(self, when, fn, *args):
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at in the past: {when} < {self._now}")
        marker = Timeout(self, when - self._now)
        marker.callbacks.append(lambda _event: fn(*args))
        return marker

    def call_later(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        marker = self.timeout(delay)
        marker.callbacks.append(lambda _event: fn(*args))
        return marker

    def all_of(self, events):
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def _enqueue(self, event, delay=0.0):
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def step(self):
        """Process the single next event; returns False when queue is empty."""
        if not self._queue:
            return False
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event.processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody waited for: surface the error loudly.
            raise event._value
        return True

    def run(self, until=None):
        """Run the event loop.

        ``until`` may be ``None`` (run to quiescence), a number (absolute
        virtual time to stop at), or an :class:`Event` (run until it
        triggers, returning its value or raising its failure).
        """
        if until is None:
            while self.step():
                pass
            return None
        if isinstance(until, Event):
            if until.processed:
                if until._ok:
                    return until._value
                raise until._value
            finished = []
            until.callbacks.append(finished.append)
            while not finished:
                if not self.step():
                    raise SimulationError(
                        f"engine ran out of events before {getattr(until, 'name', 'event')!r} fired"
                    )
            if until._ok:
                return until._value
            raise until._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"cannot run backwards to {deadline}")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None
