"""The discrete-event engine: virtual clock, events, and processes.

The design follows the classic event-list pattern (and will look familiar
to SimPy users): an :class:`Engine` owns a priority queue of triggered
events ordered by virtual time; a :class:`Process` wraps a generator that
yields waitable :class:`Event` objects and is resumed when they fire.

The engine is intentionally small — the substrates built on top (guest
kernels, KSM daemon, migration streams) provide the domain behaviour.

Every class on the dispatch path uses ``__slots__``, timeouts defer
building their callback list until a waiter actually attaches, and a
process that yields an already-processed event is resumed inline rather
than through a throwaway queue entry.  :attr:`Engine.perf` counts the
work done (see :mod:`repro.sim.perf`).
"""

import heapq
from itertools import count

from repro.errors import SimulationError
from repro.obs.trace import Tracer
from repro.sim.perf import PerfCounters

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence on the engine's timeline.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules its callbacks to run at the current
    virtual time.  Processes wait on events by yielding them.

    ``callbacks`` may be ``None`` (no waiter ever attached — the timer
    fast-path) or a list; internal code attaches waiters through
    :meth:`_add_callback`, which materializes the list on demand.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "processed", "tainted", "when")

    def __init__(self, engine):
        self.engine = engine
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        #: True once the engine has popped the event and run its
        #: callbacks.  Distinct from :attr:`triggered`: a Timeout is
        #: "triggered" (value assigned) from birth but fires later.
        self.processed = False
        #: Send-relevance mark for sharded runs: True when popping this
        #: event can transitively resume a process that broadcasts a
        #: cross-shard completion.  The shard governor seeds and
        #: propagates the mark (see :mod:`repro.sim.shard`); serial
        #: runs never set it.  ``when`` is the absolute virtual fire
        #: time, stamped by :meth:`Engine._enqueue` — the governor
        #: reads it to bound the next cross-shard send without
        #: scanning the heap.
        self.tainted = False

    @property
    def triggered(self):
        """Whether the event has been succeeded or failed."""
        return self._value is not _PENDING

    @property
    def ok(self):
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self):
        """The event's result value (or exception when it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def _add_callback(self, fn):
        """Attach a waiter, materializing the callback list lazily."""
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = [fn]
        else:
            callbacks.append(fn)

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.engine._enqueue(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception, propagated to waiters."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception")
        self._ok = False
        self._value = exception
        self.engine._enqueue(self)
        return self


class Timeout(Event):
    """An event that fires automatically after a virtual-time delay.

    Bare ``engine.timeout(d)`` yields are the single most common event
    in every scenario, so the constructor bypasses ``Event.__init__``
    and leaves ``callbacks`` as ``None`` until a waiter attaches.
    """

    __slots__ = ()

    def __init__(self, engine, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.engine = engine
        self.callbacks = None
        self._ok = True
        self._value = value
        self.processed = False
        self.tainted = False
        engine._enqueue(self, delay=delay)


class _Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, engine, process):
        self.engine = engine
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        self.processed = False
        self.tainted = False
        engine._enqueue(self)


class _Call:
    """A deferred ``fn(*args)`` used by ``call_at`` / ``call_later``.

    A lambda closure here would be shared *by identity* across snapshot
    forks (plain functions are atomic to :mod:`copy`); an instance
    rebinds its payload through the copy memo like every other event
    callback, so a forked branch calls the forked injector, not the
    parent's.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn, args):
        self.fn = fn
        self.args = args

    def __call__(self, _event):
        self.fn(*self.args)


class Process(Event):
    """A running generator coroutine; also an event that fires on return.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event triggers, the generator is resumed with the event's value (or,
    for failed events, the exception is thrown into it).  The process
    itself is an event whose value is the generator's return value.

    ``resumable`` optionally names the object the generator came from.
    Generators cannot be copied, so engine snapshots (:mod:`repro.sim.
    snapshot`) rebuild a live process's continuation by asking the
    copied resumable for a fresh generator positioned at the suspension
    point — see :meth:`__deepcopy__`.
    """

    __slots__ = ("_generator", "name", "_waiting_on", "resumable")

    def __init__(self, engine, generator, name=None, resumable=None):
        super().__init__(engine)
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        self.resumable = resumable
        _Initialize(engine, self)

    def __deepcopy__(self, memo):
        """Copy for engine snapshots; the generator needs special care.

        A finished process drops its (exhausted) generator.  A live one
        must carry a ``resumable`` — an object exposing ``__resume__()``
        returning a *resuming-mode* generator whose first yield is bare
        and side-effect-free; the copy advances that fresh generator to
        the bare yield, after which the copied waiting event's callback
        (already rebound to this copy through the memo) delivers the
        pending value exactly as it would have to the original.
        """
        from copy import deepcopy

        memo.setdefault(id(_PENDING), _PENDING)
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone.name = self.name
        clone._ok = self._ok
        clone.processed = self.processed
        clone.tainted = False  # shard governors exist only post-fork
        try:
            clone.when = self.when
        except AttributeError:
            pass
        clone.engine = deepcopy(self.engine, memo)
        clone.callbacks = deepcopy(self.callbacks, memo)
        clone._value = deepcopy(self._value, memo)
        clone._waiting_on = deepcopy(self._waiting_on, memo)
        clone.resumable = deepcopy(self.resumable, memo)
        if self._value is not _PENDING:
            clone._generator = None
        elif clone.resumable is not None:
            generator = clone.resumable.__resume__()
            generator.send(None)
            clone._generator = generator
        else:
            raise SimulationError(
                f"cannot snapshot live process {self.name!r}: it has no "
                "resumable (see repro.sim.snapshot)"
            )
        return clone

    @property
    def is_alive(self):
        """Whether the process has not yet finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._resume)
        self.engine._enqueue(interrupt_event)

    def _resume(self, event):
        if self._value is not _PENDING:
            # The process already ended.  Stale interrupts lose the race
            # benignly; any other failed event with no remaining waiter
            # is a genuine lost error and must not pass silently.
            if (
                not event._ok
                and not event.callbacks
                and not isinstance(event._value, Interrupt)
            ):
                raise event._value
            return
        detach = self._waiting_on
        if detach is not None and detach is not event:
            try:
                detach.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._waiting_on = None
        generator = self._generator
        engine = self.engine
        perf = engine.perf
        ok = event._ok
        value = event._value
        while True:
            perf.processes_resumed += 1
            try:
                if ok:
                    target = generator.send(value)
                else:
                    target = generator.throw(value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                engine._enqueue(self)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                engine._enqueue(self)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            if target.processed:
                # The event already fired and its callbacks ran: deliver
                # its outcome inline (queue-less immediate path) instead
                # of enqueueing a throwaway redelivery event.
                perf.immediate_resumes += 1
                ok = target._ok
                value = target._value
                continue
            self._waiting_on = target
            target._add_callback(self._resume)
            if self.tainted and not target.tainted:
                governor = engine.governor
                if governor is not None:
                    governor.taint(target)
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, engine, events):
        super().__init__(engine)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.processed:
                self._observe_now(event)
            else:
                self._pending += 1
                event._add_callback(self._observe)
        self._check_initial()

    def _observe_now(self, event):
        raise NotImplementedError

    def _observe(self, event):
        raise NotImplementedError

    def _check_initial(self):
        raise NotImplementedError

    def _results(self):
        return [e._value for e in self._events if e.triggered and e._ok]


class AllOf(_Condition):
    """Fires when every given event has fired (fails fast on failure)."""

    __slots__ = ()

    def _observe_now(self, event):
        if not event._ok:
            if not self.triggered:
                self.fail(event._value)

    def _observe(self, event):
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results())

    def _check_initial(self):
        if self.triggered:
            return
        if self._pending == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any one of the given events fires."""

    __slots__ = ()

    def _observe_now(self, event):
        if not self.triggered:
            if event._ok:
                self.succeed(event._value)
            else:
                self.fail(event._value)

    def _observe(self, event):
        if self.triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def _check_initial(self):
        if not self.triggered and not self._events:
            raise SimulationError("AnyOf requires at least one event")


class Engine:
    """The virtual clock and event loop.

    All durations and timestamps are floats in *seconds of virtual time*.
    :attr:`perf` exposes always-on work counters (events dispatched,
    heap pushes, processes resumed, ...) — see :mod:`repro.sim.perf`.
    """

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._sequence = count()
        self.perf = PerfCounters()
        #: Virtual-time tracer + metric registry (:mod:`repro.obs`).
        #: Disabled by default; instrumented seams pay one attribute
        #: check until ``tracer.enable()`` (or ``obs.configure``) runs.
        self.tracer = Tracer(self)
        #: Fault injector (:mod:`repro.faults`), or None.  Instrumented
        #: seams check this one attribute before consulting the
        #: injector, so an unfaulted run pays nothing and replays
        #: byte-identically.
        self.faults = None
        #: Shard governor (:mod:`repro.sim.shard`), or None.  When a
        #: run is sharded across worker processes, the governor brakes
        #: each step at the conservative-lookahead ceiling and injects
        #: cross-shard ghost events; serial runs pay one attribute
        #: check per step.
        self.governor = None
        #: Physical memories whose page stores participate in
        #: snapshot/fork record sharing (see :meth:`register_memory`).
        self._memories = []

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None, resumable=None):
        """Start a :class:`Process` running ``generator`` immediately.

        ``resumable`` makes the process snapshot-safe: pass the object
        the generator came from, exposing ``__resume__()`` (see
        :mod:`repro.sim.snapshot`).
        """
        return Process(self, generator, name=name, resumable=resumable)

    def call_at(self, when, fn, *args):
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at in the past: {when} < {self._now}")
        marker = Timeout(self, when - self._now)
        marker._add_callback(_Call(fn, args))
        return marker

    def call_later(self, delay, fn, *args):
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        marker = self.timeout(delay)
        marker._add_callback(_Call(fn, args))
        return marker

    # -- snapshot / fork ---------------------------------------------------

    def register_memory(self, memory):
        """Enroll a :class:`~repro.hardware.memory.PhysicalMemory`.

        Registered memories have their interned page records shared *by
        identity* (refcounted, copy-on-write) across snapshot captures
        and forks instead of being byte-copied.
        """
        self._memories.append(memory)
        return memory

    def snapshot(self, root=None, label=None):
        """Capture the full simulation state (see :mod:`repro.sim.snapshot`).

        ``root`` is the domain object graph to carry along (typically a
        :class:`~repro.cloud.datacenter.Datacenter`); everything
        reachable from the engine *or* the root lands in the snapshot.
        """
        from repro.sim.snapshot import capture

        return capture(self, root=root, label=label)

    def fork(self, snapshot):
        """Fork an independent branch off ``snapshot`` (must be ours)."""
        from repro.sim.snapshot import SnapshotError

        if snapshot.engine is not self:
            raise SnapshotError("snapshot belongs to a different engine")
        return snapshot.fork()

    def all_of(self, events):
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def _enqueue(self, event, delay=0.0):
        self.perf.heap_pushes += 1
        when = self._now + delay
        event.when = when
        heapq.heappush(self._queue, (when, next(self._sequence), event))

    def step(self):
        """Process the single next event; returns False when queue is empty."""
        queue = self._queue
        governor = self.governor
        if governor is not None:
            governor.gate(queue[0][0] if queue else None)
        if not queue:
            return False
        when, _seq, event = heapq.heappop(queue)
        self._now = when
        event.processed = True
        perf = self.perf
        perf.events_dispatched += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.on_step(self)
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        else:
            perf.timer_fast_path += 1
            if event._ok is False and not isinstance(event, Process):
                # A failed event nobody waited for: surface the error
                # loudly.
                raise event._value
        return True

    def run(self, until=None):
        """Run the event loop.

        ``until`` may be ``None`` (run to quiescence), a number (absolute
        virtual time to stop at), or an :class:`Event` (run until it
        triggers, returning its value or raising its failure).
        """
        if until is None:
            step = self.step
            while step():
                pass
            return None
        if isinstance(until, Event):
            if until.processed:
                if until._ok:
                    return until._value
                raise until._value
            finished = []
            until._add_callback(finished.append)
            step = self.step
            while not finished:
                if not step():
                    raise SimulationError(
                        f"engine ran out of events before {getattr(until, 'name', 'event')!r} fired"
                    )
            if until._ok:
                return until._value
            raise until._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(f"cannot run backwards to {deadline}")
        queue = self._queue
        step = self.step
        while queue and queue[0][0] <= deadline:
            step()
        self._now = deadline
        return None
