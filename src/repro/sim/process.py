"""Higher-level process utilities built on the engine primitives.

* :class:`Channel` — an unbounded or bounded FIFO used for message
  passing (packets on a link, pages on a migration stream).
* :class:`Resource` — a counted resource with FIFO waiters (disk queue,
  CPU slots).
* :class:`Stopwatch` — measures elapsed virtual time across a scope.
"""

from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Event


class ChannelClosed(SimulationError):
    """Raised by :meth:`Channel.get` once a closed channel drains empty."""


class Channel:
    """A FIFO queue that simulation processes can block on.

    ``put`` never blocks (the channel is unbounded); ``get`` returns an
    event that fires when an item is available.  ``close`` causes pending
    and future ``get`` events to fail with :class:`ChannelClosed` once the
    buffer is empty, which lets consumers drain remaining items first.
    """

    def __init__(self, engine, name="channel"):
        self.engine = engine
        self.name = name
        self._items = deque()
        self._getters = deque()
        self._closed = False

    def __len__(self):
        return len(self._items)

    @property
    def closed(self):
        return self._closed

    def put(self, item):
        """Enqueue ``item``, waking one waiting getter if present."""
        if self._closed:
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self):
        """Return an event yielding the next item (or failing when closed)."""
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.popleft())
        elif self._closed:
            event.fail(ChannelClosed(f"channel {self.name!r} is closed"))
        else:
            self._getters.append(event)
        return event

    def close(self):
        """Close the channel; drained getters fail with ChannelClosed."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(
                ChannelClosed(f"channel {self.name!r} is closed")
            )


class Resource:
    """A counted resource with FIFO acquisition.

    ``acquire`` returns an event that fires once a slot is free; callers
    must pair it with ``release``.
    """

    def __init__(self, engine, capacity=1, name="resource"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def in_use(self):
        return self._in_use

    def acquire(self):
        """Return an event that fires when a slot is granted."""
        event = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Release a previously acquired slot."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Stopwatch:
    """Measures elapsed virtual time between :meth:`start` and :meth:`stop`."""

    def __init__(self, engine):
        self.engine = engine
        self._started_at = None
        self.elapsed = 0.0

    def start(self):
        if self._started_at is not None:
            raise SimulationError("stopwatch already running")
        self._started_at = self.engine.now
        return self

    def stop(self):
        if self._started_at is None:
            raise SimulationError("stopwatch not running")
        self.elapsed += self.engine.now - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
