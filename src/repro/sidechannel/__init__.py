"""Memory-deduplication side channels.

The paper's detection (§VI) builds on the observation — due to Xiao et
al. [41] and Suzuki et al. [42] — that KSM turns page-content identity
into a *timing* signal observable by anyone who can write a page.  The
same primitive cuts both ways: this package implements the offensive
variant those works describe, a cross-VM covert channel between
co-resident guests, using exactly the KSM/CoW machinery the detector
uses defensively.
"""

from repro.sidechannel.dedup_channel import (
    ChannelReceiver,
    ChannelSender,
    DedupCovertChannel,
)

__all__ = ["ChannelReceiver", "ChannelSender", "DedupCovertChannel"]
