"""A cross-VM covert channel over KSM (refs [41, 42]).

Protocol.  Sender and receiver — co-resident VMs that cannot talk over
the network — share only a codebook seed.  For frame ``f``, bit ``i``
maps to a deterministic page content ``P(seed, f, i)`` both sides can
compute.  To send a frame:

1. the **sender** loads ``P(f, i)`` into its memory for every 1-bit
   (and nothing for 0-bits), then waits a KSM settle period;
2. the **receiver** loads *all* ``P(f, i)`` probe pages, waits another
   settle period, then writes one byte to each probe page and times
   the writes: a copy-on-write stall (hundreds of µs) means the page
   had merged with the sender's copy — bit 1; a fast write means no
   partner existed — bit 0;
3. both sides evict their pages and move to frame ``f+1``.

Bandwidth is therefore ``bits_per_frame / (2 * settle)`` — slow but
entirely invisible to network monitoring, which is the point.
"""

import hashlib

from repro.errors import ReproError

#: Write-latency threshold separating merged from private pages (µs).
MERGED_THRESHOLD_US = 40.0


def page_content(seed, frame_index, bit_index):
    """The codebook: a unique page for (seed, frame, bit)."""
    return hashlib.blake2b(
        f"dedup-channel:{seed}:{frame_index}:{bit_index}".encode("utf-8"),
        digest_size=48,
    ).digest()


class _Endpoint:
    """Common plumbing: page allocation/eviction inside one system."""

    def __init__(self, system, seed, bits_per_frame):
        if bits_per_frame < 1:
            raise ReproError("channel needs at least one bit per frame")
        self.system = system
        self.seed = seed
        self.bits_per_frame = bits_per_frame
        self._pfns = []

    def _plant(self, frame_index, bit_indices):
        """Materialize codebook pages for the given bits; returns cost."""
        kernel = self.system.kernel
        cost = 0.0
        for bit_index in bit_indices:
            pfns, alloc_cost = kernel.alloc_pages(1, mergeable=True)
            outcome = self.system.memory.write(
                pfns[0], page_content(self.seed, frame_index, bit_index)
            )
            cost += alloc_cost + kernel.write_cost(outcome)
            self._pfns.append(pfns[0])
        return cost

    def _evict(self):
        for pfn in self._pfns:
            self.system.memory.free(pfn)
        self._pfns = []


class ChannelSender(_Endpoint):
    """The transmitting guest."""

    def send_frame(self, frame_index, bits):
        """Generator: encode one frame of bits (a list of 0/1)."""
        if len(bits) != self.bits_per_frame:
            raise ReproError(
                f"frame has {len(bits)} bits, channel expects "
                f"{self.bits_per_frame}"
            )
        self._evict()
        ones = [i for i, bit in enumerate(bits) if bit]
        cost = self._plant(frame_index, ones)
        yield self.system.engine.timeout(cost)


class ChannelReceiver(_Endpoint):
    """The receiving guest."""

    def receive_frame(self, frame_index, settle_seconds):
        """Generator: probe one frame; returns the decoded bit list."""
        self._evict()
        cost = self._plant(frame_index, range(self.bits_per_frame))
        yield self.system.engine.timeout(cost)
        yield self.system.engine.timeout(settle_seconds)
        kernel = self.system.kernel
        bits = []
        probe_cost = 0.0
        for offset, pfn in enumerate(self._pfns):
            content = self.system.memory.read(pfn)
            poked = b"\x5a" + content[1:]
            _outcome, write_cost = kernel.write_page(pfn, poked)
            probe_cost += write_cost
            bits.append(1 if write_cost * 1e6 > MERGED_THRESHOLD_US else 0)
        yield self.system.engine.timeout(probe_cost)
        self._evict()
        return bits


class DedupCovertChannel:
    """Coordinates a sender and receiver pair.

    ``settle_seconds`` must cover two full ksmd passes (see
    :mod:`repro.hypervisor.ksm`); the bench sweeps this.
    """

    def __init__(self, sender_system, receiver_system, seed="k", bits_per_frame=8):
        self.sender = ChannelSender(sender_system, seed, bits_per_frame)
        self.receiver = ChannelReceiver(receiver_system, seed, bits_per_frame)
        self.bits_per_frame = bits_per_frame
        self.engine = sender_system.engine

    def transmit(self, payload_bytes, settle_seconds=8.0):
        """Generator: send bytes; returns (received_bytes, elapsed, bps).

        Interleaves sender planting and receiver probing frame by
        frame, which is how the real attack pipelines.
        """
        bits = []
        for byte in payload_bytes:
            bits.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
        # Pad to a whole number of frames.
        while len(bits) % self.bits_per_frame:
            bits.append(0)

        started = self.engine.now
        received_bits = []
        for frame_index in range(len(bits) // self.bits_per_frame):
            frame = bits[
                frame_index * self.bits_per_frame:
                (frame_index + 1) * self.bits_per_frame
            ]
            yield from self.sender.send_frame(frame_index, frame)
            # Give KSM time to merge the sender's plants with the
            # receiver's probes (receiver waits its own settle too).
            yield self.engine.timeout(settle_seconds)
            decoded = yield from self.receiver.receive_frame(
                frame_index, settle_seconds
            )
            received_bits.extend(decoded)

        elapsed = self.engine.now - started
        out = bytearray()
        for index in range(0, len(payload_bytes) * 8, 8):
            byte = 0
            for bit in received_bits[index : index + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        bps = len(bits) / elapsed if elapsed > 0 else 0.0
        return bytes(out), elapsed, bps


def shared_page_census(system):
    """Digests of every KSM-shared frame mapped by ``system``, sorted.

    A purely *observational* walk of the guest's materialized pages —
    nothing is allocated, written, or CoW-broken — so a defender can
    take it repeatedly without perturbing the state it is watching.
    The covert channel above churns exactly this set (codebook plants
    merge on a ksmd pass, then vanish at frame eviction), which is what
    the ``dedup_spy`` probe keys on: legitimate sharing (common OS-image
    pages) is near-static at sweep time, channel traffic is not.

    Returns a sorted tuple of content digests, one per distinct shared
    frame (a frame mapped at several gpfns counts once).
    """
    memory = getattr(system, "memory", None)
    if memory is None or not hasattr(memory, "iter_touched"):
        return ()
    digests = {}
    for gpfn in sorted(memory.iter_touched()):
        physical, host_pfn = memory.resolve(gpfn)
        if physical is None:
            continue
        frame = physical.frame(host_pfn)
        if frame is not None and frame.ksm_shared:
            digests[frame.fid] = frame.digest
    return tuple(sorted(digests.values()))
