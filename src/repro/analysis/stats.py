"""Sample statistics used throughout the evaluation.

The paper reports averages of 5 consecutive runs with relative standard
deviation (RSD) bars, and labels figures with percentage differences
between adjacent virtualization levels; these helpers compute exactly
those quantities.
"""

import math

from repro.errors import ReproError


class SampleSummary:
    """Mean / stdev / RSD for one measurement series."""

    def __init__(self, samples):
        if not samples:
            raise ReproError("cannot summarize an empty sample")
        self.samples = list(samples)
        self.n = len(self.samples)
        self.mean = sum(self.samples) / self.n
        if self.n > 1:
            variance = sum((x - self.mean) ** 2 for x in self.samples) / (
                self.n - 1
            )
            self.stdev = math.sqrt(variance)
        else:
            self.stdev = 0.0

    @property
    def rsd_percent(self):
        """Relative standard deviation, percent of the mean."""
        if self.mean == 0:
            return 0.0
        return abs(self.stdev / self.mean) * 100.0

    def __repr__(self):
        return f"<SampleSummary n={self.n} mean={self.mean:.4g} rsd={self.rsd_percent:.2f}%>"


def summarize(samples):
    """Shorthand constructor."""
    return SampleSummary(samples)


def pct_increase(base, new):
    """Percent increase from ``base`` to ``new`` (the figure labels)."""
    if base == 0:
        raise ReproError("percent increase from zero base")
    return (new - base) / base * 100.0


def pct_decrease(base, new):
    """Percent decrease from ``base`` to ``new``."""
    return -pct_increase(base, new)


def overlapping_within_noise(summary_a, summary_b):
    """The paper's Fig 3 argument: means closer than the (larger)
    standard deviation are 'nearly the same'."""
    gap = abs(summary_a.mean - summary_b.mean)
    return gap <= max(summary_a.stdev, summary_b.stdev)
