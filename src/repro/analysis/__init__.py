"""Statistics, report rendering, export, and overhead characterization."""

from repro.analysis.characterize import WorkloadOverhead, characterize_overhead
from repro.analysis.export import ExperimentArchive, series_to_dict
from repro.analysis.report import render_figure_series, render_table
from repro.analysis.stats import (
    SampleSummary,
    pct_decrease,
    pct_increase,
    summarize,
)

__all__ = [
    "ExperimentArchive",
    "SampleSummary",
    "WorkloadOverhead",
    "characterize_overhead",
    "pct_decrease",
    "pct_increase",
    "render_figure_series",
    "render_table",
    "series_to_dict",
    "summarize",
]
