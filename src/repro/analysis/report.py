"""Plain-text renderers producing the paper's tables and figure series.

Benchmarks print through these so `pytest benchmarks/ --benchmark-only`
output can be eyeballed directly against the paper.
"""


def render_table(title, columns, rows, col_width=14):
    """A fixed-width table.

    ``columns`` is the header list; ``rows`` a list of lists (first
    element is the row label).
    """
    lines = [title]
    header = "".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(f"{value:>{col_width}.3g}")
            else:
                rendered.append(f"{str(value):>{col_width}}")
        lines.append("".join(rendered))
    return "\n".join(lines)


def render_figure_series(title, series, unit="", label_width=22):
    """A figure rendered as labelled series with mean/RSD annotations.

    ``series`` maps label -> :class:`~repro.analysis.stats.SampleSummary`
    (or anything with .mean and .rsd_percent).
    """
    lines = [title]
    peak = max(summary.mean for summary in series.values()) or 1.0
    for label, summary in series.items():
        bar = "#" * max(1, int(40 * summary.mean / peak))
        lines.append(
            f"  {label:<{label_width}} {summary.mean:12.3f} {unit:<8} "
            f"(RSD {summary.rsd_percent:5.2f}%)  {bar}"
        )
    return "\n".join(lines)


def render_comparison_labels(series_pairs, kind="increase"):
    """The paper's percentage labels between adjacent bars.

    ``series_pairs`` is a list of (from_label, from_mean, to_label,
    to_mean); returns the label lines.
    """
    from repro.analysis.stats import pct_increase

    lines = []
    for from_label, from_mean, to_label, to_mean in series_pairs:
        change = pct_increase(from_mean, to_mean)
        arrow = "+" if change >= 0 else ""
        lines.append(f"  {from_label} -> {to_label}: {arrow}{change:.1f}%")
    return "\n".join(lines)
