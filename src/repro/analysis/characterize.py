"""The §V-B "case-by-case" overhead characterization, productized.

"Our objective lies in that the results can then be applied on a
case-by-case basis for specific virtualized environments to validate
the efficacy of our CloudSkulk."

Given a workload mix, :func:`characterize_overhead` measures each
workload at L1 (before the rootkit) and L2 (after) and reports the
perceived degradation — the tool an attacker uses to predict whether a
particular victim would notice, and a defender to reason about what
anomaly size to alert on.
"""

from repro import scenarios
from repro.analysis.stats import pct_increase
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload
from repro.workloads.lmbench.proc import LmbenchProc


class WorkloadOverhead:
    """One workload's L1 vs L2 comparison."""

    def __init__(self, name, l1_value, l2_value, unit, higher_is_better):
        self.name = name
        self.l1_value = l1_value
        self.l2_value = l2_value
        self.unit = unit
        self.higher_is_better = higher_is_better

    @property
    def degradation_percent(self):
        """Positive = the user got a worse experience at L2."""
        change = pct_increase(self.l1_value, self.l2_value)
        return -change if self.higher_is_better else change

    @property
    def noticeable(self):
        """Rule of thumb: >15% degradation risks user complaints."""
        return self.degradation_percent > 15.0

    def __repr__(self):
        return (
            f"<WorkloadOverhead {self.name}: {self.degradation_percent:+.1f}%>"
        )


def characterize_overhead(seed=1701, compile_units=600, filebench_seconds=10.0):
    """Measure the standard workload mix at L1 and L2.

    Returns a list of :class:`WorkloadOverhead` — one per workload —
    with CPU/memory (kernel compile), I/O (filebench ops/s), and
    interactivity (pipe latency) covered.
    """
    measurements = {}
    for level in (1, 2):
        host, system = scenarios.system_at_level(level, seed=seed)
        compile_result = host.engine.run(
            KernelCompileWorkload(units=compile_units).start(system)
        )
        filebench_result = host.engine.run(
            FilebenchWorkload().start(system, duration=filebench_seconds)
        )
        proc_result = host.engine.run(
            LmbenchProc().start(system, repetition_scale=0.05)
        )
        measurements[level] = {
            "compile_seconds": compile_result.metrics["build_seconds"],
            "filebench_ops": filebench_result.metrics["ops_per_second"],
            "pipe_latency_us": proc_result.metrics["latencies_us"][
                "pipe latency"
            ],
        }

    l1, l2 = measurements[1], measurements[2]
    return [
        WorkloadOverhead(
            "CPU/memory (kernel compile)",
            l1["compile_seconds"],
            l2["compile_seconds"],
            "s",
            higher_is_better=False,
        ),
        WorkloadOverhead(
            "I/O (filebench)",
            l1["filebench_ops"],
            l2["filebench_ops"],
            "ops/s",
            higher_is_better=True,
        ),
        WorkloadOverhead(
            "interactivity (pipe latency)",
            l1["pipe_latency_us"],
            l2["pipe_latency_us"],
            "us",
            higher_is_better=False,
        ),
    ]
