"""Exporting experiment results for external plotting.

Benchmarks print human-readable tables; downstream users who want to
plot (matplotlib, gnuplot, a paper's camera-ready) need the raw series.
:class:`ExperimentArchive` accumulates named results and writes one
JSON document with enough metadata to regenerate every figure.
"""

import json

from repro.errors import ReproError


def series_to_dict(label, samples):
    """One measurement series with its summary statistics."""
    from repro.analysis.stats import summarize

    summary = summarize(list(samples))
    return {
        "label": label,
        "samples": list(samples),
        "n": summary.n,
        "mean": summary.mean,
        "stdev": summary.stdev,
        "rsd_percent": summary.rsd_percent,
    }


class ExperimentArchive:
    """Accumulates experiment results; serializes to JSON."""

    def __init__(self, title, seed_info=None):
        self.title = title
        self.seed_info = seed_info
        self._experiments = {}

    def record_series(self, experiment_id, series_map, unit="", notes=""):
        """Record one figure: label -> list of samples."""
        if experiment_id in self._experiments:
            raise ReproError(f"experiment {experiment_id!r} already recorded")
        self._experiments[experiment_id] = {
            "kind": "figure",
            "unit": unit,
            "notes": notes,
            "series": [
                series_to_dict(label, samples)
                for label, samples in series_map.items()
            ],
        }

    def record_table(self, experiment_id, columns, rows, notes=""):
        """Record one table: column names + row lists."""
        if experiment_id in self._experiments:
            raise ReproError(f"experiment {experiment_id!r} already recorded")
        self._experiments[experiment_id] = {
            "kind": "table",
            "columns": list(columns),
            "rows": [list(row) for row in rows],
            "notes": notes,
        }

    @property
    def experiment_ids(self):
        return sorted(self._experiments)

    def to_dict(self):
        return {
            "title": self.title,
            "seed_info": self.seed_info,
            "experiments": self._experiments,
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path):
        """Write the archive to ``path`` on the real filesystem."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        return path

    @classmethod
    def load(cls, path):
        """Read an archive back (returns the plain dict form)."""
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
