"""Canonical experiment scenarios.

Everything the examples, tests, and benchmarks need to stand up the
paper's testbed in a few lines:

* :func:`testbed` — the Dell T1700 host, booted, KVM loaded;
* :func:`launch_victim` — Guest0 with the paper's configuration
  (1 GiB, one vCPU, virtio disk + user NIC with ssh hostfwd, telnet
  monitor on 5555);
* :func:`run_level` — run a workload at L0, L1, or L2 (building the
  nested environment on demand) and return its result — the engine of
  Figs 2-3 and Tables II-IV;
* :func:`install_cloudskulk` — the full attack against a victim host;
* :func:`detection_setup` — host + victim (+ optional rootkit) + KSM +
  cloud interface wired for the dedup detector (Figs 5-6).
"""

from repro.core.rootkit.installer import CloudSkulkInstaller
from repro.core.rootkit.stealth import ImpersonationMirror
from repro.guest.system import System, make_testbed
from repro.hypervisor.ksm import KsmDaemon
from repro.qemu.config import DriveSpec, MonitorSpec, NicSpec, QemuConfig
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm

VICTIM_NAME = "guest0"
VICTIM_IMAGE = "/var/lib/images/guest0.qcow2"
VICTIM_MEMORY_MB = 1024
VICTIM_SSH_HOST_PORT = 2222
VICTIM_MONITOR_PORT = 5555


def testbed(seed=1701, **kwargs):
    """The paper's host, booted, with KVM loaded."""
    return make_testbed(seed=seed, **kwargs)


def victim_config(
    name=VICTIM_NAME,
    image=VICTIM_IMAGE,
    memory_mb=VICTIM_MEMORY_MB,
    ssh_host_port=VICTIM_SSH_HOST_PORT,
    monitor_port=VICTIM_MONITOR_PORT,
):
    """Guest0's QEMU configuration."""
    return QemuConfig(
        name=name,
        memory_mb=memory_mb,
        smp=1,
        drives=[DriveSpec(image)],
        nics=[NicSpec("net0", hostfwds=[("tcp", ssh_host_port, 22)])],
        monitor=MonitorSpec(port=monitor_port),
    )


def launch_victim(host, config=None, listen_ssh=True):
    """Launch and boot Guest0; returns its QemuVm."""
    config = config or victim_config()
    if not _images_exist(host, config):
        for drive in config.drives:
            qemu_img_create(host, drive.path, 20.0)
    vm, boot = launch_vm(host, config)
    host.engine.run(boot)
    if listen_ssh and vm.guest is not None:
        vm.guest.net_node.listen(22)
    return vm


def _images_exist(host, config):
    from repro.qemu.qemu_img import host_images

    images = host_images(host)
    return all(images.exists(d.path) for d in config.drives)


def install_cloudskulk(host, target_name=VICTIM_NAME, **installer_kwargs):
    """Run the full four-step attack; returns the InstallationReport."""
    installer = CloudSkulkInstaller(host, **installer_kwargs)
    process = host.engine.process(installer.install(target_name=target_name))
    return host.engine.run(process)


def nested_environment(seed=1701):
    """Host + victim + installed CloudSkulk.

    Returns ``(host, install_report)``; the victim guest System (now at
    L2) is ``install_report.nested_vm.guest``.
    """
    host = testbed(seed=seed)
    launch_victim(host)
    report = install_cloudskulk(host)
    return host, report


def system_at_level(level, seed=1701):
    """A booted System at virtualization depth ``level`` (0, 1, or 2).

    Level 0 is the host itself; level 1 a plain guest; level 2 the
    victim guest after a CloudSkulk installation (the paper's L2).
    Returns ``(host, system)``.
    """
    if level == 0:
        host = testbed(seed=seed)
        return host, host
    if level == 1:
        host = testbed(seed=seed)
        vm = launch_victim(host)
        return host, vm.guest
    if level == 2:
        host, report = nested_environment(seed=seed)
        return host, report.nested_vm.guest
    raise ValueError(f"unsupported virtualization level {level}")


def run_level(level, workload, seed=1701, **run_kwargs):
    """Run ``workload`` on a system at ``level``; returns its result."""
    host, system = system_at_level(level, seed=seed)
    process = workload.start(system, **run_kwargs)
    return host.engine.run(process)


def detection_setup(nested, seed=1701, ksm_pages_to_scan=1250, delivery="direct"):
    """Wire up a detection scenario.

    Returns ``(host, cloud_interface, ksm, victim_locator)``.  With
    ``nested=True`` the victim sits behind an installed CloudSkulk whose
    impersonation mirror watches the cloud channel, exactly the threat
    the detector is built for.

    ``delivery`` selects how the vendor pushes File-A into the VM:
    ``"direct"`` models hypervisor-side tooling; ``"network"`` streams
    it to an in-VM agent over the public endpoint, in which case the
    rootkit's mirror operates as a packet hook on the RITM's forwarding
    layer (:class:`repro.core.rootkit.services.NetworkFileMirror`).
    """
    from repro.core.detection.dedup_detector import (
        CLOUD_AGENT_GUEST_PORT,
        CLOUD_AGENT_HOST_PORT,
        CloudInterface,
        GuestFileReceiver,
    )

    host = testbed(seed=seed)
    config = victim_config()
    if delivery == "network":
        config.nics[0].hostfwds.append(
            ("tcp", CLOUD_AGENT_HOST_PORT, CLOUD_AGENT_GUEST_PORT)
        )
    vm = launch_victim(host, config)
    if delivery == "network":
        GuestFileReceiver(vm.guest)
    state = {"guest": vm.guest}
    ksm = KsmDaemon(host.machine, pages_to_scan=ksm_pages_to_scan)
    ksm.start()
    cloud = CloudInterface(host, lambda: state["guest"], delivery=delivery)
    if nested:
        report = install_cloudskulk(host)
        if delivery == "network":
            from repro.core.rootkit.services import NetworkFileMirror

            agent_rule = next(
                rule
                for nic in report.guestx_vm.nics
                for rule in nic.forward_rules
                if rule.outer_port == CLOUD_AGENT_HOST_PORT
            )
            agent_rule.add_hook(NetworkFileMirror(report.guestx_vm.guest))
        else:
            mirror = ImpersonationMirror(report.guestx_vm.guest)
            cloud.observers.append(mirror)
    return host, cloud, ksm, (lambda: state["guest"])


__all__ = [
    "System",
    "detection_setup",
    "install_cloudskulk",
    "launch_victim",
    "nested_environment",
    "run_level",
    "system_at_level",
    "testbed",
    "victim_config",
]
