"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attack``  — run the four-step CloudSkulk installation and print the
  timeline (the §V-A demo, condensed);
* ``detect``  — run the dedup detection protocol against a clean host
  and against a compromised one, print both verdicts (Figs 5/6);
* ``sweep``   — multi-tenant monitoring sweep with one compromised
  tenant hidden among three;
* ``covert``  — exfiltrate a message between co-resident VMs over the
  KSM timing channel (refs [41, 42]);
* ``fleet``   — multi-host cloud control plane experiments
  (``fleet run`` / ``fleet sweep`` / ``fleet chaos`` / ``fleet status``);
* ``matrix``  — declarative scenario matrices
  (``matrix run`` / ``list`` / ``expand`` / ``pin`` / ``diff``);
* ``obs``     — offline trace analytics
  (``obs report`` / ``diff`` / ``flame`` / ``critical-path``);
* ``info``    — print the library's system inventory and versions.
"""

import argparse
import json
import sys

from repro import __version__, obs, scenarios
from repro.matrix.cli import add_matrix_commands, positive_int
from repro.obs.cli import add_obs_commands
from repro.probes.cli import add_probes_commands


def _report_perf(args, engine, label="engine"):
    """Report the engine's perf counters on stderr when asked.

    Diagnostics go to stderr so the commands' stdout stays exactly the
    experiment output (scriptable, diff-able).  ``--perf`` prints the
    human table; ``--perf-json`` prints one JSON object per engine.
    """
    if getattr(args, "perf", False):
        print(f"[perf] {label}", file=sys.stderr)
        print(engine.perf.format(), file=sys.stderr)
    if getattr(args, "perf_json", False):
        record = {"label": label}
        record.update(engine.perf.snapshot())
        print(json.dumps(record, sort_keys=True), file=sys.stderr)


def cmd_attack(args):
    host = scenarios.testbed(seed=args.seed)
    scenarios.launch_victim(host)
    report = scenarios.install_cloudskulk(host)
    print(report.summary())
    victim = report.nested_vm.guest
    print(
        f"\nvictim depth: {victim.depth}; GuestX pid {report.guestx_vm.process.pid} "
        f"(victim's old pid {report.victim_pid}); "
        f"{report.history_lines_removed} history lines scrubbed"
    )
    _report_perf(args, host.engine)
    return 0


def cmd_detect(args):
    from repro.core.detection.dedup_detector import DedupDetector

    for nested in (False, True):
        label = "CloudSkulk installed" if nested else "clean guest"
        host, cloud, _ksm, _loc = scenarios.detection_setup(
            nested=nested, seed=args.seed
        )
        detector = DedupDetector(host, cloud, file_pages=args.pages)
        report = host.engine.run(host.engine.process(detector.run()))
        verdict = report.verdict
        print(f"[{label}]")
        print(
            f"  t0={verdict.median_t0:.2f}us t1={verdict.median_t1:.2f}us "
            f"t2={verdict.median_t2:.2f}us -> {verdict.verdict.upper()}"
        )
        print(f"  {verdict.explanation()}\n")
        _report_perf(args, host.engine, label=label)
    return 0


def cmd_sweep(args):
    from repro.core.detection.service import MonitoringService
    from repro.core.rootkit.stealth import ImpersonationMirror
    from repro.hypervisor.ksm import KsmDaemon

    host = scenarios.testbed(seed=args.seed)
    locators = {}
    for index, name in enumerate(("tenant-a", "tenant-b", "tenant-c")):
        config = scenarios.victim_config(
            name=name,
            image=f"/var/lib/images/{name}.qcow2",
            ssh_host_port=2300 + index,
            monitor_port=5600 + index,
        )
        vm = scenarios.launch_victim(host, config)
        state = {"guest": vm.guest}
        locators[name] = (lambda s: (lambda: s["guest"]))(state)
    KsmDaemon(host.machine).start()
    install = scenarios.install_cloudskulk(host, target_name="tenant-b")
    mirror = ImpersonationMirror(install.guestx_vm.guest)
    service = MonitoringService(host, file_pages=12)
    for name, locator in locators.items():
        interface = service.register_tenant(name, locator)
        if name == "tenant-b":
            interface.observers.append(mirror)
    report = host.engine.run(host.engine.process(service.sweep()))
    print(report.summary())
    print(f"\ncompromised: {report.compromised_tenants}")
    _report_perf(args, host.engine)
    return 0 if report.compromised_tenants == ["tenant-b"] else 1


def cmd_covert(args):
    from repro.hypervisor.ksm import KsmDaemon
    from repro.sidechannel import DedupCovertChannel

    host = scenarios.testbed(seed=args.seed)
    sender = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="sender", image="/i/s.qcow2", ssh_host_port=2301,
            monitor_port=5601,
        ),
    )
    receiver = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="receiver", image="/i/r.qcow2", ssh_host_port=2302,
            monitor_port=5602,
        ),
    )
    KsmDaemon(host.machine).start()
    channel = DedupCovertChannel(sender.guest, receiver.guest, seed="rv")
    payload = args.message.encode("utf-8")
    process = host.engine.process(channel.transmit(payload, settle_seconds=6.0))
    received, elapsed, bps = host.engine.run(process)
    print(f"sent     {payload!r}")
    print(f"received {received!r}")
    print(f"{elapsed:.0f}s virtual, {bps:.2f} bit/s")
    _report_perf(args, host.engine)
    return 0 if received == payload else 1


def _run_fleet_from_args(args, **overrides):
    from repro.cloud import run_fleet

    params = dict(
        hosts=args.hosts,
        tenants=args.tenants,
        seed=args.seed,
        churn_operations=getattr(args, "churn", 0),
        rebalance_moves=getattr(args, "migrations", 0),
        campaigns=getattr(args, "campaigns", 0),
        sweeps=getattr(args, "sweeps", 0),
        shards=getattr(args, "shards", None) or 1,
    )
    params.update(overrides)
    return run_fleet(**params)


def cmd_fleet_run(args):
    result = _run_fleet_from_args(args)
    print(result.summary())
    _report_perf(args, result.datacenter.engine, label="fleet")
    if args.campaigns and result.detected_campaigns < 1:
        return 1
    return 0


def cmd_fleet_sweep(args):
    """One campaign, one fleet sweep — no churn tail, no rebalancing."""
    result = _run_fleet_from_args(
        args, churn_operations=0, rebalance_moves=0, campaigns=1, sweeps=1
    )
    for report in result.monitor.reports:
        print(report.summary())
    print(f"\nrecall: {result.recall:.2f}")
    _report_perf(args, result.datacenter.engine, label="fleet")
    return 0 if result.detected_campaigns >= 1 else 1


def cmd_fleet_chaos(args):
    """Run a chaos campaign: one fleet experiment per fault mix.

    ``--from-warm`` warms the fleet once and runs every leg as a
    copy-on-write fork branch off that snapshot (``--fanout N`` forks N
    independent fault plans per mix; ``--processes P`` spreads the legs
    over a pool).  Without it, every leg replays its own warm-up.
    """
    from repro.faults import ChaosCampaign
    from repro.faults.chaos import DEFAULT_FLEET_PARAMS, STANDARD_MIXES

    if args.list_mixes:
        # Catalog only — print and exit without building a fleet.
        print("standard fault mixes:")
        for mix in sorted(STANDARD_MIXES):
            print(f"  {mix:<10} {', '.join(STANDARD_MIXES[mix])}")
        rendered = ", ".join(
            f"{k}={v}" for k, v in sorted(DEFAULT_FLEET_PARAMS.items())
        )
        print(f"default fleet: {rendered}")
        return 0

    mixes = tuple(m.strip() for m in args.mixes.split(",") if m.strip())
    campaign = ChaosCampaign(
        seed=args.seed,
        mixes=mixes,
        faults_per_mix=args.faults,
        horizon=args.horizon,
        fleet_params=dict(hosts=args.hosts, tenants=args.tenants),
    )
    if args.from_warm:
        report = campaign.run_fanout(
            branches_per_mix=args.fanout, processes=args.processes
        )
    else:
        if args.fanout != 1:
            print(
                "[chaos] --fanout needs --from-warm (cold runs replay "
                "the warm-up per leg)",
                file=sys.stderr,
            )
            return 2
        report = campaign.run()
    print(report.summary())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"[chaos] wrote report to {args.report_out}", file=sys.stderr)
    if campaign.results:
        _report_perf(
            args, campaign.results[-1].datacenter.engine, label="chaos"
        )
    return 0


def cmd_fleet_status(args):
    """Provision the fleet and print the inventory — no attack, no sweep."""
    result = _run_fleet_from_args(
        args, churn_operations=0, rebalance_moves=0, campaigns=0, sweeps=0
    )
    datacenter = result.datacenter
    print(repr(datacenter))
    for line in datacenter.inventory_lines():
        print(line)
    _report_perf(args, datacenter.engine, label="fleet")
    return 0


def cmd_info(_args):
    print(f"repro {__version__} — CloudSkulk reproduction (DSN 2021)")
    print("systems: sim engine, hardware, KVM hypervisor (nested), KSM,")
    print("  guest OS, network+NAT, QEMU+monitor, pre/post-copy migration,")
    print("  VMI, CloudSkulk rootkit, dedup detection, covert channel")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--seed", type=int, default=1701)
    parser.add_argument(
        "--perf",
        action="store_true",
        help="print the engine's performance counters to stderr after the run",
    )
    parser.add_argument(
        "--perf-json",
        action="store_true",
        help="print the performance counters as one JSON object per engine "
        "to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record a virtual-time trace and write Chrome/Perfetto JSON "
        "to PATH (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metric registry (counters/gauges/histograms) "
        "to stderr",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the run's metric registry as deterministic JSON to "
        "PATH (the `repro obs diff` / matrix-metrics input)",
    )
    parser.add_argument(
        "--trace-ring",
        type=int,
        metavar="N",
        help="cap the trace buffer at N events (oldest drop, counted); "
        "for long fleet runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("attack").set_defaults(func=cmd_attack)
    detect = sub.add_parser("detect")
    detect.add_argument("--pages", type=int, default=100)
    detect.set_defaults(func=cmd_detect)
    sub.add_parser("sweep").set_defaults(func=cmd_sweep)
    covert = sub.add_parser("covert")
    covert.add_argument("--message", default="EXFIL")
    covert.set_defaults(func=cmd_covert)
    fleet = sub.add_parser("fleet", help="multi-host cloud control plane")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def _fleet_common(sub_parser, hosts, tenants):
        sub_parser.add_argument("--hosts", type=int, default=hosts)
        sub_parser.add_argument("--tenants", type=int, default=tenants)
        sub_parser.add_argument("--seed", type=int, default=1701)

    def _shards_arg(sub_parser):
        sub_parser.add_argument(
            "--shards",
            type=positive_int,
            default=None,
            metavar="N",
            help="shard the attack/sweep phase across N worker processes "
            "with rack-aligned host ownership (results identical to "
            "serial; N must not exceed --hosts)",
        )

    fleet_run = fleet_sub.add_parser("run")
    _fleet_common(fleet_run, hosts=8, tenants=64)
    fleet_run.add_argument("--churn", type=int, default=24)
    fleet_run.add_argument("--migrations", type=int, default=2)
    fleet_run.add_argument("--campaigns", type=int, default=1)
    fleet_run.add_argument("--sweeps", type=int, default=1)
    _shards_arg(fleet_run)
    fleet_run.set_defaults(func=cmd_fleet_run)
    fleet_sweep = fleet_sub.add_parser("sweep")
    _fleet_common(fleet_sweep, hosts=4, tenants=12)
    _shards_arg(fleet_sweep)
    fleet_sweep.set_defaults(func=cmd_fleet_sweep)
    fleet_chaos = fleet_sub.add_parser(
        "chaos", help="score detection recall under injected fault mixes"
    )
    _fleet_common(fleet_chaos, hosts=4, tenants=12)
    fleet_chaos.add_argument(
        "--mixes",
        default="infra,migration,mixed",
        help="comma-separated fault mixes "
        "(infra, network, migration, stealth, mixed)",
    )
    fleet_chaos.add_argument("--faults", type=int, default=5)
    fleet_chaos.add_argument("--horizon", type=float, default=240.0)
    fleet_chaos.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the deterministic ChaosReport JSON to PATH",
    )
    fleet_chaos.add_argument(
        "--from-warm",
        action="store_true",
        help="warm the fleet once and run every leg as a copy-on-write "
        "fork branch (faults then only hit the branch phase)",
    )
    fleet_chaos.add_argument(
        "--fanout",
        type=int,
        default=1,
        metavar="N",
        help="with --from-warm: fork N independent fault plans per mix "
        "off the one warmed snapshot",
    )
    fleet_chaos.add_argument(
        "--processes",
        type=positive_int,
        default=None,
        metavar="P",
        help="with --from-warm: spread fan-out legs across P worker "
        "processes (deterministic merge)",
    )
    fleet_chaos.add_argument(
        "--list-mixes",
        action="store_true",
        help="print the standard fault mixes and exit (no fleet is built)",
    )
    fleet_chaos.set_defaults(func=cmd_fleet_chaos)
    fleet_status = fleet_sub.add_parser("status")
    _fleet_common(fleet_status, hosts=8, tenants=16)
    fleet_status.set_defaults(func=cmd_fleet_status)
    add_matrix_commands(sub)
    add_obs_commands(sub)
    add_probes_commands(sub)
    sub.add_parser("info").set_defaults(func=cmd_info)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    tracing = bool(
        getattr(args, "trace_out", None)
        or getattr(args, "metrics", False)
        or getattr(args, "metrics_out", None)
    )
    if tracing:
        # Engines are built deep inside scenario helpers; the process-wide
        # default is how the flag reaches them.  Every engine the command
        # creates comes up traced and self-registers for the merged export.
        obs.configure(enabled=True, ring_capacity=args.trace_ring)
    try:
        status = args.func(args)
        if tracing:
            if args.trace_out:
                trace = obs.write_chrome_trace(args.trace_out)
                print(
                    f"[trace] wrote {len(trace['traceEvents'])} events "
                    f"to {args.trace_out}",
                    file=sys.stderr,
                )
            if args.metrics:
                print(obs.metrics_text(), file=sys.stderr)
            if args.metrics_out:
                with open(args.metrics_out, "w", encoding="utf-8") as handle:
                    json.dump(
                        obs.metrics_json(), handle, indent=2, sort_keys=True
                    )
                    handle.write("\n")
                print(
                    f"[metrics] wrote registry to {args.metrics_out}",
                    file=sys.stderr,
                )
        return status
    finally:
        if tracing:
            obs.reset()
