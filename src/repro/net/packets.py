"""Packets: sized messages with inspectable payloads.

Payloads are ordinary Python objects (bytes for application data,
structured records for migration chunks).  Sizes drive timing; payloads
drive content-sensitive behaviour (keystroke logging, tampering,
migration page application).
"""

from repro.errors import NetworkError


class Packet:
    """One message on a connection."""

    __slots__ = ("size_bytes", "payload", "kind", "meta")

    def __init__(self, size_bytes, payload=None, kind="data", meta=None):
        if size_bytes < 0:
            raise NetworkError(f"negative packet size: {size_bytes}")
        self.size_bytes = size_bytes
        self.payload = payload
        self.kind = kind
        self.meta = meta or {}

    def replace(self, **changes):
        """A modified copy (active tampering produces these)."""
        fields = {
            "size_bytes": self.size_bytes,
            "payload": self.payload,
            "kind": self.kind,
            "meta": dict(self.meta),
        }
        fields.update(changes)
        return Packet(**fields)

    def __repr__(self):
        return f"<Packet {self.kind} {self.size_bytes}B>"
