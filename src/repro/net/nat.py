"""User-mode NAT port forwarding (QEMU hostfwd) with packet hooks.

A :class:`ForwardRule` is the analogue of
``-netdev user,hostfwd=tcp::2222-:22``: a listener on the outer node
that splices every accepted connection to an inner node/port.  After a
CloudSkulk installation the victim's traffic traverses *two* such rules
(host -> GuestX, then GuestX -> nested guest), and the attacker's
services attach as :class:`PacketHook` objects on the GuestX-level rule
— giving them the packet-level visibility and control §IV-B describes.
"""

from repro.errors import NetworkError
from repro.sim.process import ChannelClosed


class PacketHook:
    """Observe / modify / drop packets crossing a forward rule.

    Subclasses override :meth:`on_packet`; returning ``None`` drops the
    packet, returning a different Packet substitutes it.  ``direction``
    is ``"inbound"`` (toward the inner guest) or ``"outbound"``.
    """

    name = "hook"

    def on_packet(self, packet, direction, rule):
        return packet


class ForwardStats:
    """Per-rule packet accounting."""

    def __init__(self):
        self.packets = {"inbound": 0, "outbound": 0}
        self.bytes = {"inbound": 0, "outbound": 0}
        self.dropped = 0
        self.modified = 0
        self.connections = 0

    def __repr__(self):
        return (
            f"<ForwardStats conns={self.connections} "
            f"in={self.packets['inbound']}p out={self.packets['outbound']}p "
            f"dropped={self.dropped} modified={self.modified}>"
        )


class ForwardRule:
    """hostfwd: outer_node:outer_port -> inner_node:inner_port."""

    def __init__(
        self,
        outer_node,
        outer_port,
        inner_node,
        inner_port,
        name=None,
        splice_cost=2.0e-5,
    ):
        self.outer_node = outer_node
        self.outer_port = outer_port
        self.inner_node = inner_node
        self.inner_port = inner_port
        self.name = name or (
            f"hostfwd:{outer_node.name}:{outer_port}"
            f"->{inner_node.name}:{inner_port}"
        )
        #: Userspace (slirp) processing cost per spliced packet.
        self.splice_cost = splice_cost
        self.hooks = []
        self.stats = ForwardStats()
        self.engine = outer_node.engine
        self.active = True
        outer_node.listen(outer_port, handler=self._on_accept)

    # -- hook management ----------------------------------------------------

    def add_hook(self, hook):
        self.hooks.append(hook)
        return hook

    def remove_hook(self, hook):
        try:
            self.hooks.remove(hook)
        except ValueError:
            raise NetworkError(f"hook not installed on {self.name}") from None

    # -- splicing -------------------------------------------------------------

    def _on_accept(self, connection):
        self.stats.connections += 1
        inner_endpoint = self.outer_node.connect(self.inner_node, self.inner_port)
        outer_endpoint = connection.server
        self.engine.process(
            self._splice(outer_endpoint, inner_endpoint, "inbound"),
            name=f"{self.name}:in",
        )
        self.engine.process(
            self._splice(inner_endpoint, outer_endpoint, "outbound"),
            name=f"{self.name}:out",
        )

    def _splice(self, src, dst, direction):
        try:
            while self.active:
                packet = yield src.recv()
                if self.splice_cost:
                    yield self.engine.timeout(self.splice_cost)
                forwarded = self._apply_hooks(packet, direction)
                if forwarded is None:
                    self.stats.dropped += 1
                    continue
                self.stats.packets[direction] += 1
                self.stats.bytes[direction] += forwarded.size_bytes
                dst.send(forwarded)
        except ChannelClosed:
            dst.close()

    def _apply_hooks(self, packet, direction):
        current = packet
        for hook in self.hooks:
            result = hook.on_packet(current, direction, self)
            if result is None:
                return None
            if result is not current:
                self.stats.modified += 1
            current = result
        return current

    def remove(self):
        """Tear the rule down (frees the outer port)."""
        if not self.active:
            return
        self.active = False
        self.outer_node.close_port(self.outer_port)

    def __repr__(self):
        return f"<ForwardRule {self.name}>"
