"""The simulated network.

Topology is a graph of :class:`~repro.net.stack.NetworkNode` connected
by :class:`~repro.net.stack.Link` objects with bandwidth and latency.
Guest nodes hang off their host through user-mode-NAT links that only
allow outbound connections; the *only* way into a guest is an explicit
``hostfwd`` rule (:mod:`repro.net.nat`) — exactly QEMU user networking.

Forward rules accept packet hooks, which is where CloudSkulk's passive
(capture) and active (tamper/drop) services attach: after the rootkit is
installed, every victim packet traverses the RITM's forwarding layer.
"""

from repro.net.nat import ForwardRule, PacketHook
from repro.net.packets import Packet
from repro.net.stack import Connection, Link, Listener, NetworkNode

__all__ = [
    "Connection",
    "ForwardRule",
    "Link",
    "Listener",
    "NetworkNode",
    "Packet",
    "PacketHook",
]
