"""Nodes, links, listeners and connections.

A :class:`Connection` models a TCP stream: per-direction serialization
at the bottleneck bandwidth of the path, plus the path's total latency.
Delivery is in-order.  Every hop can charge a per-packet forwarding cost
(userspace NAT processing in QEMU's slirp), which is how extra
virtualization layers show up — mildly — in network benchmarks (the
paper's Fig 3 finds the levels statistically indistinguishable, and the
same emerges here because the physical wire, not per-hop CPU, is the
bottleneck).
"""

from collections import deque

from repro.errors import NetworkError
from repro.net.packets import Packet
from repro.sim.process import Channel


class Link:
    """A bidirectional edge between two nodes.

    ``inbound_allowed`` is False for user-mode NAT edges: the guest can
    dial out through the link, but nothing can route *into* the guest
    across it (hostfwd rules are the only way in).
    """

    def __init__(
        self,
        a,
        b,
        bandwidth_bps,
        latency_s,
        name=None,
        inbound_allowed=True,
        per_packet_cost=0.0,
    ):
        if bandwidth_bps <= 0:
            raise NetworkError("link bandwidth must be positive")
        if latency_s < 0:
            raise NetworkError("link latency cannot be negative")
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.name = name or f"{a.name}<->{b.name}"
        self.inbound_allowed = inbound_allowed
        self.per_packet_cost = per_packet_cost
        a._links.append(self)
        b._links.append(self)

    def other(self, node):
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise NetworkError(f"{node.name} not on link {self.name}")

    def allows(self, from_node, origin=None):
        """Whether a path may cross this link from ``from_node``.

        NAT edges (``inbound_allowed=False``, guest side ``b`` by
        convention) allow: the guest dialing out, and the *owning* node
        (``a`` — the QEMU process that implements the usernet) dialing
        its own guest, which is how hostfwd splices reach the guest.
        They never allow transit from any other origin.
        """
        if self.inbound_allowed:
            return True
        if from_node is self.b:
            return True
        return from_node is self.a and origin is self.a

    def __repr__(self):
        mbps = self.bandwidth_bps / 1e6
        return f"<Link {self.name} {mbps:.0f}Mbit {self.latency_s * 1e6:.0f}us>"


class NetworkNode:
    """One addressable endpoint (a host NIC, a guest NIC, a client box)."""

    def __init__(self, engine, name):
        self.engine = engine
        self.name = name
        self._links = []
        self._listeners = {}
        #: Every connection ever accepted at this node, for host-level
        #: network accounting (conntrack / flow logs).  Forensics reads
        #: this to spot e.g. an unexplained multi-hundred-MB transfer
        #: to an ephemeral port — a live migration's traffic signature.
        self.connection_log = []

    # -- listeners ---------------------------------------------------------

    def listen(self, port, handler=None):
        """Open a listener; returns it.

        ``handler`` is called with each accepted :class:`Connection`.
        Without a handler, accepted connections queue on
        ``listener.accepted`` for a server process to `get()`.
        """
        if port in self._listeners:
            raise NetworkError(f"{self.name}: port {port} already in use")
        listener = Listener(self, port, handler)
        self._listeners[port] = listener
        return listener

    def close_port(self, port):
        listener = self._listeners.pop(port, None)
        if listener is None:
            raise NetworkError(f"{self.name}: port {port} not open")
        listener.closed = True

    def listener(self, port):
        return self._listeners.get(port)

    # -- routing -----------------------------------------------------------

    def route_to(self, destination):
        """BFS a path of links to ``destination`` honoring NAT direction.

        Returns the list of links, or raises NetworkError when the
        destination is unreachable (e.g. dialing into a guest directly).
        """
        if destination is self:
            return []
        seen = {self}
        frontier = deque([(self, [])])
        while frontier:
            node, path = frontier.popleft()
            for link in node._links:
                if not link.allows(node, origin=self):
                    continue
                neighbor = link.other(node)
                if neighbor in seen:
                    continue
                if neighbor is destination:
                    return path + [link]
                seen.add(neighbor)
                frontier.append((neighbor, path + [link]))
        raise NetworkError(
            f"no route from {self.name} to {destination.name} "
            "(guest nodes require a hostfwd rule)"
        )

    def connect(self, destination, port):
        """Dial ``destination:port``; returns the client-side endpoint."""
        path = self.route_to(destination)
        listener = destination.listener(port)
        if listener is None or listener.closed:
            raise NetworkError(
                f"connection refused: {destination.name}:{port}"
            )
        connection = Connection(self.engine, self, destination, path, port)
        destination.connection_log.append(connection)
        listener.deliver(connection)
        return connection.client

    def __repr__(self):
        return f"<NetworkNode {self.name}>"


class Listener:
    """A bound server port."""

    def __init__(self, node, port, handler=None):
        self.node = node
        self.port = port
        self.handler = handler
        self.closed = False
        self.accepted = Channel(node.engine, name=f"{node.name}:{port}:accept")

    def deliver(self, connection):
        if self.handler is not None:
            self.handler(connection)
        else:
            self.accepted.put(connection)

    def accept(self):
        """Event yielding the next accepted Connection."""
        return self.accepted.get()


class Endpoint:
    """One side of a connection."""

    def __init__(self, connection, side):
        self.connection = connection
        self.side = side  # "client" | "server"
        self.inbox = Channel(
            connection.engine,
            name=f"{connection.describe()}:{side}",
        )

    def send(self, packet_or_bytes, size_bytes=None, kind="data"):
        """Transmit toward the peer; returns the delivery-time event."""
        if isinstance(packet_or_bytes, Packet):
            packet = packet_or_bytes
        else:
            if size_bytes is None:
                size_bytes = len(packet_or_bytes) if packet_or_bytes else 0
            packet = Packet(size_bytes, payload=packet_or_bytes, kind=kind)
        return self.connection.transmit(self.side, packet)

    def recv(self):
        """Event yielding the next received packet."""
        return self.inbox.get()

    def close(self):
        self.connection.close()


class Connection:
    """A stream between two endpoints across a path of links."""

    def __init__(self, engine, src_node, dst_node, path, port):
        self.engine = engine
        self.src_node = src_node
        self.dst_node = dst_node
        self.port = port
        self.path = path
        self.closed = False
        if path:
            self.bandwidth_bps = min(link.bandwidth_bps for link in path)
            self.latency_s = sum(link.latency_s for link in path)
            self.per_packet_cost = sum(link.per_packet_cost for link in path)
        else:  # same-node (loopback without an explicit link)
            self.bandwidth_bps = 32e9
            self.latency_s = 5e-6
            self.per_packet_cost = 0.0
        self.client = Endpoint(self, "client")
        self.server = Endpoint(self, "server")
        self._next_free = {"client": 0.0, "server": 0.0}
        self.bytes_sent = {"client": 0, "server": 0}
        self.opened_at = engine.now

    def describe(self):
        return f"{self.src_node.name}->{self.dst_node.name}:{self.port}"

    def _peer(self, side):
        return self.server if side == "client" else self.client

    def transmit(self, side, packet):
        """Serialize the packet onto the path; deliver to the peer inbox."""
        if self.closed:
            raise NetworkError(f"send on closed connection {self.describe()}")
        now = self.engine.now
        start = max(now, self._next_free[side])
        wire_time = packet.size_bytes * 8.0 / self.bandwidth_bps
        done = start + wire_time + self.per_packet_cost
        self._next_free[side] = done
        self.bytes_sent[side] += packet.size_bytes
        peer = self._peer(side)
        delivered = self.engine.event()

        def _deliver(_event=None):
            if not peer.inbox.closed:
                peer.inbox.put(packet)
            delivered.succeed(packet)

        self.engine.call_at(done + self.latency_s, _deliver)
        return delivered

    def close(self):
        if self.closed:
            return
        self.closed = True
        self.client.inbox.close()
        self.server.inbox.close()
