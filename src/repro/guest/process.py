"""OS processes and the process table.

Process identity matters to the paper twice: ``ps -ef`` on the host is a
reconnaissance tool for recovering the victim QEMU command line (§IV-A),
and the rootkit's final stealth action is swapping GuestX's PID to the
dead victim's PID (§III-A: "the PID is just a variable in memory ...
changing the PID of GuestX to the original PID used by Guest0 is a
trivial task").  :meth:`ProcessTable.reassign_pid` implements exactly
that root-only trick.
"""

from repro.errors import ProcessError


class OsProcess:
    """One entry in a kernel's process table."""

    def __init__(self, pid, ppid, name, cmdline, user, start_time):
        self.pid = pid
        self.ppid = ppid
        self.name = name
        self.cmdline = cmdline
        self.user = user
        self.start_time = start_time
        self.state = "R"
        self.exit_code = None

    @property
    def alive(self):
        return self.state != "Z"

    def __repr__(self):
        return f"<OsProcess pid={self.pid} {self.name} [{self.state}]>"


class ProcessTable:
    """PID allocation and lookup for one kernel."""

    def __init__(self, first_pid=1):
        self._procs = {}
        self._next_pid = first_pid

    def spawn(self, name, cmdline=None, ppid=0, user="root", start_time=0.0):
        """Create a process with the next free PID."""
        pid = self._next_pid
        while pid in self._procs:
            pid += 1
        self._next_pid = pid + 1
        proc = OsProcess(pid, ppid, name, cmdline or name, user, start_time)
        self._procs[pid] = proc
        return proc

    def get(self, pid):
        return self._procs.get(pid)

    def kill(self, pid, exit_code=0):
        """Terminate a process (it stays visible as a zombie until reaped)."""
        proc = self._procs.get(pid)
        if proc is None:
            raise ProcessError(f"kill: no such pid {pid}")
        proc.state = "Z"
        proc.exit_code = exit_code
        return proc

    def reap(self, pid):
        """Remove a zombie from the table."""
        proc = self._procs.get(pid)
        if proc is None:
            raise ProcessError(f"reap: no such pid {pid}")
        if proc.alive:
            raise ProcessError(f"reap: pid {pid} still running")
        del self._procs[pid]

    def remove(self, pid):
        """Forcefully drop a process entry (kill -9 plus immediate reap)."""
        if pid not in self._procs:
            raise ProcessError(f"remove: no such pid {pid}")
        del self._procs[pid]

    def reassign_pid(self, old_pid, new_pid):
        """Move a live process to a different (free) PID.

        This models the rootkit's direct kernel-memory edit; an ordinary
        kernel offers no API for it, which is why only an attacker with
        host root can pull it off.
        """
        if old_pid not in self._procs:
            raise ProcessError(f"reassign: no such pid {old_pid}")
        if new_pid in self._procs:
            raise ProcessError(f"reassign: pid {new_pid} already in use")
        proc = self._procs.pop(old_pid)
        proc.pid = new_pid
        self._procs[new_pid] = proc
        return proc

    def processes(self):
        """All processes ordered by PID."""
        return [self._procs[pid] for pid in sorted(self._procs)]

    def find_by_name(self, name):
        return [p for p in self.processes() if p.name == name]

    def find_by_cmdline_substring(self, text):
        return [p for p in self.processes() if text in p.cmdline]

    def __len__(self):
        return len(self._procs)

    def __contains__(self, pid):
        return pid in self._procs
