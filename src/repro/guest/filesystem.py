"""A miniature filesystem with content-bearing files.

Files carry *real* page content — either deterministic pseudo-random
bytes derived from a seed (so two systems holding "the same file" hold
byte-identical pages, which KSM can merge), or literal per-page bytes
supplied by the caller (File-A in the detection protocol).

Only a small representative chunk (up to 64 bytes) is stored per page;
pages are logically 4 KiB.  Content identity, which is all KSM and the
detector care about, is exact.
"""

import hashlib

from repro.errors import FileSystemError
from repro.hardware.memory import PAGE_SIZE

#: Bytes of representative content stored per logical page.
CHUNK_BYTES = 48


def _page_chunk(seed_text, index):
    """Deterministic content chunk for page ``index`` of a seeded file."""
    return hashlib.blake2b(
        f"{seed_text}:{index}".encode("utf-8"), digest_size=CHUNK_BYTES
    ).digest()


class File:
    """One regular file: a path, a size, and per-page content."""

    def __init__(self, path, size_bytes, content_seed=None, page_contents=None):
        if size_bytes < 0:
            raise FileSystemError(f"negative file size for {path!r}")
        self.path = path
        self.size_bytes = size_bytes
        self.content_seed = content_seed if content_seed is not None else path
        self._page_overrides = {}
        if page_contents is not None:
            for index, content in enumerate(page_contents):
                self._page_overrides[index] = content
            self.size_bytes = max(size_bytes, len(page_contents) * PAGE_SIZE)

    @property
    def num_pages(self):
        return max(1, -(-self.size_bytes // PAGE_SIZE)) if self.size_bytes else 0

    def page_content(self, index):
        """Logical content of page ``index``."""
        if index < 0 or index >= max(self.num_pages, 1):
            raise FileSystemError(
                f"{self.path}: page {index} out of range ({self.num_pages} pages)"
            )
        override = self._page_overrides.get(index)
        if override is not None:
            return override
        return _page_chunk(self.content_seed, index)

    def set_page_content(self, index, content):
        """Overwrite one page's content (creating File-A-v2 style edits)."""
        if index < 0 or index >= max(self.num_pages, 1):
            raise FileSystemError(f"{self.path}: page {index} out of range")
        self._page_overrides[index] = content

    def __repr__(self):
        return f"<File {self.path} {self.size_bytes}B>"


class FileSystem:
    """Path -> File mapping for one system."""

    def __init__(self, name="rootfs"):
        self.name = name
        self._files = {}

    def create(self, path, size_bytes=0, content_seed=None, page_contents=None):
        """Create a file; overwrites silently like O_CREAT|O_TRUNC."""
        file = File(path, size_bytes, content_seed, page_contents)
        self._files[path] = file
        return file

    def add(self, file):
        """Install an existing File object (sharing content identity)."""
        self._files[file.path] = file
        return file

    def open(self, path):
        file = self._files.get(path)
        if file is None:
            raise FileSystemError(f"no such file: {path!r}")
        return file

    def exists(self, path):
        return path in self._files

    def unlink(self, path):
        if path not in self._files:
            raise FileSystemError(f"unlink: no such file {path!r}")
        del self._files[path]

    def listdir(self, prefix="/"):
        return sorted(p for p in self._files if p.startswith(prefix))

    def __len__(self):
        return len(self._files)


def make_random_file(path, num_pages, rng, seed_label=None):
    """A file of unique pseudo-random pages (the paper's File-A mp3).

    ``rng`` is an :class:`~repro.sim.rng.RngRegistry`; the content is
    deterministic per (registry seed, label) so an experiment can hand
    byte-identical copies to several systems.
    """
    label = seed_label if seed_label is not None else f"random-file:{path}"
    pages = [rng.page_bytes(f"{label}:{i}") for i in range(num_pages)]
    return File(path, num_pages * PAGE_SIZE, page_contents=pages)
