"""The miniature operating system that runs at every level.

One :class:`~repro.guest.system.System` models one OS environment —
the bare-metal host (depth 0), a guest (depth 1), or a nested guest
(depth 2).  A system bundles:

* a memory domain (physical memory at depth 0, guest memory above),
* a :class:`~repro.guest.kernel.Kernel` with a process table, a syscall
  cost layer, and a page cache,
* a :class:`~repro.guest.filesystem.FileSystem`,
* a :class:`~repro.guest.shell.Shell` with command history (the rootkit's
  reconnaissance reads it, exactly as the paper's §IV-A describes),
* optionally a KVM instance, when the CPU exposes VMX.

The same classes serve attacker and defender: CloudSkulk launches QEMU
processes on the host System, and the detector runs as a host process.
"""

from repro.guest.filesystem import File, FileSystem
from repro.guest.kernel import Kernel
from repro.guest.process import OsProcess, ProcessTable
from repro.guest.shell import Shell
from repro.guest.syscalls import SYSCALL_PROFILES, SyscallProfile
from repro.guest.system import System

__all__ = [
    "File",
    "FileSystem",
    "Kernel",
    "OsProcess",
    "ProcessTable",
    "SYSCALL_PROFILES",
    "Shell",
    "SyscallProfile",
    "System",
]
