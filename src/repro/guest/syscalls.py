"""Syscall cost profiles.

Each profile describes, for one kernel operation, the native CPU work it
performs and the VM exits it induces when executed inside a guest:

* ``exits`` — exits taken at any virtualization depth >= 1 (I/O, HLT on
  blocking, EPT faults on demand paging).  Costed at the *caller's*
  depth, so they multiply under nesting (Turtles trampolining).
* ``nested_exits`` — MMU-management exits performed *by the L1
  hypervisor* on behalf of the syscall (INVEPT / shadow-table updates).
  They only exist at depth >= 2, which is why `fork` costs the same at
  L0 and L1 but triples at L2 (paper Table III; [38]'s "extra traps").
* ``per_depth_cpu`` — a small additive ring-transition tax per level.

The base CPU numbers are the paper's measured L0 column (Table III),
which makes the L0 row of the reproduced table match by construction and
the L1/L2 rows *emergent* from the exit model.
"""

from repro.hypervisor.exits import ExitReason

US = 1e-6  # one microsecond in seconds


class SyscallProfile:
    """Cost description of one kernel operation."""

    def __init__(
        self,
        name,
        cpu_us,
        exits=None,
        nested_exits=None,
        per_depth_cpu_us=0.0,
        mem_intensity=0.3,
        description="",
    ):
        self.name = name
        self.cpu_seconds = cpu_us * US
        self.exits = dict(exits or {})
        self.nested_exits = dict(nested_exits or {})
        self.per_depth_cpu = per_depth_cpu_us * US
        self.mem_intensity = mem_intensity
        self.description = description

    def __repr__(self):
        return f"<SyscallProfile {self.name} cpu={self.cpu_seconds * 1e6:.3f}us>"


def _p(*args, **kwargs):
    profile = SyscallProfile(*args, **kwargs)
    return profile.name, profile


SYSCALL_PROFILES = dict(
    [
        # --- lmbench "Processes" suite (paper Table III, L0 column) ---
        _p(
            "sig_install",
            0.075,
            per_depth_cpu_us=0.008,
            mem_intensity=0.1,
            description="signal handler installation",
        ),
        _p(
            "sig_handle",
            0.50,
            per_depth_cpu_us=0.045,
            mem_intensity=0.1,
            description="signal handler overhead",
        ),
        _p(
            "protection_fault",
            0.27,
            per_depth_cpu_us=0.022,
            mem_intensity=0.1,
            description="write to a protected page",
        ),
        _p(
            "pipe_latency",
            3.49,
            exits={ExitReason.HLT: 2.0},
            mem_intensity=0.15,
            description="round trip through a pipe between two processes",
        ),
        _p(
            "af_unix_latency",
            3.58,
            exits={ExitReason.HLT: 1.2},
            mem_intensity=0.15,
            description="round trip through an AF_UNIX stream socket",
        ),
        _p(
            "fork_exit",
            74.6,
            nested_exits={ExitReason.INVEPT: 7.5},
            mem_intensity=0.4,
            description="fork a child that immediately exits",
        ),
        _p(
            "fork_execve",
            245.8,
            exits={ExitReason.EPT_VIOLATION: 12.0},
            nested_exits={ExitReason.INVEPT: 10.0},
            mem_intensity=0.4,
            description="fork + exec of a trivial program",
        ),
        _p(
            "fork_sh",
            918.7,
            exits={ExitReason.EPT_VIOLATION: 24.0},
            nested_exits={ExitReason.INVEPT: 20.0, ExitReason.HLT: 12.0},
            mem_intensity=0.4,
            description="fork + /bin/sh -c of a trivial program",
        ),
        # --- general kernel operations used by workloads ---
        _p(
            "open",
            1.1,
            mem_intensity=0.2,
            description="open an existing file",
        ),
        _p(
            "close",
            0.35,
            mem_intensity=0.1,
        ),
        _p(
            "stat",
            0.9,
            mem_intensity=0.2,
        ),
        _p(
            "creat_meta",
            5.2,
            nested_exits={ExitReason.INVEPT: 0.25},
            mem_intensity=0.3,
            description="metadata part of file creation (dentry+inode)",
        ),
        _p(
            "unlink_meta",
            1.9,
            nested_exits={ExitReason.INVEPT: 0.02},
            mem_intensity=0.3,
            description="metadata part of file deletion",
        ),
        _p(
            "page_cache_write",
            0.9,
            mem_intensity=0.6,
            description="copy one page of user data into the page cache",
        ),
        _p(
            "page_cache_read",
            0.7,
            mem_intensity=0.6,
        ),
        _p(
            "fsync_journal",
            95.0,
            exits={ExitReason.VIRTIO_KICK: 2.0},
            nested_exits={ExitReason.INVEPT: 11.0},
            mem_intensity=0.3,
            description="journal commit forcing a device flush",
        ),
        _p(
            "block_io_submit",
            4.5,
            exits={ExitReason.VIRTIO_KICK: 1.0},
            mem_intensity=0.3,
            description="submit one block I/O request to the disk queue",
        ),
        _p(
            "net_sendmsg",
            2.8,
            exits={ExitReason.VIRTIO_KICK: 0.06},
            mem_intensity=0.3,
            description="one sendmsg of a TCP segment batch (virtio "
            "notification suppressed ~94% of the time by event-idx)",
        ),
        _p(
            "net_recvmsg",
            2.4,
            exits={ExitReason.EXTERNAL_INTERRUPT: 0.06},
            mem_intensity=0.3,
        ),
        _p(
            "context_switch",
            1.4,
            exits={ExitReason.HLT: 1.0},
            mem_intensity=0.2,
        ),
        _p(
            "getpid",
            0.04,
            per_depth_cpu_us=0.004,
            mem_intensity=0.05,
        ),
        _p(
            "write",
            0.6,
            mem_intensity=0.2,
            description="plain write(2) — the syscall the rootkit's "
            "keystroke logger traps (§IV-B)",
        ),
        _p(
            "read",
            0.55,
            mem_intensity=0.2,
        ),
        _p(
            "mmap_page",
            1.6,
            mem_intensity=0.4,
            description="extend an anonymous mapping by one page",
        ),
    ]
)
