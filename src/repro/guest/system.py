"""The System: one OS environment at any virtualization depth.

A System at depth 0 is the bare-metal host; at depth 1 a guest; at
depth 2 a nested guest.  All of them share the same kernel, filesystem
and shell machinery — the only differences are the memory domain they
sit on and whether the CPU they see has VMX (which gates running KVM).
"""

from repro.errors import GuestError, HypervisorError
from repro.guest.filesystem import FileSystem
from repro.guest.kernel import Kernel
from repro.guest.shell import Shell
from repro.hypervisor.kvm import Kvm


class System:
    """One operating-system environment."""

    def __init__(
        self,
        name,
        machine,
        memory,
        cpu,
        depth,
        parent=None,
        os_name="fedora22",
        kernel_version="4.4.14-200.fc22.x86_64",
    ):
        self.name = name
        self.machine = machine
        self.memory = memory
        self.cpu = cpu
        self.depth = depth
        self.parent = parent
        self.os_name = os_name
        self.kernel_version = kernel_version
        self.fs = FileSystem(name=f"{name}-rootfs")
        self.kernel = Kernel(self)
        self.shell = Shell(self)
        self.kvm = None
        #: The KvmVm that hosts this system (None at depth 0); used for
        #: exit accounting and by QEMU to reach guest memory.
        self.vm_handle = None
        #: The network node, attached by the net layer.
        self.net_node = None
        #: The QemuVm hosting this system (None for bare metal).
        self.qemu_vm = None
        #: Guest-visible clock scaling.  1.0 = honest timekeeping.  An
        #: attacker controlling this system's hypervisor can slow the
        #: virtual TSC the guest reads (paper §VI-A: "events and timing
        #: measurements in L2 can be ... manipulated by attackers from
        #: L1"), which defeats guest-internal timing detectors.
        self.tsc_scaling = 1.0
        self._tsc_anchor_real = 0.0
        self._tsc_anchor_guest = 0.0

    # -- construction ------------------------------------------------------

    @classmethod
    def bare_metal(cls, machine, name="host", **kwargs):
        """The depth-0 System running directly on a machine."""
        from repro.net.stack import NetworkNode

        system = cls(
            name=name,
            machine=machine,
            memory=machine.memory,
            cpu=machine.cpu,
            depth=0,
            **kwargs,
        )
        system.net_node = NetworkNode(machine.engine, f"{name}-eth0")
        return system

    @property
    def paused(self):
        """True while the hosting VM is stopped (migration downtime)."""
        return self.qemu_vm is not None and self.qemu_vm.paused

    # -- convenience -------------------------------------------------------

    @property
    def engine(self):
        return self.machine.engine

    @property
    def rng(self):
        return self.machine.rng

    @property
    def cost_model(self):
        return self.machine.cost_model

    def enable_kvm(self):
        """Load the KVM modules (requires VMX on this system's CPU)."""
        if self.kvm is not None:
            return self.kvm
        if not self.cpu.vmx:
            raise HypervisorError(
                f"{self.name}: cannot load kvm-intel — no VMX "
                "(nested virtualization not exposed by the parent?)"
            )
        self.kvm = Kvm(self)
        return self.kvm

    def boot(self, **kwargs):
        """Boot the kernel; returns the virtual-time cost."""
        return self.kernel.boot(**kwargs)

    @property
    def booted(self):
        return self.kernel.booted

    def guest_now(self):
        """The time *this guest* believes it is.

        Follows real (virtual) time scaled by ``tsc_scaling`` since the
        last scaling change — what a guest reading its TSC/clocksource
        observes when the hypervisor above it lies about time.
        """
        real = self.engine.now
        return self._tsc_anchor_guest + (real - self._tsc_anchor_real) * (
            self.tsc_scaling
        )

    def set_tsc_scaling(self, factor):
        """Hypervisor-level control: change the guest's clock rate."""
        if factor <= 0:
            raise GuestError(f"tsc scaling must be positive: {factor}")
        self._tsc_anchor_guest = self.guest_now()
        self._tsc_anchor_real = self.engine.now
        self.tsc_scaling = factor

    def lineage(self):
        """[host, ..., self] — the chain of systems under this one."""
        chain = []
        node = self
        while node is not None:
            chain.append(node)
            node = node.parent
        return list(reversed(chain))

    def host(self):
        """The depth-0 ancestor."""
        return self.lineage()[0]

    def __repr__(self):
        return f"<System {self.name} depth={self.depth} os={self.os_name}>"


def make_testbed(seed=1701, memory_mb=16384, **machine_kwargs):
    """The paper's testbed: one physical host, booted, with KVM loaded.

    Returns the host :class:`System`.  Callers that need the machine or
    engine reach them through ``host.machine`` / ``host.engine``.
    """
    from repro.hardware.machine import Machine

    machine = Machine(memory_mb=memory_mb, seed=seed, **machine_kwargs)
    host = System.bare_metal(machine)
    host.kernel.jitter_rsd = 0.015
    boot_cost = host.boot()
    machine.engine.run(until=machine.engine.now + boot_cost)
    host.enable_kvm()
    return host
