"""A root shell with command history.

The paper's reconnaissance step (§IV-A) starts from exactly two host
artifacts: the shell *history* (to recover the original QEMU command
line) and *ps -ef* (to find the running QEMU process).  This module
provides both, formatted closely enough to the real tools that the
recon parser works on realistic text.
"""


class Shell:
    """Command history plus the ps/history built-ins."""

    def __init__(self, system, user="root"):
        self.system = system
        self.user = user
        self.history = []

    def record(self, cmdline):
        """Append a command to the history (as if the user had typed it)."""
        self.history.append(cmdline)
        return cmdline

    def history_text(self):
        """The `history` built-in's output."""
        return "\n".join(
            f"{index + 1:5d}  {cmd}" for index, cmd in enumerate(self.history)
        )

    def ps_ef(self):
        """The `ps -ef` output for this system's process table."""
        lines = ["UID          PID    PPID  C STIME TTY          TIME CMD"]
        for proc in self.system.kernel.table.processes():
            stime = _format_stime(proc.start_time)
            lines.append(
                f"{proc.user:<10} {proc.pid:>5} {proc.ppid:>7}  0 "
                f"{stime} ?        00:00:00 {proc.cmdline}"
            )
        return "\n".join(lines)

    def clear_history(self):
        """`history -c` — an attacker covering tracks."""
        self.history.clear()


def _format_stime(start_time):
    """hh:mm virtual-clock formatting for the STIME column."""
    minutes = int(start_time // 60) % (24 * 60)
    return f"{minutes // 60:02d}:{minutes % 60:02d}"
