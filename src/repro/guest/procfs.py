"""A /proc view over a system's kernel state.

Reconnaissance tooling frequently prefers ``/proc`` to ``ps`` (it
survives a trojaned procps, and scripts parse it directly).  This
module renders the entries the attack and experiments care about:
per-process ``cmdline``/``status``, ``/proc/meminfo``, and
``/proc/cpuinfo`` — whose ``vmx`` flag is how an attacker confirms the
parent exposed nested virtualization into GuestX.
"""

from repro.errors import ProcessError


def list_pids(system):
    """The numeric directory names under /proc."""
    return [proc.pid for proc in system.kernel.table.processes()]


def proc_cmdline(system, pid):
    """/proc/<pid>/cmdline — NUL-separated argv."""
    proc = system.kernel.table.get(pid)
    if proc is None:
        raise ProcessError(f"/proc/{pid}/cmdline: no such process")
    return proc.cmdline.replace(" ", "\x00") + "\x00"


def proc_status(system, pid):
    """/proc/<pid>/status — the fields recon scripts grep for."""
    proc = system.kernel.table.get(pid)
    if proc is None:
        raise ProcessError(f"/proc/{pid}/status: no such process")
    state = {"R": "R (running)", "Z": "Z (zombie)"}.get(proc.state, proc.state)
    return (
        f"Name:\t{proc.name}\n"
        f"State:\t{state}\n"
        f"Pid:\t{proc.pid}\n"
        f"PPid:\t{proc.ppid}\n"
        f"Uid:\t{0 if proc.user == 'root' else 1000}\n"
    )


def meminfo(system):
    """/proc/meminfo — totals from the system's memory domain."""
    memory = system.memory
    total_kb = getattr(memory, "size_mb", 0) * 1024
    if hasattr(memory, "touched_pages"):
        used_pages = memory.touched_pages + memory.bulk_touched
    else:
        used_pages = memory.allocated_pages
    used_kb = used_pages * 4
    free_kb = max(total_kb - used_kb, 0)
    return (
        f"MemTotal:       {total_kb} kB\n"
        f"MemFree:        {free_kb} kB\n"
        f"MemAvailable:   {free_kb} kB\n"
    )


def cpuinfo(system):
    """/proc/cpuinfo — one stanza per logical CPU.

    The ``flags`` line carries ``vmx`` exactly when this system's CPU
    can run a hypervisor — the attacker's step-2 sanity check inside
    GuestX, and (its absence) the reason an unmodified victim guest
    cannot tell it could never have nested anyway.
    """
    flags = "fpu pae msr tsc syscall nx lm constant_tsc"
    if system.cpu.vmx:
        flags += " vmx ept vpid"
    stanzas = []
    for index in range(system.cpu.logical_cpus):
        stanzas.append(
            f"processor\t: {index}\n"
            f"vendor_id\t: {'GenuineIntel' if system.cpu.vendor == 'intel' else 'AuthenticAMD'}\n"
            f"model name\t: {system.cpu.model}\n"
            f"cpu MHz\t\t: {system.cpu.frequency_ghz * 1000:.3f}\n"
            f"flags\t\t: {flags}\n"
        )
    return "\n".join(stanzas)
