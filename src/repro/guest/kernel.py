"""The kernel: process table, syscall charging, page cache, boot.

This is the cost-accounting surface every workload and experiment goes
through.  All ``charge_*`` methods *return seconds of virtual time*;
the calling simulation process is responsible for yielding a timeout of
the accumulated cost (see :mod:`repro.workloads.base`).  Keeping the
kernel synchronous makes deep call chains (workload -> filesystem ->
memory) straightforward while the event engine still interleaves
concurrent activities at operation granularity.

Two hooks matter to the paper:

* ``cpu_throttle`` — QEMU auto-converge slows a guest's vCPUs so a
  pre-copy migration can catch up with the dirty rate; migration sets
  this (Fig 4's CPU-intensive case depends on it).
* ``syscall_taps`` — an L1 hypervisor that controls this guest can trap
  chosen syscalls (the rootkit's keystroke logger of §IV-B traps
  ``write``); each tapped call costs one extra exit and hands the event
  to the attacker's callback.
"""

from functools import lru_cache

from repro.errors import GuestError, ProcessError
from repro.guest.process import ProcessTable
from repro.guest.syscalls import SYSCALL_PROFILES
from repro.hardware.memory import WriteOutcome
from repro.hypervisor.exits import ExitReason

#: Disk service time per 4 KiB page (SATA SSD class), before exits.
DISK_READ_PER_PAGE = 2.5e-5
DISK_WRITE_PER_PAGE = 3.0e-5

#: Default boot working set for a 1 GiB VM: pages of OS text/rodata that
#: are byte-identical across same-build systems (KSM fodder), pages of
#: per-system unique state, and the bulk anonymous footprint.
BOOT_SHARED_PAGES = 2600
BOOT_UNIQUE_PAGES = 900

_INIT_PROCESSES = (
    ("systemd", "/usr/lib/systemd/systemd --switched-root"),
    ("kthreadd", "[kthreadd]"),
    ("ksoftirqd/0", "[ksoftirqd/0]"),
    ("systemd-journal", "/usr/lib/systemd/systemd-journald"),
    ("dbus-daemon", "/usr/bin/dbus-daemon --system"),
    ("NetworkManager", "/usr/sbin/NetworkManager --no-daemon"),
    ("sshd", "/usr/sbin/sshd -D"),
    ("crond", "/usr/sbin/crond -n"),
    ("agetty", "/sbin/agetty --noclear tty1 linux"),
    ("bash", "-bash"),
)


class SyscallTap:
    """A hypervisor-installed trap on a class of syscalls."""

    def __init__(self, syscall_name, callback, extra_exit=ExitReason.HYPERCALL):
        self.syscall_name = syscall_name
        self.callback = callback
        self.extra_exit = extra_exit
        self.hits = 0


class Kernel:
    """One operating system kernel."""

    def __init__(self, system):
        self.system = system
        self.table = ProcessTable()
        self.page_cache = {}  # path -> list of pfns
        self.cpu_throttle = 0.0
        #: Added to every syscall while post-copy migration is filling
        #: memory in: expected remote-page-fault latency per operation.
        self.extra_op_latency = 0.0
        self.jitter_rsd = 0.02
        self.syscall_taps = []
        self.booted = False
        self._boot_pfns = []
        #: Filled by VMI subversion (DKSM): when set, introspection sees
        #: this forged view instead of the real process table.
        self.dksm_forged_view = None
        #: Set when hypervisor/kernel code in this system has been
        #: patched (e.g. the §VI-D page-sync evasion) — the tell-tale an
        #: integrity monitor would catch.
        self.hypervisor_code_modified = False
        # Hot-path caches.  The syscall cache maps (name, depth) to the
        # precomputed deterministic cost plus the exit-recording plan;
        # it is keyed to the cost model object so a migration onto a
        # host with a different model rebuilds it.  The jitter cache
        # holds the per-label RNG stream so the per-syscall path skips
        # the registry's name hashing (same streams, same draw order).
        self._syscall_cache = {}
        self._syscall_cache_cm = None
        self._jitter_streams = {}

    # ------------------------------------------------------------------
    # cost primitives
    # ------------------------------------------------------------------

    @property
    def depth(self):
        return self.system.depth

    @property
    def _cost_model(self):
        return self.system.cost_model

    def _throttled(self, cost):
        if self.cpu_throttle:
            if not 0.0 <= self.cpu_throttle < 1.0:
                raise GuestError(f"bad cpu_throttle {self.cpu_throttle}")
            return cost / (1.0 - self.cpu_throttle)
        return cost

    def _jitter(self, cost, label):
        if self.jitter_rsd <= 0:
            return cost
        rng = self._jitter_streams.get(label)
        if rng is None:
            rng = self.system.rng.stream(f"{self.system.name}:{label}")
            self._jitter_streams[label] = rng
        # Same math as RngRegistry.gauss_jitter, minus the per-call
        # stream lookup: one N(cost, rsd*cost) sample floored at 10%.
        sample = rng.gauss(cost, abs(self.jitter_rsd * cost))
        floor = 0.1 * abs(cost)
        return sample if sample >= floor else floor

    def _record_exits(self, reason, count):
        handle = self.system.vm_handle
        if handle is not None:
            handle.record_exit(reason, count)

    def _record_trampoline(self, reason, count):
        """Attribute the Turtles trampoline where it really executes.

        When a depth>=2 guest exits, the privileged instructions that
        handle the reflection run in the *L1 parent* — so the parent's
        VM accumulates PRIV_INSTRUCTION exits in the host's counters.
        That attribution is kernel ground truth an attacker cannot
        scrub, and the exit-census detector feeds on it.
        """
        if self.depth < 2 or self.system.parent is None:
            return
        parent_handle = self.system.parent.vm_handle
        if parent_handle is None:
            return
        ops = self._cost_model.nested_priv_ops.get(reason, 0)
        if ops:
            parent_handle.record_exit(
                ExitReason.PRIV_INSTRUCTION, count * ops
            )

    def charge_cpu(self, seconds, mem_intensity=0.5, jitter=True):
        """Cost of ``seconds`` of userspace CPU work at this depth.

        Stretched by host CPU contention when more busy vCPUs exist
        than logical cores (co-residence interference — the class of
        effects refs [55, 59] exploit).
        """
        cost = self._cost_model.cpu_cost(seconds, self.depth, mem_intensity)
        cost *= self.system.machine.scheduler.slowdown_factor()
        if jitter:
            cost = self._jitter(cost, "cpu")
        self._record_exits(
            ExitReason.TIMER, seconds * self._cost_model.timer_hz if self.depth else 0
        )
        return self._throttled(cost)

    def _build_syscall_entry(self, name, depth):
        """Precompute the deterministic part of one syscall's cost.

        Returns ``(base_cost, records, label)`` where ``records`` is the
        exit-recording plan: ``(reason, count, trampoline_count)`` per
        exit class, with ``trampoline_count`` the pre-multiplied number
        of PRIV_INSTRUCTION exits the L1 parent absorbs (0 below depth
        2).  The additions happen in the same order as the original
        per-call computation, so the cached scalar is bit-identical.
        """
        profile = SYSCALL_PROFILES.get(name)
        if profile is None:
            raise GuestError(f"unknown syscall profile: {name!r}")
        cm = self._cost_model
        cost = cm.cpu_cost(profile.cpu_seconds, depth, profile.mem_intensity)
        cost += profile.per_depth_cpu * depth
        cost += cm.syscall_depth_tax * depth
        records = []
        if depth >= 1:
            nested = depth >= 2
            for reason, n in profile.exits.items():
                cost += n * cm.exit_cost(reason, depth)
                ops = cm.nested_priv_ops.get(reason, 0) if nested else 0
                records.append((reason, n, n * ops))
            if nested:
                for reason, n in profile.nested_exits.items():
                    cost += n * cm.exit_cost(reason, depth)
                    ops = cm.nested_priv_ops.get(reason, 0)
                    records.append((reason, n, n * ops))
        return cost, tuple(records), f"sys:{name}"

    def syscall_cost(self, name, jitter=True):
        """Cost of one syscall described by its profile."""
        cm = self.system.cost_model
        if cm is not self._syscall_cache_cm:
            self._syscall_cache_cm = cm
            self._syscall_cache = {}
        depth = self.depth
        entry = self._syscall_cache.get((name, depth))
        if entry is None:
            entry = self._build_syscall_entry(name, depth)
            self._syscall_cache[(name, depth)] = entry
        cost, records, label = entry
        if records:
            system = self.system
            handle = system.vm_handle
            parent_handle = None
            if depth >= 2 and system.parent is not None:
                parent_handle = system.parent.vm_handle
            for reason, n, trampoline in records:
                if handle is not None:
                    handle.record_exit(reason, n)
                if trampoline and parent_handle is not None:
                    # The Turtles reflection runs in the L1 parent — see
                    # _record_trampoline for the attribution rationale.
                    parent_handle.record_exit(
                        ExitReason.PRIV_INSTRUCTION, trampoline
                    )
        if self.syscall_taps:
            for tap in self.syscall_taps:
                if tap.syscall_name == name:
                    tap.hits += 1
                    cost += cm.exit_cost(tap.extra_exit, max(depth, 1))
                    if tap.callback is not None:
                        tap.callback(self.system, name)
        cost += self.extra_op_latency
        if jitter:
            cost = self._jitter(cost, label)
        return self._throttled(cost)

    def charge_syscalls(self, name, times=1):
        """Cost of ``times`` identical syscalls (jitter applied once)."""
        return self.syscall_cost(name) * times

    def write_cost(self, outcome):
        """Cost of a page write given its mechanical outcome."""
        cost = self._cost_model.write_outcome_cost(outcome, self.depth)
        cost = self._jitter(cost, "page-write")
        return self._throttled(cost)

    # ------------------------------------------------------------------
    # memory and page-cache operations
    # ------------------------------------------------------------------

    def alloc_pages(self, n, mergeable=False):
        """Allocate ``n`` fresh pages; returns (pfns, cost)."""
        outcome = WriteOutcome()
        pfns = [
            self.system.memory.alloc_page(outcome, mergeable=mergeable)
            for _ in range(n)
        ]
        cost = n * self._cost_model.minor_fault_cost
        cost += outcome.first_touch_levels * self._cost_model.exit_cost(
            ExitReason.EPT_VIOLATION, self.depth
        ) if self.depth else 0.0
        return pfns, self._throttled(cost)

    def write_page(self, pfn, content):
        """Write one page; returns (outcome, cost).

        This is the primitive the detection module times: the cost of a
        write to a KSM-merged page includes the copy-on-write break.
        """
        outcome = self.system.memory.write(pfn, content)
        return outcome, self.write_cost(outcome)

    def load_file(self, path, mergeable=True):
        """Read a file into the page cache; returns (pfns, cost).

        Idempotent: a second load of a cached path costs only the reads.
        File pages become mergeable candidates from the host's point of
        view, which is what lets KSM merge File-A copies across systems.
        """
        file = self.system.fs.open(path)
        cached = self.page_cache.get(path)
        if cached is not None:
            return cached, self.charge_syscalls("page_cache_read", file.num_pages)
        cost = self.syscall_cost("open")
        pfns = []
        outcome = WriteOutcome()
        for index in range(file.num_pages):
            pfn = self.system.memory.alloc_page(outcome, mergeable=mergeable)
            self.system.memory.write(pfn, file.page_content(index), outcome)
            pfns.append(pfn)
        cost += file.num_pages * (
            DISK_READ_PER_PAGE + self._cost_model.page_write_cost
        )
        cost += self.charge_syscalls("block_io_submit", max(1, file.num_pages // 8))
        if self.depth:
            cost += outcome.first_touch_levels * self._cost_model.exit_cost(
                ExitReason.EPT_VIOLATION, self.depth
            )
        self.page_cache[path] = pfns
        return pfns, self._throttled(cost)

    def evict_file(self, path):
        """Drop a file from the page cache, freeing its pages."""
        pfns = self.page_cache.pop(path, None)
        if pfns is None:
            raise GuestError(f"evict: {path!r} not in page cache")
        for pfn in pfns:
            self.system.memory.free(pfn)

    def write_file_page(self, path, index, content):
        """Modify one page of a file (in the FS and, if cached, in memory).

        Returns the cost.  This is how the detection protocol's guest
        agent turns File-A into File-A-v2.
        """
        file = self.system.fs.open(path)
        file.set_page_content(index, content)
        cost = self.syscall_cost("page_cache_write")
        pfns = self.page_cache.get(path)
        if pfns is not None:
            _outcome, write_cost = self.write_page(pfns[index], content)
            cost += write_cost
        return cost

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def spawn(self, name, cmdline=None, ppid=1, user="root"):
        """Create a process; returns (OsProcess, cost of fork+exec)."""
        proc = self.table.spawn(
            name, cmdline, ppid=ppid, user=user, start_time=self.system.engine.now
        )
        return proc, self.syscall_cost("fork_execve")

    def kill(self, pid):
        """Kill and reap a process; returns the cost."""
        self.table.kill(pid)
        self.table.reap(pid)
        return self.syscall_cost("fork_exit")

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    def boot(self, shared_pages=None, unique_pages=None, bulk_fraction=0.62):
        """Bring the system up; returns the boot cost in seconds.

        Materializes the OS working set: ``shared_pages`` of build-
        identical text/rodata (content keyed by OS name + kernel
        version, hence byte-identical across same-build systems and
        mergeable by KSM), ``unique_pages`` of per-system state, and a
        bulk anonymous footprint of ``bulk_fraction`` of RAM (the
        default models the paper's Fedora 22 *workstation* guests,
        whose desktop stack leaves ~650 MB of a 1 GiB VM resident).
        """
        if self.booted:
            raise GuestError(f"{self.system.name}: already booted")
        system = self.system
        shared = BOOT_SHARED_PAGES if shared_pages is None else shared_pages
        unique = BOOT_UNIQUE_PAGES if unique_pages is None else unique_pages
        build = f"{system.os_name}:{system.kernel_version}"
        outcome = WriteOutcome()
        self._boot_pfns = []
        for index in range(shared):
            pfn = system.memory.alloc_page(outcome, mergeable=True)
            system.memory.write(
                pfn, _os_page_content(build, index), outcome
            )
            self._boot_pfns.append(pfn)
        for index in range(unique):
            pfn = system.memory.alloc_page(outcome, mergeable=True)
            system.memory.write(
                pfn,
                _os_page_content(f"{build}:{system.name}", index),
                outcome,
            )
            self._boot_pfns.append(pfn)
        ram_pages = getattr(system.memory, "total_pages", 0)
        if ram_pages and bulk_fraction:
            system.memory.touch_bulk(int(ram_pages * bulk_fraction))
        for name, cmdline in _INIT_PROCESSES:
            ppid = 0 if name == "systemd" else 1
            self.table.spawn(
                name, cmdline, ppid=ppid, start_time=system.engine.now
            )
        self.booted = True
        # Boot takes tens of seconds of virtual time, stretched by depth.
        base_boot = 14.0 + (shared + unique) * 1.5e-4
        return self.charge_cpu(base_boot, mem_intensity=0.7)

    def reboot(self, **boot_kwargs):
        """Reboot the OS: processes, caches and anonymous memory drop,
        then the kernel boots fresh.  Returns the combined cost.

        Everything *around* this system survives untouched — the VM it
        runs in, the hypervisors below it, their port forwards.  That
        asymmetry is the paper's §VII point: rebooting a CloudSkulked
        victim cannot shake the rootkit, where SubVirt needed the
        reboot and BluePill did not survive one.

        Attacker artifacts *inside* this kernel (DKSM forgeries) are
        rebuilt from clean sources and therefore lost; hypervisor-side
        taps persist (they live below).
        """
        system = self.system
        for path in list(self.page_cache):
            self.evict_file(path)
        for pfn in getattr(self, "_boot_pfns", []):
            system.memory.free(pfn)
        self._boot_pfns = []
        if hasattr(system.memory, "reset_bulk"):
            system.memory.reset_bulk()
        from repro.guest.process import ProcessTable

        self.table = ProcessTable()
        self.dksm_forged_view = None
        self.booted = False
        shutdown_cost = self.charge_cpu(2.5, mem_intensity=0.3)
        return shutdown_cost + self.boot(**boot_kwargs)

    # ------------------------------------------------------------------
    # hypervisor-side controls
    # ------------------------------------------------------------------

    def install_tap(self, tap):
        """Install a syscall trap (requires hypervisor-level control)."""
        self.syscall_taps.append(tap)
        return tap

    def remove_tap(self, tap):
        try:
            self.syscall_taps.remove(tap)
        except ValueError:
            raise ProcessError("tap not installed") from None


@lru_cache(maxsize=None)
def _os_page_content(build, index):
    """Deterministic per-build page content for the OS working set.

    Cached: every reboot of a given build regenerates the identical
    working set, and the 48-byte results are far cheaper to keep than
    to re-derive.  Reusing the same bytes objects also lets the page
    store's content-keyed intern hit Python's cached string hash.
    """
    import hashlib

    return hashlib.blake2b(
        f"os:{build}:{index}".encode("utf-8"), digest_size=48
    ).digest()
