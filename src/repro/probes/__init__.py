"""Pluggable detection-probe catalog + cross-scored attack matrix.

See :mod:`repro.probes.base` for the Probe protocol and registry,
:mod:`repro.probes.catalog` for the built-in probes, and
:mod:`repro.probes.score` for the probe×attack ScoreMatrix runner
(``repro probes score``).
"""

from repro.probes.base import (
    DEFAULT_PROBES,
    FLAGGED_VERDICTS,
    Probe,
    ProbeTarget,
    Verdict,
    aggregate_verdict,
    get_probe,
    register_probe,
    registered_probes,
    resolve_probes,
    run_probe,
)
from repro.probes.catalog import (
    DedupSpyProbe,
    KsmTimingProbe,
    VmiInvarianceProbe,
)

__all__ = [
    "DEFAULT_PROBES",
    "DedupSpyProbe",
    "FLAGGED_VERDICTS",
    "KsmTimingProbe",
    "Probe",
    "ProbeTarget",
    "Verdict",
    "VmiInvarianceProbe",
    "aggregate_verdict",
    "get_probe",
    "register_probe",
    "registered_probes",
    "resolve_probes",
    "run_probe",
]
