"""The built-in probe catalog.

Three observers over the scaffolding already in-tree:

* :class:`KsmTimingProbe` — the paper's §VI detector
  (:mod:`repro.core.detection.dedup_detector`) wrapped unchanged; the
  default probe, byte-identical in virtual time to the pre-catalog
  monitoring loop.
* :class:`VmiInvarianceProbe` — Hello rootKitty-style cross-view
  invariance over :mod:`repro.vmi`: catches DKSM forgery of the
  VMI-visible process structures, is blind to nested guests (the
  semantic gap CloudSkulk exploits).
* :class:`DedupSpyProbe` — turns the dedup side channel around: a
  defender watching a tenant's KSM-shared page set for the plant/evict
  churn a covert channel (:mod:`repro.sidechannel.dedup_channel`)
  necessarily produces.

No single probe covers the attack space — that asymmetry is the point
of the score matrix.
"""

from repro.core.detection.dedup_detector import DedupDetector
from repro.errors import DetectionError
from repro.probes.base import Probe, Verdict, register_probe
from repro.sidechannel.dedup_channel import shared_page_census
from repro.vmi.invariants import check_process_invariants


@register_probe
class KsmTimingProbe(Probe):
    """KSM write-timing detection (paper §VI) as a catalog probe.

    A thin adapter: construction arguments, File-A naming, protocol,
    and error mapping reproduce the pre-catalog
    ``MonitoringService.sweep`` inner loop exactly, so the default
    fleet fingerprints (FLEET_SWEEP_4X12_PIN and friends) stay
    byte-identical.
    """

    name = "ksm_timing"
    capabilities = ("cloud_interface", "ksm", "write_timing")

    def cost_bound(self, file_pages, wait_seconds):
        # Two settle waits plus three timed measurement phases plus
        # vendor-channel file delivery; the constant covers delivery
        # and per-page write costs with generous slack.
        return 4.0 * wait_seconds + 0.05 * file_pages + 60.0

    def probe(self, target):
        detector = DedupDetector(
            target.host,
            target.interface,
            file_pages=target.file_pages,
            wait_seconds=target.wait_seconds,
            file_path=(
                f"/root/detect/sweep-{target.sweep_id}-"
                f"{target.index}-{target.tenant_name}.bin"
            ),
        )
        report = yield from detector.run()
        verdict = Verdict(
            self.name,
            report.verdict.verdict,
            details={
                "median_t0_us": report.verdict.median_t0,
                "median_t1_us": report.verdict.median_t1,
                "median_t2_us": report.verdict.median_t2,
            },
        )
        verdict.report = report
        return verdict


@register_probe
class VmiInvarianceProbe(Probe):
    """Cross-view process-structure invariance via VMI.

    Flags ``subverted`` when the VMI walk and the kernel's own table
    disagree (DKSM forgery).  Honest about its two structural limits:
    a nested (depth-2) guest or an unknown kernel build both come back
    ``inconclusive`` — the probe cannot see, and says so, rather than
    calling the tenant clean.
    """

    name = "vmi_invariance"
    capabilities = ("vmi_layouts", "guest_memory_read")

    #: Fixed cost of locating the structures from priori layout
    #: knowledge, charged even when the walk cannot start.
    SETUP_COST_S = 2e-3
    #: Per process entry compared across the two views.
    PER_ENTRY_COST_S = 350e-6
    #: Walk-length cap: the cost bound must not scale with attacker
    #: -controlled state.
    MAX_WALK_ENTRIES = 4096

    def cost_bound(self, file_pages, wait_seconds):
        return self.SETUP_COST_S + self.MAX_WALK_ENTRIES * self.PER_ENTRY_COST_S

    def probe(self, target):
        guest = target.locate()
        engine = target.engine
        if guest.depth != 1 or guest.qemu_vm is None:
            # Two stacked semantic gaps (paper §VI-D-2): no anchor for
            # the inner kernel's structures.  Charge the failed setup.
            yield engine.timeout(self.SETUP_COST_S)
            return Verdict(
                self.name,
                "inconclusive",
                details={"reason": "semantic-gap", "depth": guest.depth},
            )
        try:
            report = check_process_invariants(guest.qemu_vm)
        except DetectionError as exc:
            # The guest is reachable but its kernel build is not in
            # KERNEL_LAYOUTS — VMI has no priori knowledge to walk with.
            yield engine.timeout(self.SETUP_COST_S)
            return Verdict(
                self.name,
                "inconclusive",
                details={"reason": "no-layout-knowledge", "error": str(exc)},
            )
        walked = min(report.processes_walked, self.MAX_WALK_ENTRIES)
        yield engine.timeout(
            self.SETUP_COST_S + walked * self.PER_ENTRY_COST_S
        )
        verdict = "clean" if report.consistent else "subverted"
        return Verdict(
            self.name,
            verdict,
            details={
                "processes_walked": report.processes_walked,
                "hidden": len(report.kernel_only),
                "injected": len(report.vmi_only),
            },
        )


@register_probe
class DedupSpyProbe(Probe):
    """Dedup side-channel surveillance: watch shared-page churn.

    Samples the tenant's KSM-shared page census
    (:func:`repro.sidechannel.dedup_channel.shared_page_census`) a few
    times across the budget window.  A covert channel must plant and
    evict codebook pages every frame, so its shared set churns on the
    channel's cadence; legitimate sharing (OS-image pages merged long
    ago) is near-static by sweep time.  Churn at or above
    :attr:`CHURN_THRESHOLD` distinct digests flags ``spying``.  A
    tenant with zero shared pages is simply ``clean`` — nothing to
    watch is not suspicious.

    The channel merges ~popcount(byte) codebook pages per settle
    period once ksmd's full-scan cycle has converged on the plants
    (about two minutes of virtual time after the channel starts), so
    the probe is blind to a channel younger than that — detection
    latency the score matrix reports honestly.
    """

    name = "dedup_spy"
    capabilities = ("memory_census", "ksm")

    #: Census samples taken per probe run.
    SAMPLES = 3
    #: Fixed per-sample cost plus a per-materialized-page scan charge.
    SAMPLE_BASE_COST_S = 1e-3
    PER_PAGE_COST_S = 2e-6
    #: Page-walk charge cap, so the bound is budget-only.
    MAX_CENSUS_PAGES = 65536
    #: Distinct shared-set digests that must churn across the samples.
    #: A frame's merge/evict transition moves popcount(byte) digests at
    #: once, while legitimate churn (a workload CoW-breaking one shared
    #: page) moves them one at a time.
    CHURN_THRESHOLD = 2

    def cost_bound(self, file_pages, wait_seconds):
        return wait_seconds + self.SAMPLES * (
            self.SAMPLE_BASE_COST_S
            + self.MAX_CENSUS_PAGES * self.PER_PAGE_COST_S
        )

    def probe(self, target):
        guest = target.locate()
        engine = target.engine
        window = target.wait_seconds / (self.SAMPLES - 1)
        samples = []
        for sample_index in range(self.SAMPLES):
            if sample_index:
                yield engine.timeout(window)
            census = shared_page_census(guest)
            touched = getattr(guest.memory, "touched_pages", len(census))
            yield engine.timeout(
                self.SAMPLE_BASE_COST_S
                + min(touched, self.MAX_CENSUS_PAGES) * self.PER_PAGE_COST_S
            )
            samples.append(frozenset(census))
        churn = sum(
            len(before ^ after)
            for before, after in zip(samples, samples[1:])
        )
        verdict = "spying" if churn >= self.CHURN_THRESHOLD else "clean"
        return Verdict(
            self.name,
            verdict,
            details={
                "churn": churn,
                "shared_pages": len(samples[-1]),
                "samples": self.SAMPLES,
            },
        )
