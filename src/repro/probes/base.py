"""The Probe protocol and plugin registry.

The paper evaluates one detector (KSM write timing, §VI); the
surrounding literature sketches a *space* of them — kernel-object
invariance enforcement (Hello rootKitty), low-overhead VMI monitoring
(Zhan et al.), dedup side-channel observation (Xiao/Suzuki).  A probe
is any observer that, pointed at one tenant, spends bounded virtual
time and returns a :class:`Verdict`.  The registry makes the catalog
pluggable: the monitoring service schedules whatever probes are
registered, under the same per-tenant budget knobs the single detector
always had.

Contract (enforced by ``tests/probe_conformance.py`` for every
registered probe):

* ``probe(target)`` is an engine generator — all waiting happens in
  virtual time via ``yield engine.timeout(...)`` or nested protocols;
* same seed, same target ⇒ byte-identical verdict and virtual cost;
* virtual cost never exceeds :meth:`Probe.cost_bound` for the target's
  budget;
* the guest's OS-level state (process table, forged views) is left
  exactly as found on a clean tenant;
* an unreachable tenant (crashed host, deleted VM, fault-blocked
  locator) yields the ``unreachable`` verdict, never an unhandled
  error.
"""

from repro.errors import DetectionError

#: Verdict strings that count as "this tenant is under attack".  Each
#: probe flags with its own vocabulary — ``nested`` (KSM timing saw the
#: rootkit sandwich), ``subverted`` (VMI invariants were forged),
#: ``spying`` (dedup side-channel traffic observed) — so a fleet report
#: names the attack class, not just a boolean.
FLAGGED_VERDICTS = frozenset({"nested", "subverted", "spying"})


class Verdict:
    """One probe's conclusion about one tenant."""

    def __init__(self, probe, verdict, details=None):
        self.probe = probe
        self.verdict = verdict
        self.details = dict(details or {})
        #: Virtual timestamps stamped by the scheduler (MonitoringService
        #: or the conformance kit), not by the probe itself.
        self.started_at = None
        self.finished_at = None
        #: Optional rich attachment (the KSM probe hangs its full
        #: DetectionReport here so Fig 5/6 consumers keep working).
        self.report = None

    @property
    def flagged(self):
        return self.verdict in FLAGGED_VERDICTS

    @property
    def duration(self):
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def as_dict(self):
        return {
            "probe": self.probe,
            "verdict": self.verdict,
            "flagged": self.flagged,
            "details": dict(sorted(self.details.items())),
        }

    def __repr__(self):
        return f"<Verdict {self.probe}: {self.verdict}>"


class ProbeTarget:
    """Everything a probe may touch for one tenant.

    The budget fields carry the monitoring service's per-tenant knobs
    (``file_pages``/``wait_seconds``); ``sweep_id``/``index`` exist so
    probes that materialize artifacts (the KSM probe's File-A) can name
    them uniquely per sweep, keeping virtual-time results byte-identical
    to the pre-catalog monitoring loop.
    """

    def __init__(
        self,
        host,
        tenant_name,
        interface,
        file_pages=25,
        wait_seconds=20.0,
        sweep_id=0,
        index=0,
    ):
        self.host = host
        self.tenant_name = tenant_name
        self.interface = interface
        self.file_pages = file_pages
        self.wait_seconds = wait_seconds
        self.sweep_id = sweep_id
        self.index = index

    @property
    def engine(self):
        return self.host.engine

    def locate(self):
        """The tenant's guest System, or DetectionError if gone."""
        guest = self.interface.victim_locator()
        if guest is None:
            raise DetectionError(
                f"tenant {self.tenant_name!r} is unreachable"
            )
        return guest


class Probe:
    """Base class for catalog probes.

    Subclasses set :attr:`name` (the registry key), :attr:`capabilities`
    (which engine facilities the probe needs — documentation for the
    scheduler, asserted nowhere), and implement :meth:`probe` and
    :meth:`cost_bound`.
    """

    #: Registry key; also the ``probe=`` label on obs spans/counters.
    name = None
    #: Facilities the probe requires of the substrate.
    capabilities = ()

    def cost_bound(self, file_pages, wait_seconds):
        """Upper bound on virtual seconds one probe run may cost under
        the given budget.  The conformance kit asserts it."""
        raise NotImplementedError

    def probe(self, target):
        """Engine generator: examine ``target``, return a Verdict."""
        raise NotImplementedError

    def describe(self):
        return {
            "name": self.name,
            "capabilities": list(self.capabilities),
            "doc": (self.__doc__ or "").strip().splitlines()[0],
        }


_REGISTRY = {}

#: The pre-catalog monitoring behaviour: KSM timing only.  Fleet runs
#: default to this so every existing fingerprint pin stays byte-exact.
DEFAULT_PROBES = ("ksm_timing",)


def register_probe(cls):
    """Class decorator: add a Probe subclass to the catalog."""
    if not cls.name:
        raise ValueError("probe class must set a name")
    if cls.name in _REGISTRY:
        raise ValueError(f"probe {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_catalog():
    # Registration happens on import of the catalog module; defer it so
    # `repro.probes.base` stays import-cycle-free (the detection service
    # imports this module at module level).
    from repro.probes import catalog  # noqa: F401


def registered_probes():
    """Sorted names of every registered probe."""
    _ensure_catalog()
    return sorted(_REGISTRY)


def get_probe(name):
    """Instantiate the registered probe called ``name``."""
    _ensure_catalog()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise DetectionError(
            f"unknown probe {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY)) or 'none'}"
        ) from None
    return cls()


def resolve_probes(spec):
    """Normalize a probe spec to a tuple of Probe instances.

    ``None`` means :data:`DEFAULT_PROBES`; a string may name several
    probes joined by ``+`` (the matrix-axis syntax); an iterable may mix
    names and ready instances.  Order is preserved — it is the order
    probes run per tenant, and the priority order for the aggregate
    verdict.
    """
    if spec is None:
        spec = DEFAULT_PROBES
    if isinstance(spec, str):
        spec = tuple(part for part in spec.split("+") if part)
        if not spec:
            raise DetectionError("empty probe spec")
    probes = []
    seen = set()
    for entry in spec:
        probe = entry if isinstance(entry, Probe) else get_probe(entry)
        if probe.name in seen:
            raise DetectionError(f"probe {probe.name!r} listed twice")
        seen.add(probe.name)
        probes.append(probe)
    if not probes:
        raise DetectionError("empty probe spec")
    return tuple(probes)


def run_probe(probe, target):
    """Generator: run one probe, absorbing unreachable-tenant errors.

    DetectionError is the substrate's "the tenant is gone" signal (the
    locator answered None, the guest vanished mid-protocol); the catalog
    maps it to a graceful ``unreachable`` verdict exactly as the
    pre-catalog sweep loop did.
    """
    try:
        verdict = yield from probe.probe(target)
    except DetectionError as exc:
        verdict = Verdict(
            probe.name, "unreachable", details={"error": str(exc)}
        )
    return verdict


def aggregate_verdict(verdicts):
    """Collapse per-probe verdicts into one tenant-level verdict string.

    Priority: the first flagged verdict (in probe order) wins; a tenant
    every probe failed to reach is ``unreachable``; any inconclusive or
    partially-unreachable evidence is ``inconclusive``; else ``clean``.
    With a single probe this is the identity function, which is what
    keeps the default (KSM-only) sweep summaries byte-identical.
    """
    if not verdicts:
        raise DetectionError("no verdicts to aggregate")
    values = [v.verdict for v in verdicts]
    for value in values:
        if value in FLAGGED_VERDICTS:
            return value
    if all(value == "unreachable" for value in values):
        return "unreachable"
    if any(value in ("inconclusive", "unreachable") for value in values):
        return "inconclusive"
    return "clean"
