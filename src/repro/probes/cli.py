"""``repro probes`` subcommands: list the catalog, run the score matrix.

Wired into the main parser by :func:`add_probes_commands`; heavy
imports stay inside the handlers so ``repro probes list`` never pays
for the fleet stack.
"""

import json
import sys


def cmd_probes_list(args):
    """Print the registered catalog — no fleet built, always exits 0."""
    from repro.probes.base import DEFAULT_PROBES, get_probe, registered_probes

    print("registered probes:")
    for name in registered_probes():
        info = get_probe(name).describe()
        default = " (default)" if name in DEFAULT_PROBES else ""
        print(f"  {name}{default}")
        print(f"    {info['doc']}")
        print(f"    capabilities: {', '.join(info['capabilities'])}")
    return 0


def _diff_expected(actual, expected):
    """Leaf-level diff of two score-report dicts; returns message list."""

    def walk(a, b, path):
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a:
                    yield f"{path}.{key}: missing from actual"
                elif key not in b:
                    yield f"{path}.{key}: missing from expected"
                else:
                    yield from walk(a[key], b[key], f"{path}.{key}")
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                yield f"{path}: length {len(a)} != expected {len(b)}"
            else:
                for index, (left, right) in enumerate(zip(a, b)):
                    yield from walk(left, right, f"{path}[{index}]")
        elif a != b:
            yield f"{path}: {a!r} != expected {b!r}"

    return list(walk(actual, expected, "report"))


def cmd_probes_score(args):
    """Run the probe×attack ScoreMatrix; exit 1 on expected-score drift."""
    from repro.probes.score import ATTACKS, ScoreMatrix

    attacks = ATTACKS
    if args.attacks:
        attacks = tuple(
            part for part in args.attacks.split(",") if part
        )
    matrix = ScoreMatrix(
        seed=args.seed,
        hosts=args.hosts,
        tenants=args.tenants,
        churn_operations=args.churn,
        rebalance_moves=args.rebalance_moves,
        probes=args.probes,
        attacks=attacks,
        sweeps=args.sweeps,
        file_pages=args.pages,
        wait_seconds=args.wait,
        shards=getattr(args, "shards", None),
    )
    report = matrix.run()
    print(report.summary())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"score report written to {args.report_out}", file=sys.stderr)
    if args.expected:
        with open(args.expected, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        drift = _diff_expected(report.as_dict(), expected)
        if drift:
            print(
                f"score drift vs {args.expected} "
                f"({len(drift)} difference(s)):",
                file=sys.stderr,
            )
            for line in drift[:20]:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"scores match {args.expected}", file=sys.stderr)
    return 0


def add_probes_commands(subparsers):
    """Register the ``probes`` command group on the main parser."""
    from repro.matrix.cli import positive_int

    probes = subparsers.add_parser(
        "probes", help="detection-probe catalog and score matrix"
    )
    probes_sub = probes.add_subparsers(dest="probes_command", required=True)

    list_parser = probes_sub.add_parser(
        "list", help="show the registered probe catalog"
    )
    list_parser.set_defaults(func=cmd_probes_list)

    score = probes_sub.add_parser(
        "score",
        help="score every probe against every attack variant",
    )
    score.add_argument("--seed", type=int, default=42)
    score.add_argument("--hosts", type=positive_int, default=4)
    score.add_argument("--tenants", type=positive_int, default=12)
    score.add_argument(
        "--churn", type=int, default=6, help="churn operations in the warm-up"
    )
    score.add_argument("--rebalance-moves", type=int, default=1)
    score.add_argument("--sweeps", type=positive_int, default=1)
    score.add_argument(
        "--pages", type=positive_int, default=12,
        help="File-A pages per KSM-timing probe",
    )
    score.add_argument(
        "--wait", type=float, default=10.0,
        help="per-tenant probe budget window (seconds, virtual)",
    )
    score.add_argument(
        "--probes",
        help="'+'-joined probe names (default: the whole catalog)",
    )
    score.add_argument(
        "--attacks",
        help="comma-joined attack subset (default: all variants)",
    )
    score.add_argument(
        "--shards",
        type=positive_int,
        default=None,
        metavar="N",
        help="shard each leg's sweep phase across N worker processes "
        "(report identical to serial; N must not exceed --hosts)",
    )
    score.add_argument(
        "--report-out", help="write the deterministic JSON report here"
    )
    score.add_argument(
        "--expected",
        help="diff the report against this pinned JSON; exit 1 on drift",
    )
    score.set_defaults(func=cmd_probes_score)
