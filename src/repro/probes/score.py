"""The probe×attack score matrix: every probe against every attack.

One warmed fleet, one copy-on-write fork per attack leg (clean
baseline, CloudSkulk install, VMI subversion, dedup-spy channel), all
configured probes scheduled by the stock
:class:`~repro.cloud.fleet_monitor.FleetMonitor` in every leg.  Every
individual probe run lands in a verdict *ledger*; recall /
false-positive / latency / overhead cells are derived from the ledger
alone, so the report is audit-consistent by construction (the property
suite re-derives the cells and diffs).

Deterministic end to end: legs fork the same warm snapshot, attack
targets come from seeded RNG streams, probes run in virtual time —
the JSON report is byte-identical across same-seed runs and is pinned
in CI.
"""

import json
import math

from repro.cloud.campaign import AttackCampaign
from repro.cloud.fleet import warm_fleet
from repro.cloud.fleet_monitor import FleetMonitor
from repro.errors import ReproError
from repro.probes.base import FLAGGED_VERDICTS, resolve_probes
from repro.sidechannel.dedup_channel import DedupCovertChannel
from repro.vmi.subversion import forge_process_view

#: The attack variants every probe is scored against, in run order.
ATTACKS = ("clean", "cloudskulk", "vmi_subversion", "dedup_spy")

#: Ground truth per attack: the verdict a probe *should* raise.  Used
#: only for the report's human summary — scoring counts any flagged
#: verdict, so a probe that catches an attack through an unexpected
#: signal still gets credit.
EXPECTED_SIGNAL = {
    "cloudskulk": "nested",
    "vmi_subversion": "subverted",
    "dedup_spy": "spying",
}


class ScoreReport:
    """Deterministic probe×attack matrix (ChaosReport style)."""

    def __init__(self, seed, probe_names, attacks, fleet_params):
        self.seed = seed
        self.probe_names = list(probe_names)
        self.attacks = list(attacks)
        self.fleet_params = dict(fleet_params)
        #: One dict per (attack, probe) cell, attack-major order.
        self.cells = []
        #: One dict per individual probe run (the audit trail).
        self.ledger = []
        #: attack -> {"attacked": [...], "tenants_probed": [...], ...}
        self.attack_meta = {}

    def cell(self, attack, probe):
        for entry in self.cells:
            if entry["attack"] == attack and entry["probe"] == probe:
                return entry
        raise KeyError(f"no cell for attack={attack!r} probe={probe!r}")

    def as_dict(self):
        return {
            "seed": self.seed,
            "probes": list(self.probe_names),
            "attacks": list(self.attacks),
            "fleet": {
                key: value
                for key, value in sorted(self.fleet_params.items())
            },
            "attack_meta": {
                attack: dict(sorted(meta.items()))
                for attack, meta in sorted(self.attack_meta.items())
            },
            "cells": [dict(sorted(cell.items())) for cell in self.cells],
            "ledger_rows": len(self.ledger),
        }

    def to_json(self):
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def summary(self):
        lines = [
            f"probe score matrix: seed={self.seed} "
            f"probes={len(self.probe_names)} attacks={len(self.attacks)} "
            f"ledger={len(self.ledger)} rows"
        ]
        for attack in self.attacks:
            meta = self.attack_meta[attack]
            lines.append(
                f"  attack={attack:<15} attacked={len(meta['attacked'])} "
                f"tenants={len(meta['tenants_probed'])} "
                f"window={meta['window_seconds']:.1f}s"
            )
            for probe in self.probe_names:
                cell = self.cell(attack, probe)
                recall = (
                    "   -"
                    if cell["recall"] is None
                    else f"{cell['recall']:.2f}"
                )
                latency = (
                    "      -"
                    if cell["mean_latency_seconds"] is None
                    else f"{cell['mean_latency_seconds']:6.1f}s"
                )
                lines.append(
                    f"    {probe:<16} recall={recall} "
                    f"fp={cell['false_positives']}/{cell['clean_tenants']} "
                    f"latency={latency} "
                    f"cost={cell['probe_seconds']:.1f}s "
                    f"share={cell['overhead_share']:.2f}"
                )
        return "\n".join(lines)


class _LegDigest:
    """Replica-divergence digest for one sharded score leg.

    The shard runner hashes each replica's ``summary()`` at the fin
    barrier; the monitor's deterministic report summaries are exactly
    the surface the leg's cells derive from.
    """

    def __init__(self, monitor):
        self.monitor = monitor

    def summary(self):
        return "\n".join(
            report.summary() for report in self.monitor.reports
        )


class ScoreMatrix:
    """Runs the full probe×attack grid off one warmed fleet.

    The default fleet shape is the 4x12 detection-recall scenario every
    existing pin uses (seed 42, 12 tenants on 4 hosts, fleet budget
    file_pages=12 / wait_seconds=10), so the CloudSkulk column is
    directly comparable to the plain
    :func:`~repro.cloud.fleet.run_fleet` campaign recall.
    """

    def __init__(
        self,
        seed=42,
        hosts=4,
        tenants=12,
        churn_operations=6,
        rebalance_moves=1,
        overcommit=1.0,
        settle_seconds=0.0,
        probes=None,
        attacks=ATTACKS,
        campaigns=1,
        sweeps=1,
        sweeps_per_hour=2.0,
        max_concurrent_probes=2,
        file_pages=12,
        wait_seconds=10.0,
        spy_lead_in_seconds=150.0,
        spy_payload=b"exfiltrate-keys!",
        shards=1,
    ):
        from repro.probes.base import registered_probes

        if probes is None:
            probes = tuple(registered_probes())
        self.probes = resolve_probes(probes)
        self.attacks = tuple(attacks)
        for attack in self.attacks:
            if attack not in ATTACKS:
                raise ReproError(
                    f"unknown attack {attack!r}; known: {', '.join(ATTACKS)}"
                )
        if len(set(self.attacks)) != len(self.attacks):
            raise ReproError("attack listed twice")
        self.seed = seed
        self.warm_params = dict(
            hosts=hosts,
            tenants=tenants,
            seed=seed,
            churn_operations=churn_operations,
            rebalance_moves=rebalance_moves,
            overcommit=overcommit,
            settle_seconds=settle_seconds,
        )
        self.campaigns = campaigns
        self.sweeps = sweeps
        self.sweeps_per_hour = sweeps_per_hour
        self.max_concurrent_probes = max_concurrent_probes
        self.file_pages = file_pages
        self.wait_seconds = wait_seconds
        self.spy_lead_in_seconds = spy_lead_in_seconds
        self.spy_payload = spy_payload
        if shards is None:
            shards = 1
        if shards < 1:
            raise ReproError(f"--shards must be >= 1, got {shards}")
        #: Worker-process count for each leg's sweep phase
        #: (:mod:`repro.cloud.sharding`); 1 = serial, and the report is
        #: byte-identical either way.
        self.shards = shards

    # -- attack legs ------------------------------------------------------

    def _build_monitor(self, datacenter):
        return FleetMonitor(
            datacenter,
            sweeps_per_hour=self.sweeps_per_hour,
            max_concurrent_probes=self.max_concurrent_probes,
            file_pages=self.file_pages,
            wait_seconds=self.wait_seconds,
            probes=self.probes,
        )

    def _eligible(self, datacenter):
        """Depth-1 running tenants, the attack target pool."""
        return [
            tenant
            for tenant in datacenter.running_tenants()
            if tenant.guest is not None and tenant.guest.depth == 1
        ]

    def _drive(self, datacenter, monitor, control_factory, name):
        """Run one leg's control — serial, or sharded across workers.

        The sharded path replicates the control plane per worker and
        ghosts non-owned hosts' sweeps (:mod:`repro.cloud.sharding`);
        the per-replica digest over the monitor's report summaries
        catches any replica divergence at the fin barrier.
        """
        engine = datacenter.engine
        if self.shards > 1:
            from repro.cloud.sharding import run_control_sharded

            run_control_sharded(
                datacenter,
                control_factory,
                lambda: _LegDigest(monitor),
                self.shards,
                name=name,
            )
        else:
            engine.run(engine.process(control_factory(), name=name))

    def _run_leg(self, attack, root):
        """Run one attack leg on a (forked or live) warm fleet root.

        Returns (monitor, truth) where ``truth`` maps attacked tenant
        name -> attack installation virtual time.
        """
        datacenter = root[0]
        engine = datacenter.engine
        monitor = self._build_monitor(datacenter)
        truth = {}

        def sweep_control():
            result = yield monitor.run_periodic(max_sweeps=self.sweeps)
            return result

        if attack == "clean":
            if self.shards > 1:
                self._drive(datacenter, monitor, sweep_control, "score-clean")
            else:
                engine.run(monitor.run_periodic(max_sweeps=self.sweeps))

        elif attack == "cloudskulk":
            campaign = AttackCampaign(datacenter, count=self.campaigns)

            def control():
                yield from campaign.run()
                yield monitor.run_periodic(max_sweeps=self.sweeps)

            self._drive(datacenter, monitor, control, "score-cloudskulk")
            truth = {
                event.tenant_name: event.installed_at
                for event in campaign.events
            }

        elif attack == "vmi_subversion":
            rng = datacenter.rng.stream("probes.vmi_subversion")
            pool = self._eligible(datacenter)
            if not pool:
                raise ReproError("no eligible tenant to subvert")
            target = pool[rng.randrange(len(pool))]
            alive = sorted(
                (proc.pid, proc.name, proc.user)
                for proc in target.guest.kernel.table.processes()
                if proc.alive
            )
            # The attacker hides one process from the VMI view — the
            # classic DKSM motivation.
            hidden = alive[rng.randrange(len(alive))]
            forge_process_view(
                target.guest, [entry for entry in alive if entry != hidden]
            )
            truth = {target.name: engine.now}
            if self.shards > 1:
                self._drive(
                    datacenter, monitor, sweep_control, "score-vmi"
                )
            else:
                engine.run(monitor.run_periodic(max_sweeps=self.sweeps))

        elif attack == "dedup_spy":
            rng = datacenter.rng.stream("probes.dedup_spy")
            by_host = {}
            for tenant in self._eligible(datacenter):
                by_host.setdefault(tenant.host.name, []).append(tenant)
            pairs = sorted(
                host for host, group in by_host.items() if len(group) >= 2
            )
            if not pairs:
                raise ReproError("no co-resident tenant pair for the channel")
            group = by_host[pairs[rng.randrange(len(pairs))]]
            sender, receiver = group[0], group[1]
            channel = DedupCovertChannel(
                sender.guest, receiver.guest, seed="score-spy"
            )
            started = engine.now
            truth = {sender.name: started, receiver.name: started}

            def spy_loop():
                # Keep the channel busy for the whole leg; the monitor
                # process below bounds the run, not this one.
                while True:
                    yield from channel.transmit(
                        self.spy_payload, settle_seconds=6.0
                    )

            engine.process(spy_loop(), name="score-spy-channel")

            def control():
                # ksmd needs a couple of full-scan cycles before the
                # channel's plants start merging; sweep steady state.
                yield engine.timeout(self.spy_lead_in_seconds)
                yield monitor.run_periodic(max_sweeps=self.sweeps)

            self._drive(datacenter, monitor, control, "score-dedup-spy")

        else:  # pragma: no cover - guarded in __init__
            raise ReproError(f"unknown attack {attack!r}")

        return monitor, truth

    # -- scoring ----------------------------------------------------------

    def _ledger_rows(self, attack, monitor):
        """Flatten every probe run of a leg into ledger rows.

        Synthetic findings (crashed hosts carry no per-probe verdicts)
        expand to one ``unreachable`` row per scheduled probe so row
        totals always conserve: rows == tenants_probed × probes per
        sweep.
        """
        rows = []
        for report in monitor.reports:
            for host_name in sorted(report.host_reports):
                host_report = report.host_reports[host_name]
                for finding in sorted(
                    host_report.findings, key=lambda f: f.tenant_name
                ):
                    if finding.probe_verdicts:
                        verdicts = finding.probe_verdicts.values()
                        for verdict in verdicts:
                            rows.append(
                                {
                                    "attack": attack,
                                    "sweep_id": report.sweep_id,
                                    "host": host_name,
                                    "tenant": finding.tenant_name,
                                    "probe": verdict.probe,
                                    "verdict": verdict.verdict,
                                    "flagged": verdict.flagged,
                                    "finished_at": verdict.finished_at,
                                    "duration": verdict.duration,
                                }
                            )
                    else:
                        for probe in self.probes:
                            rows.append(
                                {
                                    "attack": attack,
                                    "sweep_id": report.sweep_id,
                                    "host": host_name,
                                    "tenant": finding.tenant_name,
                                    "probe": probe.name,
                                    "verdict": "unreachable",
                                    "flagged": False,
                                    "finished_at": report.finished_at,
                                    "duration": 0.0,
                                }
                            )
        return rows

    @staticmethod
    def score_cells(attack, probe_names, rows, truth, window_seconds):
        """Derive the (attack, probe) cells from ledger rows alone.

        Pure and static so the property suite can re-derive cells from
        a report's ledger and diff against the published ones.
        """
        total_probe_seconds = math.fsum(row["duration"] for row in rows)
        cells = []
        for probe_name in probe_names:
            mine = [row for row in rows if row["probe"] == probe_name]
            tenants = sorted({row["tenant"] for row in mine})
            first_flagged = {}
            for row in mine:  # rows are in sweep order
                if row["flagged"]:
                    first_flagged.setdefault(row["tenant"], row)
            attacked = sorted(truth)
            true_positives = sorted(
                name for name in first_flagged if name in truth
            )
            false_positives = sorted(
                name for name in first_flagged if name not in truth
            )
            clean_tenants = [name for name in tenants if name not in truth]
            latencies = [
                first_flagged[name]["finished_at"] - truth[name]
                for name in true_positives
            ]
            probe_seconds = math.fsum(row["duration"] for row in mine)
            cells.append(
                {
                    "attack": attack,
                    "probe": probe_name,
                    "expected_signal": EXPECTED_SIGNAL.get(attack),
                    "tenants_probed": len(tenants),
                    "attacked": len(attacked),
                    "true_positives": len(true_positives),
                    "recall": (
                        len(true_positives) / len(attacked)
                        if attacked
                        else None
                    ),
                    "false_positives": len(false_positives),
                    "clean_tenants": len(clean_tenants),
                    "fp_rate": (
                        len(false_positives) / len(clean_tenants)
                        if clean_tenants
                        else 0.0
                    ),
                    "mean_latency_seconds": (
                        math.fsum(latencies) / len(latencies)
                        if latencies
                        else None
                    ),
                    "probe_seconds": probe_seconds,
                    "overhead_share": (
                        probe_seconds / total_probe_seconds
                        if total_probe_seconds
                        else 0.0
                    ),
                    "window_seconds": window_seconds,
                }
            )
        return cells

    def run(self):
        """Run every leg; returns the ScoreReport."""
        probe_names = [probe.name for probe in self.probes]
        report = ScoreReport(
            self.seed, probe_names, self.attacks, self.warm_params
        )
        fleet = warm_fleet(
            capture=len(self.attacks) > 1, **self.warm_params
        )
        for attack in self.attacks:
            if fleet.snapshot is None:
                root = (
                    fleet.datacenter,
                    fleet.placer,
                    fleet.churn,
                    fleet.orchestrator,
                )
                monitor, truth = self._run_leg(attack, root)
                rows, meta = self._collect(attack, root, monitor, truth)
            else:
                fork = fleet.snapshot.fork()
                try:
                    monitor, truth = self._run_leg(attack, fork.root)
                    rows, meta = self._collect(
                        attack, fork.root, monitor, truth
                    )
                finally:
                    fork.dispose()
            report.ledger.extend(rows)
            report.attack_meta[attack] = meta
            report.cells.extend(
                self.score_cells(
                    attack, probe_names, rows, truth, meta["window_seconds"]
                )
            )
        return report

    def _collect(self, attack, root, monitor, truth):
        rows = self._ledger_rows(attack, monitor)
        if not monitor.reports:
            raise ReproError(f"attack leg {attack!r} produced no sweeps")
        started = monitor.reports[0].started_at
        finished = monitor.reports[-1].finished_at
        meta = {
            "attacked": sorted(truth),
            # name -> install virtual time, as sorted pairs: with the
            # ledger this is everything needed to re-derive the cells.
            "attacked_at": [[name, truth[name]] for name in sorted(truth)],
            "tenants_probed": sorted({row["tenant"] for row in rows}),
            "sweeps": len(monitor.reports),
            "window_seconds": finished - started,
            "alerts": [
                [tenant, host, at] for tenant, host, at in monitor.alerts
            ],
        }
        return rows, meta
