"""The paper's Table I: VM-escape CVEs per hypervisor, 2015-2020.

Transcribed verbatim from the paper; the benchmark regenerating Table I
queries this dataset and asserts the published totals (VMware 29,
VirtualBox 15, Xen 15, Hyper-V 14, KVM/QEMU 23).
"""

HYPERVISORS = ("VMware", "VirtualBox", "Xen", "Hyper-V", "KVM/QEMU")
YEARS = (2015, 2016, 2017, 2018, 2019, 2020)


class CveRecord:
    """One VM-escape CVE."""

    __slots__ = ("cve_id", "year", "hypervisor")

    def __init__(self, cve_id, hypervisor):
        self.cve_id = cve_id
        self.year = int(cve_id.split("-")[1])
        self.hypervisor = hypervisor

    def __repr__(self):
        return f"<CveRecord {self.cve_id} ({self.hypervisor})>"


_RAW = {
    "VMware": [
        "CVE-2015-2336", "CVE-2015-2337", "CVE-2015-2338", "CVE-2015-2339",
        "CVE-2015-2340",
        "CVE-2016-7082", "CVE-2016-7083", "CVE-2016-7084", "CVE-2016-7461",
        "CVE-2017-4903", "CVE-2017-4934", "CVE-2017-4936",
        "CVE-2018-6981", "CVE-2018-6982",
        "CVE-2019-0964", "CVE-2019-5049", "CVE-2019-5124", "CVE-2019-5146",
        "CVE-2019-5147",
        "CVE-2020-3962", "CVE-2020-3963", "CVE-2020-3964", "CVE-2020-3965",
        "CVE-2020-3966", "CVE-2020-3967", "CVE-2020-3968", "CVE-2020-3969",
        "CVE-2020-3970", "CVE-2020-3971",
    ],
    "VirtualBox": [
        "CVE-2017-3538",
        "CVE-2018-2676", "CVE-2018-2685", "CVE-2018-2686", "CVE-2018-2687",
        "CVE-2018-2688", "CVE-2018-2689", "CVE-2018-2690", "CVE-2018-2693",
        "CVE-2018-2694", "CVE-2018-2698", "CVE-2018-2844",
        "CVE-2019-2723", "CVE-2019-3028",
        "CVE-2020-2929",
    ],
    "Xen": [
        "CVE-2015-7835",
        "CVE-2016-6258", "CVE-2016-7092",
        "CVE-2017-8903", "CVE-2017-8904", "CVE-2017-8905", "CVE-2017-10920",
        "CVE-2017-10921", "CVE-2017-17566",
        "CVE-2019-18420", "CVE-2019-18421", "CVE-2019-18422",
        "CVE-2019-18423", "CVE-2019-18424", "CVE-2019-18425",
    ],
    "Hyper-V": [
        "CVE-2015-2361", "CVE-2015-2362",
        "CVE-2016-0088",
        "CVE-2017-0075", "CVE-2017-0109", "CVE-2017-8664",
        "CVE-2018-8439", "CVE-2018-8489", "CVE-2018-8490",
        "CVE-2019-0620", "CVE-2019-0709", "CVE-2019-0722", "CVE-2019-0887",
        "CVE-2020-0910",
    ],
    "KVM/QEMU": [
        "CVE-2015-3209", "CVE-2015-3456", "CVE-2015-5165", "CVE-2015-7504",
        "CVE-2015-5154",
        "CVE-2016-3710", "CVE-2016-4440", "CVE-2016-9603",
        "CVE-2017-2615", "CVE-2017-2620", "CVE-2017-2630", "CVE-2017-5931",
        "CVE-2017-5667", "CVE-2017-14167",
        "CVE-2018-7550", "CVE-2018-16847",
        "CVE-2019-6778", "CVE-2019-7221", "CVE-2019-14835",
        "CVE-2019-14378", "CVE-2019-18389",
        "CVE-2020-1711", "CVE-2020-14364",
    ],
}

CVE_DATABASE = [
    CveRecord(cve_id, hypervisor)
    for hypervisor, ids in _RAW.items()
    for cve_id in ids
]


def cves_by_hypervisor(hypervisor):
    """All escape CVEs recorded for one hypervisor."""
    return [r for r in CVE_DATABASE if r.hypervisor == hypervisor]


def cves_by_year(year):
    """All escape CVEs recorded for one year."""
    return [r for r in CVE_DATABASE if r.year == year]


def table1_matrix():
    """The Table I count matrix: {year: {hypervisor: count}} + totals."""
    matrix = {
        year: {hv: 0 for hv in HYPERVISORS} for year in YEARS
    }
    for record in CVE_DATABASE:
        matrix[record.year][record.hypervisor] += 1
    totals = {
        hv: sum(matrix[year][hv] for year in YEARS) for hv in HYPERVISORS
    }
    return matrix, totals
