"""Embedded datasets (the paper's Table I CVE survey)."""

from repro.data.cve import (
    CVE_DATABASE,
    CveRecord,
    cves_by_hypervisor,
    cves_by_year,
    table1_matrix,
)

__all__ = [
    "CVE_DATABASE",
    "CveRecord",
    "cves_by_hypervisor",
    "cves_by_year",
    "table1_matrix",
]
