"""Tenant lifecycle: specs, VM launch, and a seeded churn generator.

A :class:`Tenant` is the control plane's record of one customer VM —
its spec, the host it currently runs on, the QemuVm serving it (which
changes across live migrations and CloudSkulk installations), and the
attacker's mirror when the tenant is compromised.

:class:`TenantChurn` is the arrival process: seeded create/resize/stop/
delete operations with exponential inter-arrival times, each create
starting a real :mod:`repro.workloads` generator inside the tenant's
guest — so fleet memory pressure, dirty rates, and CPU contention all
emerge from the same cost model the single-host experiments use.
"""

from repro.errors import CloudError, HypervisorError, PlacementError
from repro.qemu.config import DriveSpec, MonitorSpec, NicSpec, QemuConfig
from repro.qemu.qemu_img import host_images, qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads import (
    FilebenchWorkload,
    IdleWorkload,
    KernelCompileWorkload,
)

#: Flavor catalogue: (memory_mb, vcpus).
FLAVORS = ((512, 1), (1024, 1), (2048, 2))
#: Image profiles (what KSM can merge across co-resident tenants).
IMAGE_PROFILES = ("lamp", "batch", "cache")
#: Workload mix; weights keep the fleet mostly I/O + idle so large
#: simulations stay tractable.
WORKLOADS = ("idle", "filebench", "kernel-compile")
WORKLOAD_WEIGHTS = (5, 4, 1)


class TenantSpec:
    """What the customer asked for."""

    def __init__(
        self,
        name,
        memory_mb=1024,
        vcpus=1,
        image_profile="lamp",
        workload="idle",
        anti_affinity_group=None,
    ):
        self.name = name
        self.memory_mb = memory_mb
        self.vcpus = vcpus
        self.image_profile = image_profile
        self.workload = workload
        self.anti_affinity_group = anti_affinity_group

    def __repr__(self):
        return (
            f"<TenantSpec {self.name} {self.memory_mb}MB "
            f"{self.image_profile}/{self.workload}>"
        )


def sample_spec(name, rng, anti_affinity_group=None):
    """Draw a deterministic spec from the fleet's tenant stream."""
    memory_mb, vcpus = rng.choice(FLAVORS)
    return TenantSpec(
        name,
        memory_mb=memory_mb,
        vcpus=vcpus,
        image_profile=rng.choice(IMAGE_PROFILES),
        workload=rng.choices(WORKLOADS, weights=WORKLOAD_WEIGHTS)[0],
        anti_affinity_group=anti_affinity_group,
    )


class _GuestLocator:
    """Callable resolving a tenant's current guest System.

    A class rather than a lambda so engine snapshots rebind it to the
    copied tenant through the copy memo (closures are atomic to
    :mod:`copy` and would keep answering with the parent's guest).
    """

    __slots__ = ("tenant",)

    def __init__(self, tenant):
        self.tenant = tenant

    def __call__(self):
        return self.tenant.guest


class Tenant:
    """One customer VM as the control plane tracks it."""

    def __init__(self, spec, host):
        self.spec = spec
        self.host = host
        self.vm = None
        # -> running | stopped | deleted, plus the fault-injection
        # outcomes: degraded (crashed host / interrupted post-copy
        # fill) and failed (provisioning died with the host).
        self.state = "provisioning"
        self.workload = None
        self.workload_process = None
        self.created_at = None
        #: Attacker state, set by the campaign layer: the RITM's
        #: impersonation mirror watching the vendor channel, and when
        #: the install finished (ground truth for detection latency).
        self.mirror = None
        self.compromised_at = None

    @property
    def name(self):
        return self.spec.name

    @property
    def guest(self):
        """The System currently answering at the tenant's endpoint.

        Tracks the VM across migrations and CloudSkulk installations:
        ``None`` while a handoff is in flight or after deletion — the
        monitoring sweep records such tenants as unreachable.
        """
        if self.vm is None:
            return None
        return self.vm.guest

    def locator(self):
        """A victim locator callable for CloudInterface registration."""
        return _GuestLocator(self)

    @property
    def compromised(self):
        return self.compromised_at is not None

    def __repr__(self):
        host = self.host.name if self.host else "-"
        return f"<Tenant {self.name}@{host} {self.state}>"


def tenant_config(tenant, host):
    """The QemuConfig for launching ``tenant`` on ``host``."""
    ssh_port, monitor_port, _incoming = host.next_port_block()
    return QemuConfig(
        name=tenant.name,
        memory_mb=tenant.spec.memory_mb,
        smp=tenant.spec.vcpus,
        drives=[DriveSpec(f"/var/lib/images/{tenant.name}.qcow2")],
        nics=[NicSpec("net0", hostfwds=[("tcp", ssh_port, 22)])],
        monitor=MonitorSpec(port=monitor_port),
    )


def make_workload(spec):
    """Instantiate the spec's workload with fleet-scale-bounded cost."""
    if spec.workload == "idle":
        return IdleWorkload(), {"duration": 60.0}
    if spec.workload == "filebench":
        return FilebenchWorkload(), {"ops": 150}
    if spec.workload == "kernel-compile":
        return KernelCompileWorkload(units=6), {}
    raise CloudError(f"unknown workload {spec.workload!r}")


class TenantChurn:
    """Seeded tenant arrival/departure processes for one datacenter."""

    def __init__(
        self,
        datacenter,
        placer,
        mean_interarrival_s=2.0,
        anti_affinity_every=8,
    ):
        self.datacenter = datacenter
        self.placer = placer
        self.mean_interarrival_s = mean_interarrival_s
        self.anti_affinity_every = anti_affinity_every
        self.rng = datacenter.rng.stream("cloud.tenants")
        self.arrival_rng = datacenter.rng.stream("cloud.churn")
        self.created = 0
        self.events = []  # (virtual_time, op, tenant_name)

    # -- primitives ---------------------------------------------------------

    def provision(self, spec):
        """Generator: place, boot (host if needed), launch, start work."""
        dc = self.datacenter
        host = self.placer.place(spec)
        yield from dc.ensure_up(host)
        tenant = Tenant(spec, host)
        dc.register_tenant(tenant)
        config = tenant_config(tenant, host)
        if not host_images(host.system).exists(config.drives[0].path):
            qemu_img_create(host.system, config.drives[0].path, 20.0)
        try:
            vm, boot = launch_vm(host.system, config)
        except HypervisorError:
            # The host crashed between placement and launch (fault
            # injection): fail the request cleanly instead of leaving a
            # half-registered tenant behind.
            tenant.state = "failed"
            dc.forget_tenant(tenant)
            self.events.append((dc.engine.now, "fail", tenant.name))
            raise
        tenant.vm = vm
        yield boot
        if vm.guest is not None:
            vm.guest.net_node.listen(22)
        tenant.workload, kwargs = make_workload(spec)
        tenant.workload_process = tenant.workload.start(vm.guest, **kwargs)
        tenant.state = "running"
        tenant.created_at = dc.engine.now
        self.events.append((dc.engine.now, "create", tenant.name))
        return tenant

    def stop(self, tenant):
        """Stop the VM in place (capacity stays committed)."""
        if tenant.state != "running":
            raise CloudError(f"cannot stop tenant in state {tenant.state!r}")
        if tenant.workload is not None:
            tenant.workload.stop()
        tenant.vm.pause()
        tenant.state = "stopped"
        self.events.append((self.datacenter.engine.now, "stop", tenant.name))

    def delete(self, tenant):
        """Tear the tenant down and release its capacity."""
        if tenant.workload is not None:
            tenant.workload.stop()
        if tenant.vm is not None:
            tenant.vm.resume()  # wake pace-blocked workload so it can exit
            tenant.vm.quit()
        tenant.vm = None
        tenant.state = "deleted"
        self.datacenter.forget_tenant(tenant)
        self.events.append((self.datacenter.engine.now, "delete", tenant.name))

    def resize(self, tenant, memory_mb):
        """Generator: stop, re-place at the new size, relaunch."""
        self.delete(tenant)
        spec = tenant.spec
        spec.memory_mb = memory_mb
        yield from self.provision(spec)
        self.events.append((self.datacenter.engine.now, "resize", spec.name))

    # -- arrival processes --------------------------------------------------

    def _next_spec(self):
        index = self.created
        self.created += 1
        group = None
        if self.anti_affinity_every and index % self.anti_affinity_every == 1:
            group = f"ha{index // self.anti_affinity_every}"
        return sample_spec(f"t{index:03d}", self.rng, anti_affinity_group=group)

    def bring_up(self, count):
        """Generator: provision ``count`` tenants back to back."""
        tenants = []
        for _ in range(count):
            delay = self.arrival_rng.expovariate(
                1.0 / self.mean_interarrival_s
            )
            yield self.datacenter.engine.timeout(delay)
            tenants.append((yield from self.provision(self._next_spec())))
        return tenants

    def run(self, operations):
        """Generator: a seeded mixed churn sequence.

        Compromised tenants are never churned away — the campaign
        installed state must survive until the sweep measures it.
        """
        rng = self.arrival_rng
        for _ in range(operations):
            delay = rng.expovariate(1.0 / self.mean_interarrival_s)
            yield self.datacenter.engine.timeout(delay)
            op = rng.choices(
                ("create", "stop", "delete", "resize"), weights=(4, 2, 2, 2)
            )[0]
            victims = [
                t
                for t in self.datacenter.running_tenants()
                if not t.compromised
            ]
            if op == "create" or not victims:
                spec = self._next_spec()
                try:
                    yield from self.provision(spec)
                except PlacementError:
                    # A full fleet rejects the request; churn goes on.
                    self.events.append(
                        (self.datacenter.engine.now, "reject", spec.name)
                    )
            elif op == "stop":
                self.stop(rng.choice(victims))
            elif op == "delete":
                self.delete(rng.choice(victims))
            else:
                tenant = rng.choice(victims)
                memory_mb, _ = rng.choice(FLAVORS)
                try:
                    yield from self.resize(tenant, memory_mb)
                except PlacementError:
                    self.events.append(
                        (self.datacenter.engine.now, "reject", tenant.name)
                    )
