"""Attack-campaign injection: CloudSkulk against sampled tenants.

The ground-truth generator for fleet detection experiments: pick
tenants with a seeded stream, run the full four-step RITM installation
against each (recon from shell history, GuestX launch, nested
destination, live-migrate the victim in, scrub), and record *when* each
install completed.  The fleet monitor's alerts are then scored against
this record — recall (campaigns detected / campaigns installed) and
detection latency (first alert minus install time) are the paper's
operational detection metrics lifted to fleet scale.

One campaign per host: the RITM choreography uses fixed host-side
ports (the paper's AAAA/BBBB convention plus the GuestX monitor), so a
second install on the same host would collide exactly as two real
CloudSkulk instances would.
"""

from repro.core.rootkit.installer import CloudSkulkInstaller
from repro.core.rootkit.stealth import ImpersonationMirror
from repro.errors import CloudError


class CampaignEvent:
    """One CloudSkulk installation, as ground truth knows it."""

    def __init__(self, tenant_name, host_name):
        self.tenant_name = tenant_name
        self.host_name = host_name
        self.installed_at = None
        self.install_report = None
        self.detected_at = None

    @property
    def detected(self):
        return self.detected_at is not None

    @property
    def detection_latency(self):
        if self.detected_at is None or self.installed_at is None:
            return None
        return self.detected_at - self.installed_at

    def __repr__(self):
        state = "detected" if self.detected else "undetected"
        return f"<CampaignEvent {self.tenant_name}@{self.host_name} {state}>"


class AttackCampaign:
    """Installs CloudSkulk on sampled tenants; keeps ground truth."""

    def __init__(
        self,
        datacenter,
        count=1,
        migration_mode="precopy",
        migration_capabilities=(),
        stream=None,
    ):
        self.datacenter = datacenter
        self.count = count
        self.migration_mode = migration_mode
        #: Wire capabilities set on the victim's monitor before the
        #: install migration (e.g. ``("dedup",)`` — the scenario
        #: matrix's migration-capability axis).
        self.migration_capabilities = tuple(migration_capabilities or ())
        #: ``stream`` names the registry stream the target sampler
        #: draws from.  Branches forked off one warmed fleet pass a
        #: distinct name per branch ("cloud.campaign#3") to diverge the
        #: attack without re-seeding anything else.
        self.rng = datacenter.rng.stream(stream or "cloud.campaign")
        self.events = []

    def _sample_targets(self):
        """Seeded pick of ≤count tenants, at most one per host."""
        compromised_hosts = {
            event.host_name for event in self.events
        }
        by_host = {}
        for tenant in self.datacenter.running_tenants():
            host = tenant.host
            if (
                tenant.compromised
                or host is None
                or host.state != "up"
                or host.name in compromised_hosts
            ):
                continue
            by_host.setdefault(host.name, []).append(tenant)
        targets = []
        host_names = sorted(by_host)
        self.rng.shuffle(host_names)
        for host_name in host_names[: self.count - len(self.events)]:
            candidates = sorted(by_host[host_name], key=lambda t: t.name)
            targets.append(self.rng.choice(candidates))
        return sorted(targets, key=lambda t: t.name)

    def run(self):
        """Generator: install CloudSkulk on each sampled tenant.

        Returns the list of :class:`CampaignEvent`.  Raises CloudError
        when no eligible tenant exists at all (a fleet with zero
        running tenants can't host an experiment).
        """
        engine = self.datacenter.engine
        shard = self.datacenter.shard
        targets = self._sample_targets()
        if not targets and not self.events:
            raise CloudError("attack campaign: no eligible tenants")
        for tenant in targets:
            host = tenant.host
            event = CampaignEvent(tenant.name, host.name)
            if shard is not None and not shard.owns(host.name):
                # Another shard owns the victim's host: wait for its
                # completion message (the ghost resumes us at the exact
                # virtual time the owner finished, and re-raises the
                # owner's failure class if the install blew up).
                from repro.cloud.sharding import GhostVm

                yield shard.remote(("install", tenant.name), host.name)
                event.installed_at = engine.now
                tenant.vm = GhostVm()
                tenant.compromised_at = engine.now
                tenant.mirror = None
                self.events.append(event)
                continue
            installer = CloudSkulkInstaller(
                host.system,
                guestx_name=f"gx-{tenant.name}",
                guestx_image=f"/var/lib/images/gx-{tenant.name}.qcow2",
                nested_image=f"/srv/images/nested-{tenant.name}.qcow2",
            )
            if shard is not None:
                shard.begin(("install", tenant.name))
            try:
                report = yield from installer.install(
                    target_name=tenant.name,
                    migration_mode=self.migration_mode,
                    migration_capabilities=self.migration_capabilities,
                )
            except BaseException as exc:
                if shard is not None:
                    shard.complete_error(("install", tenant.name), exc)
                raise
            if shard is not None:
                shard.complete(("install", tenant.name))
            event.install_report = report
            event.installed_at = engine.now
            # The control plane's record now points at the nested VM —
            # exactly the paper's stealth property: the public endpoint
            # still answers, so the tenant looks healthy.
            tenant.vm = report.nested_vm
            tenant.compromised_at = engine.now
            tenant.mirror = ImpersonationMirror(report.guestx_vm.guest)
            self.events.append(event)
        return self.events

    def score(self, alerts):
        """Fold the fleet monitor's alerts into the ground truth.

        ``alerts`` is the monitor's ``(tenant, host, time)`` list; each
        campaign event gets its first-detection time.  Returns
        ``(recall, latencies)``.
        """
        first_alert = {}
        for tenant_name, _host_name, at in alerts:
            first_alert.setdefault(tenant_name, at)
        detected = 0
        latencies = []
        for event in self.events:
            at = first_alert.get(event.tenant_name)
            if at is None:
                continue
            event.detected_at = at
            detected += 1
            latencies.append(event.detection_latency)
        recall = detected / len(self.events) if self.events else 0.0
        return recall, latencies
