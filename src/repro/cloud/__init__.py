"""repro.cloud — a simulated multi-host cloud control plane.

Scales the paper's single-host testbed to a datacenter: racks of
heterogeneous hosts share one discrete-event engine, a bin-packing
scheduler places churning tenants, live migrations cross the switch
fabric, and fleet-wide monitoring sweeps hunt injected CloudSkulk
campaigns under a detection budget.
"""

from repro.cloud.campaign import AttackCampaign, CampaignEvent
from repro.cloud.datacenter import Datacenter
from repro.cloud.fleet import FleetRunResult, WarmFleet, run_fleet, warm_fleet
from repro.cloud.fleet_monitor import FleetMonitor, FleetReport
from repro.cloud.inventory import Host, HostSpec, heterogeneous_specs
from repro.cloud.migration_orchestrator import (
    MigrationOrchestrator,
    MigrationRecord,
)
from repro.cloud.placement import BinPackingPlacer, PlacementDecision
from repro.cloud.tenants import Tenant, TenantChurn, TenantSpec

__all__ = [
    "AttackCampaign",
    "BinPackingPlacer",
    "CampaignEvent",
    "Datacenter",
    "FleetMonitor",
    "FleetReport",
    "FleetRunResult",
    "Host",
    "HostSpec",
    "MigrationOrchestrator",
    "MigrationRecord",
    "PlacementDecision",
    "Tenant",
    "TenantChurn",
    "TenantSpec",
    "WarmFleet",
    "heterogeneous_specs",
    "run_fleet",
    "warm_fleet",
]
