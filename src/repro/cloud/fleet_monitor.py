"""Fleet-wide CloudSkulk sweeps under a detection budget.

:class:`~repro.core.detection.service.MonitoringService` sweeps one
host; the fleet monitor fans it across the datacenter.  The operator's
knobs form a *detection budget*:

* ``sweeps_per_hour`` — how often the whole fleet is re-checked (the
  dominant term in detection latency: a rootkit installed just after a
  sweep hides until the next one);
* ``max_concurrent_probes`` — how many hosts may run the dedup
  protocol at once.  Each probe costs real guest-visible time (KSM
  settle waits, page-fault storms on the timing measurements), so
  operators cap the blast radius; the sweep then proceeds in waves.

Each fleet sweep rebuilds the per-host services from the control
plane's current tenant placement — registrations follow migrations and
deletions automatically, and any attacker mirror attached to a tenant
re-registers on the vendor channel exactly as the RITM would.
"""

from repro.core.detection.service import (
    HostSweepReport,
    MonitoringService,
    TenantFinding,
)

#: Small File-A keeps an 8-host fleet sweep tractable; the single-host
#: experiments use the paper's 100 pages.
FLEET_FILE_PAGES = 25
FLEET_WAIT_SECONDS = 20.0


class FleetReport:
    """Aggregate outcome of one fleet-wide sweep."""

    def __init__(self, sweep_id):
        self.sweep_id = sweep_id
        self.started_at = None
        self.finished_at = None
        #: host name -> HostSweepReport, insertion-ordered by host name.
        self.host_reports = {}

    def _collect(self, attribute):
        pairs = []
        for host_name in sorted(self.host_reports):
            for tenant in getattr(self.host_reports[host_name], attribute):
                pairs.append((tenant, host_name))
        return sorted(pairs)

    @property
    def compromised(self):
        """Sorted (tenant_name, host_name) pairs flagged nested."""
        return self._collect("compromised_tenants")

    @property
    def inconclusive(self):
        return self._collect("inconclusive_tenants")

    @property
    def unreachable(self):
        return self._collect("unreachable_tenants")

    @property
    def tenants_probed(self):
        return sum(len(r.findings) for r in self.host_reports.values())

    def summary(self):
        """Deterministic text summary (byte-identical across same-seed
        runs — the fleet determinism test diffs exactly this)."""
        lines = [
            f"fleet sweep {self.sweep_id}: hosts={len(self.host_reports)} "
            f"tenants={self.tenants_probed} "
            f"compromised={len(self.compromised)} "
            f"inconclusive={len(self.inconclusive)} "
            f"unreachable={len(self.unreachable)} "
            f"elapsed={self.finished_at - self.started_at:.3f}s"
        ]
        for host_name in sorted(self.host_reports):
            report = self.host_reports[host_name]
            for finding in sorted(report.findings, key=lambda f: f.tenant_name):
                lines.append(
                    f"  {host_name} {finding.tenant_name:<12} {finding.verdict}"
                )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<FleetReport sweep={self.sweep_id} "
            f"hosts={len(self.host_reports)} "
            f"compromised={len(self.compromised)}>"
        )


class FleetMonitor:
    """Schedules MonitoringService sweeps across every up host."""

    def __init__(
        self,
        datacenter,
        sweeps_per_hour=2.0,
        max_concurrent_probes=2,
        file_pages=FLEET_FILE_PAGES,
        wait_seconds=FLEET_WAIT_SECONDS,
        probes=None,
    ):
        if sweeps_per_hour <= 0:
            raise ValueError("sweeps_per_hour must be positive")
        if max_concurrent_probes < 1:
            raise ValueError("max_concurrent_probes must be >= 1")
        self.datacenter = datacenter
        self.sweeps_per_hour = sweeps_per_hour
        self.max_concurrent_probes = max_concurrent_probes
        self.file_pages = file_pages
        self.wait_seconds = wait_seconds
        #: Probe-catalog subset every host service schedules (see
        #: :mod:`repro.probes`); None keeps the KSM-timing default.
        self.probes = probes
        self.reports = []
        #: (tenant_name, host_name, virtual_time) per first detection.
        self.alerts = []
        self._alerted = set()

    @property
    def sweep_interval_s(self):
        return 3600.0 / self.sweeps_per_hour

    def _build_host_services(self):
        """One MonitoringService per up host with tenants, rebuilt from
        the placement of record (so migrations re-home probes)."""
        services = []
        faults = self.datacenter.engine.faults
        for host in self.datacenter.up_hosts:
            occupants = {
                name: tenant
                for name, tenant in host.tenants.items()
                if tenant.vm is not None
            }
            if not occupants:
                continue
            service = MonitoringService(
                host.system,
                file_pages=self.file_pages,
                wait_seconds=self.wait_seconds,
                probes=self.probes,
            )
            for name in sorted(occupants):
                tenant = occupants[name]
                locator = tenant.locator()
                if faults is not None:
                    # Probe-timeout injection: a blocked tenant's
                    # locator answers None, which the detector reports
                    # as an unreachable verdict rather than an error.
                    locator = faults.wrap_locator(name, locator)
                interface = service.register_tenant(name, locator)
                if tenant.mirror is not None:
                    # The RITM watches the vendor channel (stealth layer);
                    # without this hookup the detector's job would be
                    # trivial and the experiment meaningless.
                    interface.observers.append(tenant.mirror)
            services.append((host.name, service))
        return services

    def sweep_fleet(self, sweep_id=0):
        """Generator: one fleet-wide sweep in concurrency-capped waves.

        Returns the :class:`FleetReport`.
        """
        engine = self.datacenter.engine
        tracer = engine.tracer
        shard = self.datacenter.shard
        if shard is not None:
            from repro.cloud.sharding import slim_sweep_report
        report = FleetReport(sweep_id)
        report.started_at = engine.now
        services = self._build_host_services()
        for start in range(0, len(services), self.max_concurrent_probes):
            wave = services[start : start + self.max_concurrent_probes]
            wave_started = engine.now
            processes = []
            for host_name, service in wave:
                if shard is None or shard.owns(host_name):
                    process = engine.process(
                        service.sweep(sweep_id=sweep_id),
                        name=f"fleet-sweep:{host_name}",
                    )
                    if shard is not None:
                        # Peers merge the slimmed report at this exact
                        # virtual completion time.
                        shard.publish(
                            ("sweep", sweep_id, host_name),
                            process,
                            transform=slim_sweep_report,
                        )
                    processes.append(process)
                else:
                    processes.append(
                        shard.remote(("sweep", sweep_id, host_name), host_name)
                    )
            results = yield engine.all_of(processes)
            for (host_name, _service), host_report in zip(wave, results):
                report.host_reports[host_name] = host_report
            if tracer.enabled:
                tracer.complete(
                    "fleet.sweep_wave",
                    "cloud",
                    wave_started,
                    track="fleet",
                    args={
                        "sweep_id": sweep_id,
                        "hosts": [host_name for host_name, _ in wave],
                    },
                )
        faults = engine.faults
        if faults is not None:
            for host in faults.crashed_hosts():
                if host.name in report.host_reports:
                    continue
                occupants = sorted(
                    name
                    for name, tenant in host.tenants.items()
                    if tenant.vm is not None
                )
                if not occupants:
                    continue
                report.host_reports[host.name] = self._unreachable_report(
                    host.name, occupants, engine.now
                )
        report.finished_at = engine.now
        self.reports.append(report)
        engine.perf.fleet_sweeps += 1
        self._record_alerts(report)
        if tracer.enabled:
            tracer.complete(
                "fleet.sweep",
                "cloud",
                report.started_at,
                track="fleet",
                args={
                    "sweep_id": sweep_id,
                    "hosts": len(report.host_reports),
                    "tenants_probed": report.tenants_probed,
                    "compromised": len(report.compromised),
                },
            )
            tracer.metrics.counter("fleet.sweeps").inc()
            tracer.metrics.counter("fleet.compromised_verdicts").inc(
                len(report.compromised)
            )
        return report

    @staticmethod
    def _unreachable_report(host_name, tenant_names, now):
        """A synthetic sweep report for a crashed host.

        The monitor cannot run the dedup protocol against a host that
        fell off the fabric, but losing the host must not silently drop
        its tenants from the fleet report — every occupant is recorded
        with an ``unreachable`` verdict instead.
        """
        report = HostSweepReport(host_name)
        report.started_at = now
        report.finished_at = now
        for name in tenant_names:
            finding = TenantFinding(name)
            finding.verdict = "unreachable"
            report.findings.append(finding)
        return report

    def _record_alerts(self, report):
        engine = self.datacenter.engine
        for tenant_name, host_name in report.compromised:
            engine.perf.fleet_detections += 1
            if tenant_name in self._alerted:
                continue
            self._alerted.add(tenant_name)
            self.alerts.append((tenant_name, host_name, engine.now))

    def run_periodic(self, max_sweeps, alert_callback=None):
        """Start periodic fleet sweeping; returns the engine Process.

        Bounded (``max_sweeps``) because per-host KSM daemons keep the
        event queue alive forever — fleet runs are driven to a horizon,
        never to quiescence.
        """

        def _loop():
            last = None
            for sweep_id in range(max_sweeps):
                report = yield from self.sweep_fleet(sweep_id=sweep_id)
                if report.compromised and alert_callback is not None:
                    alert_callback(report)
                last = report
                if sweep_id + 1 < max_sweeps:
                    yield self.datacenter.engine.timeout(self.sweep_interval_s)
            return last

        return self.datacenter.engine.process(_loop(), name="fleet-monitor")
