"""The datacenter: shared engine, switch fabric, host fleet, tenant registry.

One :class:`Datacenter` owns the single discrete-event engine every host
machine runs on, the top-of-rack switch node that inter-host traffic
(live migration streams) crosses, and the authoritative tenant registry
the placement, churn, monitoring, and campaign layers all consult.

Determinism: the datacenter derives every stochastic stream — per-host
machine seeds, churn arrivals, campaign sampling, retry-backoff jitter —
from its one root seed through :class:`~repro.sim.rng.RngRegistry`, so
two fleets built with the same seed replay byte-identically.
"""

from repro.cloud.inventory import Host, heterogeneous_specs
from repro.errors import CloudError
from repro.net.stack import Link, NetworkNode
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

#: Datacenter fabric: 10GbE with ~50us port-to-port latency.
FABRIC_BANDWIDTH_BPS = 10e9
FABRIC_LATENCY_S = 5e-5
#: Deterministic spacing between per-host machine seeds (keeps every
#: host's RngRegistry streams disjoint from its neighbours').
HOST_SEED_STRIDE = 7919


class Datacenter:
    """The fleet substrate every cloud-layer component hangs off."""

    def __init__(
        self,
        specs=None,
        hosts=4,
        seed=1701,
        engine=None,
        overcommit=1.0,
        ksm_pages_to_scan=1250,
    ):
        self.seed = int(seed)
        self.engine = engine if engine is not None else Engine()
        self.rng = RngRegistry(self.seed)
        self.overcommit = overcommit
        self.ksm_pages_to_scan = ksm_pages_to_scan
        self.switch = NetworkNode(self.engine, "dc-switch")
        if specs is None:
            specs = heterogeneous_specs(hosts)
        self.hosts = {}
        for index, spec in enumerate(specs):
            if spec.name in self.hosts:
                raise CloudError(f"duplicate host name {spec.name!r}")
            self.hosts[spec.name] = Host(
                spec, self, seed=self.seed + HOST_SEED_STRIDE * (index + 1)
            )
        #: tenant name -> Tenant, fleet-wide (a tenant lives on exactly
        #: one host at a time; migration moves the registry entry's host
        #: pointer, never the key).
        self.tenants = {}
        #: Shard context (:class:`repro.cloud.sharding.ShardContext`)
        #: when this replica is one worker of a sharded run, else None.
        #: Host-heavy seams (fleet sweeps, campaign installs) check this
        #: one attribute to decide owner-vs-ghost execution.
        self.shard = None

    # -- hosts -------------------------------------------------------------

    def host(self, name):
        try:
            return self.hosts[name]
        except KeyError:
            raise CloudError(f"no such host {name!r}") from None

    @property
    def up_hosts(self):
        return [h for h in self.hosts.values() if h.state == "up"]

    def ensure_up(self, host):
        """Generator: bring ``host`` (a Host or name) up if needed."""
        if isinstance(host, str):
            host = self.host(host)
        if host.state != "up":
            yield from host.bring_up()
        return host

    def crash_host(self, name):
        """Fault-injection convenience: hard-crash one up host."""
        return self.host(name).crash()

    def recover_host(self, name):
        """Fault-injection convenience: restore one crashed host."""
        return self.host(name).recover()

    def attach(self, host):
        """Wire a freshly booted host's NIC into the switch fabric."""
        return Link(
            self.switch,
            host.system.net_node,
            bandwidth_bps=FABRIC_BANDWIDTH_BPS,
            latency_s=FABRIC_LATENCY_S,
            name=f"uplink:{host.name}",
        )

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, tenant):
        if tenant.name in self.tenants:
            raise CloudError(f"tenant {tenant.name!r} already registered")
        self.tenants[tenant.name] = tenant
        tenant.host.tenants[tenant.name] = tenant

    def move_tenant(self, tenant, new_host):
        """Re-home the registry entry after a cross-host migration."""
        old = tenant.host
        if old is not None:
            old.tenants.pop(tenant.name, None)
        tenant.host = new_host
        new_host.tenants[tenant.name] = tenant

    def forget_tenant(self, tenant):
        self.tenants.pop(tenant.name, None)
        if tenant.host is not None:
            tenant.host.tenants.pop(tenant.name, None)

    def running_tenants(self):
        """Running tenants in deterministic (name) order."""
        return [
            self.tenants[name]
            for name in sorted(self.tenants)
            if self.tenants[name].state == "running"
        ]

    def snapshot(self, *companions, label=None):
        """Freeze the whole datacenter (hosts, tenants, engine) for COW
        fan-out.

        Returns an :class:`~repro.sim.snapshot.EngineSnapshot` whose
        root is this datacenter — or, when ``companions`` are given
        (placer, churn, orchestrator, ...), the tuple ``(self,
        *companions)`` so drivers get their control-plane objects back
        from every fork alongside the datacenter itself.
        """
        root = (self, *companions) if companions else self
        return self.engine.snapshot(root, label=label)

    def inventory_lines(self):
        """Deterministic per-host status lines (``repro fleet status``)."""
        lines = []
        for name in sorted(self.hosts):
            host = self.hosts[name]
            tenant_names = ",".join(sorted(host.tenants)) or "-"
            lines.append(
                f"  {name}  {host.spec.rack}  {host.state:<8} "
                f"{host.committed_mb:>6}/{host.spec.memory_mb}MB  "
                f"tenants: {tenant_names}"
            )
        return lines

    def __repr__(self):
        up = len(self.up_hosts)
        return (
            f"<Datacenter hosts={len(self.hosts)} up={up} "
            f"tenants={len(self.tenants)} seed={self.seed}>"
        )
