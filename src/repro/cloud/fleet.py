"""End-to-end fleet experiment: churn, rebalance, attack, sweep, score.

This is the cloud-scale version of the paper's experiment loop.  One
seeded run:

1. provisions ``tenants`` VMs across ``hosts`` lazily-booted hosts
   (placement exercises packing, anti-affinity, and KSM co-location);
2. applies a churn tail (create/stop/delete/resize);
3. rebalances with real cross-host live migrations;
4. injects CloudSkulk campaigns against sampled tenants;
5. fleet-sweeps under the detection budget and scores recall and
   detection latency against ground truth.

Everything runs inside one control process on one engine; two runs with
the same parameters produce byte-identical summaries.
"""

from repro.cloud.campaign import AttackCampaign
from repro.cloud.datacenter import Datacenter
from repro.errors import (
    CloudError,
    HypervisorError,
    MigrationError,
    RootkitError,
)
from repro.cloud.fleet_monitor import (
    FLEET_FILE_PAGES,
    FLEET_WAIT_SECONDS,
    FleetMonitor,
)
from repro.cloud.migration_orchestrator import MigrationOrchestrator
from repro.cloud.placement import BinPackingPlacer
from repro.cloud.tenants import TenantChurn


class FleetRunResult:
    """Everything one fleet run produced, with a deterministic summary."""

    def __init__(
        self,
        datacenter,
        placer,
        churn,
        orchestrator,
        monitor,
        campaign,
        injector=None,
    ):
        self.datacenter = datacenter
        self.placer = placer
        self.churn = churn
        self.orchestrator = orchestrator
        self.monitor = monitor
        self.campaign = campaign
        #: The armed FaultInjector when the run was chaos-enabled.
        self.injector = injector
        self.recall = 0.0
        self.detection_latencies = []

    @property
    def tracer(self):
        """The fleet engine's tracer (fleet-wide trace + metrics)."""
        return self.datacenter.engine.tracer

    def write_trace(self, path, include_wall=False):
        """Export the fleet-wide Chrome/Perfetto trace to ``path``."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(
            path, tracers=[self.tracer], include_wall=include_wall
        )

    @property
    def detected_campaigns(self):
        return sum(1 for e in self.campaign.events if e.detected)

    def summary(self):
        dc = self.datacenter
        perf = dc.engine.perf
        lines = [
            f"fleet run: hosts={len(dc.hosts)} seed={dc.seed}",
            f"  virtual time     {dc.engine.now:.3f}s",
            f"  placements       {perf.cloud_placements}",
            f"  migrations       {perf.cloud_migrations}",
            f"  churn events     {len(self.churn.events)}",
            f"  tenants running  {len(dc.running_tenants())}",
            f"  fleet sweeps     {perf.fleet_sweeps}",
            f"  campaigns        {len(self.campaign.events)}",
            f"  detected         {self.detected_campaigns}"
            f" (recall {self.recall:.2f})",
        ]
        for event in self.campaign.events:
            latency = (
                f"{event.detection_latency:.3f}s"
                if event.detection_latency is not None
                else "n/a"
            )
            lines.append(
                f"  campaign         {event.tenant_name}@{event.host_name} "
                f"installed={event.installed_at:.3f}s latency={latency}"
            )
        for host_line in dc.inventory_lines():
            lines.append(f"  {host_line}")
        for report in self.monitor.reports:
            lines.append(report.summary())
        return "\n".join(lines)


def run_fleet(
    hosts=8,
    tenants=64,
    seed=1701,
    churn_operations=24,
    rebalance_moves=2,
    campaigns=1,
    sweeps=1,
    sweeps_per_hour=2.0,
    max_concurrent_probes=2,
    file_pages=FLEET_FILE_PAGES,
    wait_seconds=FLEET_WAIT_SECONDS,
    migration_mode="precopy",
    overcommit=1.0,
    trace=False,
    trace_ring_capacity=None,
    faults=None,
):
    """Run one complete fleet experiment; returns a FleetRunResult.

    ``trace=True`` enables the fleet engine's tracer for the whole run
    (placements, churn-driven migrations, sweep waves, per-tenant
    probes); read it back via ``result.tracer`` or export with
    ``result.write_trace(path)``.  ``trace_ring_capacity`` bounds the
    event buffer for long runs (oldest events drop, counted).

    ``faults`` takes a :class:`~repro.faults.plan.FaultPlan`; the plan
    is armed on the fleet engine before the control process starts, and
    control-plane failures the injected faults provoke (exhausted
    migration retries, campaigns with no reachable target) degrade the
    run instead of raising.  An empty plan leaves the run byte-identical
    to ``faults=None``.
    """
    datacenter = Datacenter(hosts=hosts, seed=seed, overcommit=overcommit)
    if trace:
        datacenter.engine.tracer.enable(ring_capacity=trace_ring_capacity)
    injector = None
    if faults is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(datacenter, faults).arm()
    placer = BinPackingPlacer(datacenter)
    churn = TenantChurn(datacenter, placer)
    orchestrator = MigrationOrchestrator(datacenter)
    monitor = FleetMonitor(
        datacenter,
        sweeps_per_hour=sweeps_per_hour,
        max_concurrent_probes=max_concurrent_probes,
        file_pages=file_pages,
        wait_seconds=wait_seconds,
    )
    campaign = AttackCampaign(
        datacenter, count=campaigns, migration_mode=migration_mode
    )

    #: Errors a chaos-enabled run absorbs: the injected faults are
    #: *supposed* to break control-plane steps — including the
    #: attacker's own CloudSkulk install migration — and the report
    #: scores what survived.  Fault-free runs keep the errors loud.
    survivable = (CloudError, HypervisorError, MigrationError, RootkitError)

    def control():
        try:
            yield from churn.bring_up(tenants)
        except survivable:
            if injector is None:
                raise
        try:
            yield from churn.run(churn_operations)
        except survivable:
            if injector is None:
                raise
        if rebalance_moves:
            try:
                yield from orchestrator.rebalance(placer, moves=rebalance_moves)
            except survivable:
                if injector is None:
                    raise
        if campaigns:
            try:
                yield from campaign.run()
            except survivable:
                if injector is None:
                    raise
        if sweeps:
            yield monitor.run_periodic(max_sweeps=sweeps)

    engine = datacenter.engine
    engine.run(engine.process(control(), name="fleet-control"))
    result = FleetRunResult(
        datacenter, placer, churn, orchestrator, monitor, campaign,
        injector=injector,
    )
    result.recall, result.detection_latencies = campaign.score(monitor.alerts)
    return result
