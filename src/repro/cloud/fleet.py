"""End-to-end fleet experiment: churn, rebalance, attack, sweep, score.

This is the cloud-scale version of the paper's experiment loop.  One
seeded run:

1. provisions ``tenants`` VMs across ``hosts`` lazily-booted hosts
   (placement exercises packing, anti-affinity, and KSM co-location);
2. applies a churn tail (create/stop/delete/resize);
3. rebalances with real cross-host live migrations;
4. injects CloudSkulk campaigns against sampled tenants;
5. fleet-sweeps under the detection budget and scores recall and
   detection latency against ground truth.

Everything runs inside one control process on one engine; two runs with
the same parameters produce byte-identical summaries.
"""

from repro.cloud.campaign import AttackCampaign
from repro.cloud.datacenter import Datacenter
from repro.errors import (
    CloudError,
    HypervisorError,
    MigrationError,
    RootkitError,
)
from repro.cloud.fleet_monitor import (
    FLEET_FILE_PAGES,
    FLEET_WAIT_SECONDS,
    FleetMonitor,
)
from repro.cloud.migration_orchestrator import MigrationOrchestrator
from repro.cloud.placement import BinPackingPlacer
from repro.cloud.tenants import TenantChurn

#: Errors a chaos-enabled run absorbs: the injected faults are
#: *supposed* to break control-plane steps — including the attacker's
#: own CloudSkulk install migration — and the report scores what
#: survived.  Fault-free runs keep the errors loud.
SURVIVABLE_ERRORS = (CloudError, HypervisorError, MigrationError, RootkitError)


class FleetRunResult:
    """Everything one fleet run produced, with a deterministic summary."""

    def __init__(
        self,
        datacenter,
        placer,
        churn,
        orchestrator,
        monitor,
        campaign,
        injector=None,
    ):
        self.datacenter = datacenter
        self.placer = placer
        self.churn = churn
        self.orchestrator = orchestrator
        self.monitor = monitor
        self.campaign = campaign
        #: The armed FaultInjector when the run was chaos-enabled.
        self.injector = injector
        self.recall = 0.0
        self.detection_latencies = []
        #: Shard-0 protocol counters when the branch ran sharded
        #: (:mod:`repro.cloud.sharding`), else None.
        self.shard_stats = None

    @property
    def tracer(self):
        """The fleet engine's tracer (fleet-wide trace + metrics)."""
        return self.datacenter.engine.tracer

    def write_trace(self, path, include_wall=False):
        """Export the fleet-wide Chrome/Perfetto trace to ``path``."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(
            path, tracers=[self.tracer], include_wall=include_wall
        )

    def probe_metrics(self, since_seconds=0.0):
        """Per-tenant detector probe time (the Fig 5/6 overhead axis).

        Reads the ``detect.probe_seconds`` counters the monitoring
        service records per tenant (tracer must be enabled during the
        run), relative to the virtual window since ``since_seconds`` —
        pass the warm-up's ``engine.now`` to scope a forked branch.
        ``math.fsum`` keeps the total exact and order-independent, so
        it equals the scenario's total detector virtual time.
        """
        import math

        engine = self.datacenter.engine
        window = engine.now - since_seconds
        probe_seconds = {}
        for label_key, value in self.tracer.metrics.values(
            "detect.probe_seconds"
        ):
            tenant = dict(label_key).get("tenant", "unknown")
            probe_seconds[tenant] = probe_seconds.get(tenant, 0.0) + value
        total = math.fsum(probe_seconds.values())
        return {
            "window_virtual_seconds": window,
            "probe_seconds": probe_seconds,
            "probe_seconds_total": total,
            "probe_overhead_pct": (
                100.0 * total / window if window > 0 else 0.0
            ),
        }

    @property
    def detected_campaigns(self):
        return sum(1 for e in self.campaign.events if e.detected)

    def summary(self):
        dc = self.datacenter
        perf = dc.engine.perf
        lines = [
            f"fleet run: hosts={len(dc.hosts)} seed={dc.seed}",
            f"  virtual time     {dc.engine.now:.3f}s",
            f"  placements       {perf.cloud_placements}",
            f"  migrations       {perf.cloud_migrations}",
            f"  churn events     {len(self.churn.events)}",
            f"  tenants running  {len(dc.running_tenants())}",
            f"  fleet sweeps     {perf.fleet_sweeps}",
            f"  campaigns        {len(self.campaign.events)}",
            f"  detected         {self.detected_campaigns}"
            f" (recall {self.recall:.2f})",
        ]
        for event in self.campaign.events:
            latency = (
                f"{event.detection_latency:.3f}s"
                if event.detection_latency is not None
                else "n/a"
            )
            lines.append(
                f"  campaign         {event.tenant_name}@{event.host_name} "
                f"installed={event.installed_at:.3f}s latency={latency}"
            )
        for host_line in dc.inventory_lines():
            lines.append(f"  {host_line}")
        for report in self.monitor.reports:
            lines.append(report.summary())
        return "\n".join(lines)


def _run_branch(
    datacenter,
    placer,
    churn,
    orchestrator,
    faults=None,
    campaigns=1,
    sweeps=1,
    sweeps_per_hour=2.0,
    max_concurrent_probes=2,
    file_pages=FLEET_FILE_PAGES,
    wait_seconds=FLEET_WAIT_SECONDS,
    migration_mode="precopy",
    migration_capabilities=(),
    campaign_stream=None,
    probes=None,
    shards=1,
    injector=None,
):
    """The divergent suffix of a fleet experiment: attack, sweep, score.

    Runs against an already-warmed datacenter — either one forked off an
    :class:`~repro.sim.snapshot.EngineSnapshot` or a live fleet that
    just finished its warm-up.  ``faults`` arms a FaultPlan with the
    current virtual time as base, so plans written against t=0 play out
    relative to the branch point.  Returns a scored
    :class:`FleetRunResult`.

    ``shards > 1`` runs this branch sharded across worker processes
    (:mod:`repro.cloud.sharding`): hosts partition rack-aligned, each
    worker simulates only its own hosts, and cross-shard sweep/install
    completions synchronize over pipes.  Same-seed results are
    fingerprint-identical to the serial path; ``shards=1`` *is* the
    serial path.  ``injector`` passes a pre-armed FaultInjector (the
    cold ``run_fleet`` arms at t=0, before its warm phase) instead of
    arming ``faults`` here.
    """
    engine = datacenter.engine
    if injector is None and faults is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(datacenter, faults).arm(base=engine.now)
    monitor = FleetMonitor(
        datacenter,
        sweeps_per_hour=sweeps_per_hour,
        max_concurrent_probes=max_concurrent_probes,
        file_pages=file_pages,
        wait_seconds=wait_seconds,
        probes=probes,
    )
    campaign = AttackCampaign(
        datacenter,
        count=campaigns,
        migration_mode=migration_mode,
        migration_capabilities=migration_capabilities,
        stream=campaign_stream,
    )

    def control():
        if campaigns:
            try:
                yield from campaign.run()
            except SURVIVABLE_ERRORS:
                if injector is None:
                    raise
        if sweeps:
            yield monitor.run_periodic(max_sweeps=sweeps)

    def finish():
        result = FleetRunResult(
            datacenter, placer, churn, orchestrator, monitor, campaign,
            injector=injector,
        )
        result.recall, result.detection_latencies = campaign.score(
            monitor.alerts
        )
        return result

    if shards > 1:
        from repro.cloud.sharding import run_control_sharded

        result, shard_stats = run_control_sharded(
            datacenter, control, finish, shards, name="fleet-branch"
        )
        result.shard_stats = shard_stats
        return result

    engine.run(engine.process(control(), name="fleet-branch"))
    return finish()


class WarmFleet:
    """A fleet that has paid its warm-up prefix once, ready to fan out.

    Produced by :func:`warm_fleet`.  When captured (the default), every
    :meth:`branch` call forks the snapshot into an independent engine —
    guest pages shared copy-on-write — runs the divergent suffix there,
    and disposes the fork's page references afterwards.  When built
    with ``capture=False`` the single live fleet *is* the branch
    substrate: exactly one branch may run (this is the cold comparator
    the determinism tests and benchmarks diff forked branches against).
    """

    def __init__(self, datacenter, placer, churn, orchestrator, snapshot=None):
        self.datacenter = datacenter
        self.placer = placer
        self.churn = churn
        self.orchestrator = orchestrator
        #: The EngineSnapshot, or None for a live (single-branch) fleet.
        self.snapshot = snapshot
        self._spent = False

    @property
    def engine(self):
        return self.datacenter.engine

    def branch(self, **branch_params):
        """Run one divergent branch; returns a scored FleetRunResult.

        Accepts the branch-phase keywords of :func:`_run_branch`:
        ``faults``, ``campaigns``, ``sweeps``, ``sweeps_per_hour``,
        ``max_concurrent_probes``, ``file_pages``, ``wait_seconds``,
        ``migration_mode``, ``migration_capabilities``,
        ``campaign_stream``, ``probes``, ``shards``.
        """
        if self.snapshot is None:
            from repro.sim.snapshot import SnapshotError

            if self._spent:
                raise SnapshotError(
                    "live (uncaptured) warm fleet supports exactly one "
                    "branch; build with capture=True to fan out"
                )
            self._spent = True
            return _run_branch(
                self.datacenter, self.placer, self.churn, self.orchestrator,
                **branch_params,
            )
        fork = self.snapshot.fork()
        try:
            datacenter, placer, churn, orchestrator = fork.root
            return _run_branch(
                datacenter, placer, churn, orchestrator, **branch_params
            )
        finally:
            fork.dispose()

    def fan_out(self, branch_specs):
        """Run one branch per spec dict, serially, with GC kept off the
        warm baseline (see :func:`~repro.sim.snapshot.heap_frozen`).
        Returns the list of FleetRunResults in spec order."""
        import gc

        from repro.sim.snapshot import heap_frozen

        results = []
        with heap_frozen():
            for spec in branch_specs:
                results.append(self.branch(**spec))
                # Each disposed branch is pure garbage; collecting it
                # immediately keeps N-branch loops at flat memory.
                gc.collect()
        return results

    def fan_out_faults(self, plans, **branch_params):
        """One branch per :class:`FaultPlan` (``None`` = fault-free)."""
        return self.fan_out(
            [dict(branch_params, faults=plan) for plan in plans]
        )

    def fan_out_detector_configs(self, configs, **branch_params):
        """One branch per detector budget, e.g. ``{"file_pages": 25,
        "wait_seconds": 20.0}`` — the paper's probe-budget sweep without
        re-warming the fleet per configuration."""
        return self.fan_out(
            [dict(branch_params, **config) for config in configs]
        )

    def fan_out_seeds(self, count, **branch_params):
        """``count`` branches differing only in the attack campaign's
        RNG stream — same fleet, independent attacker draws."""
        return self.fan_out(
            [
                dict(branch_params, campaign_stream=f"cloud.campaign#{index}")
                for index in range(count)
            ]
        )

    def dispose(self):
        """Release the snapshot's page-store references."""
        if self.snapshot is not None:
            self.snapshot.dispose()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.dispose()
        return False

    def __repr__(self):
        mode = "live" if self.snapshot is None else repr(self.snapshot)
        return (
            f"<WarmFleet hosts={len(self.datacenter.hosts)} "
            f"seed={self.datacenter.seed} {mode}>"
        )


def warm_fleet(
    hosts=8,
    tenants=64,
    seed=1701,
    churn_operations=24,
    rebalance_moves=2,
    overcommit=1.0,
    settle_seconds=0.0,
    capture=True,
    trace=False,
    trace_ring_capacity=None,
    label=None,
):
    """Pay the warm-up prefix once; returns a :class:`WarmFleet`.

    Runs the fault-free shared prefix of every fleet experiment —
    provision ``tenants`` across ``hosts``, apply the churn tail,
    rebalance — then optionally idles ``settle_seconds`` of virtual
    time so KSM converges, and (unless ``capture=False``) snapshots the
    whole world for copy-on-write fan-out.
    """
    datacenter = Datacenter(hosts=hosts, seed=seed, overcommit=overcommit)
    if trace:
        datacenter.engine.tracer.enable(ring_capacity=trace_ring_capacity)
    placer = BinPackingPlacer(datacenter)
    churn = TenantChurn(datacenter, placer)
    orchestrator = MigrationOrchestrator(datacenter)

    def control():
        yield from churn.bring_up(tenants)
        yield from churn.run(churn_operations)
        if rebalance_moves:
            yield from orchestrator.rebalance(placer, moves=rebalance_moves)

    engine = datacenter.engine
    engine.run(engine.process(control(), name="fleet-warm"))
    if settle_seconds:
        engine.run(until=engine.now + settle_seconds)
    snapshot = None
    if capture:
        if label is None:
            label = f"fleet-{hosts}x{tenants}-s{seed}"
        snapshot = datacenter.snapshot(
            placer, churn, orchestrator, label=label
        )
    return WarmFleet(datacenter, placer, churn, orchestrator, snapshot)


def run_fleet(
    hosts=8,
    tenants=64,
    seed=1701,
    churn_operations=24,
    rebalance_moves=2,
    campaigns=1,
    sweeps=1,
    sweeps_per_hour=2.0,
    max_concurrent_probes=2,
    file_pages=FLEET_FILE_PAGES,
    wait_seconds=FLEET_WAIT_SECONDS,
    migration_mode="precopy",
    migration_capabilities=(),
    probes=None,
    overcommit=1.0,
    trace=False,
    trace_ring_capacity=None,
    faults=None,
    from_snapshot=None,
    shards=1,
):
    """Run one complete fleet experiment; returns a FleetRunResult.

    ``shards > 1`` splits the attack/sweep phase across worker
    processes with rack-aligned host ownership and conservative
    virtual-time sync (:mod:`repro.cloud.sharding`); the warm-up runs
    serially first (its cross-host migrations need the whole fabric in
    one engine), and results stay fingerprint-identical to
    ``shards=1``.

    ``trace=True`` enables the fleet engine's tracer for the whole run
    (placements, churn-driven migrations, sweep waves, per-tenant
    probes); read it back via ``result.tracer`` or export with
    ``result.write_trace(path)``.  ``trace_ring_capacity`` bounds the
    event buffer for long runs (oldest events drop, counted).

    ``faults`` takes a :class:`~repro.faults.plan.FaultPlan`; the plan
    is armed on the fleet engine before the control process starts, and
    control-plane failures the injected faults provoke (exhausted
    migration retries, campaigns with no reachable target) degrade the
    run instead of raising.  An empty plan leaves the run byte-identical
    to ``faults=None``.

    ``from_snapshot`` skips the warm-up entirely: pass a
    :class:`WarmFleet` (or the :class:`~repro.sim.snapshot.
    EngineSnapshot` a :func:`warm_fleet` captured) and only the
    branch phase runs, on a fork of the warmed state.  The warm-phase
    parameters (``hosts``/``tenants``/``seed``/``churn_operations``/
    ``rebalance_moves``/``overcommit``/``trace``) were fixed at capture
    time and are ignored; ``faults`` arm relative to the fork point.
    """
    if from_snapshot is not None:
        branch_params = dict(
            faults=faults,
            campaigns=campaigns,
            sweeps=sweeps,
            sweeps_per_hour=sweeps_per_hour,
            max_concurrent_probes=max_concurrent_probes,
            file_pages=file_pages,
            wait_seconds=wait_seconds,
            migration_mode=migration_mode,
            migration_capabilities=migration_capabilities,
            probes=probes,
            shards=shards,
        )
        if isinstance(from_snapshot, WarmFleet):
            return from_snapshot.branch(**branch_params)
        fork = from_snapshot.fork()
        try:
            root = fork.root
            if not (isinstance(root, tuple) and len(root) == 4):
                raise CloudError(
                    "from_snapshot needs a warm_fleet() capture whose root "
                    "is (datacenter, placer, churn, orchestrator); got "
                    f"{type(root).__name__}"
                )
            return _run_branch(*root, **branch_params)
        finally:
            fork.dispose()

    datacenter = Datacenter(hosts=hosts, seed=seed, overcommit=overcommit)
    if trace:
        datacenter.engine.tracer.enable(ring_capacity=trace_ring_capacity)
    injector = None
    if faults is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(datacenter, faults).arm()
    placer = BinPackingPlacer(datacenter)
    churn = TenantChurn(datacenter, placer)
    orchestrator = MigrationOrchestrator(datacenter)
    if shards > 1:
        # Warm serially (cross-host migrations need one engine over the
        # whole fabric), then run the attack/sweep suffix sharded.  The
        # injector stays armed against t=0 exactly as the cold path
        # below arms it.
        def warm_control():
            try:
                yield from churn.bring_up(tenants)
            except SURVIVABLE_ERRORS:
                if injector is None:
                    raise
            try:
                yield from churn.run(churn_operations)
            except SURVIVABLE_ERRORS:
                if injector is None:
                    raise
            if rebalance_moves:
                try:
                    yield from orchestrator.rebalance(
                        placer, moves=rebalance_moves
                    )
                except SURVIVABLE_ERRORS:
                    if injector is None:
                        raise

        engine = datacenter.engine
        engine.run(engine.process(warm_control(), name="fleet-warm"))
        return _run_branch(
            datacenter, placer, churn, orchestrator,
            campaigns=campaigns,
            sweeps=sweeps,
            sweeps_per_hour=sweeps_per_hour,
            max_concurrent_probes=max_concurrent_probes,
            file_pages=file_pages,
            wait_seconds=wait_seconds,
            migration_mode=migration_mode,
            migration_capabilities=migration_capabilities,
            probes=probes,
            shards=shards,
            injector=injector,
        )
    monitor = FleetMonitor(
        datacenter,
        sweeps_per_hour=sweeps_per_hour,
        max_concurrent_probes=max_concurrent_probes,
        file_pages=file_pages,
        wait_seconds=wait_seconds,
        probes=probes,
    )
    campaign = AttackCampaign(
        datacenter,
        count=campaigns,
        migration_mode=migration_mode,
        migration_capabilities=migration_capabilities,
    )

    def control():
        try:
            yield from churn.bring_up(tenants)
        except SURVIVABLE_ERRORS:
            if injector is None:
                raise
        try:
            yield from churn.run(churn_operations)
        except SURVIVABLE_ERRORS:
            if injector is None:
                raise
        if rebalance_moves:
            try:
                yield from orchestrator.rebalance(placer, moves=rebalance_moves)
            except SURVIVABLE_ERRORS:
                if injector is None:
                    raise
        if campaigns:
            try:
                yield from campaign.run()
            except SURVIVABLE_ERRORS:
                if injector is None:
                    raise
        if sweeps:
            yield monitor.run_periodic(max_sweeps=sweeps)

    engine = datacenter.engine
    engine.run(engine.process(control(), name="fleet-control"))
    result = FleetRunResult(
        datacenter, placer, churn, orchestrator, monitor, campaign,
        injector=injector,
    )
    result.recall, result.detection_latencies = campaign.score(monitor.alerts)
    return result
