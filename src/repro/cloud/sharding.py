"""Sharded execution of a fleet control phase across worker processes.

:func:`run_control_sharded` is the one entry point: it takes a warmed
:class:`~repro.cloud.datacenter.Datacenter` plus a control-generator
factory, forks ``shards - 1`` workers (``os.fork`` — live generators,
heaps and RNG streams carry over verbatim), and runs one *replica* of
the control plane in every process:

* every replica executes the identical control generator — churn
  records, campaign target sampling, sweep scheduling, fault arming
  all replay byte-for-byte because they draw from the same forked RNG
  streams at the same virtual times;
* each replica *simulates* only the hosts its shard owns
  (rack-aligned :class:`~repro.sim.shard.ShardPlan`): non-owned
  hosts' KSM daemons and tenant workloads are stopped right after the
  fork, so they generate no events;
* host-heavy operations (per-host monitoring sweeps, CloudSkulk
  installs) run on the owner only and their completions cross the
  mesh as timestamped messages; the other replicas wait on ghost
  events the shard governor fulfils at the recorded virtual time.

The runtime lookahead is pinned to ``0.0``: the channels sharded here
(sweep aggregation, campaign completion) are instantaneous in serial
semantics — control observes the completion at the exact virtual time
it happened — so any positive lookahead would let a replica's clock
pass a completion it had not seen yet.  Fabric-borne channels with a
real latency floor derive theirs from the uplink latency instead
(:meth:`~repro.sim.shard.ShardPlan.from_datacenter` records it as
``plan.lookahead``); the protocol-level tests exercise that path.

Every replica finishes by building the same result object and
exchanging a digest of its deterministic summary at the fin barrier —
a replica that diverged (a nondeterministic seam we missed) fails the
whole run loudly instead of silently desynchronizing.
"""

import os
import sys
import traceback

from multiprocessing import Pipe

from repro.core.detection.service import HostSweepReport, TenantFinding
from repro.probes.base import Verdict
from repro.sim.shard import ShardError, ShardPlan, ShardRuntime


class GhostVm:
    """Stand-in for a nested VM another shard installed.

    A replica that does not own the compromised tenant's host never
    builds the real nested VM; the control plane only needs an object
    that survives host crash/recover choreography (pause/resume) and
    churn teardown (quit) without touching simulated state.
    """

    __slots__ = ("status", "paused")

    #: Control-plane code reads ``vm.guest`` only through locators,
    #: which never run on a non-owned host's replica.
    guest = None

    def __init__(self):
        self.status = "running"
        self.paused = False

    def pause(self):
        self.paused = True

    def resume(self):
        self.paused = False

    def quit(self):
        self.status = "terminated"

    def __repr__(self):
        return f"<GhostVm {self.status}>"


class ShardContext:
    """What the cloud seams see on ``datacenter.shard`` in a worker.

    Bundles the partition (:class:`ShardPlan`) with this worker's mesh
    runtime; the monitoring and campaign seams ask ``owns(host)`` and
    then either run the real operation (publishing its completion) or
    wait on a ghost.
    """

    def __init__(self, plan, runtime):
        self.plan = plan
        self.runtime = runtime
        self.index = runtime.index
        self._owned = set(plan.groups[runtime.index])

    def owns(self, host_name):
        return host_name in self._owned

    def owner_of(self, host_name):
        return self.plan.owner_of(host_name)

    def publish(self, key, event, transform=None):
        return self.runtime.publish(key, event, transform=transform)

    def remote(self, key, host_name):
        return self.runtime.remote(key, self.plan.owner_of(host_name))

    def begin(self, key=None):
        self.runtime.begin(key)

    def complete(self, key, value=None):
        self.runtime.complete(key, value)

    def complete_error(self, key, exc):
        self.runtime.complete_error(key, exc)

    def __repr__(self):
        return f"<ShardContext shard={self.index} of {self.plan!r}>"


def slim_sweep_report(report):
    """The wire form of a :class:`HostSweepReport`.

    Keeps exactly what the fleet layers read from a sweep — verdicts,
    per-probe ledger entries, timestamps, the VMCS scan outcome — and
    drops the rich attachments (DetectionReport, probe targets) that
    reference simulated objects and only exist on the owner.
    """
    slim = HostSweepReport(report.host_name)
    slim.started_at = report.started_at
    slim.finished_at = report.finished_at
    slim.vmcs_scan = report.vmcs_scan
    for finding in report.findings:
        ghost = TenantFinding(finding.tenant_name)
        ghost.verdict = finding.verdict
        for name, verdict in finding.probe_verdicts.items():
            clone = Verdict(verdict.probe, verdict.verdict, verdict.details)
            clone.started_at = verdict.started_at
            clone.finished_at = verdict.finished_at
            ghost.probe_verdicts[name] = clone
        slim.findings.append(ghost)
    return slim


def _freeze_foreign_hosts(datacenter, plan, index):
    """Stop simulating hosts this shard does not own.

    The control plane keeps its full replicated view of every host;
    only the event *sources* — KSM scan daemons and tenant workloads —
    are stopped, so a non-owned host contributes no simulation work.
    Their already-scheduled wakeups fire once as no-ops.
    """
    owned = set(plan.groups[index])
    for host_name in sorted(datacenter.hosts):
        if host_name in owned:
            continue
        host = datacenter.hosts[host_name]
        if host.ksm is not None:
            host.ksm.stop()
        for tenant_name in sorted(host.tenants):
            tenant = host.tenants[tenant_name]
            if tenant.workload is not None:
                tenant.workload.stop()


def _worker_conns(pipes, index):
    """Keep this worker's connection per peer; close every other fd.

    Closing the far ends matters: a peer that dies then surfaces as
    EOF/BrokenPipe on the survivors instead of an indefinite hang.
    """
    conns = {}
    for (left, right), (left_conn, right_conn) in pipes.items():
        if index == left:
            conns[right] = left_conn
            right_conn.close()
        elif index == right:
            conns[left] = right_conn
            left_conn.close()
        else:
            left_conn.close()
            right_conn.close()
    return conns


def _run_replica(datacenter, plan, conns, index, control_factory, finish, name):
    """One shard's whole life: freeze, run, digest, barrier, merge."""
    engine = datacenter.engine
    runtime = ShardRuntime(engine, index, conns, lookahead=0.0)
    context = ShardContext(plan, runtime)
    _freeze_foreign_hosts(datacenter, plan, index)
    datacenter.shard = context
    engine.governor = runtime
    try:
        control = engine.process(control_factory(), name=name)
        # Seed the send cone: every cross-shard broadcast descends from
        # this process's wait graph (see ShardRuntime.taint).
        runtime.taint(control)
        engine.run(control)
        result = finish()
        digest = result.summary() if hasattr(result, "summary") else repr(result)
        if engine.tracer.enabled and index != 0:
            from repro.obs.shard_merge import collect_shard_events

            runtime.send_payload(
                collect_shard_events(
                    engine.tracer, plan.groups[index], datacenter.hosts
                )
            )
        fins = runtime.finish(
            digest,
            extra={
                "events_dispatched": engine.perf.events_dispatched,
                "heap_pushes": engine.perf.heap_pushes,
                "hosts": len(plan.groups[index]),
            },
        )
        if index == 0:
            diverged = sorted(
                shard for shard, other in fins.items() if other != digest
            )
            if diverged:
                raise ShardError(
                    f"replica divergence: shard(s) {diverged} produced a "
                    "different run summary than shard 0 — the control plane "
                    "consumed nondeterministic state somewhere"
                )
            if runtime._payloads:
                from repro.obs.shard_merge import merge_shard_events

                scope_owner = {}
                for host_name, host in datacenter.hosts.items():
                    owner = plan.owner_of(host_name)
                    for tenant_name in host.tenants:
                        scope_owner[tenant_name] = owner
                        scope_owner[f"gx-{tenant_name}"] = owner
                merge_shard_events(
                    engine.tracer,
                    runtime._payloads,
                    datacenter.hosts,
                    scope_owner=scope_owner,
                )
        return result, runtime.stats()
    except BaseException:
        runtime.announce_failure(traceback.format_exc())
        raise
    finally:
        engine.governor = None
        datacenter.shard = None


def run_control_sharded(
    datacenter, control_factory, finish, shards, name="fleet-branch"
):
    """Run one control phase sharded ``shards`` ways; returns
    ``(result, stats)`` from shard 0's replica.

    ``control_factory`` builds the control generator (called once per
    replica, after the fork); ``finish`` builds the result object from
    the post-run world (called once per replica — its deterministic
    ``summary()`` doubles as the cross-replica divergence digest).
    The caller handles ``shards == 1`` itself (this function always
    forks).
    """
    plan = ShardPlan.from_datacenter(datacenter, shards)
    if shards < 2:
        raise ShardError("run_control_sharded needs shards >= 2")
    pipes = {}
    for left in range(shards):
        for right in range(left + 1, shards):
            pipes[(left, right)] = Pipe(duplex=True)
    children = []
    try:
        for index in range(1, shards):
            sys.stdout.flush()
            sys.stderr.flush()
            pid = os.fork()
            if pid == 0:
                status = 1
                try:
                    conns = _worker_conns(pipes, index)
                    _run_replica(
                        datacenter, plan, conns, index, control_factory,
                        finish, name,
                    )
                    status = 0
                except BaseException:
                    traceback.print_exc()
                finally:
                    sys.stdout.flush()
                    sys.stderr.flush()
                    os._exit(status)
            children.append(pid)
        conns = _worker_conns(pipes, 0)
        result, stats = _run_replica(
            datacenter, plan, conns, 0, control_factory, finish, name
        )
    except BaseException:
        # Closing our pipe ends EOFs any still-blocked worker, so the
        # reap below cannot hang; worker exit codes are moot once the
        # parent replica already has the real failure in flight.
        _teardown_mesh(pipes, children)
        raise
    failures = _teardown_mesh(pipes, children)
    if failures:
        raise ShardError(
            f"shard worker(s) exited abnormally: {failures}; see "
            "stderr for the worker traceback"
        )
    return result, stats


def _teardown_mesh(pipes, children):
    """Close every pipe end and reap workers; returns abnormal exits."""
    for pair in pipes.values():
        for conn in pair:
            try:
                conn.close()
            except OSError:
                pass
    failures = []
    for pid in children:
        try:
            _pid, status = os.waitpid(pid, 0)
        except ChildProcessError:
            continue
        if status != 0:
            failures.append((pid, status))
    return failures
