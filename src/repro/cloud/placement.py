"""Tenant placement: bin packing with anti-affinity and KSM awareness.

The scheduler answers one question — *which host should run this VM* —
under three pressures that pull in different directions:

* **packing** — fewer, fuller hosts (best-fit: smallest remaining
  capacity that still fits), so the fleet boots lazily and capacity
  fragments slowly;
* **anti-affinity** — tenants sharing an ``anti_affinity_group`` (an HA
  pair, a customer's replicas) must land on different hosts;
* **KSM co-location** — tenants running the same ``image_profile``
  share page content, so co-locating them is where memory deduplication
  pays (and exactly where the paper's dedup side channel, the covert
  channel, *and* the detector get interesting: co-residence is both the
  attack surface and the detection opportunity).

The score is deterministic and totally ordered (ties break on host
name), so identical-seed fleet runs place identically.
"""

from repro.errors import PlacementError

#: Score weight for each co-resident tenant sharing the image profile.
KSM_AFFINITY_WEIGHT = 4096.0


class PlacementDecision:
    """Why one tenant landed on one host."""

    def __init__(self, tenant_name, host_name, at, reason):
        self.tenant_name = tenant_name
        self.host_name = host_name
        self.at = at
        self.reason = reason

    def __repr__(self):
        return (
            f"<PlacementDecision {self.tenant_name}->{self.host_name} "
            f"({self.reason})>"
        )


class BinPackingPlacer:
    """Best-fit-decreasing bin packing over the datacenter's hosts."""

    def __init__(self, datacenter, ksm_affinity=True):
        self.datacenter = datacenter
        self.ksm_affinity = ksm_affinity
        self.decisions = []

    # -- constraint checks --------------------------------------------------

    def _violates_anti_affinity(self, spec, host):
        group = spec.anti_affinity_group
        if group is None:
            return False
        return any(
            t.spec.anti_affinity_group == group
            and t.state != "deleted"
            and t.name != spec.name
            for t in host.tenants.values()
        )

    def _candidates(self, spec, allow_offline=True, exclude=()):
        overcommit = self.datacenter.overcommit
        for name in sorted(self.datacenter.hosts):
            host = self.datacenter.hosts[name]
            if host in exclude or host.state in ("draining", "crashed"):
                continue
            if not allow_offline and host.state != "up":
                continue
            if not host.can_fit(spec.memory_mb, overcommit):
                continue
            if self._violates_anti_affinity(spec, host):
                continue
            yield host

    # -- scoring ------------------------------------------------------------

    def _score(self, spec, host):
        """Higher is better; fully deterministic.

        Prefers up hosts over offline ones (boots are lazy), then KSM
        profile-mates, then the tightest remaining fit.
        """
        score = 0.0
        if host.state == "up":
            score += 1e9  # never boot a new host while an up one fits
        if self.ksm_affinity:
            mates = sum(
                1
                for t in host.tenants.values()
                if t.spec.image_profile == spec.image_profile
                and t.state == "running"
            )
            score += KSM_AFFINITY_WEIGHT * mates
        # Best fit: less free memory after placement scores higher.
        score -= host.free_mb(self.datacenter.overcommit) - spec.memory_mb
        return score

    def place(self, spec, exclude=()):
        """Choose a host for ``spec``; returns the Host (maybe offline).

        ``exclude`` removes hosts from consideration (the source of an
        eviction, a partitioned rack).  Raises
        :class:`~repro.errors.PlacementError` when nothing fits.
        """
        best = None
        best_score = None
        for host in self._candidates(spec, exclude=exclude):
            score = self._score(spec, host)
            # Strict > with name-sorted candidates = deterministic ties.
            if best_score is None or score > best_score:
                best, best_score = host, score
        if best is None:
            raise PlacementError(
                f"no host fits tenant {spec.name!r} "
                f"({spec.memory_mb}MB, group={spec.anti_affinity_group})"
            )
        reason = "up-host-fit" if best.state == "up" else "cold-boot"
        decision = PlacementDecision(
            spec.name, best.name, self.datacenter.engine.now, reason
        )
        self.decisions.append(decision)
        engine = self.datacenter.engine
        engine.perf.cloud_placements += 1
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(
                "fleet.place",
                "cloud",
                track="fleet",
                args={
                    "tenant": spec.name,
                    "host": best.name,
                    "reason": reason,
                    "memory_mb": spec.memory_mb,
                },
            )
            tracer.metrics.counter("fleet.placements", host=best.name).inc()
        return best

    def most_loaded_up_host(self, exclude=()):
        """The up host with the highest memory utilization (ties by name)."""
        best = None
        for host in self.datacenter.up_hosts:
            if host in exclude or not host.tenants:
                continue
            if best is None or host.utilization > best.utilization:
                best = host
        return best
