"""Fleet inventory: racks of heterogeneous hosts, booted lazily.

A :class:`HostSpec` describes a physical machine shape; a :class:`Host`
is the control plane's handle on one such machine.  Hosts start
``offline`` and are brought up on demand — the paper's Dell T1700 is one
shape among several, because a real IaaS fleet is never uniform and the
placement trade-offs (bin packing, KSM co-location) only appear once
capacities differ.

Every host lives on the *shared* datacenter engine: one virtual clock
orders boot, churn, migration, and detection events across the whole
fleet, which is what makes fleet-wide detection latency a measurable
quantity rather than a per-host anecdote.
"""

from repro.errors import CloudError
from repro.guest.system import System
from repro.hardware.cpu import CpuPackage
from repro.hardware.machine import Machine
from repro.hypervisor.ksm import KsmDaemon

#: The catalogue of machine shapes a fleet cycles through.  The first
#: entry is the paper's testbed; the others bracket it above and below.
HOST_SHAPES = (
    {"model": "t1700", "memory_mb": 16384, "cores": 4, "threads_per_core": 2},
    {"model": "r640", "memory_mb": 32768, "cores": 8, "threads_per_core": 2},
    {"model": "r340", "memory_mb": 8192, "cores": 4, "threads_per_core": 1},
)

#: Hosts per rack when generating a default inventory.
RACK_WIDTH = 4


class HostSpec:
    """The shape of one physical host."""

    def __init__(
        self,
        name,
        memory_mb=16384,
        cores=4,
        threads_per_core=2,
        rack="rack0",
        model="t1700",
    ):
        if memory_mb <= 0:
            raise CloudError(f"host {name}: memory_mb must be positive")
        if cores < 1 or threads_per_core < 1:
            raise CloudError(f"host {name}: needs at least one CPU thread")
        self.name = name
        self.memory_mb = memory_mb
        self.cores = cores
        self.threads_per_core = threads_per_core
        self.rack = rack
        self.model = model

    @property
    def logical_cpus(self):
        return self.cores * self.threads_per_core

    def __repr__(self):
        return (
            f"<HostSpec {self.name} {self.model} {self.memory_mb}MB "
            f"{self.logical_cpus}cpu {self.rack}>"
        )


def heterogeneous_specs(count, rack_width=RACK_WIDTH):
    """A deterministic ``count``-host inventory cycling the shape catalogue."""
    if count < 1:
        raise CloudError("a fleet needs at least one host")
    specs = []
    for index in range(count):
        shape = HOST_SHAPES[index % len(HOST_SHAPES)]
        specs.append(
            HostSpec(
                name=f"h{index:02d}",
                rack=f"rack{index // rack_width}",
                **shape,
            )
        )
    return specs


class Host:
    """One fleet host: spec + lifecycle + capacity bookkeeping.

    States: ``offline`` (never booted) -> ``booting`` -> ``up``;
    ``draining`` marks an up host the placer must avoid (its tenants are
    being evacuated); ``crashed`` marks a host the fault injector took
    down (uplink severed, ksmd dead, tenant VMs frozen) until
    :meth:`recover`.  The backing :class:`~repro.guest.system.System`
    exists only from ``booting`` onward.
    """

    def __init__(self, spec, datacenter, seed):
        self.spec = spec
        self.datacenter = datacenter
        self.seed = seed
        self.state = "offline"
        self.system = None
        self.ksm = None
        self.uplink = None
        #: tenant name -> Tenant currently placed here.
        self.tenants = {}
        #: Monotonic per-host counter for ssh/monitor/incoming ports —
        #: never reused, so a relaunched tenant can't collide with a
        #: half-closed listener.
        self._port_cursor = 0

    # -- capacity ----------------------------------------------------------

    @property
    def name(self):
        return self.spec.name

    @property
    def committed_mb(self):
        return sum(t.spec.memory_mb for t in self.tenants.values())

    def free_mb(self, overcommit=1.0):
        return self.spec.memory_mb * overcommit - self.committed_mb

    def can_fit(self, memory_mb, overcommit=1.0):
        return self.free_mb(overcommit) >= memory_mb

    @property
    def utilization(self):
        return self.committed_mb / self.spec.memory_mb

    def next_port_block(self):
        """Allocate a fresh (ssh, monitor, incoming) port triple."""
        base = self._port_cursor
        self._port_cursor += 1
        return (2300 + base, 5600 + base, 9000 + base)

    # -- lifecycle ---------------------------------------------------------

    def bring_up(self):
        """Generator: boot this host on the shared engine.

        Mirrors :func:`repro.guest.system.make_testbed` — same kernel
        jitter, same KVM bring-up — but pays the boot cost as a yielded
        timeout so lazy boots can happen mid-simulation, and attaches
        the host to the datacenter switch plus starts its ksmd (the
        dedup detector's substrate is per-host physical memory).
        """
        if self.state == "up":
            return self.system
        if self.state == "booting":
            raise CloudError(f"{self.name}: concurrent bring_up")
        if self.state == "crashed":
            raise CloudError(f"{self.name}: crashed (recover() first)")
        engine = self.datacenter.engine
        self.state = "booting"
        machine = Machine(
            name=self.name,
            engine=engine,
            cpu=CpuPackage(
                cores=self.spec.cores,
                threads_per_core=self.spec.threads_per_core,
            ),
            memory_mb=self.spec.memory_mb,
            seed=self.seed,
        )
        system = System.bare_metal(machine, name=self.name)
        system.kernel.jitter_rsd = 0.015
        boot_cost = system.boot()
        yield engine.timeout(boot_cost)
        system.enable_kvm()
        self.system = system
        self.uplink = self.datacenter.attach(self)
        self.ksm = KsmDaemon(
            machine, pages_to_scan=self.datacenter.ksm_pages_to_scan
        )
        self.ksm.start()
        self.state = "up"
        return system

    # -- network fault injection ------------------------------------------

    @property
    def partitioned(self):
        return self.uplink is not None and self.uplink.a is None

    def partition(self):
        """Detach the host's uplink (switch failure / miscabled ToR).

        Migrations targeting or leaving this host fail at connect time
        with a NetworkError until :meth:`heal` — the transport-failure
        path the migration orchestrator retries through.
        """
        if self.uplink is None or self.partitioned:
            return
        link = self.uplink
        switch = self.datacenter.switch
        switch._links.remove(link)
        self.system.net_node._links.remove(link)
        self._severed = (link.a, link.b)
        link.a = None

    def heal(self):
        """Reattach a partitioned uplink."""
        if self.uplink is None or not self.partitioned:
            return
        link = self.uplink
        link.a, link.b = self._severed
        self.datacenter.switch._links.append(link)
        self.system.net_node._links.append(link)

    # -- whole-host fault injection ----------------------------------------

    def crash(self):
        """Take the host down hard (PSU failure, kernel panic).

        The uplink is severed, ksmd dies with the kernel, and every
        tenant VM freezes in place.  Running tenants flip to
        ``degraded`` — the control plane still knows about them (no
        tenant is ever lost), but sweeps report them unreachable until
        :meth:`recover`.  Returns False when the host is not up.
        """
        if self.state != "up":
            return False
        self.partition()
        if self.ksm is not None:
            self.ksm.stop()
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            if tenant.vm is not None:
                tenant.vm.pause()
            if tenant.state == "running":
                tenant.state = "degraded"
        self.state = "crashed"
        return True

    def recover(self):
        """Bring a crashed host back: heal, restart ksmd, thaw tenants.

        KSM's stable tree survives (host RAM was never lost in this
        failure model — it is a management-plane crash, like a fencing
        event), so ``pages_shared`` conservation holds across the
        outage.  Returns False when the host is not crashed.
        """
        if self.state != "crashed":
            return False
        self.state = "up"
        self.heal()
        if self.ksm is not None:
            self.ksm.start()
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            if tenant.vm is not None and tenant.vm.status != "terminated":
                tenant.vm.resume()
            if tenant.state == "degraded":
                tenant.state = "running"
        return True

    def __repr__(self):
        return (
            f"<Host {self.name} {self.state} tenants={len(self.tenants)} "
            f"committed={self.committed_mb}/{self.spec.memory_mb}MB>"
        )
