"""Cross-host live migration with retry/backoff and rebalancing.

The single-host experiments drive migration through the QEMU monitor
(``migrate -d tcp:127.0.0.1:PORT``); the fleet layer drives it across
the datacenter fabric: launch an ``-incoming`` QEMU on the destination
host, point the source's :class:`~repro.migration.precopy.PreCopyMigration`
(or post-copy) at the destination's network node, and stream over the
switch.  The destination side is protocol-agnostic
(:class:`~repro.migration.precopy.MigrationDestination`), exactly as a
real ``qemu -incoming`` is.

Transport failures — a partitioned uplink, a dead listener — surface as
:class:`~repro.errors.MigrationError` at connect time; the orchestrator
retries with seeded exponential backoff, relaunching the incoming VM
each attempt, and gives up after ``max_retries`` with the full attempt
log preserved.  Eviction-driven rebalancing composes this with the
placer: drain a host, or shave the most-loaded host, one tenant at a
time.
"""

from repro.errors import (
    CloudError,
    HypervisorError,
    MigrationError,
    NetworkError,
)
from repro.migration.postcopy import PostCopyMigration
from repro.migration.precopy import PreCopyMigration
from repro.qemu.qemu_img import host_images, qemu_img_create
from repro.qemu.vm import launch_vm

#: Fleet migrations run over 10GbE, not the WAN-conservative 32 MiB/s
#: QEMU default the paper's single-host runs inherit.
FLEET_MAX_BANDWIDTH = 256 * 1024 * 1024


class MigrationRecord:
    """The audit trail of one cross-host move."""

    def __init__(self, tenant_name, source, dest, mode):
        self.tenant_name = tenant_name
        self.source = source
        self.dest = dest
        self.mode = mode
        self.status = "pending"  # -> completed | failed
        #: One ``(started_at, outcome)`` pair per attempt; outcome is
        #: ``"ok"`` or the stringified transport error.
        self.attempts = []
        self.stats = None

    @property
    def attempt_count(self):
        return len(self.attempts)

    def __repr__(self):
        return (
            f"<MigrationRecord {self.tenant_name} {self.source}->{self.dest} "
            f"{self.status} attempts={self.attempt_count}>"
        )


class MigrationOrchestrator:
    """Moves tenants between hosts; retries transport failures."""

    def __init__(
        self,
        datacenter,
        max_retries=3,
        backoff_base_s=2.0,
        backoff_factor=2.0,
        max_bandwidth=FLEET_MAX_BANDWIDTH,
    ):
        self.datacenter = datacenter
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.max_bandwidth = max_bandwidth
        self.rng = datacenter.rng.stream("cloud.backoff")
        self.records = []

    # -- one tenant ---------------------------------------------------------

    def migrate_tenant(self, tenant, dest_host, mode="precopy"):
        """Generator: move ``tenant`` to ``dest_host``; returns the record."""
        if mode not in ("precopy", "postcopy"):
            raise CloudError(f"unknown migration mode {mode!r}")
        if tenant.vm is None or tenant.guest is None:
            raise CloudError(f"tenant {tenant.name}: nothing to migrate")
        source_host = tenant.host
        if dest_host is source_host:
            raise CloudError(f"tenant {tenant.name}: already on {dest_host.name}")
        dc = self.datacenter
        engine = dc.engine
        yield from dc.ensure_up(dest_host)
        record = MigrationRecord(
            tenant.name, source_host.name, dest_host.name, mode
        )
        self.records.append(record)
        tracer = engine.tracer
        move_started = engine.now

        for attempt in range(self.max_retries + 1):
            record.attempts.append([engine.now, None])
            source_vm = tenant.vm
            dest_vm = None
            incoming_port = None
            migration = None
            try:
                dest_vm, incoming_port = self._launch_incoming(
                    tenant, dest_host
                )
                migration = self._build_source(
                    source_vm, dest_host, incoming_port, mode
                )
                stats = yield migration.start()
                if stats.status != "completed":
                    raise MigrationError(
                        f"migration ended in state {stats.status!r}"
                    )
                yield dest_vm.incoming_process
            except (MigrationError, NetworkError, HypervisorError) as error:
                record.attempts[-1][1] = str(error) or type(error).__name__
                if (
                    mode == "postcopy"
                    and migration is not None
                    and migration.switched_over
                ):
                    # Past the point of no return: the guest already
                    # runs at the destination.  Roll forward, degraded,
                    # instead of failing the move.
                    yield from self._degrade_to_destination(
                        tenant, source_vm, dest_vm, dest_host, record,
                        migration, error,
                    )
                    return record
                if dest_vm is not None:
                    self._cleanup_failed_attempt(
                        dest_host, dest_vm, incoming_port
                    )
                if tracer.enabled:
                    tracer.instant(
                        "fleet.migrate_retry",
                        "cloud",
                        track="fleet",
                        args={
                            "tenant": tenant.name,
                            "attempt": record.attempt_count,
                            "error": record.attempts[-1][1],
                        },
                    )
                if attempt == self.max_retries:
                    record.status = "failed"
                    raise CloudError(
                        f"migration of {tenant.name} to {dest_host.name} "
                        f"failed after {record.attempt_count} attempts: {error}"
                    ) from error
                yield engine.timeout(self._backoff_delay(attempt))
                continue
            record.attempts[-1][1] = "ok"
            record.stats = stats
            record.status = "completed"
            source_vm.quit()
            tenant.vm = dest_vm
            dc.move_tenant(tenant, dest_host)
            engine.perf.cloud_migrations += 1
            if tracer.enabled:
                tracer.complete(
                    "fleet.migrate",
                    "cloud",
                    move_started,
                    track="fleet",
                    args={
                        "tenant": tenant.name,
                        "source": record.source,
                        "dest": record.dest,
                        "mode": mode,
                        "attempts": record.attempt_count,
                        "ram_bytes": stats.ram_bytes,
                    },
                )
                tracer.metrics.counter("fleet.migrations", mode=mode).inc()
            return record
        raise AssertionError("unreachable")

    def _launch_incoming(self, tenant, dest_host):
        """Stand up the ``-incoming`` QEMU on the destination host.

        The public endpoint remaps: the clone keeps the guest-side
        ports but binds fresh host-side forwards on the destination's
        node (the source's ports may already be taken there).
        """
        ssh_port, monitor_port, incoming_port = dest_host.next_port_block()
        config = tenant.vm.config.clone_for_destination(
            tenant.name,
            monitor_port=monitor_port,
            incoming_port=incoming_port,
            keep_hostfwds=False,
        )
        if config.nics:
            config.nics[0].hostfwds = [("tcp", ssh_port, 22)]
        for drive in config.drives:
            if not host_images(dest_host.system).exists(drive.path):
                qemu_img_create(dest_host.system, drive.path, 20.0)
        vm, _ready = launch_vm(dest_host.system, config)
        return vm, incoming_port

    def _build_source(self, source_vm, dest_host, incoming_port, mode):
        dest_node = dest_host.system.net_node
        if mode == "postcopy":
            return PostCopyMigration(
                source_vm,
                destination_port=incoming_port,
                max_bandwidth=self.max_bandwidth,
                destination_node=dest_node,
            )
        return PreCopyMigration(
            source_vm,
            destination_host=dest_host.name,
            destination_port=incoming_port,
            max_bandwidth=self.max_bandwidth,
            destination_node=dest_node,
        )

    def _degrade_to_destination(
        self, tenant, source_vm, dest_vm, dest_host, record, migration, error
    ):
        """Generator: roll a post-copy fill failure forward.

        The handoff was acked, so the guest runs at the destination with
        the residual remote-fault penalty of its never-filled pages
        (``PostCopyDone`` never arrived).  The tenant is re-homed there
        and marked ``degraded`` — a real operator pages a human, but the
        customer VM keeps serving.
        """
        dc = self.datacenter
        engine = dc.engine
        record.status = "degraded"
        record.stats = migration.stats
        if dest_vm.incoming_process is not None:
            # The destination's receive loop sees the closed channel and
            # keeps the adopted guest; wait for it to settle.
            yield dest_vm.incoming_process
        source_vm.quit()
        tenant.vm = dest_vm
        tenant.state = "degraded"
        dc.move_tenant(tenant, dest_host)
        tracer = engine.tracer
        if tracer.enabled:
            tracer.instant(
                "fleet.migrate_degraded",
                "cloud",
                track="fleet",
                args={
                    "tenant": tenant.name,
                    "dest": dest_host.name,
                    "error": str(error),
                },
            )
            tracer.metrics.counter("fleet.migrations", mode="degraded").inc()

    @staticmethod
    def _cleanup_failed_attempt(dest_host, dest_vm, incoming_port):
        """Roll the destination back so a retry starts clean.

        Closes the incoming port reservation, interrupts the parked
        ``-incoming`` receive process (otherwise every failed attempt
        leaks a process blocked on accept() forever), and quits the
        half-created destination VM — including on the *final* attempt.
        """
        incoming = dest_vm.incoming_process
        if incoming is not None and incoming.is_alive:
            incoming.interrupt("migration attempt abandoned")
        node = dest_host.system.net_node
        if node.listener(incoming_port) is not None:
            node.close_port(incoming_port)
        dest_vm.quit()

    def _backoff_delay(self, attempt):
        """Exponential backoff with seeded jitter in [0.5x, 1.5x)."""
        base = self.backoff_base_s * (self.backoff_factor**attempt)
        return base * (0.5 + self.rng.random())

    # -- fleet-level moves --------------------------------------------------

    def evacuate(self, host, placer, mode="precopy"):
        """Generator: drain every tenant off ``host`` (eviction).

        The host is marked ``draining`` first so the placer never routes
        the evicted tenants straight back.  Returns the records.
        """
        previous_state = host.state
        host.state = "draining"
        records = []
        try:
            for name in sorted(host.tenants):
                tenant = host.tenants[name]
                if tenant.vm is None:
                    continue
                dest = placer.place(tenant.spec, exclude=(host,))
                records.append(
                    (yield from self.migrate_tenant(tenant, dest, mode=mode))
                )
        finally:
            host.state = previous_state if not host.tenants else "up"
        return records

    def rebalance(self, placer, moves=1, mode="precopy"):
        """Generator: shave the most-loaded host, one tenant per move."""
        records = []
        for _ in range(moves):
            source = placer.most_loaded_up_host()
            if source is None:
                break
            # Largest tenant first (classic bin-pack shave), name tie-break.
            candidates = sorted(
                (t for t in source.tenants.values() if t.state == "running"),
                key=lambda t: (-t.spec.memory_mb, t.name),
            )
            if not candidates:
                break
            tenant = candidates[0]
            dest = placer.place(tenant.spec, exclude=(source,))
            records.append(
                (yield from self.migrate_tenant(tenant, dest, mode=mode))
            )
        return records
