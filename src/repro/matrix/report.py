"""Deterministic matrix run reports.

One :class:`MatrixReport` collects one entry per variant: the variant's
resolved parameters, its virtual-time *fingerprint* (verdict/recall
metrics — everything expected-result pinning compares), the
branch-phase perf-counter deltas, and the wall-clock cost.  Same seed,
same spec → byte-identical :meth:`MatrixReport.to_json`; wall clocks
and warm-group timing are excluded from the deterministic form (pass
``include_timing=True`` to keep them, mirroring how the tracer keeps
wall stamps out of exported traces by default).
"""

import json


def branch_fingerprint(result):
    """The deterministic outcome of one branch (a FleetRunResult).

    Everything here is virtual-time state: two runs of the same variant
    must produce equal dicts, and a warm-forked branch must equal its
    cold twin.
    """
    dc = result.datacenter
    latencies = list(result.detection_latencies)
    return {
        "virtual_now": dc.engine.now,
        "campaigns": len(result.campaign.events),
        "detected": result.detected_campaigns,
        "recall": result.recall,
        "detection_latencies": latencies,
        "mean_detection_latency": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "faults_injected": dc.engine.perf.faults_injected,
        "faults_recovered": dc.engine.perf.faults_recovered,
        "tenants_running": len(dc.running_tenants()),
        "tenants_degraded": sorted(
            name
            for name, tenant in dc.tenants.items()
            if tenant.state == "degraded"
        ),
        "unreachable_findings": sum(
            len(report.unreachable) for report in result.monitor.reports
        ),
        "sweeps": [
            {
                "tenants_probed": report.tenants_probed,
                "compromised": [f"{t}@{h}" for t, h in report.compromised],
            }
            for report in result.monitor.reports
        ],
    }


class MatrixReport:
    """Everything one matrix run produced, deterministically."""

    def __init__(self, name, spec_source=None):
        self.name = name
        self.spec_source = spec_source
        #: One dict per variant, in expansion order.
        self.entries = []
        #: One dict per warm group, in run order.
        self.groups = []

    def add(self, entry):
        self.entries.append(entry)

    def entry_for(self, variant_id):
        for entry in self.entries:
            if entry["variant"] == variant_id:
                return entry
        raise KeyError(variant_id)

    def fingerprints(self):
        """``{variant_id: fingerprint}`` — the pinnable surface."""
        return {
            entry["variant"]: entry["fingerprint"] for entry in self.entries
        }

    def as_dict(self, include_timing=False):
        entries = []
        for entry in self.entries:
            rendered = dict(entry)
            if not include_timing:
                rendered.pop("wall_seconds", None)
                # Per-variant metric capture rides outside the pinned
                # canonical form, like wall clocks, so pins don't churn
                # when capture is toggled on.
                rendered.pop("metrics", None)
            entries.append(rendered)
        groups = []
        for group in self.groups:
            rendered = dict(group)
            if not include_timing:
                rendered.pop("warm_wall_seconds", None)
            groups.append(rendered)
        return {
            "matrix": self.name,
            "variants": len(self.entries),
            "warm_groups": groups,
            "entries": entries,
        }

    def to_json(self, include_timing=False):
        """Byte-identical across same-spec, same-seed runs."""
        return (
            json.dumps(
                self.as_dict(include_timing=include_timing),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    def write(self, path, include_timing=True):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(include_timing=include_timing))

    @classmethod
    def from_dict(cls, data):
        report = cls(data.get("matrix", "matrix"))
        report.entries = list(data.get("entries", []))
        report.groups = list(data.get("warm_groups", []))
        return report

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def variant_metrics(self):
        """``{variant_id: metrics}`` for entries that captured metrics."""
        return {
            entry["variant"]: entry["metrics"]
            for entry in self.entries
            if "metrics" in entry
        }

    def probe_budget_violations(self, budget_pct):
        """Variants whose probe overhead exceeds ``budget_pct`` percent.

        Returns ``[(variant_id, overhead_pct)]`` sorted worst-first;
        needs the run to have captured per-variant metrics.
        """
        violations = [
            (variant_id, metrics["probe_overhead_pct"])
            for variant_id, metrics in self.variant_metrics().items()
            if metrics["probe_overhead_pct"] > budget_pct
        ]
        return sorted(violations, key=lambda pair: (-pair[1], pair[0]))

    @property
    def total_wall_seconds(self):
        total = sum(e.get("wall_seconds", 0.0) for e in self.entries)
        total += sum(g.get("warm_wall_seconds", 0.0) for g in self.groups)
        return total

    @property
    def mean_recall(self):
        if not self.entries:
            return 0.0
        return sum(
            e["fingerprint"]["recall"] for e in self.entries
        ) / len(self.entries)

    def summary(self):
        lines = [
            f"matrix {self.name}: {len(self.entries)} variants across "
            f"{len(self.groups)} warm groups, mean recall "
            f"{self.mean_recall:.2f}"
        ]
        for entry in self.entries:
            fp = entry["fingerprint"]
            latency = (
                f"{fp['mean_detection_latency']:.3f}s"
                if fp["mean_detection_latency"] is not None
                else "n/a"
            )
            lines.append(
                f"  {entry['variant']}  recall={fp['recall']:.2f} "
                f"latency={latency} faults={fp['faults_injected']} "
                f"vt={fp['virtual_now']:.1f}s"
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<MatrixReport {self.name} variants={len(self.entries)} "
            f"groups={len(self.groups)}>"
        )
