"""The warm-fork-aware matrix runner.

Variants that agree on every warm-up parameter (topology, churn,
settle window, seed — see :data:`~repro.matrix.spec.WARM_KEYS`) replay
byte-identical warm prefixes, so the runner groups them and pays each
prefix once: one :func:`~repro.cloud.fleet.warm_fleet` snapshot per
group, one copy-on-write fork per variant (PR 6's machinery).  A
single-variant group skips the capture and runs its one branch on the
live fleet — the fork layer guarantees forked == cold fingerprints, so
the grouping decision never shows in the results, only in the wall
clock.

``processes > 1`` spreads whole warm *groups* across a multiprocessing
pool.  Snapshots hold live generator frames and cannot cross a process
boundary, so each worker warms its own groups; because group placement
never splits a group, the pooled run takes exactly the serial run's
code path per group and the merged report is byte-identical to serial.
"""

import gc
import time

from repro.errors import ReproError
from repro.matrix.expand import expand, group_by_warm_key
from repro.matrix.report import MatrixReport, branch_fingerprint
from repro.matrix.spec import parse_fault_spec


class MatrixError(ReproError):
    """A matrix run that cannot proceed (bad runner arguments)."""


#: Perf counters that legitimately differ between a forked branch and
#: its cold twin (fork bookkeeping the live run never pays); excluded
#: from the recorded deltas so grouping stays invisible in reports.
_FORK_ONLY_COUNTERS = frozenset(
    ("snapshot_captures", "engine_forks", "fork_pages_shared", "fork_cow_breaks")
)


def build_fault_plan(fault_spec, seed):
    """A variant's ``faults`` shorthand → armed-ready FaultPlan or None."""
    parsed = parse_fault_spec(fault_spec)
    if parsed is None:
        return None
    from repro.faults.chaos import standard_mix_plan

    mix, stream_suffix, count, horizon = parsed
    stream = f"faults.mix.{mix}#{stream_suffix}" if stream_suffix else None
    return standard_mix_plan(
        mix, seed, faults=count, horizon=horizon, stream=stream
    )


def _perf_delta(engine, warm_perf):
    """Branch-phase counter increments, fork bookkeeping excluded."""
    return {
        name: value
        for name, value in engine.perf.delta(warm_perf).items()
        if value and name not in _FORK_ONLY_COUNTERS
    }


def _variant_entry(variant, result, wall, warm_perf, warm_now=None):
    params = {}
    for key, value in sorted(variant.params.items()):
        params[key] = list(value) if isinstance(value, tuple) else value
    entry = {
        "variant": variant.variant_id,
        "axes": dict(variant.labels),
        "params": params,
        "fingerprint": branch_fingerprint(result),
        "perf_delta": _perf_delta(result.datacenter.engine, warm_perf),
        "wall_seconds": round(wall, 3),
    }
    if warm_now is not None:
        # Per-variant probe-overhead attribution; excluded from the
        # canonical JSON (like wall clocks) so pins don't churn.
        entry["metrics"] = result.probe_metrics(since_seconds=warm_now)
    return entry


def _run_group(
    variants,
    warm_fork=True,
    keep_results=None,
    capture_metrics=False,
    shards=None,
):
    """Run one warm group; returns ``(group_info, {variant_id: entry})``.

    ``warm_fork=False`` is the cold comparator: every variant pays its
    own live warm-up (the benchmark's baseline, and the shape the
    forked results must reproduce byte-for-byte).
    """
    from repro.cloud.fleet import warm_fleet

    warm = dict(variants[0].warm_params())
    seed = warm.pop("seed", 1701)
    capture = warm_fork and len(variants) > 1
    entries = {}
    group_info = {
        "warm_params": dict(sorted(warm.items())),
        "seed": seed,
        "variants": [variant.variant_id for variant in variants],
        "forked": capture,
    }
    warm_started = time.perf_counter()
    fleet = None
    if capture or len(variants) == 1:
        # Metrics capture needs the tracer on *before* the snapshot so
        # every fork inherits an enabled tracer with a live registry.
        fleet = warm_fleet(
            seed=seed, capture=capture, trace=capture_metrics, **warm
        )
    group_info["warm_wall_seconds"] = round(
        time.perf_counter() - warm_started, 3
    )
    try:
        for variant in variants:
            if fleet is None:
                substrate = warm_fleet(
                    seed=seed, capture=False, trace=capture_metrics, **warm
                )
            else:
                substrate = fleet
            branch = dict(variant.branch_params())
            plan = build_fault_plan(branch.pop("faults", None), seed)
            warm_perf = substrate.engine.perf.snapshot()
            warm_now = substrate.engine.now if capture_metrics else None
            started = time.perf_counter()
            result = substrate.branch(
                faults=plan, shards=shards or 1, **branch
            )
            wall = time.perf_counter() - started
            entries[variant.variant_id] = _variant_entry(
                variant, result, wall, warm_perf, warm_now=warm_now
            )
            if keep_results is not None:
                keep_results.append(result)
            del result, substrate
            # Each finished branch is pure garbage under heap_frozen();
            # collecting per-branch keeps N-variant groups at flat memory.
            gc.collect()
    finally:
        if fleet is not None:
            fleet.dispose()
    return group_info, entries


def _matrix_worker(payload):
    """Pool worker: run a chunk of whole warm groups.

    Returns ``[(group_index, group_info, entries_dict), ...]`` so the
    parent can merge groups and entries back into expansion order.
    """
    from repro.sim.snapshot import heap_frozen

    groups, warm_fork, capture_metrics, shards = payload
    out = []
    with heap_frozen():
        for group_index, variants in groups:
            group_info, entries = _run_group(
                variants,
                warm_fork=warm_fork,
                capture_metrics=capture_metrics,
                shards=shards,
            )
            out.append((group_index, group_info, entries))
    return out


class MatrixRunner:
    """Expands a spec and runs every variant through the fleet harness."""

    def __init__(
        self,
        spec,
        processes=None,
        warm_fork=True,
        capture_metrics=False,
        shards=None,
    ):
        if processes is not None and processes < 1:
            raise MatrixError(
                f"--processes must be >= 1, got {processes}"
            )
        if shards is not None and shards < 1:
            raise MatrixError(f"--shards must be >= 1, got {shards}")
        self.spec = spec
        self.processes = processes
        #: Shard count for each variant's branch phase (None/1 = serial;
        #: see :mod:`repro.cloud.sharding`).  Fingerprints are
        #: shard-invariant, so pinned expectations hold at any count.
        self.shards = shards
        self.warm_fork = warm_fork
        #: Trace every variant and record per-tenant probe-overhead
        #: metrics in each entry (outside the canonical JSON).
        self.capture_metrics = capture_metrics
        #: FleetRunResults in expansion order (serial runs only).
        self.results = []

    def run(self, only=None, no=None):
        """Run the matrix; returns a :class:`MatrixReport`.

        ``only``/``no`` sub-select variants with the same filter syntax
        the spec uses.  The report's entries land in expansion order
        regardless of warm grouping or pool scheduling.
        """
        variants = expand(self.spec, only=only, no=no)
        groups = group_by_warm_key(variants)
        report = MatrixReport(self.spec.name)
        entries = {}
        group_infos = {}
        if self.processes and self.processes > 1 and len(groups) > 1:
            self._run_pooled(groups, group_infos, entries)
        else:
            self._run_serial(groups, group_infos, entries)
        for index in sorted(group_infos):
            report.groups.append(group_infos[index])
        for variant in variants:
            report.add(entries[variant.variant_id])
        return report

    def _run_serial(self, groups, group_infos, entries):
        from repro.sim.snapshot import heap_frozen

        with heap_frozen():
            for index, (_key, variants) in enumerate(groups):
                group_info, group_entries = _run_group(
                    variants,
                    warm_fork=self.warm_fork,
                    keep_results=self.results,
                    capture_metrics=self.capture_metrics,
                    shards=self.shards,
                )
                group_infos[index] = group_info
                entries.update(group_entries)

    def _run_pooled(self, groups, group_infos, entries):
        import multiprocessing

        workers = min(self.processes, len(groups))
        indexed = list(enumerate(variants for _key, variants in groups))
        chunks = [indexed[i::workers] for i in range(workers)]
        payloads = [
            (chunk, self.warm_fork, self.capture_metrics, self.shards)
            for chunk in chunks
            if chunk
        ]
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(len(payloads)) as pool:
            # imap_unordered for throughput; the caller re-imposes
            # group and expansion order, so arrival order is free.
            for part in pool.imap_unordered(_matrix_worker, payloads):
                for group_index, group_info, group_entries in part:
                    group_infos[group_index] = group_info
                    entries.update(group_entries)
