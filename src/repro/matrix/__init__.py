"""repro.matrix — declarative scenario-matrix DSL and runner.

The tp-libvirt model scaled down to this repo: a small cfg spec
declares *axes* (fleet topology, workload mix, migration capabilities,
fault plans, detector budgets, seeds), the expander takes their
cartesian product into named variants with stable IDs, and the runner
plays every variant through the existing ``run_fleet``/``warm_fleet``
harness — automatically grouping variants that share a warm-up prefix
onto one copy-on-write snapshot and forking per variant.

Modules:

* :mod:`repro.matrix.spec`    — the cfg grammar and :class:`MatrixSpec`;
* :mod:`repro.matrix.expand`  — cartesian expansion into :class:`Variant`s;
* :mod:`repro.matrix.runner`  — warm-fork-aware serial/pooled runner;
* :mod:`repro.matrix.report`  — deterministic :class:`MatrixReport`;
* :mod:`repro.matrix.pinning` — expected-result pinning and diffing;
* :mod:`repro.matrix.cli`     — ``repro matrix run|list|expand|pin|diff``.
"""

from repro.matrix.expand import Variant, expand
from repro.matrix.pinning import Expectations, default_expectations_path
from repro.matrix.report import MatrixReport, branch_fingerprint
from repro.matrix.runner import MatrixRunner
from repro.matrix.spec import MatrixSpec, MatrixSpecError

__all__ = [
    "Expectations",
    "MatrixReport",
    "MatrixRunner",
    "MatrixSpec",
    "MatrixSpecError",
    "Variant",
    "branch_fingerprint",
    "default_expectations_path",
    "expand",
]
