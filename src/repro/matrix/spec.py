"""The scenario-matrix cfg grammar.

A spec is a line-oriented text file (stdlib parser, no YAML dependency)
with four kinds of content::

    # comment                         blank lines and #-comments ignored
    name = detection-recall           top-level defaults: key = value
    seed = 42

    [axis workload]                   an axis and its values
    quiet                             a value with no overrides
    steady: churn_operations = 6      a value overriding parameters
    bursty: churn_operations = 24, rebalance_moves = 2

    only steady..settled, quiet       tp-libvirt style variant filters
    no bursty..cold                   ("," = or, ".." = and)

    [override bursty..probe=deep]     per-variant overrides for every
    wait_seconds = 20.0               variant matching the filter

The cartesian product of all axes defines the matrix; ``only`` keeps
matching variants, ``no`` drops them, and ``[override ...]`` sections
patch parameters of whatever survives.  Filter terms are either a bare
value label (matches that label on any axis) or ``axis=label``.

Parameters are validated against the fleet harness's real knob set
(:data:`WARM_KEYS` feed the shared warm-up prefix, :data:`BRANCH_KEYS`
the divergent branch phase); an unknown key is a parse error, not a
silently ignored typo.  Values coerce to int/float/bool/None with
``on/off``, ``true/false``, ``yes/no`` and ``none`` spellings; the
``faults`` value uses the compact ``mix[#stream]:count@horizon`` form
(for example ``mixed:5@240`` or ``infra#2:3@180``) and
``migration_capabilities`` is a ``+``-separated capability list
(``dedup``).
"""

import re

from repro.errors import ReproError


class MatrixSpecError(ReproError):
    """A malformed matrix spec (parse or validation failure)."""


#: Parameters consumed by the shared warm-up prefix (plus ``seed``).
#: Variants agreeing on every one of these share a warm fleet; see
#: :meth:`repro.matrix.expand.Variant.warm_key`.
WARM_KEYS = (
    "seed",
    "hosts",
    "tenants",
    "churn_operations",
    "rebalance_moves",
    "overcommit",
    "settle_seconds",
)

#: Parameters of the divergent branch phase (the ``_run_branch``
#: keywords, plus the ``faults`` plan shorthand).
BRANCH_KEYS = (
    "campaigns",
    "sweeps",
    "sweeps_per_hour",
    "max_concurrent_probes",
    "file_pages",
    "wait_seconds",
    "migration_mode",
    "migration_capabilities",
    "campaign_stream",
    "faults",
    "probes",
)

_ALL_KEYS = frozenset(WARM_KEYS) | frozenset(BRANCH_KEYS)

#: Value labels and axis names: word characters plus the separators
#: that never collide with the grammar (no ``=``, ``,``, ``:`` or
#: whitespace — those delimit assignments and filters).
_LABEL_RE = re.compile(r"^[A-Za-z0-9_.#+-]+$")

_KNOWN_CAPABILITIES = ("dedup", "xbzrle", "auto-converge", "postcopy-ram")

_FAULTS_RE = re.compile(
    r"^(?P<mix>[a-z_]+)(?:#(?P<branch>[A-Za-z0-9_]+))?"
    r":(?P<count>\d+)@(?P<horizon>\d+(?:\.\d+)?)$"
)


def coerce_value(text):
    """One cfg scalar: int, float, bool, None, or a bare string."""
    lowered = text.lower()
    if lowered in ("on", "true", "yes"):
        return True
    if lowered in ("off", "false", "no"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_fault_spec(text):
    """``mix[#stream]:count@horizon`` → ``(mix, stream, count, horizon)``.

    ``None``/``"none"`` means fault-free and returns None.  The mix
    name is validated against the chaos catalog so a typo fails at
    parse time, not three warm-ups into a run.
    """
    if text is None or text == "none":
        return None
    from repro.faults.chaos import STANDARD_MIXES

    match = _FAULTS_RE.match(str(text))
    if not match:
        raise MatrixSpecError(
            f"bad faults spec {text!r} (expected mix[#stream]:count@horizon,"
            " e.g. mixed:5@240)"
        )
    mix = match.group("mix")
    if mix not in STANDARD_MIXES:
        raise MatrixSpecError(
            f"unknown fault mix {mix!r} in faults spec {text!r} "
            f"(choose from {sorted(STANDARD_MIXES)})"
        )
    return (
        mix,
        match.group("branch"),
        int(match.group("count")),
        float(match.group("horizon")),
    )


def _validate_param(key, value, where):
    if key not in _ALL_KEYS:
        raise MatrixSpecError(
            f"{where}: unknown parameter {key!r} "
            f"(warm keys: {', '.join(WARM_KEYS)}; "
            f"branch keys: {', '.join(BRANCH_KEYS)})"
        )
    if key == "faults":
        parse_fault_spec(value)
    if key == "migration_capabilities" and value is not None:
        names = tuple(str(value).split("+"))
        for name in names:
            if name not in _KNOWN_CAPABILITIES:
                raise MatrixSpecError(
                    f"{where}: unknown migration capability {name!r} "
                    f"(choose from {_KNOWN_CAPABILITIES})"
                )
        return names
    if key == "probes" and value is not None:
        # Same ``+``-joined shape as migration_capabilities, validated
        # against the probe catalog (imported lazily: the registry
        # pulls in the detection stack, which spec parsing shouldn't).
        from repro.probes.base import registered_probes

        names = tuple(str(value).split("+"))
        known = registered_probes()
        for name in names:
            if name not in known:
                raise MatrixSpecError(
                    f"{where}: unknown probe {name!r} "
                    f"(choose from {', '.join(known)})"
                )
        if len(set(names)) != len(names):
            raise MatrixSpecError(f"{where}: probe listed twice in {value!r}")
        return names
    return value


def _parse_assignments(text, where):
    """``k = v, k2 = v2`` → dict (validated, coerced)."""
    params = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise MatrixSpecError(f"{where}: expected key = value, got {part!r}")
        key, _, raw = part.partition("=")
        key = key.strip()
        value = coerce_value(raw.strip())
        if key in params:
            raise MatrixSpecError(f"{where}: duplicate key {key!r}")
        params[key] = _validate_param(key, value, where)
    return params


def parse_filter(expr, where="filter"):
    """A tp-libvirt style filter expression, parsed.

    ``a..b, c`` means (a AND b) OR c.  Terms are bare labels or
    ``axis=label`` pairs.  Returns a tuple of alternatives, each a
    tuple of ``(axis_or_None, label)`` terms.
    """
    alternatives = []
    for alt in expr.split(","):
        alt = alt.strip()
        if not alt:
            raise MatrixSpecError(f"{where}: empty alternative in {expr!r}")
        terms = []
        for term in alt.split(".."):
            term = term.strip()
            if not term:
                raise MatrixSpecError(f"{where}: empty term in {expr!r}")
            if "=" in term:
                axis, _, label = term.partition("=")
                axis, label = axis.strip(), label.strip()
            else:
                axis, label = None, term
            if not _LABEL_RE.match(label) or (axis and not _LABEL_RE.match(axis)):
                raise MatrixSpecError(f"{where}: bad filter term {term!r}")
            terms.append((axis, label))
        alternatives.append(tuple(terms))
    return tuple(alternatives)


class Axis:
    """One axis: a name and its ordered ``(label, overrides)`` values."""

    def __init__(self, name):
        self.name = name
        self.values = []  # [(label, params dict), ...]

    @property
    def labels(self):
        return [label for label, _params in self.values]

    def __repr__(self):
        return f"<Axis {self.name} x{len(self.values)}>"


class MatrixSpec:
    """A parsed matrix spec: defaults, axes, filters, overrides."""

    def __init__(self, name="matrix"):
        self.name = name
        self.defaults = {}
        self.axes = []
        #: ``("only"|"no", parsed_filter, raw_text)`` in file order.
        self.filters = []
        #: ``(parsed_filter, raw_text, params)`` in file order.
        self.overrides = []

    # -- parsing -------------------------------------------------------

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read(), source=str(path))

    @classmethod
    def loads(cls, text, source="<matrix>"):
        spec = cls()
        section = None  # None | ("axis", Axis) | ("override", params)
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].rstrip()
            if not line.strip():
                continue
            where = f"{source}:{lineno}"
            stripped = line.strip()
            if stripped.startswith("["):
                section = spec._parse_section_header(stripped, where)
                continue
            if stripped.startswith(("only ", "no ")):
                # Filters are global wherever they appear, and close
                # the section they interrupt.
                section = None
                spec._parse_top_level(stripped, where)
                continue
            if section is None:
                spec._parse_top_level(stripped, where)
            elif section[0] == "axis":
                spec._parse_axis_value(section[1], stripped, where)
            else:
                spec._parse_override_line(section[1], stripped, where)
        spec._validate()
        return spec

    def _parse_section_header(self, line, where):
        if not line.endswith("]"):
            raise MatrixSpecError(f"{where}: unterminated section header {line!r}")
        header = line[1:-1].strip()
        kind, _, rest = header.partition(" ")
        rest = rest.strip()
        if kind == "axis":
            if not _LABEL_RE.match(rest or ""):
                raise MatrixSpecError(f"{where}: bad axis name {rest!r}")
            if any(axis.name == rest for axis in self.axes):
                raise MatrixSpecError(f"{where}: duplicate axis {rest!r}")
            axis = Axis(rest)
            self.axes.append(axis)
            return ("axis", axis)
        if kind == "override":
            if not rest:
                raise MatrixSpecError(f"{where}: [override] needs a filter")
            params = {}
            self.overrides.append(
                (parse_filter(rest, where), rest, params)
            )
            return ("override", params)
        raise MatrixSpecError(
            f"{where}: unknown section {kind!r} (expected [axis NAME] "
            "or [override FILTER])"
        )

    def _parse_top_level(self, line, where):
        for keyword in ("only", "no"):
            prefix = keyword + " "
            if line.startswith(prefix):
                expr = line[len(prefix):].strip()
                self.filters.append((keyword, parse_filter(expr, where), expr))
                return
        if "=" not in line:
            raise MatrixSpecError(
                f"{where}: expected key = value, only/no filter, or a "
                f"section header; got {line!r}"
            )
        key, _, raw = line.partition("=")
        key, value = key.strip(), coerce_value(raw.strip())
        if key == "name":
            if not _LABEL_RE.match(str(value)):
                raise MatrixSpecError(f"{where}: bad matrix name {value!r}")
            self.name = str(value)
            return
        if key in self.defaults:
            raise MatrixSpecError(f"{where}: duplicate default {key!r}")
        self.defaults[key] = _validate_param(key, value, where)

    def _parse_axis_value(self, axis, line, where):
        label, sep, rest = line.partition(":")
        label = label.strip()
        if not _LABEL_RE.match(label):
            raise MatrixSpecError(f"{where}: bad value label {label!r}")
        if label in axis.labels:
            raise MatrixSpecError(
                f"{where}: duplicate label {label!r} on axis {axis.name!r}"
            )
        params = _parse_assignments(rest, where) if sep else {}
        axis.values.append((label, params))

    def _parse_override_line(self, params, line, where):
        params.update(_parse_assignments(line, where))

    # -- validation ----------------------------------------------------

    def _validate(self):
        if not self.axes:
            raise MatrixSpecError(f"matrix {self.name!r} declares no axes")
        for axis in self.axes:
            if not axis.values:
                raise MatrixSpecError(
                    f"axis {axis.name!r} declares no values"
                )
        known = {
            (axis.name, label) for axis in self.axes for label in axis.labels
        }
        known_labels = {label for _axis, label in known}
        axis_names = {axis.name for axis in self.axes}
        for parsed, raw in [
            (parsed, raw) for _kind, parsed, raw in self.filters
        ] + [(parsed, raw) for parsed, raw, _params in self.overrides]:
            for alternative in parsed:
                for axis, label in alternative:
                    if axis is not None:
                        if axis not in axis_names:
                            raise MatrixSpecError(
                                f"filter {raw!r} names unknown axis {axis!r}"
                            )
                        if (axis, label) not in known:
                            raise MatrixSpecError(
                                f"filter {raw!r} names unknown value "
                                f"{axis}={label}"
                            )
                    elif label not in known_labels:
                        raise MatrixSpecError(
                            f"filter {raw!r} names unknown label {label!r}"
                        )

    # -- introspection -------------------------------------------------

    @property
    def cartesian_count(self):
        """Variant count before filters (the raw cartesian product)."""
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def describe_lines(self):
        """Deterministic axis/filter summary for ``repro matrix list``."""
        lines = [
            f"matrix {self.name}: {len(self.axes)} axes, "
            f"{self.cartesian_count} cartesian variants"
        ]
        for key in sorted(self.defaults):
            lines.append(f"  default  {key} = {self.defaults[key]}")
        for axis in self.axes:
            lines.append(
                f"  axis     {axis.name:<12} {', '.join(axis.labels)}"
            )
        for kind, _parsed, raw in self.filters:
            lines.append(f"  filter   {kind} {raw}")
        for _parsed, raw, params in self.overrides:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            lines.append(f"  override {raw}: {rendered}")
        return lines

    def __repr__(self):
        return (
            f"<MatrixSpec {self.name} axes={len(self.axes)} "
            f"cartesian={self.cartesian_count}>"
        )
