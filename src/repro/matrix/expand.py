"""Deterministic expansion of a :class:`MatrixSpec` into variants.

Expansion is the cartesian product of the axes in declaration order,
filtered by the spec's ``only``/``no`` expressions (plus any extra
filters the caller passes — the CLI's ``--only``/``--no``), with
override sections patched onto every surviving variant in file order.

Variant IDs are derived from axis *values*, never from enumeration
order: ``axis=label`` pairs sorted by axis name and joined with
commas, e.g. ``ksm=settled,probe=p12,seed=s0,workload=steady``.
Reordering axes in the spec, adding a filter, or inserting a new axis
value therefore never renames the variants that survive — which is
what makes expected-result pinning stable across spec edits.
"""

import itertools

from repro.matrix.spec import (
    BRANCH_KEYS,
    WARM_KEYS,
    MatrixSpecError,
    parse_filter,
)


class Variant:
    """One expanded cell of the matrix.

    ``labels`` maps axis name → value label (axis declaration order);
    ``params`` is the fully resolved parameter dict (defaults, then
    axis overrides, then matching ``[override]`` sections).
    """

    def __init__(self, labels, params):
        self.labels = dict(labels)
        self.params = dict(params)

    @property
    def variant_id(self):
        return ",".join(
            f"{axis}={label}" for axis, label in sorted(self.labels.items())
        )

    def warm_params(self):
        """The shared warm-up prefix parameters (including ``seed``)."""
        return {
            key: self.params[key] for key in WARM_KEYS if key in self.params
        }

    def branch_params(self):
        """The divergent branch-phase parameters."""
        return {
            key: self.params[key] for key in BRANCH_KEYS if key in self.params
        }

    def warm_key(self):
        """Hashable identity of the warm-up prefix this variant needs.

        Variants with equal warm keys replay byte-identical warm-ups,
        so the runner groups them onto one snapshot and forks each.
        """
        return tuple(sorted(self.warm_params().items()))

    def matches(self, parsed_filter):
        """True when any alternative of ``parsed_filter`` matches."""
        for alternative in parsed_filter:
            for axis, label in alternative:
                if axis is not None:
                    if self.labels.get(axis) != label:
                        break
                elif label not in self.labels.values():
                    break
            else:
                return True
        return False

    def __repr__(self):
        return f"<Variant {self.variant_id}>"


def _as_parsed(expr, where):
    if expr is None:
        return None
    if isinstance(expr, str):
        return parse_filter(expr, where)
    return expr


def expand(spec, only=None, no=None):
    """Expand ``spec`` into its :class:`Variant` list.

    ``only``/``no`` are extra filter expressions (strings or
    pre-parsed) applied after the spec's own filters — the CLI's
    sub-selection hook.  Raises :class:`MatrixSpecError` when the
    result is empty, which is always a spec (or filter) bug.
    """
    only = _as_parsed(only, "--only")
    no = _as_parsed(no, "--no")
    variants = []
    axis_names = [axis.name for axis in spec.axes]
    for combo in itertools.product(*(axis.values for axis in spec.axes)):
        labels = dict(zip(axis_names, (label for label, _params in combo)))
        params = dict(spec.defaults)
        for _label, value_params in combo:
            params.update(value_params)
        variant = Variant(labels, params)
        keep = True
        for kind, parsed, _raw in spec.filters:
            if kind == "only" and not variant.matches(parsed):
                keep = False
                break
            if kind == "no" and variant.matches(parsed):
                keep = False
                break
        if keep and only is not None and not variant.matches(only):
            keep = False
        if keep and no is not None and variant.matches(no):
            keep = False
        if not keep:
            continue
        for parsed, _raw, override_params in spec.overrides:
            if variant.matches(parsed):
                variant.params.update(override_params)
        variants.append(variant)
    if not variants:
        raise MatrixSpecError(
            f"matrix {spec.name!r} expands to zero variants "
            "(filters eliminated everything)"
        )
    seen = {}
    for variant in variants:
        if variant.variant_id in seen:
            raise MatrixSpecError(
                f"duplicate variant id {variant.variant_id!r}"
            )
        seen[variant.variant_id] = variant
    return variants


def group_by_warm_key(variants):
    """Warm-fork grouping: ``[(warm_key, [variants...]), ...]``.

    Groups appear in order of first appearance in expansion order, and
    variants keep expansion order within their group — both matter for
    the deterministic serial/pooled merge.
    """
    groups = {}
    for variant in variants:
        groups.setdefault(variant.warm_key(), []).append(variant)
    return list(groups.items())
