"""Expected-result pinning: check matrix outcomes into the repo.

An expectations file maps variant ID → fingerprint.  ``repro matrix
pin`` writes one from a run; ``repro matrix run`` diffs fresh results
against it and fails loudly on drift — the tp-libvirt "expected result"
column, made executable.  Because fingerprints are pure virtual-time
state, the same file holds on every machine.
"""

import json
import os


def default_expectations_path(spec_path):
    """``foo.cfg`` → ``foo.expectations.json`` (next to the spec)."""
    stem, ext = os.path.splitext(str(spec_path))
    if ext != ".cfg":
        stem = str(spec_path)
    return stem + ".expectations.json"


class ExpectationDiff:
    """Outcome of diffing a report against pinned expectations."""

    def __init__(self):
        self.matched = []
        #: ``{variant_id: {"expected": ..., "observed": ...}}``
        self.mismatched = {}
        #: Pinned but absent from the report (filtered runs are fine —
        #: callers decide whether missing pins are an error).
        self.missing = []
        #: Present in the report but never pinned.
        self.unpinned = []

    @property
    def clean(self):
        return not self.mismatched and not self.unpinned

    def lines(self, verbose=False):
        lines = [
            f"expectations: {len(self.matched)} matched, "
            f"{len(self.mismatched)} mismatched, {len(self.unpinned)} "
            f"unpinned, {len(self.missing)} pinned-but-not-run"
        ]
        for variant_id in sorted(self.mismatched):
            lines.append(f"  MISMATCH {variant_id}")
            if verbose:
                detail = self.mismatched[variant_id]
                expected, observed = detail["expected"], detail["observed"]
                for key in sorted(set(expected) | set(observed)):
                    want, got = expected.get(key), observed.get(key)
                    if want != got:
                        lines.append(
                            f"    {key}: expected {want!r}, observed {got!r}"
                        )
        for variant_id in sorted(self.unpinned):
            lines.append(f"  UNPINNED {variant_id} (run `repro matrix pin`)")
        for variant_id in sorted(self.missing):
            lines.append(f"  not run  {variant_id}")
        return lines


class Expectations:
    """The pinned ``{variant_id: fingerprint}`` table."""

    def __init__(self, name, pins=None):
        self.name = name
        self.pins = dict(pins or {})

    @classmethod
    def from_report(cls, report):
        return cls(report.name, report.fingerprints())

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return cls(data.get("matrix", "matrix"), data.get("expectations", {}))

    def to_json(self):
        return (
            json.dumps(
                {"matrix": self.name, "expectations": self.pins},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def update_from(self, report):
        """Re-pin every variant the report ran; keep the others."""
        self.pins.update(report.fingerprints())

    def diff(self, report):
        """Compare ``report`` against the pins; returns ExpectationDiff.

        Fingerprints are compared after a JSON round-trip so a freshly
        computed report diffs identically to one reloaded from disk
        (lists vs tuples, float round-tripping).
        """
        diff = ExpectationDiff()
        observed = {
            variant_id: _normalize(fingerprint)
            for variant_id, fingerprint in report.fingerprints().items()
        }
        pinned = {
            variant_id: _normalize(fingerprint)
            for variant_id, fingerprint in self.pins.items()
        }
        for variant_id, fingerprint in observed.items():
            if variant_id not in pinned:
                diff.unpinned.append(variant_id)
            elif pinned[variant_id] == fingerprint:
                diff.matched.append(variant_id)
            else:
                diff.mismatched[variant_id] = {
                    "expected": pinned[variant_id],
                    "observed": fingerprint,
                }
        diff.missing = sorted(set(pinned) - set(observed))
        return diff

    def __repr__(self):
        return f"<Expectations {self.name} pins={len(self.pins)}>"


def _normalize(value):
    return json.loads(json.dumps(value))
