"""``repro matrix`` subcommands: run, list, expand, pin, diff.

Wired into the main parser by :func:`add_matrix_commands`; the heavy
imports stay inside the handlers so ``repro matrix list`` (and every
non-matrix command) never pays for the fleet stack.
"""

import argparse
import sys


def positive_int(text):
    """argparse type: an int >= 1, with a clear error (no pool traceback)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _load_spec(args):
    from repro.matrix.spec import MatrixSpec

    return MatrixSpec.load(args.spec)


def _expectations_path(args):
    from repro.matrix.pinning import default_expectations_path

    return args.expectations or default_expectations_path(args.spec)


def cmd_matrix_list(args):
    """Axes and mixes, no fleet built — always exits 0."""
    from repro.faults.chaos import STANDARD_MIXES
    from repro.matrix.spec import BRANCH_KEYS, WARM_KEYS

    if args.spec:
        spec = _load_spec(args)
        from repro.matrix.expand import expand, group_by_warm_key

        for line in spec.describe_lines():
            print(line)
        variants = expand(spec)
        groups = group_by_warm_key(variants)
        print(
            f"  expands to {len(variants)} variants in "
            f"{len(groups)} warm groups"
        )
        return 0
    print("matrix parameters:")
    print(f"  warm (group-defining): {', '.join(WARM_KEYS)}")
    print(f"  branch:                {', '.join(BRANCH_KEYS)}")
    print("fault mixes (for `faults = mix:count@horizon`):")
    for mix in sorted(STANDARD_MIXES):
        print(f"  {mix:<10} {', '.join(STANDARD_MIXES[mix])}")
    return 0


def cmd_matrix_expand(args):
    """Print variant IDs, one per line (stdout stays diff-able)."""
    from repro.matrix.expand import expand, group_by_warm_key

    spec = _load_spec(args)
    variants = expand(spec, only=args.only, no=args.no)
    for variant in variants:
        print(variant.variant_id)
    groups = group_by_warm_key(variants)
    print(
        f"[matrix] {spec.name}: {len(variants)} variants, "
        f"{len(groups)} warm groups",
        file=sys.stderr,
    )
    return 0


def _run_matrix(args, capture_metrics=False):
    from repro.matrix.runner import MatrixRunner

    spec = _load_spec(args)
    runner = MatrixRunner(
        spec,
        processes=args.processes,
        warm_fork=not getattr(args, "cold", False),
        capture_metrics=capture_metrics,
        shards=getattr(args, "shards", None),
    )
    report = runner.run(only=args.only, no=args.no)
    return spec, report


def cmd_matrix_run(args):
    import json
    import os

    metrics_out = getattr(args, "matrix_metrics_out", None)
    capture_metrics = bool(metrics_out or args.probe_budget is not None)
    spec, report = _run_matrix(args, capture_metrics=capture_metrics)
    print(report.summary())
    if args.report_out:
        report.write(args.report_out)
        print(f"[matrix] wrote report to {args.report_out}", file=sys.stderr)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(
                report.variant_metrics(), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(
            f"[matrix] wrote per-variant metrics to {metrics_out}",
            file=sys.stderr,
        )
    if args.probe_budget is not None:
        violations = report.probe_budget_violations(args.probe_budget)
        for variant_id, overhead_pct in violations:
            print(
                f"[matrix] OVER BUDGET {variant_id}: probe overhead "
                f"{overhead_pct:.2f}% > {args.probe_budget:g}%",
                file=sys.stderr,
            )
        if violations:
            return 1
        print(
            f"[matrix] probe overhead within {args.probe_budget:g}% "
            f"for all {len(report.entries)} variants",
            file=sys.stderr,
        )
    expectations_path = _expectations_path(args)
    if not os.path.exists(expectations_path):
        print(
            f"[matrix] no expectations at {expectations_path} "
            "(pin with `repro matrix pin`)",
            file=sys.stderr,
        )
        return 0
    from repro.matrix.pinning import Expectations

    diff = Expectations.load(expectations_path).diff(report)
    for line in diff.lines(verbose=True):
        print(line)
    return 0 if diff.clean else 1


def cmd_matrix_pin(args):
    from repro.matrix.pinning import Expectations

    import os

    spec, report = _run_matrix(args)
    expectations_path = _expectations_path(args)
    if os.path.exists(expectations_path):
        expectations = Expectations.load(expectations_path)
        expectations.update_from(report)
    else:
        expectations = Expectations.from_report(report)
    expectations.save(expectations_path)
    print(
        f"[matrix] pinned {len(report.entries)} variants "
        f"({len(expectations.pins)} total) to {expectations_path}"
    )
    return 0


def cmd_matrix_diff(args):
    """Diff a saved MatrixReport against pinned expectations — offline,
    no fleet built."""
    from repro.matrix.pinning import Expectations
    from repro.matrix.report import MatrixReport

    report = MatrixReport.load(args.report)
    expectations = Expectations.load(_expectations_path(args))
    diff = expectations.diff(report)
    for line in diff.lines(verbose=True):
        print(line)
    return 0 if diff.clean else 1


def add_matrix_commands(subparsers):
    """Register the ``matrix`` subcommand tree on the main parser."""
    matrix = subparsers.add_parser(
        "matrix",
        help="declarative scenario matrices: expand, run, pin, diff",
    )
    matrix_sub = matrix.add_subparsers(dest="matrix_command", required=True)

    def _spec_arg(parser, required=True):
        if required:
            parser.add_argument("spec", help="matrix spec (.cfg) path")
        else:
            parser.add_argument(
                "spec", nargs="?", default=None, help="matrix spec (.cfg) path"
            )

    def _filter_args(parser):
        parser.add_argument(
            "--only",
            metavar="EXPR",
            help="keep only variants matching EXPR "
            "(tp-libvirt style: ',' = or, '..' = and)",
        )
        parser.add_argument(
            "--no", metavar="EXPR", help="drop variants matching EXPR"
        )

    def _run_args(parser):
        _filter_args(parser)
        parser.add_argument(
            "--processes",
            type=positive_int,
            default=None,
            metavar="P",
            help="spread warm groups across P worker processes "
            "(deterministic merge; report identical to serial)",
        )
        parser.add_argument(
            "--shards",
            type=positive_int,
            default=None,
            metavar="N",
            help="run each variant's branch phase sharded across N "
            "worker processes with rack-aligned host ownership "
            "(fingerprints identical to serial; N must not exceed "
            "the fleet's host count)",
        )
        parser.add_argument(
            "--cold",
            action="store_true",
            help="disable warm-fork grouping: every variant pays its own "
            "warm-up (the comparator the benchmark gates against)",
        )
        parser.add_argument(
            "--expectations",
            metavar="PATH",
            help="expectations file (default: <spec>.expectations.json)",
        )

    matrix_list = matrix_sub.add_parser(
        "list", help="print axes/mixes (no fleet is built)"
    )
    _spec_arg(matrix_list, required=False)
    matrix_list.set_defaults(func=cmd_matrix_list)

    matrix_expand = matrix_sub.add_parser(
        "expand", help="print the expanded variant IDs"
    )
    _spec_arg(matrix_expand)
    _filter_args(matrix_expand)
    matrix_expand.set_defaults(func=cmd_matrix_expand)

    matrix_run = matrix_sub.add_parser(
        "run", help="run every variant; diff against pinned expectations"
    )
    _spec_arg(matrix_run)
    _run_args(matrix_run)
    matrix_run.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the MatrixReport JSON (with wall clocks) to PATH",
    )
    matrix_run.add_argument(
        "--metrics-out",
        # Own dest: the root parser's global --metrics-out dumps the
        # process-wide registry, which would clobber this file.
        dest="matrix_metrics_out",
        metavar="PATH",
        help="capture per-variant metrics (per-tenant probe overhead) "
        "and write {variant: metrics} JSON to PATH",
    )
    matrix_run.add_argument(
        "--probe-budget",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if any variant's detector probe overhead "
        "exceeds PCT percent of its branch virtual time",
    )
    matrix_run.set_defaults(func=cmd_matrix_run)

    matrix_pin = matrix_sub.add_parser(
        "pin", help="run and pin the results as expectations"
    )
    _spec_arg(matrix_pin)
    _run_args(matrix_pin)
    matrix_pin.set_defaults(func=cmd_matrix_pin)

    matrix_diff = matrix_sub.add_parser(
        "diff", help="diff a saved MatrixReport against expectations"
    )
    _spec_arg(matrix_diff)
    matrix_diff.add_argument("report", help="MatrixReport JSON path")
    matrix_diff.add_argument(
        "--expectations",
        metavar="PATH",
        help="expectations file (default: <spec>.expectations.json)",
    )
    matrix_diff.set_defaults(func=cmd_matrix_diff)
    return matrix
