"""Content-addressed, refcounted storage for page contents.

Every distinct page content in a :class:`~repro.hardware.memory.
PhysicalMemory` is *interned* exactly once as a :class:`PageRecord`;
frames hold a reference to the record instead of carrying their own
``bytes``.  Two consequences the data plane is built on:

* identical contents (same-build OS pages across guests, File-A copies,
  the canonical zero page ``b""``) share one record, so the digest of a
  content is computed at most once over the record's lifetime — the KSM
  scan loop never re-hashes a page that merely sat still;
* content equality degrades to record identity for anything holding a
  record, which is what lets the KSM volatility filter and the
  migration dedup table run on plain dict lookups.

The intern table is keyed by the content ``bytes`` value itself rather
than by digest: CPython caches the hash of a ``bytes`` object, so
re-interning a content that is already resident costs one dict probe
with a cached hash — no BLAKE2 call, no byte comparison beyond the
bucket check.  Digests are materialized lazily, only when the KSM trees
or the migration dedup wire format actually need one.

Refcounts here count *frames* holding the record (one per distinct
frame), not pfn mappings — pfn-level sharing is the frame refcount's
job, one layer up.
"""

import hashlib
from copy import deepcopy as _deepcopy

from repro.errors import MemoryError_

PAGE_SIZE = 4096

_DIGEST_SIZE = 16


def content_digest(content):
    """Stable 16-byte digest of logical page content."""
    return hashlib.blake2b(content, digest_size=_DIGEST_SIZE).digest()


class PageRecord:
    """One unique page content plus its bookkeeping.

    ``refs`` counts the frames holding this record.  ``_digest`` is the
    lazily computed :func:`content_digest` — read it through
    :attr:`digest` (records are immutable, so the cache never
    invalidates).
    """

    __slots__ = ("content", "refs", "_digest")

    def __init__(self, content, refs=1):
        self.content = content
        self.refs = refs
        self._digest = None

    @property
    def digest(self):
        digest = self._digest
        if digest is None:
            digest = self._digest = content_digest(self.content)
        return digest

    def __deepcopy__(self, memo):
        # Content bytes are immutable and the cached digest transfers;
        # a flat copy sidesteps the reduce machinery.  Engine snapshots
        # never reach this (records are memo-preseeded to themselves) —
        # it serves standalone deepcopies of memories in tests/tools.
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone.content = self.content
        clone.refs = self.refs
        clone._digest = self._digest
        return clone

    def __repr__(self):
        return f"<PageRecord {len(self.content)}B refs={self.refs}>"


class PageStore:
    """The intern table: content bytes -> live :class:`PageRecord`.

    Owned by one :class:`~repro.hardware.memory.PhysicalMemory`; the
    ``perf`` counters (``page_store_interns`` / ``page_store_hits``)
    make the dedup ratio visible per run.
    """

    __slots__ = ("_by_content", "_perf")

    def __init__(self, perf):
        self._by_content = {}
        self._perf = perf

    def __deepcopy__(self, memo):
        # Flat table copy: keys are immutable bytes (shared), records
        # route through the memo so snapshot forks keep sharing them by
        # identity while standalone deepcopies still duplicate.
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone._perf = _deepcopy(self._perf, memo)
        clone._by_content = {
            content: _deepcopy(record, memo)
            for content, record in self._by_content.items()
        }
        return clone

    @property
    def unique_contents(self):
        """Number of distinct page contents currently resident."""
        return len(self._by_content)

    def iter_records(self):
        """Yield every resident record.

        Snapshot/fork uses this to pre-seed the copy memo so records
        are shared by identity instead of byte-copied.
        """
        return iter(self._by_content.values())

    def refs_partition(self):
        """``{content: refs}`` for every resident record.

        A point-in-time view of the refcount partition; the fork
        conservation tests diff this before a fork against after the
        fork is disposed.
        """
        return {
            content: record.refs
            for content, record in self._by_content.items()
        }

    def intern(self, content):
        """Return the record for ``content``, creating it if needed.

        Bumps the record's refcount; the caller owns one reference and
        must :meth:`release` it when the holding frame dies.
        """
        record = self._by_content.get(content)
        if record is None:
            if len(content) > PAGE_SIZE:
                raise MemoryError_(
                    f"page content of {len(content)} bytes exceeds PAGE_SIZE"
                )
            record = PageRecord(content)
            self._by_content[content] = record
            self._perf.page_store_interns += 1
        else:
            record.refs += 1
            self._perf.page_store_hits += 1
        return record

    def release(self, record):
        """Drop one reference; evicts the record when the last one dies.

        Safe to call with a record this store never interned (a
        standalone frame remapped into the memory by a test): eviction
        only happens when the table entry is this exact record.
        """
        record.refs -= 1
        if record.refs <= 0 and self._by_content.get(record.content) is record:
            del self._by_content[record.content]

    def reintern(self, record, content):
        """Swap a frame's record for one holding ``content``.

        Interning before releasing keeps a same-content rewrite from
        evicting and recreating the record (and losing its cached
        digest).
        """
        new_record = self.intern(content)
        self.release(record)
        return new_record
