"""The physical machine: the hardware root every simulation starts from.

The default construction matches the paper's testbed: a Dell Precision
T1700 with an i7-4790 @ 3.60 GHz and 16 GiB of memory (Section V).
"""

from repro.hardware.cpu import CpuPackage
from repro.hardware.memory import PhysicalMemory
from repro.hypervisor.exits import CostModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class Machine:
    """A physical machine: engine + CPU + physical memory + RNG streams."""

    def __init__(
        self,
        name="t1700",
        engine=None,
        cpu=None,
        memory_mb=16384,
        seed=1701,
        cost_model=None,
    ):
        self.name = name
        self.engine = engine if engine is not None else Engine()
        self.cpu = cpu if cpu is not None else CpuPackage()
        self.memory = self.engine.register_memory(
            PhysicalMemory(memory_mb, perf=self.engine.perf)
        )
        self.rng = RngRegistry(seed)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        # One scheduler for the whole package: vCPUs of every VM at
        # every nesting depth ultimately compete for these cores.
        from repro.hypervisor.scheduler import CpuScheduler

        self.scheduler = CpuScheduler(self.cpu)

    def __repr__(self):
        return f"<Machine {self.name} mem={self.memory.size_mb}MB {self.cpu!r}>"
