"""CPU package model.

Carries the identification and virtualization-extension facts the rest
of the stack cares about: whether VMX (Intel VT-x) is present and
whether it is *exposed to guests* (nested virtualization requires the
parent hypervisor to expose VMX into the VM, KVM's ``nested=1``).
"""

from repro.errors import HardwareError


class CpuPackage:
    """A processor package as seen by an operating system."""

    def __init__(
        self,
        model="Intel(R) Core(TM) i7-4790 CPU @ 3.60GHz",
        cores=4,
        threads_per_core=2,
        frequency_ghz=3.6,
        vmx=True,
        vendor="intel",
    ):
        if cores < 1 or threads_per_core < 1:
            raise HardwareError("CPU needs at least one core/thread")
        if vendor not in ("intel", "amd"):
            raise HardwareError(f"unknown CPU vendor {vendor!r}")
        self.model = model
        self.cores = cores
        self.threads_per_core = threads_per_core
        self.frequency_ghz = frequency_ghz
        #: Hardware virtualization extension present (VT-x / AMD-V).
        self.vmx = vmx
        #: 'intel' VMCS layout vs 'amd' VMCB layout — the VMCS-scan
        #: detection baseline only knows the former (paper §VI-E).
        self.vendor = vendor

    @property
    def logical_cpus(self):
        return self.cores * self.threads_per_core

    def virtual_copy(self, vcpus, expose_vmx):
        """The CPU a guest sees: same model string, fewer cores.

        ``expose_vmx`` models KVM's nested flag; without it an L1 guest
        cannot run its own hypervisor.
        """
        if vcpus < 1:
            raise HardwareError("guest needs at least one vCPU")
        return CpuPackage(
            model=self.model,
            cores=vcpus,
            threads_per_core=1,
            frequency_ghz=self.frequency_ghz,
            vmx=self.vmx and expose_vmx,
            vendor=self.vendor,
        )

    def __repr__(self):
        vmx = "vmx" if self.vmx else "no-vmx"
        return f"<CpuPackage {self.logical_cpus}x {self.frequency_ghz}GHz {vmx}>"
