"""Physical memory frames and the memory-domain abstraction.

Layout of the model
-------------------

* :class:`PhysicalMemory` is the bottom of every translation chain: it
  maps physical frame numbers (pfns) to :class:`Frame` objects.  Several
  pfns may map to the *same* frame — that is exactly what KSM produces
  when it merges identical pages.
* Frames do not own their bytes: contents live in a content-addressed
  :class:`~repro.hardware.page_store.PageStore`, interned once per
  unique content with a refcount of holding frames.  Copy-on-write is a
  refcount decrement plus a re-intern, and ``pages_saved_by_sharing``
  is a free counter read instead of an O(frames) sweep.
* :class:`MemoryDomain` is the interface shared by physical memory and
  guest memories (``repro.hypervisor.ept.GuestMemory``).  A nested
  guest's memory is a domain backed by another domain, so an L2 page
  ultimately resolves to an L0 frame — which is why L0's KSM can merge
  an L2 page with an L0 page, the property the detector relies on.

Frame contents are ``bytes`` of length <= 4096, logically right-padded
with zeros.  The empty string is the canonical zero page.  Contents are
compared by value and hashed with BLAKE2b for the KSM trees.
"""

from copy import deepcopy as _deepcopy
from itertools import count

from repro.errors import MemoryError_
from repro.hardware.page_store import (
    PAGE_SIZE,
    PageRecord,
    PageStore,
    content_digest,
)
from repro.sim.perf import PerfCounters

__all__ = [
    "PAGE_SIZE",
    "Frame",
    "MemoryDomain",
    "PhysicalMemory",
    "WriteOutcome",
    "content_digest",
]


class Frame:
    """One physical page frame: a shared handle onto a page record.

    ``refcount`` counts how many pfns map to this frame; a refcount above
    one means the frame is KSM-shared and any write must break copy-on-
    write.  ``mergeable`` marks frames inside madvise(MADV_MERGEABLE)
    regions — only those are scanned by ksmd, mirroring Linux.

    The frame object itself is the identity KSM trades in (merges make
    several pfns point at *the same* Frame); the bytes live one level
    down in a :class:`~repro.hardware.page_store.PageRecord`.
    """

    __slots__ = ("fid", "record", "refcount", "mergeable", "ksm_shared")

    def __init__(self, fid, content=b"", mergeable=False, record=None):
        if record is None:
            if len(content) > PAGE_SIZE:
                raise MemoryError_(
                    f"page content of {len(content)} bytes exceeds PAGE_SIZE"
                )
            record = PageRecord(content)
        self.fid = fid
        self.record = record
        self.refcount = 1
        self.mergeable = mergeable
        self.ksm_shared = False

    @property
    def content(self):
        return self.record.content

    @property
    def digest(self):
        """Content digest, computed once per unique content."""
        return self.record.digest

    def set_content(self, content):
        """Replace content on a *standalone* frame (tests, tooling).

        Frames owned by a :class:`PhysicalMemory` are rewritten through
        ``memory.write`` instead, so the page store's refcounts stay
        consistent.
        """
        if len(content) > PAGE_SIZE:
            raise MemoryError_(
                f"page content of {len(content)} bytes exceeds PAGE_SIZE"
            )
        self.record = PageRecord(content)

    def __deepcopy__(self, memo):
        # Hand-rolled: frames dominate engine snapshot forks (one per
        # distinct page) and every slot but ``record`` is atomic.  The
        # record goes through the memo, where snapshot pre-seeding maps
        # it to itself (content shared, copy-on-write by refcount).
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone.fid = self.fid
        record = self.record
        copied = memo.get(id(record))
        clone.record = copied if copied is not None else _deepcopy(record, memo)
        clone.refcount = self.refcount
        clone.mergeable = self.mergeable
        clone.ksm_shared = self.ksm_shared
        return clone

    def __repr__(self):
        kind = "shared" if self.ksm_shared else "private"
        return f"<Frame {self.fid} {kind} refs={self.refcount}>"


class WriteOutcome:
    """Mechanical facts about one page write, for the cost model.

    The memory layer reports *what happened*; translating that into
    virtual time (exit costs, CoW fault latency) is the hypervisor cost
    model's job, so all calibration constants stay in one place.
    """

    __slots__ = ("cow_broken", "first_touch_levels", "depth", "pfn_chain")

    def __init__(self):
        self.cow_broken = False
        self.first_touch_levels = 0
        self.depth = 0
        self.pfn_chain = []

    def __repr__(self):
        return (
            f"<WriteOutcome cow={self.cow_broken} "
            f"faults={self.first_touch_levels} depth={self.depth}>"
        )


class MemoryDomain:
    """Interface for anything pages can be read from / written to."""

    def read(self, pfn):
        """Return the logical content of page ``pfn`` (b'' if untouched)."""
        raise NotImplementedError

    def read_many(self, pfns):
        """Return ``[(pfn, content), ...]`` for ``pfns`` in order.

        Bulk read used by the migration stream; subclasses override it
        with a loop-hoisted fast path.
        """
        read = self.read
        return [(pfn, read(pfn)) for pfn in pfns]

    def write(self, pfn, content, outcome=None):
        """Write ``content`` to page ``pfn``; returns a WriteOutcome."""
        raise NotImplementedError

    def resolve(self, pfn):
        """Return (physical_memory, host_pfn) for ``pfn``, or (None, None)
        when the page has never been materialized."""
        raise NotImplementedError

    @property
    def nesting_depth(self):
        """0 for physical memory, parent depth + 1 for guest memories."""
        raise NotImplementedError


class PhysicalMemory(MemoryDomain):
    """The host's physical memory: pfn -> Frame with lazy materialization.

    Only touched pages own a frame; untouched pages read as the zero
    page.  This keeps a simulated 16 GiB host cheap while preserving
    honest content semantics for every page that matters.
    """

    def __init__(self, size_mb=16384, perf=None):
        self.size_mb = size_mb
        self.total_pages = size_mb * 1024 * 1024 // PAGE_SIZE
        #: Perf counters shared with the engine when constructed via
        #: Machine; standalone memories count into a private instance.
        self.perf = perf if perf is not None else PerfCounters()
        self._store = PageStore(self.perf)
        self._frames = {}
        # Incremental index of mergeable pfns (dict used as an ordered
        # set): maintained on allocate/free so the KSM daemon never
        # rebuilds an O(all-frames) candidate list per pass.  Pfns are
        # handed out monotonically and never reused, so insertion order
        # here matches the _frames iteration order the scan relied on.
        self._mergeable = {}
        # Scan-candidate index: pfn -> PageRecord for every pfn whose
        # current frame is mergeable and not yet KSM-shared.  The KSM
        # scan loop runs entirely on this dict — no Frame attribute
        # chasing, no digest recomputation for pages that sat still.
        self._scan_records = {}
        # Parked candidates: record -> {pfn: None} for stabilized
        # singletons KSM retired from the active index (no partner can
        # exist while their content is unique).  Parked pfns stay in
        # ``_mergeable`` so pass boundaries are unchanged; they rejoin
        # ``_scan_records`` the moment a duplicate of their content
        # appears or they are rewritten.
        self._parked = {}
        # record -> number of candidate pfns (active + parked) holding
        # it.  A count of 1 is what licenses parking; a transition to 2
        # is what un-parks.
        self._candidate_count = {}
        # Live count of distinct frames mapped by at least one pfn
        # (shared frames counted once): +1 on allocate and CoW break,
        # -1 whenever a frame's last mapping dies.
        self._distinct = 0
        self._next_pfn = count()
        self._next_fid = count()
        self._ksm = None
        self._mergeable_generation = 0
        self._write_epoch = 0
        # Fork-shared divergence ledger: record -> None for every page
        # record this memory shares with a snapshot it was forked from
        # (None outside a fork — the write path pays one is-None check).
        self._fork_shared = None

    @property
    def nesting_depth(self):
        return 0

    @property
    def page_store(self):
        """The content-addressed store backing this memory's frames."""
        return self._store

    @property
    def allocated_pages(self):
        """Number of materialized pfn mappings."""
        return len(self._frames)

    @property
    def distinct_frames(self):
        """Number of distinct frames (shared frames counted once)."""
        return self._distinct

    @property
    def pages_saved_by_sharing(self):
        """How many frames KSM sharing has reclaimed."""
        return len(self._frames) - self._distinct

    def attach_ksm(self, ksm):
        """Register the KSM daemon that owns merge policy for this memory."""
        self._ksm = ksm

    # -- snapshot/fork bookkeeping ----------------------------------------

    def adopt_fork_records(self, track_divergence=True):
        """Take one page-store reference per distinct frame.

        Called by :mod:`repro.sim.snapshot` right after this memory was
        copied with records shared by identity: every distinct frame in
        the copy now holds the same record as its source frame, so the
        records' refcounts must rise by one per adopted frame for the
        conservation invariant (one store reference per distinct live
        frame) to keep holding on *both* sides.

        ``track_divergence`` starts the fork-shared ledger so later
        writes that replace a shared record count as
        ``perf.fork_cow_breaks``.  Returns the number of frames whose
        page content is now shared instead of copied.
        """
        fork_shared = {} if track_divergence else None
        shared = 0
        for frame in self.iter_distinct_frames():
            frame.record.refs += 1
            shared += 1
            if fork_shared is not None:
                fork_shared[frame.record] = None
        self._fork_shared = fork_shared
        return shared

    def release_fork_records(self):
        """Give back every store reference this copy's frames hold.

        The inverse of :meth:`adopt_fork_records` *plus* whatever the
        branch interned since: one reference per distinct live frame.
        After the call the shared records' refcounts are exactly what
        they were before this copy existed.
        """
        store = self._store
        for frame in self.iter_distinct_frames():
            store.release(frame.record)
        self._fork_shared = None

    def __deepcopy__(self, memo):
        """Bulk-structured copy for engine snapshot forks.

        The generic reduce path walks every pfn entry through
        ``deepcopy``; here the int-keyed indexes are copied with plain
        dict comprehensions and only frames/records route through the
        memo (where snapshot pre-seeding makes records identity-shared).
        Semantically identical to the default deepcopy — just flat.
        """
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone.size_mb = self.size_mb
        clone.total_pages = self.total_pages
        clone.perf = _deepcopy(self.perf, memo)
        clone._store = _deepcopy(self._store, memo)
        # Copying the store above put every resident record in the memo,
        # so the indexes below resolve records with a raw memo probe;
        # the fallback covers records a test remapped in from outside.
        memo_get = memo.get
        frames = {}
        for pfn, frame in self._frames.items():
            copied = memo_get(id(frame))
            if copied is None:
                copied = frame.__deepcopy__(memo)
            frames[pfn] = copied
        clone._frames = frames
        clone._mergeable = dict(self._mergeable)
        clone._scan_records = {
            pfn: memo_get(id(record)) or _deepcopy(record, memo)
            for pfn, record in self._scan_records.items()
        }
        clone._parked = {
            (memo_get(id(record)) or _deepcopy(record, memo)): dict(bucket)
            for record, bucket in self._parked.items()
        }
        clone._candidate_count = {
            (memo_get(id(record)) or _deepcopy(record, memo)): n
            for record, n in self._candidate_count.items()
        }
        clone._distinct = self._distinct
        clone._next_pfn = _deepcopy(self._next_pfn, memo)
        clone._next_fid = _deepcopy(self._next_fid, memo)
        clone._ksm = _deepcopy(self._ksm, memo)
        clone._mergeable_generation = self._mergeable_generation
        clone._write_epoch = self._write_epoch
        if self._fork_shared is None:
            clone._fork_shared = None
        else:
            clone._fork_shared = {
                _deepcopy(record, memo): None for record in self._fork_shared
            }
        return clone

    # -- scan-candidate index maintenance --------------------------------

    def _add_candidate(self, pfn, record):
        """Enter ``pfn`` into the active scan index under ``record``.

        When this makes the record's candidate count hit two, any
        parked singleton holding the same content is woken back into
        the active index — it finally has a potential merge partner.
        """
        self._scan_records[pfn] = record
        counts = self._candidate_count
        n = counts.get(record, 0) + 1
        counts[record] = n
        if n == 2:
            parked = self._parked.pop(record, None)
            if parked:
                scan_records = self._scan_records
                for parked_pfn in parked:
                    scan_records[parked_pfn] = record

    def _remove_candidate(self, pfn, record):
        """Drop ``pfn`` from the candidate index (active or parked).

        Safe to call for pfns that were never candidates (non-mergeable
        or already-shared frames): the count only moves when the pfn was
        actually indexed.
        """
        if self._scan_records.pop(pfn, None) is None:
            # Parked buckets are dicts-as-sets (values are None), so a
            # defaulted pop cannot signal a miss — test membership.
            parked = self._parked.get(record)
            if parked is None or pfn not in parked:
                return
            del parked[pfn]
            if not parked:
                del self._parked[record]
        counts = self._candidate_count
        n = counts[record] - 1
        if n:
            counts[record] = n
        else:
            del counts[record]

    def park_candidate(self, pfn, record):
        """Retire a stabilized singleton from the active scan index.

        Called by KSM when a page passed the volatility filter but can
        never merge right now: no live stable frame holds its content
        and no other candidate does either (count == 1).  Scanning it
        again each pass is a guaranteed no-op, so it sleeps here until
        :meth:`_add_candidate` sees a duplicate or a write replaces its
        record.  Parked pfns remain in the mergeable cursor, keeping
        pass boundaries — and hence merge timing — byte-identical.
        """
        if self._candidate_count.get(record) != 1:
            return False
        if self._scan_records.pop(pfn, None) is None:
            return False
        parked = self._parked.get(record)
        if parked is None:
            self._parked[record] = {pfn: None}
        else:
            parked[pfn] = None
        return True

    def allocate(self, content=b"", mergeable=False):
        """Materialize a new page; returns its pfn."""
        pfn = next(self._next_pfn)
        if pfn >= self.total_pages:
            raise MemoryError_("physical memory exhausted")
        record = self._store.intern(content)
        frame = Frame(next(self._next_fid), mergeable=mergeable, record=record)
        self._frames[pfn] = frame
        self._distinct += 1
        if mergeable:
            self._mergeable[pfn] = None
            self._mergeable_generation += 1
            self._add_candidate(pfn, record)
        return pfn

    def alloc_page(self, outcome=None, mergeable=False):
        """Domain-agnostic allocation (mirrors GuestMemory.alloc_page).

        Host-process pages are not mergeable unless madvised, matching
        Linux: pass ``mergeable=True`` for MADV_MERGEABLE regions.
        """
        pfn = self.allocate(b"", mergeable=mergeable)
        if outcome is not None:
            outcome.first_touch_levels += 1
        return pfn

    def touch_bulk(self, n_pages):
        """No-op at the host level (the host itself is never migrated)."""
        return 0

    def dirty_bulk(self, n_pages):
        """No-op at the host level."""

    def free(self, pfn):
        """Release the mapping for ``pfn`` (drops frame when last ref).

        Dropping the last reference also evicts the content from the
        page store and the scan-candidate index — a later realloc with
        identical content starts a fresh volatility-filter cycle
        instead of resurrecting stale KSM state.
        """
        frame = self._frames.pop(pfn, None)
        if frame is None:
            raise MemoryError_(f"free of unmapped pfn {pfn}")
        frame.refcount -= 1
        if frame.refcount <= 0:
            self._distinct -= 1
            if self._ksm is not None and frame.ksm_shared:
                self._ksm.forget_frame(frame)
            self._store.release(frame.record)
        if frame.mergeable:
            self._mergeable.pop(pfn, None)
            self._remove_candidate(pfn, frame.record)
            if self._ksm is not None:
                self._ksm.forget_pfn(pfn)
            self._mergeable_generation += 1

    def frame(self, pfn):
        """Return the Frame for ``pfn`` or None when untouched."""
        return self._frames.get(pfn)

    def iter_distinct_frames(self):
        """Yield every distinct mapped frame exactly once."""
        seen = set()
        seen_add = seen.add
        for frame in self._frames.values():
            key = id(frame)
            if key not in seen:
                seen_add(key)
                yield frame

    def remap(self, pfn, frame):
        """Point ``pfn`` at ``frame`` (KSM merge / CoW break mechanics)."""
        old = self._frames.get(pfn)
        if old is None:
            raise MemoryError_(f"remap of unmapped pfn {pfn}")
        if old is frame:
            return
        old.refcount -= 1
        if old.refcount <= 0:
            self._distinct -= 1
            if self._ksm is not None and old.ksm_shared:
                self._ksm.forget_frame(old)
            self._store.release(old.record)
        frame.refcount += 1
        self._frames[pfn] = frame
        self._remove_candidate(pfn, old.record)
        if frame.mergeable and not frame.ksm_shared:
            self._add_candidate(pfn, frame.record)

    def mark_ksm_shared(self, pfn, frame):
        """KSM promoted ``frame`` (mapped at ``pfn``) to the stable tree.

        Flips the frame's flag and retires the pfn from the
        scan-candidate index in one place, so the index invariant
        (candidate == mergeable and not shared) survives promotions.
        """
        frame.ksm_shared = True
        self._remove_candidate(pfn, frame.record)

    def read(self, pfn):
        frame = self._frames.get(pfn)
        return frame.record.content if frame is not None else b""

    def read_many(self, pfns):
        frames_get = self._frames.get
        return [
            (
                pfn,
                frame.record.content
                if (frame := frames_get(pfn)) is not None
                else b"",
            )
            for pfn in pfns
        ]

    def write(self, pfn, content, outcome=None):
        if outcome is None:
            outcome = WriteOutcome()
        frame = self._frames.get(pfn)
        if frame is None:
            raise MemoryError_(f"write to unmapped pfn {pfn}")
        store = self._store
        fork_shared = self._fork_shared
        if frame.refcount > 1:
            # Copy-on-write break: this pfn gets a private copy.  The
            # shared frame lives on for its other mappers.
            new_record = store.intern(content)
            if (
                fork_shared is not None
                and new_record is not frame.record
                and frame.record in fork_shared
            ):
                self.perf.fork_cow_breaks += 1
            self._remove_candidate(pfn, frame.record)
            replacement = Frame(
                next(self._next_fid),
                mergeable=frame.mergeable,
                record=new_record,
            )
            frame.refcount -= 1
            self._frames[pfn] = replacement
            self._distinct += 1
            frame = replacement
            outcome.cow_broken = True
            if frame.mergeable:
                self._write_epoch += 1
                self._add_candidate(pfn, new_record)
        else:
            was_shared = frame.ksm_shared
            if was_shared:
                # Sole remaining mapper of a stable-tree frame: still a
                # CoW break in Linux (the page sits in the stable
                # tree), after which the frame becomes a normal private
                # page.
                if self._ksm is not None:
                    self._ksm.forget_frame(frame)
                frame.ksm_shared = False
                outcome.cow_broken = True
            old_record = frame.record
            new_record = store.reintern(old_record, content)
            if (
                fork_shared is not None
                and new_record is not old_record
                and old_record in fork_shared
            ):
                self.perf.fork_cow_breaks += 1
            frame.record = new_record
            if frame.mergeable:
                self._write_epoch += 1
                if was_shared:
                    # The frame just left the stable tree, so the pfn
                    # re-enters the candidate set with its fresh record.
                    self._add_candidate(pfn, new_record)
                elif new_record is not old_record:
                    self._remove_candidate(pfn, old_record)
                    self._add_candidate(pfn, new_record)
                # Same record (content unchanged): candidate state —
                # active or parked — is already right.
        outcome.pfn_chain.append(pfn)
        return outcome

    def resolve(self, pfn):
        if pfn in self._frames:
            return self, pfn
        return None, None

    def iter_mergeable(self):
        """Yield (pfn, frame) for every mergeable materialized page."""
        frames = self._frames
        for pfn in self._mergeable:
            yield pfn, frames[pfn]

    def mergeable_pfns(self):
        """Snapshot list of mergeable pfns, in allocation order.

        O(mergeable pages) via the incremental index — the KSM daemon
        builds its per-pass cursor from this.
        """
        return list(self._mergeable)

    @property
    def mergeable_generation(self):
        """Bumped whenever the set of mergeable pages changes."""
        return self._mergeable_generation

    @property
    def write_epoch(self):
        """Bumped on every write to a mergeable frame (KSM idle check)."""
        return self._write_epoch
