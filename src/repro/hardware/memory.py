"""Physical memory frames and the memory-domain abstraction.

Layout of the model
-------------------

* :class:`PhysicalMemory` is the bottom of every translation chain: it
  maps physical frame numbers (pfns) to :class:`Frame` objects.  Several
  pfns may map to the *same* frame — that is exactly what KSM produces
  when it merges identical pages.
* :class:`MemoryDomain` is the interface shared by physical memory and
  guest memories (``repro.hypervisor.ept.GuestMemory``).  A nested
  guest's memory is a domain backed by another domain, so an L2 page
  ultimately resolves to an L0 frame — which is why L0's KSM can merge
  an L2 page with an L0 page, the property the detector relies on.

Frame contents are ``bytes`` of length <= 4096, logically right-padded
with zeros.  The empty string is the canonical zero page.  Contents are
compared by value and hashed with BLAKE2b for the KSM trees.
"""

import hashlib
from itertools import count

from repro.errors import MemoryError_

PAGE_SIZE = 4096

_DIGEST_SIZE = 16


def content_digest(content):
    """Stable 16-byte digest of logical page content."""
    return hashlib.blake2b(content, digest_size=_DIGEST_SIZE).digest()


class Frame:
    """One physical page frame.

    ``refcount`` counts how many pfns map to this frame; a refcount above
    one means the frame is KSM-shared and any write must break copy-on-
    write.  ``mergeable`` marks frames inside madvise(MADV_MERGEABLE)
    regions — only those are scanned by ksmd, mirroring Linux.
    """

    __slots__ = ("fid", "content", "refcount", "mergeable", "ksm_shared", "_digest")

    def __init__(self, fid, content=b"", mergeable=False):
        if len(content) > PAGE_SIZE:
            raise MemoryError_(
                f"page content of {len(content)} bytes exceeds PAGE_SIZE"
            )
        self.fid = fid
        self.content = content
        self.refcount = 1
        self.mergeable = mergeable
        self.ksm_shared = False
        self._digest = None

    @property
    def digest(self):
        """Cached content digest; invalidated on every write."""
        if self._digest is None:
            self._digest = content_digest(self.content)
        return self._digest

    def set_content(self, content):
        if len(content) > PAGE_SIZE:
            raise MemoryError_(
                f"page content of {len(content)} bytes exceeds PAGE_SIZE"
            )
        self.content = content
        self._digest = None

    def __repr__(self):
        kind = "shared" if self.ksm_shared else "private"
        return f"<Frame {self.fid} {kind} refs={self.refcount}>"


class WriteOutcome:
    """Mechanical facts about one page write, for the cost model.

    The memory layer reports *what happened*; translating that into
    virtual time (exit costs, CoW fault latency) is the hypervisor cost
    model's job, so all calibration constants stay in one place.
    """

    __slots__ = ("cow_broken", "first_touch_levels", "depth", "pfn_chain")

    def __init__(self):
        self.cow_broken = False
        self.first_touch_levels = 0
        self.depth = 0
        self.pfn_chain = []

    def __repr__(self):
        return (
            f"<WriteOutcome cow={self.cow_broken} "
            f"faults={self.first_touch_levels} depth={self.depth}>"
        )


class MemoryDomain:
    """Interface for anything pages can be read from / written to."""

    def read(self, pfn):
        """Return the logical content of page ``pfn`` (b'' if untouched)."""
        raise NotImplementedError

    def read_many(self, pfns):
        """Return ``[(pfn, content), ...]`` for ``pfns`` in order.

        Bulk read used by the migration stream; subclasses override it
        with a loop-hoisted fast path.
        """
        read = self.read
        return [(pfn, read(pfn)) for pfn in pfns]

    def write(self, pfn, content, outcome=None):
        """Write ``content`` to page ``pfn``; returns a WriteOutcome."""
        raise NotImplementedError

    def resolve(self, pfn):
        """Return (physical_memory, host_pfn) for ``pfn``, or (None, None)
        when the page has never been materialized."""
        raise NotImplementedError

    @property
    def nesting_depth(self):
        """0 for physical memory, parent depth + 1 for guest memories."""
        raise NotImplementedError


class PhysicalMemory(MemoryDomain):
    """The host's physical memory: pfn -> Frame with lazy materialization.

    Only touched pages own a frame; untouched pages read as the zero
    page.  This keeps a simulated 16 GiB host cheap while preserving
    honest content semantics for every page that matters.
    """

    def __init__(self, size_mb=16384):
        self.size_mb = size_mb
        self.total_pages = size_mb * 1024 * 1024 // PAGE_SIZE
        self._frames = {}
        # Incremental index of mergeable pfns (dict used as an ordered
        # set): maintained on allocate/free so the KSM daemon never
        # rebuilds an O(all-frames) candidate list per pass.  Pfns are
        # handed out monotonically and never reused, so insertion order
        # here matches the _frames iteration order the scan relied on.
        self._mergeable = {}
        self._next_pfn = count()
        self._next_fid = count()
        self._ksm = None
        self._mergeable_generation = 0
        self._write_epoch = 0

    @property
    def nesting_depth(self):
        return 0

    @property
    def allocated_pages(self):
        """Number of materialized pfn mappings."""
        return len(self._frames)

    @property
    def distinct_frames(self):
        """Number of distinct frames (shared frames counted once)."""
        return len({id(f) for f in self._frames.values()})

    @property
    def pages_saved_by_sharing(self):
        """How many frames KSM sharing has reclaimed."""
        return self.allocated_pages - self.distinct_frames

    def attach_ksm(self, ksm):
        """Register the KSM daemon that owns merge policy for this memory."""
        self._ksm = ksm

    def allocate(self, content=b"", mergeable=False):
        """Materialize a new page; returns its pfn."""
        pfn = next(self._next_pfn)
        if pfn >= self.total_pages:
            raise MemoryError_("physical memory exhausted")
        self._frames[pfn] = Frame(next(self._next_fid), content, mergeable)
        if mergeable:
            self._mergeable[pfn] = None
            self._mergeable_generation += 1
        return pfn

    def alloc_page(self, outcome=None, mergeable=False):
        """Domain-agnostic allocation (mirrors GuestMemory.alloc_page).

        Host-process pages are not mergeable unless madvised, matching
        Linux: pass ``mergeable=True`` for MADV_MERGEABLE regions.
        """
        pfn = self.allocate(b"", mergeable=mergeable)
        if outcome is not None:
            outcome.first_touch_levels += 1
        return pfn

    def touch_bulk(self, n_pages):
        """No-op at the host level (the host itself is never migrated)."""
        return 0

    def dirty_bulk(self, n_pages):
        """No-op at the host level."""

    def free(self, pfn):
        """Release the mapping for ``pfn`` (drops frame when last ref)."""
        frame = self._frames.pop(pfn, None)
        if frame is None:
            raise MemoryError_(f"free of unmapped pfn {pfn}")
        frame.refcount -= 1
        if frame.refcount <= 0 and self._ksm is not None and frame.ksm_shared:
            self._ksm.forget_frame(frame)
        if frame.mergeable:
            self._mergeable.pop(pfn, None)
            if self._ksm is not None:
                self._ksm.forget_pfn(pfn)
            self._mergeable_generation += 1

    def frame(self, pfn):
        """Return the Frame for ``pfn`` or None when untouched."""
        return self._frames.get(pfn)

    def remap(self, pfn, frame):
        """Point ``pfn`` at ``frame`` (KSM merge / CoW break mechanics)."""
        old = self._frames.get(pfn)
        if old is None:
            raise MemoryError_(f"remap of unmapped pfn {pfn}")
        if old is frame:
            return
        old.refcount -= 1
        if old.refcount <= 0 and self._ksm is not None and old.ksm_shared:
            self._ksm.forget_frame(old)
        frame.refcount += 1
        self._frames[pfn] = frame

    def read(self, pfn):
        frame = self._frames.get(pfn)
        return frame.content if frame is not None else b""

    def read_many(self, pfns):
        frames_get = self._frames.get
        return [
            (pfn, frame.content if (frame := frames_get(pfn)) is not None else b"")
            for pfn in pfns
        ]

    def write(self, pfn, content, outcome=None):
        if outcome is None:
            outcome = WriteOutcome()
        frame = self._frames.get(pfn)
        if frame is None:
            raise MemoryError_(f"write to unmapped pfn {pfn}")
        if frame.refcount > 1:
            # Copy-on-write break: this pfn gets a private copy.  The
            # shared frame lives on for its other mappers.
            replacement = Frame(
                next(self._next_fid), frame.content, frame.mergeable
            )
            frame.refcount -= 1
            self._frames[pfn] = replacement
            frame = replacement
            outcome.cow_broken = True
        elif frame.ksm_shared:
            # Sole remaining mapper of a stable-tree frame: still a CoW
            # break in Linux (the page sits in the stable tree), after
            # which the frame becomes a normal private page.
            if self._ksm is not None:
                self._ksm.forget_frame(frame)
            frame.ksm_shared = False
            outcome.cow_broken = True
        frame.set_content(content)
        if frame.mergeable:
            self._write_epoch += 1
        outcome.pfn_chain.append(pfn)
        return outcome

    def resolve(self, pfn):
        if pfn in self._frames:
            return self, pfn
        return None, None

    def iter_mergeable(self):
        """Yield (pfn, frame) for every mergeable materialized page."""
        frames = self._frames
        for pfn in self._mergeable:
            yield pfn, frames[pfn]

    def mergeable_pfns(self):
        """Snapshot list of mergeable pfns, in allocation order.

        O(mergeable pages) via the incremental index — the KSM daemon
        builds its per-pass cursor from this.
        """
        return list(self._mergeable)

    @property
    def mergeable_generation(self):
        """Bumped whenever the set of mergeable pages changes."""
        return self._mergeable_generation

    @property
    def write_epoch(self):
        """Bumped on every write to a mergeable frame (KSM idle check)."""
        return self._write_epoch
