"""Simulated physical hardware: machine, CPU package, and physical memory.

The memory model is the load-bearing piece: page frames hold *real bytes*
(logically right-padded with zeros to 4 KiB), so kernel samepage merging
and the paper's deduplication-based detector operate on actual content
comparison rather than on a flag that says "these pages are equal".
"""

from repro.hardware.cpu import CpuPackage
from repro.hardware.machine import Machine
from repro.hardware.memory import (
    PAGE_SIZE,
    Frame,
    MemoryDomain,
    PhysicalMemory,
    WriteOutcome,
)
from repro.hardware.page_store import PageRecord, PageStore, content_digest

__all__ = [
    "PAGE_SIZE",
    "CpuPackage",
    "Frame",
    "Machine",
    "MemoryDomain",
    "PageRecord",
    "PageStore",
    "PhysicalMemory",
    "WriteOutcome",
    "content_digest",
]
