"""The paper's two contributions.

* :mod:`repro.core.rootkit` — CloudSkulk: reconnaissance, the
  Rootkit-In-The-Middle VM, the four-step installer, and the passive /
  active services it enables.
* :mod:`repro.core.detection` — the memory-deduplication write-timing
  detector run from L0, with the VMCS-scan and VMI-fingerprint
  baselines the paper compares against.
"""
