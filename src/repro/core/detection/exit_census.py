"""Exit-census detection: perf counters betray a hidden hypervisor.

A guest that *runs a hypervisor* issues privileged virtualization
instructions (VMREAD/VMWRITE/VMRESUME...) in bursts — every nested-VM
exit trampolines through it.  The host kernel counts those exits per VM
whether the attacker likes it or not.  A census over the host's VMs
that finds one guest retiring orders of magnitude more
``PRIV_INSTRUCTION`` exits than its peers has found an L1 hypervisor —
GuestX in CloudSkulk's case.

Complementary to the dedup detector: this channel needs the nested
guest to be *running work* (an idle sandwich is quiet), while the dedup
protocol works on an idle victim but needs KSM enabled.  Running both
is the belt-and-suspenders deployment.
"""

from repro.errors import DetectionError
from repro.hypervisor.exits import ExitReason

#: Minimum privileged-instruction exits before a VM is even considered
#: (boot noise stays below this).
MIN_PRIV_EXITS = 1000.0
#: How many times the peer median a VM must exceed to be flagged.
PEER_FACTOR = 20.0


class ExitCensusResult:
    """Per-VM exit accounting and the flagged set."""

    def __init__(self):
        self.per_vm = {}  # name -> priv exit count
        self.flagged = []

    def summary(self):
        lines = ["exit census (privileged-instruction exits per VM):"]
        for name, count in sorted(self.per_vm.items()):
            marker = "  << HYPERVISOR" if name in self.flagged else ""
            lines.append(f"  {name:<12} {count:12.0f}{marker}")
        return "\n".join(lines)

    @property
    def hypervisor_detected(self):
        return bool(self.flagged)


def exit_census(host_system, min_priv_exits=MIN_PRIV_EXITS, peer_factor=PEER_FACTOR):
    """Generator: read the host's per-VM exit counters and classify.

    Returns an :class:`ExitCensusResult`.
    """
    if host_system.depth != 0:
        raise DetectionError("the exit census reads host kernel counters")
    if host_system.kvm is None:
        raise DetectionError("no KVM on this host")
    result = ExitCensusResult()
    for name, vm in host_system.kvm.vms.items():
        result.per_vm[name] = vm.exit_count(ExitReason.PRIV_INSTRUCTION)
    yield host_system.engine.timeout(0.01)  # /sys reads

    for name, count in result.per_vm.items():
        if count < min_priv_exits:
            continue
        peers = sorted(
            value for other, value in result.per_vm.items() if other != name
        )
        peer_median = peers[len(peers) // 2] if peers else 0.0
        if count >= peer_factor * max(peer_median, 1.0):
            result.flagged.append(name)
    return result
