"""Host-level monitoring: the detector productized.

The paper evaluates one detection run against one VM; a cloud operator
needs the sweep version: walk every customer VM on the host, run the
registered probe catalog against each, cross-check with the VMCS scan,
and aggregate a per-host report.  One compromised tenant must be
singled out among innocents — which also exercises the detectors'
false-positive behaviour on the co-resident clean guests.

Probes are pluggable (:mod:`repro.probes`): the service schedules
whatever catalog subset it was built with, sequentially per tenant,
under the same per-tenant budget knobs (``file_pages``,
``wait_seconds``) the single KSM-timing detector always had.  The
default probe set is exactly that detector, and its scheduling is
byte-identical in virtual time to the pre-catalog sweep loop.
"""

from repro.core.detection.dedup_detector import CloudInterface
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.errors import DetectionError
from repro.probes.base import (
    FLAGGED_VERDICTS,
    ProbeTarget,
    aggregate_verdict,
    resolve_probes,
    run_probe,
)


class TenantFinding:
    """One customer VM's sweep outcome."""

    def __init__(self, tenant_name):
        self.tenant_name = tenant_name
        self.verdict = None
        self.detection_report = None
        #: probe name -> :class:`repro.probes.base.Verdict`, in run
        #: order — the per-probe ledger the ScoreMatrix scores from.
        self.probe_verdicts = {}

    def record(self, verdict):
        """File one probe's verdict under this tenant."""
        self.probe_verdicts[verdict.probe] = verdict
        if verdict.report is not None and self.detection_report is None:
            # The KSM probe attaches its full DetectionReport; keep the
            # pre-catalog accessor working.
            self.detection_report = verdict.report

    @property
    def compromised(self):
        return self.verdict in FLAGGED_VERDICTS

    def __repr__(self):
        return f"<TenantFinding {self.tenant_name}: {self.verdict}>"


class HostSweepReport:
    """Aggregate outcome of one monitoring sweep."""

    def __init__(self, host_name):
        self.host_name = host_name
        self.started_at = None
        self.finished_at = None
        self.findings = []
        self.vmcs_scan = None

    @property
    def compromised_tenants(self):
        return [f.tenant_name for f in self.findings if f.compromised]

    @property
    def inconclusive_tenants(self):
        return [
            f.tenant_name for f in self.findings if f.verdict == "inconclusive"
        ]

    @property
    def unreachable_tenants(self):
        """Tenants whose probe could not complete (deleted mid-sweep,
        endpoint gone) — counted separately from inconclusive timing."""
        return [
            f.tenant_name for f in self.findings if f.verdict == "unreachable"
        ]

    @property
    def consistent(self):
        """Do the dedup sweep and the VMCS scan agree about nesting?

        None when the VMCS scan failed (e.g. non-VT-x hardware) — the
        dedup verdicts then stand alone, which is the paper's argument
        for the software-only approach.
        """
        if self.vmcs_scan is None or self.vmcs_scan.scan_failed:
            return None
        return bool(self.compromised_tenants) == (
            self.vmcs_scan.nested_hypervisor_detected
        )

    def summary(self):
        lines = [f"monitoring sweep of {self.host_name}:"]
        for finding in self.findings:
            lines.append(f"  {finding.tenant_name:<12} {finding.verdict}")
        if self.vmcs_scan is not None:
            scan = self.vmcs_scan
            state = (
                "failed"
                if scan.scan_failed
                else ("nested hypervisor" if scan.nested_hypervisor_detected else "clean")
            )
            lines.append(f"  vmcs-scan    {state}")
        return "\n".join(lines)


class MonitoringService:
    """Sweeps every registered tenant on one host."""

    def __init__(self, host_system, file_pages=25, wait_seconds=20.0, probes=None):
        if host_system.depth != 0:
            raise DetectionError("the monitoring service runs at L0")
        self.host = host_system
        self.file_pages = file_pages
        self.wait_seconds = wait_seconds
        #: Probe instances in scheduling (and verdict-priority) order;
        #: None means the pre-catalog default, KSM timing alone.
        self.probes = resolve_probes(probes)
        self._tenants = {}  # name -> CloudInterface

    def register_tenant(self, name, victim_locator):
        """Add a customer VM, addressed by its locator (see
        :class:`~repro.core.detection.dedup_detector.CloudInterface`)."""
        if name in self._tenants:
            raise DetectionError(f"tenant {name!r} already registered")
        interface = CloudInterface(self.host, victim_locator)
        self._tenants[name] = interface
        return interface

    def deregister_tenant(self, name):
        """Remove a tenant (deleted, or migrated off this host).

        Safe to call while a sweep is in flight: the sweep iterates a
        snapshot and skips entries deregistered before their turn.
        """
        if name not in self._tenants:
            raise DetectionError(f"tenant {name!r} not registered")
        del self._tenants[name]

    @property
    def tenant_names(self):
        return sorted(self._tenants)

    def sweep(self, sweep_id=0):
        """Generator: run one full sweep; returns a HostSweepReport."""
        if not self._tenants:
            raise DetectionError("no tenants registered")
        engine = self.host.engine
        tracer = engine.tracer
        report = HostSweepReport(self.host.name)
        report.started_at = engine.now
        # Snapshot: tenants deregistered mid-sweep are skipped when their
        # turn comes; ones deleted mid-probe come back "unreachable".
        for index, (name, interface) in enumerate(sorted(self._tenants.items())):
            if name not in self._tenants:
                continue
            finding = TenantFinding(name)
            for probe in self.probes:
                probe_started = engine.now
                target = ProbeTarget(
                    self.host,
                    name,
                    interface,
                    file_pages=self.file_pages,
                    wait_seconds=self.wait_seconds,
                    sweep_id=sweep_id,
                    index=index,
                )
                verdict = yield from run_probe(probe, target)
                verdict.started_at = probe_started
                verdict.finished_at = engine.now
                finding.record(verdict)
                if tracer.enabled:
                    tracer.complete(
                        "detect.probe",
                        "detection",
                        probe_started,
                        track=f"host:{self.host.name}",
                        args={
                            "tenant": name,
                            "sweep_id": sweep_id,
                            "verdict": verdict.verdict,
                            "probe": probe.name,
                        },
                    )
                    # Guest virtual time spent under this probe — the
                    # Fig 5/6 overhead axis, queryable per tenant (and
                    # now per probe).
                    tracer.metrics.counter(
                        "detect.probe_seconds", tenant=name, probe=probe.name
                    ).inc(engine.now - probe_started)
            finding.verdict = aggregate_verdict(
                list(finding.probe_verdicts.values())
            )
            report.findings.append(finding)
        report.vmcs_scan = yield from scan_for_hypervisors(self.host)
        report.finished_at = engine.now
        if tracer.enabled:
            tracer.complete(
                "detect.host_sweep",
                "detection",
                report.started_at,
                track=f"host:{self.host.name}",
                args={
                    "sweep_id": sweep_id,
                    "tenants": len(report.findings),
                    "compromised": len(report.compromised_tenants),
                },
            )
        return report

    def run_periodic(self, interval_seconds, alert_callback=None, max_sweeps=None):
        """Start periodic sweeping; returns the engine Process.

        ``alert_callback(report)`` fires after every sweep that found a
        compromised tenant.  Detection latency is bounded by the sweep
        interval plus one protocol duration — the operational number a
        deployment cares about.
        """
        if interval_seconds <= 0:
            raise DetectionError("sweep interval must be positive")
        self.sweep_history = []

        def _loop():
            sweep_id = 0
            while max_sweeps is None or sweep_id < max_sweeps:
                report = yield from self.sweep(sweep_id=sweep_id)
                self.sweep_history.append(report)
                if report.compromised_tenants and alert_callback is not None:
                    alert_callback(report)
                sweep_id += 1
                yield self.host.engine.timeout(interval_seconds)

        return self.host.engine.process(_loop(), name="monitoring-service")
