"""Incident response: evidence collection after (or before) a verdict.

The dedup detector answers *whether* a hidden hypervisor exists; a
responder then needs *which VM is the RITM and how it got there*.  This
module cross-references the host against the vendor's provisioning
records and collects the artifacts a CloudSkulk installation cannot
avoid leaving:

* a VMCS surplus (kernel ground truth vs. the vendor's VM inventory);
* a QEMU process whose command line exceeds its tenant's provisioned
  memory (GuestX must carry the victim *plus* its own OS);
* nested-virtualization exposure (``+vmx``) on a tenant that never
  bought it;
* QEMU processes for VMs the inventory has never heard of;
* flow-log evidence: an unexplained several-hundred-MB transfer to an
  ephemeral local port — the migration stream's unavoidable footprint.

Each check degrades independently: an attacker can scrub history and
swap PIDs, but cannot shrink GuestX below victim+overhead, cannot hide
the nested VMCS from the kernel, and cannot unsend the migration bytes.
"""

from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.errors import DetectionError
from repro.qemu.config import QemuConfig

#: Flows larger than this to a non-service port are worth explaining.
SUSPICIOUS_FLOW_BYTES = 64 * 1024 * 1024


class TenantRecord:
    """What the vendor's provisioning database says about one VM."""

    def __init__(self, name, memory_mb, nested_allowed=False, public_ports=()):
        self.name = name
        self.memory_mb = memory_mb
        self.nested_allowed = nested_allowed
        #: Host ports published for this tenant (hostfwd) — traffic to
        #: these is expected and never flow-log evidence.
        self.public_ports = tuple(public_ports)


class Evidence:
    """One collected artifact."""

    def __init__(self, kind, severity, description, subject=None):
        self.kind = kind
        self.severity = severity  # "info" | "warning" | "critical"
        self.description = description
        self.subject = subject

    def __repr__(self):
        return f"<Evidence {self.severity}/{self.kind}: {self.description[:60]}>"


class EvidenceReport:
    """Everything one collection pass found."""

    def __init__(self, host_name):
        self.host_name = host_name
        self.findings = []

    def add(self, *args, **kwargs):
        self.findings.append(Evidence(*args, **kwargs))

    def by_kind(self, kind):
        return [e for e in self.findings if e.kind == kind]

    @property
    def critical(self):
        return [e for e in self.findings if e.severity == "critical"]

    @property
    def suspicious(self):
        return bool(self.critical)

    def summary(self):
        lines = [f"forensic evidence on {self.host_name}:"]
        if not self.findings:
            lines.append("  (nothing anomalous)")
        for evidence in self.findings:
            lines.append(
                f"  [{evidence.severity:<8}] {evidence.kind}: "
                f"{evidence.description}"
            )
        return "\n".join(lines)


def collect_evidence(host_system, inventory, known_service_ports=(22, 80, 443)):
    """Generator: sweep the host for CloudSkulk artifacts.

    ``inventory`` is a list of :class:`TenantRecord`; returns an
    :class:`EvidenceReport`.  Tenant public ports join
    ``known_service_ports`` for the flow-log check.
    """
    if host_system.depth != 0:
        raise DetectionError("forensics runs on the bare-metal host")
    records = {record.name: record for record in inventory}
    expected_ports = set(known_service_ports)
    for record in inventory:
        expected_ports.update(record.public_ports)
    report = EvidenceReport(host_system.name)

    # --- 1. kernel ground truth: VMCS census --------------------------
    scan = yield from scan_for_hypervisors(host_system)
    if scan.scan_failed:
        report.add("vmcs-census", "info", scan.failure_reason)
    elif scan.extra_vmcs_pages:
        report.add(
            "vmcs-census",
            "critical",
            f"{scan.vmcs_pages_found} VMCS page(s) in RAM but the host "
            f"accounts for {scan.expected_vmcs_pages}: "
            f"{scan.extra_vmcs_pages} hypervisor context(s) unexplained",
        )

    # --- 2. process table vs provisioning records ----------------------
    for proc in host_system.kernel.table.find_by_name("qemu-system-x86_64"):
        if not proc.alive:
            continue
        try:
            config = QemuConfig.from_command_line(proc.cmdline)
        except Exception:
            report.add(
                "qemu-cmdline",
                "warning",
                f"pid {proc.pid}: unparseable QEMU command line",
                subject=proc.pid,
            )
            continue
        record = records.get(config.name)
        if record is None:
            report.add(
                "unknown-vm",
                "critical",
                f"pid {proc.pid} runs VM {config.name!r} absent from "
                "provisioning records",
                subject=config.name,
            )
            continue
        if config.memory_mb > record.memory_mb:
            report.add(
                "memory-oversize",
                "critical",
                f"VM {config.name!r} runs with {config.memory_mb} MB but "
                f"the tenant provisioned {record.memory_mb} MB — enough "
                "headroom to nest the real guest",
                subject=config.name,
            )
        if config.nested_vmx and not record.nested_allowed:
            report.add(
                "nested-exposure",
                "critical",
                f"VM {config.name!r} launched with '+vmx' but the tenant "
                "never purchased nested virtualization",
                subject=config.name,
            )

    # --- 3. flow logs: the migration's traffic footprint ---------------
    for connection in host_system.net_node.connection_log:
        total = connection.bytes_sent["client"] + connection.bytes_sent["server"]
        if (
            total >= SUSPICIOUS_FLOW_BYTES
            and connection.port not in expected_ports
        ):
            report.add(
                "bulk-flow",
                "critical",
                f"{total / 1e6:.0f} MB moved to local port "
                f"{connection.port} starting t={connection.opened_at:.0f}s "
                "— consistent with an unscheduled live migration",
                subject=connection.port,
            )
    yield host_system.engine.timeout(0.05)  # log trawling takes a moment
    return report
