"""The write-timing probe: the detection module's measurement core.

Mirrors the paper's ~300-line C program: load a specified file into
memory (madvised MADV_MERGEABLE, as QEMU guest RAM is), wait a given
time, then write one byte per page and record each write's latency.
A write to a KSM-merged page breaks copy-on-write and costs hundreds of
microseconds; a write to a private page costs well under one.
"""

from repro.errors import DetectionError


class WriteTimingProbe:
    """Runs in L0 as an ordinary (root) host process."""

    #: Pages measured per engine yield (keeps interleaving fair without
    #: one event per page).
    BATCH_PAGES = 16

    def __init__(self, host_system):
        if host_system.depth != 0:
            raise DetectionError(
                "the write-timing probe is an L0 (host-level) tool"
            )
        self.host = host_system
        self.engine = host_system.engine

    def load(self, path):
        """Generator: load ``path`` into (mergeable) memory; returns pfns."""
        pfns, cost = self.host.kernel.load_file(path, mergeable=True)
        yield self.engine.timeout(cost)
        return pfns

    def evict(self, path):
        """Drop a previously loaded file so the next load is fresh."""
        self.host.kernel.evict_file(path)

    def wait(self, seconds):
        """Generator: give ksmd time to find and merge the pages."""
        if seconds < 0:
            raise DetectionError("negative wait")
        yield self.engine.timeout(seconds)

    def measure(self, path):
        """Generator: write each page once; returns per-page times in µs.

        The write flips the page's first byte — any write breaks CoW;
        content is irrelevant to the fault cost.
        """
        pfns = self.host.kernel.page_cache.get(path)
        if pfns is None:
            raise DetectionError(f"{path!r} is not loaded")
        times_us = []
        batch_cost = 0.0
        for pfn in pfns:
            content = self.host.memory.read(pfn)
            flipped = (bytes([content[0] ^ 0xFF]) + content[1:]) if content else b"\xff"
            _outcome, cost = self.host.kernel.write_page(pfn, flipped)
            times_us.append(cost * 1e6)
            batch_cost += cost
            if len(times_us) % self.BATCH_PAGES == 0:
                yield self.engine.timeout(batch_cost)
                batch_cost = 0.0
        if batch_cost:
            yield self.engine.timeout(batch_cost)
        return times_us

    def load_wait_measure(self, path, wait_seconds):
        """Generator: the full probe cycle; returns per-page µs times."""
        yield from self.load(path)
        yield from self.wait(wait_seconds)
        times = yield from self.measure(path)
        self.evict(path)
        return times
