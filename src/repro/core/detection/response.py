"""Incident response: evicting a CloudSkulk and recovering the tenant.

Once the dedup verdict and the forensic evidence agree, the operator
holds host root over the attacker's infrastructure — the same asymmetry
the attacker exploited, pointed back at them.  The recovery play:

1. terminate the RITM (which takes the nested victim's *RAM state* with
   it — unavoidable: the live guest exists only inside GuestX);
2. relaunch the tenant's VM from its disk image, which never left host
   storage (the attack migrated memory, not the qcow2), with the
   provisioned configuration and public ports;
3. re-verify: VMCS census clean, service answering at the old address.

The RAM loss means a crash-consistent restart for the customer — the
honest cost of this recovery, which the report records.
"""

from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.errors import DetectionError
from repro.qemu.config import DriveSpec, MonitorSpec, NicSpec, QemuConfig
from repro.qemu.vm import launch_vm


class RecoveryReport:
    """What the response changed, and what it cost the tenant."""

    def __init__(self, host_name):
        self.host_name = host_name
        self.terminated_vms = []
        self.recovered_vm = None
        self.ram_state_lost = False
        self.downtime_seconds = 0.0
        self.post_scan = None

    @property
    def clean(self):
        return (
            self.post_scan is not None
            and not self.post_scan.scan_failed
            and not self.post_scan.nested_hypervisor_detected
        )

    def summary(self):
        lines = [f"incident response on {self.host_name}:"]
        for name in self.terminated_vms:
            lines.append(f"  terminated rogue VM {name!r}")
        if self.recovered_vm is not None:
            lines.append(
                f"  relaunched tenant VM {self.recovered_vm.name!r} "
                f"(downtime {self.downtime_seconds:.1f}s, "
                f"RAM state {'lost' if self.ram_state_lost else 'kept'})"
            )
        lines.append(
            f"  post-recovery VMCS census: {'clean' if self.clean else 'STILL DIRTY'}"
        )
        return "\n".join(lines)


def respond_and_recover(host_system, evidence_report, tenant_record, image_path):
    """Generator: evict the rootkit and restore the tenant.

    ``evidence_report`` supplies the rogue-VM names (unknown-vm and
    memory-oversize findings); ``tenant_record`` and ``image_path``
    describe what to relaunch.  Returns a :class:`RecoveryReport`.
    """
    if host_system.depth != 0:
        raise DetectionError("incident response runs on the bare-metal host")
    rogue_names = {
        finding.subject
        for finding in evidence_report.findings
        if finding.kind in ("unknown-vm", "memory-oversize", "nested-exposure")
        and finding.subject is not None
    }
    if not rogue_names:
        raise DetectionError("evidence report names no rogue VM to evict")

    report = RecoveryReport(host_system.name)
    downtime_started = host_system.engine.now

    # 1. terminate the RITM stack (nested guests die with it).
    for name in sorted(rogue_names):
        vm = _find_vm_by_name(host_system, name)
        if vm is None:
            continue
        carried_nested = vm.guest is not None and vm.guest.kvm is not None
        vm.quit()
        report.terminated_vms.append(name)
        if carried_nested:
            report.ram_state_lost = True
    if not report.terminated_vms:
        raise DetectionError(
            f"no running QEMU matches the rogue names {sorted(rogue_names)}"
        )

    # 2. relaunch the tenant from its untouched disk image.
    config = QemuConfig(
        name=tenant_record.name,
        memory_mb=tenant_record.memory_mb,
        smp=1,
        drives=[DriveSpec(image_path)],
        nics=[
            NicSpec(
                "net0",
                hostfwds=[("tcp", port, 22) for port in tenant_record.public_ports],
            )
        ],
        monitor=MonitorSpec(port=5555),
        nested_vmx=tenant_record.nested_allowed,
    )
    vm, boot = launch_vm(host_system, config, record_history=True)
    yield boot
    vm.guest.net_node.listen(22)  # sshd back up
    report.recovered_vm = vm
    report.downtime_seconds = host_system.engine.now - downtime_started

    # 3. verify the host is clean again.
    report.post_scan = yield from scan_for_hypervisors(host_system)
    return report


def _find_vm_by_name(host_system, name):
    """Locate a live QemuVm on the host by its -name (kernel-side)."""
    kvm_vm = host_system.kvm.vms.get(name)
    if kvm_vm is None:
        return None
    return getattr(kvm_vm, "_qemu_vm", None)
