"""The full two-step deduplication detection protocol (paper §VI-B/C).

Cast of characters:

* :class:`CloudInterface` — the vendor's web channel (§VI-D-1): it can
  generate a random file and deliver it to both L0 and the customer's
  VM.  Crucially, "the customer's VM" is whatever answers at the VM's
  public endpoint — after a CloudSkulk installation that is the nested
  L2 guest.  The interface exposes an observer list because an attacker
  in the middle *sees* the delivery and mirrors it (impersonation); a
  correct rootkit must, or a trivial file-presence check already
  exposes it.
* the guest agent — ordinary code in the customer's VM that loads the
  delivered file into memory and, on request, rewrites each page
  (File-A -> File-A-v2).
* :class:`DedupDetector` — the L0 orchestrator: collects t0 (baseline,
  file in L0 only), t1 (file in L0 + VM, after KSM has merged), and t2
  (after the guest changed its copy and L0 reloaded the original), then
  classifies.
"""

from repro.core.detection.classifier import classify
from repro.core.detection.timing import WriteTimingProbe
from repro.errors import DetectionError
from repro.guest.filesystem import File, make_random_file

#: Default File-A size: 100 pages = 400 KB, as in the paper.
DEFAULT_FILE_PAGES = 100
#: Default settle time before measuring (ksmd needs two clean passes).
DEFAULT_WAIT_SECONDS = 20.0


#: The guest port the vendor's in-VM agent listens on, and the host
#: port forwarded to it ("this is how exactly today's cloud vendors
#: allow customers to control their VMs" — §VI-D-1).
CLOUD_AGENT_GUEST_PORT = 28
CLOUD_AGENT_HOST_PORT = 2808


class GuestFileReceiver:
    """The vendor agent inside the customer VM: receives file pushes.

    Listens on :data:`CLOUD_AGENT_GUEST_PORT`; each connection streams
    ``(path, index, total, content)`` page records, is acked with
    ``b"done"`` when complete, and materializes the file in the guest
    filesystem.
    """

    def __init__(self, guest_system):
        self.guest = guest_system
        self.files_received = 0
        guest_system.net_node.listen(
            CLOUD_AGENT_GUEST_PORT, handler=self._on_connect
        )

    def _on_connect(self, connection):
        self.guest.engine.process(
            self._receive(connection.server), name="cloud-agent"
        )

    def _receive(self, endpoint):
        from repro.sim.process import ChannelClosed

        pages = {}
        path = None
        total = None
        try:
            while True:
                packet = yield endpoint.recv()
                path, index, total, content = packet.payload
                pages[index] = content
                cost = self.guest.kernel.syscall_cost("net_recvmsg")
                cost += self.guest.kernel.syscall_cost("page_cache_write")
                yield self.guest.engine.timeout(cost)
                if len(pages) == total:
                    break
        except ChannelClosed:
            return
        ordered = [pages[i] for i in range(total)]
        self.guest.fs.create(path, page_contents=ordered, size_bytes=0)
        self.files_received += 1
        endpoint.send(b"done", kind="cloud-file-ack")


class CloudInterface:
    """The vendor's control channel to one customer VM.

    Two delivery modes:

    * ``direct`` (default) — the file appears in the guest filesystem
      as if written by the vendor's hypervisor-side tooling;
    * ``network`` — the file is streamed to the in-VM agent over the
      VM's *public endpoint*, so after a CloudSkulk installation the
      delivery traverses the RITM's forwarding layer, where the
      attacker's :class:`~repro.core.rootkit.services.NetworkFileMirror`
      can (must!) see and copy it.
    """

    def __init__(self, host_system, victim_locator, delivery="direct"):
        if delivery not in ("direct", "network"):
            raise DetectionError(f"unknown delivery mode {delivery!r}")
        self.host = host_system
        #: Callable returning the System currently serving the VM's
        #: public endpoint (tracks the guest across migrations).
        self.victim_locator = victim_locator
        self.delivery = delivery
        #: Parties that can watch direct-mode deliveries (the RITM's
        #: impersonation mirror registers here — see
        #: :class:`repro.core.rootkit.stealth.ImpersonationMirror`).
        self.observers = []

    def generate_file(self, path, num_pages, label=None):
        """Create the random file (the paper used an mp3) on L0 disk."""
        file = make_random_file(path, num_pages, self.host.rng, seed_label=label)
        self.host.fs.add(file)
        return file

    def deliver_to_vm(self, host_file):
        """Generator: push the file into the customer's VM.

        Returns the *guest's* File object — a distinct instance with
        identical page bytes, so guest-side edits never leak into the
        host copy.
        """
        guest = self.victim_locator()
        if guest is None:
            raise DetectionError("cloud interface: customer VM unreachable")
        if self.delivery == "network":
            yield from self._deliver_over_network(host_file, guest)
            return guest.fs.open(host_file.path)
        pages = [host_file.page_content(i) for i in range(host_file.num_pages)]
        guest_file = File(host_file.path, host_file.size_bytes, page_contents=pages)
        guest.fs.add(guest_file)
        # Delivery consumes network + guest time.
        transfer_cost = host_file.num_pages * 4096 * 8 / 941e6
        yield self.host.engine.timeout(transfer_cost)
        for observer in self.observers:
            observer(host_file, guest)
        return guest_file

    def _deliver_over_network(self, host_file, guest):
        """Stream the file to the in-VM agent via the public endpoint."""
        from repro.net.packets import Packet

        node = self.host.net_node
        endpoint = node.connect(node, CLOUD_AGENT_HOST_PORT)
        total = host_file.num_pages
        for index in range(total):
            record = (host_file.path, index, total, host_file.page_content(index))
            endpoint.send(
                Packet(4096 + 64, payload=record, kind="cloud-file")
            )
        ack = yield endpoint.recv()
        if ack.payload != b"done":
            raise DetectionError(f"file delivery failed: {ack.payload!r}")
        endpoint.close()


class GuestAgent:
    """The in-VM half of the detection module (~150 of the paper's 300
    lines of C): loads the file, and mutates pages on request."""

    def __init__(self, cloud_interface):
        self.cloud = cloud_interface

    def load_file(self, path):
        """Generator: page the file into guest memory."""
        guest = self.cloud.victim_locator()
        if guest is None:
            raise DetectionError("guest agent: customer VM unreachable")
        pfns, cost = guest.kernel.load_file(path, mergeable=True)
        yield guest.engine.timeout(cost)
        return pfns

    def mutate_all_pages(self, path):
        """Generator: File-A -> File-A-v2 (change every page slightly)."""
        guest = self.cloud.victim_locator()
        if guest is None:
            raise DetectionError("guest agent: customer VM unreachable")
        file = guest.fs.open(path)
        total_cost = 0.0
        for index in range(file.num_pages):
            original = file.page_content(index)
            # XOR the first byte so the edit is guaranteed to change the
            # content whatever it was.
            if original:
                changed = bytes([original[0] ^ 0xA5]) + original[1:]
            else:
                changed = b"\xa5"
            total_cost += guest.kernel.write_file_page(path, index, changed)
        yield guest.engine.timeout(total_cost)
        return file.num_pages


class DetectionReport:
    """Everything one detection run produced (Figs 5/6 raw data)."""

    def __init__(self):
        self.t0_us = []
        self.t1_us = []
        self.t2_us = []
        self.verdict = None
        self.timeline = []

    def series(self):
        return {"t0": self.t0_us, "t1": self.t1_us, "t2": self.t2_us}

    def __repr__(self):
        verdict = self.verdict.verdict if self.verdict else "pending"
        return f"<DetectionReport {verdict}>"


class DedupDetector:
    """Orchestrates one full detection run from L0."""

    def __init__(
        self,
        host_system,
        cloud_interface,
        file_pages=DEFAULT_FILE_PAGES,
        wait_seconds=DEFAULT_WAIT_SECONDS,
        file_path="/root/detect/file-a.mp3",
    ):
        if file_pages < 1:
            raise DetectionError("File-A needs at least one page")
        self.host = host_system
        self.cloud = cloud_interface
        self.agent = GuestAgent(cloud_interface)
        self.probe = WriteTimingProbe(host_system)
        self.file_pages = file_pages
        self.wait_seconds = wait_seconds
        self.file_path = file_path

    def _trace_phase(self, phase, started_at, times_us, perf_before):
        """Record one measurement phase: span + write-fault histogram.

        The histogram (``detect.write_fault_us``, labelled by phase) is
        the raw material of Figs 5/6 — the bimodal private-write vs
        CoW-break split reads straight off its log2 buckets.  The span
        args carry the per-phase engine work (counter deltas), so a
        slow probe is attributable from the timeline alone.
        """
        engine = self.host.engine
        tracer = engine.tracer
        delta = engine.perf.delta(perf_before)
        tracer.metrics.histogram("detect.write_fault_us", phase=phase).record_many(
            times_us
        )
        tracer.complete(
            f"detect.{phase}",
            "detection",
            started_at,
            track=f"detect:{self.host.name}",
            args={
                "pages": len(times_us),
                "file": self.file_path,
                "ksm_pages_scanned": delta["ksm_pages_scanned"],
                "events_dispatched": delta["events_dispatched"],
            },
        )

    def run(self):
        """Generator: the full protocol; returns a DetectionReport."""
        report = DetectionReport()
        engine = self.host.engine
        tracer = engine.tracer
        mark = lambda label: report.timeline.append((label, engine.now))
        run_started = engine.now

        # ---- t0: baseline — File-A in L0 only ---------------------------
        mark("t0-start")
        phase_started, perf_before = engine.now, engine.perf.snapshot()
        file_a = self.cloud.generate_file(self.file_path, self.file_pages)
        report.t0_us = yield from self.probe.load_wait_measure(
            self.file_path, self.wait_seconds
        )
        mark("t0-done")
        if tracer.enabled:
            self._trace_phase("t0", phase_started, report.t0_us, perf_before)

        # ---- t1: File-A in the VM and (fresh) in L0 ---------------------
        # The t0 measurement scribbled on L0's copy, so reload fresh
        # original content below; the FS File object is unchanged.
        yield from self.cloud.deliver_to_vm(file_a)
        yield from self.agent.load_file(self.file_path)
        mark("t1-start")
        phase_started, perf_before = engine.now, engine.perf.snapshot()
        report.t1_us = yield from self.probe.load_wait_measure(
            self.file_path, self.wait_seconds
        )
        mark("t1-done")
        if tracer.enabled:
            self._trace_phase("t1", phase_started, report.t1_us, perf_before)

        # ---- t2: guest changes its copy; L0 reloads the original --------
        yield from self.agent.mutate_all_pages(self.file_path)
        mark("t2-start")
        phase_started, perf_before = engine.now, engine.perf.snapshot()
        report.t2_us = yield from self.probe.load_wait_measure(
            self.file_path, self.wait_seconds
        )
        mark("t2-done")
        if tracer.enabled:
            self._trace_phase("t2", phase_started, report.t2_us, perf_before)

        report.verdict = classify(report.t0_us, report.t1_us, report.t2_us)
        if tracer.enabled:
            tracer.complete(
                "detect.run",
                "detection",
                run_started,
                track=f"detect:{self.host.name}",
                args={"verdict": report.verdict.verdict, "file": self.file_path},
            )
            tracer.metrics.counter(
                "detect.verdicts", verdict=report.verdict.verdict
            ).inc()
        return report
