"""Turning (t0, t1, t2) into a verdict.

The decision logic follows §VI-B directly:

* **no L1** — t1 is significantly larger than t2 (step-1 pages merged
  with the guest's copy; step-2 pages found no partner);
* **L1 present** — t1 and t2 are both merged-class (the impersonating
  L1 still holds the original file after L2 changed its copy);
* **inconclusive** — t1 never showed merging (KSM off, file not
  resident in the VM, or the wait was too short).

"Significantly larger" is a median ratio against the t0 baseline, plus
a Mann-Whitney U test between t1 and t2 for the significance annotation
— medians are robust to the occasional page that failed to merge.
"""

import statistics

from scipy import stats as scipy_stats

from repro.errors import DetectionError

#: A sample class is "merged" when its median exceeds this multiple of
#: the t0 baseline median (CoW faults are ~3 orders of magnitude above
#: plain writes, so the threshold is insensitive across a wide band).
MERGED_RATIO_THRESHOLD = 8.0


class DetectionVerdict:
    """The classifier's output."""

    def __init__(self, verdict, medians, merged_flags, p_value):
        self.verdict = verdict  # "nested" | "clean" | "inconclusive"
        self.median_t0, self.median_t1, self.median_t2 = medians
        self.t1_merged, self.t2_merged = merged_flags
        self.t1_vs_t2_p_value = p_value

    @property
    def nested_vm_detected(self):
        return self.verdict == "nested"

    def explanation(self):
        if self.verdict == "inconclusive":
            return (
                "t1 shows no deduplication against the baseline — KSM may "
                "be off, or File-A never resided in the VM; no conclusion."
            )
        if self.verdict == "clean":
            return (
                f"t1 (median {self.median_t1:.1f}us) is merged-class but t2 "
                f"(median {self.median_t2:.1f}us) dropped to baseline after "
                "the guest changed its copy: the partner page tracks the "
                "guest directly — no hidden hypervisor."
            )
        return (
            f"t1 (median {self.median_t1:.1f}us) and t2 (median "
            f"{self.median_t2:.1f}us) are BOTH merged-class even though the "
            "guest changed its copy: something else still holds the "
            "original file — a hidden L1 hypervisor (CloudSkulk)."
        )

    def __repr__(self):
        return f"<DetectionVerdict {self.verdict}>"


def classify(t0_us, t1_us, t2_us, ratio_threshold=MERGED_RATIO_THRESHOLD):
    """Classify one detection run's three measurement series."""
    for name, series in (("t0", t0_us), ("t1", t1_us), ("t2", t2_us)):
        if not series:
            raise DetectionError(f"empty measurement series {name}")
    median_t0 = statistics.median(t0_us)
    median_t1 = statistics.median(t1_us)
    median_t2 = statistics.median(t2_us)
    if median_t0 <= 0:
        raise DetectionError("degenerate t0 baseline")
    t1_merged = median_t1 > ratio_threshold * median_t0
    t2_merged = median_t2 > ratio_threshold * median_t0

    if len(t1_us) > 1 and len(t2_us) > 1:
        _stat, p_value = scipy_stats.mannwhitneyu(
            t1_us, t2_us, alternative="two-sided"
        )
    else:
        p_value = float("nan")

    if not t1_merged:
        verdict = "inconclusive"
    elif t2_merged:
        verdict = "nested"
    else:
        verdict = "clean"
    return DetectionVerdict(
        verdict,
        (median_t0, median_t1, median_t2),
        (t1_merged, t2_merged),
        p_value,
    )
