"""Detecting CloudSkulk from L0 (paper §VI).

The primary detector is memory-deduplication write timing
(:mod:`~repro.core.detection.dedup_detector`): load a file that also
lives in the VM, let KSM merge it, and time page writes.  The two-step
protocol — measure (t1), have the *customer's* VM change its copy,
measure again (t2) — distinguishes a direct guest (t1 >> t2) from a
nested-rootkit sandwich (t1 ≈ t2, both >> t0), because the impersonating
L1 still holds the original file when L2 has moved on.

Two baselines the paper discusses are implemented for comparison:

* :mod:`~repro.core.detection.vmcs_scan` — Graziano-style memory
  forensics for VMCS signatures (fails off VT-x hardware);
* :mod:`~repro.core.detection.vmi_fingerprint` — VMI fingerprinting
  (evaded by impersonation).
"""

from repro.core.detection.classifier import DetectionVerdict, classify
from repro.core.detection.dedup_detector import (
    CloudInterface,
    DedupDetector,
    DetectionReport,
    GuestFileReceiver,
)
from repro.core.detection.exit_census import ExitCensusResult, exit_census
from repro.core.detection.forensics import (
    EvidenceReport,
    TenantRecord,
    collect_evidence,
)
from repro.core.detection.guest_side import (
    GuestSideDetector,
    apply_timing_deception,
)
from repro.core.detection.response import RecoveryReport, respond_and_recover
from repro.core.detection.service import HostSweepReport, MonitoringService
from repro.core.detection.timing import WriteTimingProbe
from repro.core.detection.vmcs_scan import VmcsScanResult, scan_for_hypervisors
from repro.core.detection.vmi_fingerprint import (
    FingerprintMismatch,
    check_fingerprint,
    take_fingerprint,
)

__all__ = [
    "CloudInterface",
    "DedupDetector",
    "DetectionReport",
    "DetectionVerdict",
    "EvidenceReport",
    "ExitCensusResult",
    "FingerprintMismatch",
    "GuestFileReceiver",
    "GuestSideDetector",
    "HostSweepReport",
    "MonitoringService",
    "RecoveryReport",
    "TenantRecord",
    "VmcsScanResult",
    "WriteTimingProbe",
    "apply_timing_deception",
    "check_fingerprint",
    "classify",
    "collect_evidence",
    "exit_census",
    "respond_and_recover",
    "scan_for_hypervisors",
    "take_fingerprint",
]
