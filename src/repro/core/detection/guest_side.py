"""Guest-side (L2) detection — and why the paper rejects it (§VI-A).

"A detection approach deployed in L2 is more preferable by a VM user
... However, because L2 is under the control of L1, events and timing
measurements in L2 can be monitored and manipulated by attackers from
L1.  Thus, instead of running a detection module at L2, we propose to
deploy the detection mechanism at L0."

This module implements the natural L2-side detector — time a batch of
exit-heavy operations against the published single-level-VM baseline
and flag a nesting-sized anomaly — together with the attacker's
countermeasure (scaling the guest's virtual clock from L1) that defeats
it.  The pair backs the paper's design argument with running code; the
host-side dedup detector is immune because its stopwatch lives in L0,
outside the attacker's reach.
"""

from repro.errors import DetectionError

#: Expected pipe latency (µs) inside a *single-level* VM of the
#: victim's build — the kind of baseline a user can measure at rental
#: time or read off published benchmarks.
EXPECTED_L1_PIPE_US = 6.75
#: How many times slower than the baseline before we cry "nested".
ANOMALY_FACTOR = 3.0


class GuestSideVerdict:
    """What the in-guest detector concluded."""

    def __init__(self, measured_us, baseline_us, factor):
        self.measured_us = measured_us
        self.baseline_us = baseline_us
        self.factor = factor

    @property
    def nested_suspected(self):
        return self.measured_us > self.factor * self.baseline_us

    def explanation(self):
        ratio = self.measured_us / self.baseline_us
        if self.nested_suspected:
            return (
                f"pipe latency {self.measured_us:.1f}us is {ratio:.1f}x the "
                f"single-level baseline ({self.baseline_us:.2f}us): another "
                "hypervisor sits underneath this VM."
            )
        return (
            f"pipe latency {self.measured_us:.1f}us is within {ratio:.1f}x "
            "of the single-level baseline: nothing suspicious — as far as "
            "this guest can tell."
        )

    def __repr__(self):
        return f"<GuestSideVerdict nested={self.nested_suspected}>"


class GuestSideDetector:
    """Runs inside the (potential) victim; times its own syscalls.

    Crucially, durations are read from the *guest's own clock*
    (:meth:`repro.guest.system.System.guest_now`), which the L1
    attacker controls.
    """

    def __init__(
        self,
        guest_system,
        baseline_us=EXPECTED_L1_PIPE_US,
        anomaly_factor=ANOMALY_FACTOR,
        repetitions=400,
    ):
        if repetitions < 1:
            raise DetectionError("need at least one repetition")
        self.guest = guest_system
        self.baseline_us = baseline_us
        self.anomaly_factor = anomaly_factor
        self.repetitions = repetitions

    def run(self):
        """Generator: measure and classify; returns a GuestSideVerdict."""
        kernel = self.guest.kernel
        started_guest = self.guest.guest_now()
        total_cost = 0.0
        for _ in range(self.repetitions):
            total_cost += kernel.syscall_cost("pipe_latency")
        yield self.guest.engine.timeout(total_cost)
        elapsed_guest = self.guest.guest_now() - started_guest
        measured_us = elapsed_guest / self.repetitions * 1e6
        return GuestSideVerdict(
            measured_us, self.baseline_us, self.anomaly_factor
        )


def apply_timing_deception(victim_system, observed_depth=2, honest_depth=1):
    """The L1 attacker's counter: slow the victim's clock.

    Scales the guest's virtual TSC by the ratio of single-level to
    nested operation cost, so guest-measured latencies read as if no
    extra layer existed.  Returns the factor applied.
    """
    model = victim_system.cost_model
    from repro.guest.syscalls import SYSCALL_PROFILES

    profile = SYSCALL_PROFILES["pipe_latency"]
    honest = profile.cpu_seconds + sum(
        n * model.exit_cost(reason, honest_depth)
        for reason, n in profile.exits.items()
    )
    observed = profile.cpu_seconds + sum(
        n * model.exit_cost(reason, observed_depth)
        for reason, n in profile.exits.items()
    )
    factor = honest / observed
    victim_system.set_tsc_scaling(factor)
    return factor
