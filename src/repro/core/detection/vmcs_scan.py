"""Baseline detector: VMCS-signature memory forensics (paper §VI-E).

Models Graziano et al.'s volatility extension: sweep physical memory
for pages that look like Intel VMCS regions.  Finding more VMCS pages
than the host's own hypervisor accounts for reveals a *second*
hypervisor — an L1 — because a nested hypervisor's VMCS pages live in
guest memory, which is host memory.

Structural limits, reproduced here:

* the signature is VT-x-specific — on an AMD (VMCB) machine the scan
  finds nothing and reports failure, the weakness the paper contrasts
  its software-only approach against;
* the scan requires sweeping all of RAM, priced per frame.
"""

from repro.errors import DetectionError
from repro.hypervisor.vmcs import looks_like_vmcs

#: Signature-check cost per scanned frame.
SCAN_COST_PER_FRAME = 3.0e-7


class VmcsScanResult:
    """Outcome of one memory-forensics sweep."""

    def __init__(self):
        self.frames_scanned = 0
        self.vmcs_pages_found = 0
        self.expected_vmcs_pages = 0
        self.scan_failed = False
        self.failure_reason = None

    @property
    def nested_hypervisor_detected(self):
        return (
            not self.scan_failed
            and self.vmcs_pages_found > self.expected_vmcs_pages
        )

    @property
    def extra_vmcs_pages(self):
        return max(0, self.vmcs_pages_found - self.expected_vmcs_pages)

    def __repr__(self):
        status = "FAILED" if self.scan_failed else (
            "NESTED" if self.nested_hypervisor_detected else "clean"
        )
        return (
            f"<VmcsScanResult {status} found={self.vmcs_pages_found} "
            f"expected={self.expected_vmcs_pages}>"
        )


def scan_for_hypervisors(host_system):
    """Generator: sweep host RAM for VMCS signatures.

    Returns a :class:`VmcsScanResult`.  The expected count comes from
    the host administrator's own bookkeeping: one VMCS per vCPU of each
    VM the host knowingly runs.
    """
    if host_system.depth != 0:
        raise DetectionError("memory forensics runs on the bare-metal host")
    result = VmcsScanResult()
    memory = host_system.memory

    cost = 0.0
    for frame in list(memory.iter_distinct_frames()):
        result.frames_scanned += 1
        cost += SCAN_COST_PER_FRAME
        if looks_like_vmcs(frame.content):
            result.vmcs_pages_found += 1
    yield host_system.engine.timeout(cost)

    if host_system.kvm is not None:
        result.expected_vmcs_pages = sum(
            vm.vcpus for vm in host_system.kvm.vms.values()
        )
    if result.vmcs_pages_found == 0 and result.expected_vmcs_pages > 0:
        # The host runs VMs yet no signature matched: the scanner's
        # VT-x-only signature database does not fit this machine.
        result.scan_failed = True
        result.failure_reason = (
            f"no VT-x VMCS signatures found on a host running "
            f"{result.expected_vmcs_pages} vCPU(s) — non-Intel "
            f"({host_system.cpu.vendor}) control blocks are not in the "
            "signature database"
        )
    return result
