"""Baseline detector: VMI fingerprinting (paper §VI-E).

The administrator keeps a fingerprint of each customer VM — OS build,
kernel version, expected process-name set — and periodically
re-introspects to compare.  CloudSkulk evades this by construction:
GuestX runs the same OS build, and the attacker forges its kernel
structures (DKSM) with a snapshot of the victim's processes, so the
fingerprints match ("they could have the same 'fingerprint' and may
not be discernible to detection tools").
"""

from repro.vmi.introspect import introspect


class FingerprintMismatch:
    """One difference between the stored and observed fingerprints."""

    def __init__(self, field, expected, observed):
        self.field = field
        self.expected = expected
        self.observed = observed

    def __repr__(self):
        return f"<FingerprintMismatch {self.field}: {self.expected!r} != {self.observed!r}>"


def take_fingerprint(qemu_vm):
    """Record the (os, kernel, process-name set) fingerprint of a VM."""
    return introspect(qemu_vm).fingerprint()


def check_fingerprint(qemu_vm, expected_fingerprint):
    """Re-introspect and diff against the stored fingerprint.

    Returns a list of :class:`FingerprintMismatch` (empty = VM looks
    unchanged — which is exactly what a well-run CloudSkulk produces).
    """
    observed = take_fingerprint(qemu_vm)
    mismatches = []
    fields = ("os_name", "kernel_version", "process_names")
    for field, expected, got in zip(fields, expected_fingerprint, observed):
        if expected != got:
            mismatches.append(FingerprintMismatch(field, expected, got))
    return mismatches
