"""Planning the Rootkit-In-The-Middle VM pair.

From a recon report, derive:

* **GuestX** — the RITM: enough memory to host the victim plus the
  attacker's own hypervisor stack, VMX exposed into the guest
  (``-cpu host,+vmx``), *no* victim port-forwards yet (they are taken
  over only after the original VM dies), and its own monitor.
* **the nested destination** — a VM *inside GuestX* whose
  machine-visible configuration matches the victim's exactly (live
  migration requires it), paused in ``-incoming`` state on
  ROOTKIT_PORT_BBBB.
* the forwarding relationship: HOST_PORT_AAAA on the host forwards into
  GuestX's BBBB, which is where the victim's migration stream lands —
  the paper's port choreography verbatim.
"""

from repro.errors import RootkitError
from repro.qemu.config import DriveSpec, MonitorSpec, QemuConfig

#: Extra RAM GuestX carries beyond the victim's, for its own OS + QEMU.
RITM_EXTRA_MEMORY_MB = 1024
#: Default port choreography (the numbers are irrelevant — §IV-A — but
#: the AAAA->BBBB relationship is crucial).
HOST_PORT_AAAA = 18444
ROOTKIT_PORT_BBBB = 4444
GUESTX_MONITOR_PORT = 15555
NESTED_MONITOR_PORT = 5556


class RitmPlan:
    """The pair of configs plus the port choreography."""

    def __init__(
        self,
        guestx_config,
        nested_config,
        host_port_aaaa,
        rootkit_port_bbbb,
        victim_hostfwds,
    ):
        self.guestx_config = guestx_config
        self.nested_config = nested_config
        self.host_port_aaaa = host_port_aaaa
        self.rootkit_port_bbbb = rootkit_port_bbbb
        #: The victim's original forwards, to be taken over post-kill.
        self.victim_hostfwds = victim_hostfwds

    def __repr__(self):
        return (
            f"<RitmPlan guestx={self.guestx_config.name} "
            f"AAAA={self.host_port_aaaa} BBBB={self.rootkit_port_bbbb}>"
        )


def plan_ritm(
    recon_report,
    guestx_name="guestx",
    nested_name=None,
    guestx_image="/var/lib/images/guestx.qcow2",
    nested_image="/srv/images/nested.qcow2",
    host_port_aaaa=HOST_PORT_AAAA,
    rootkit_port_bbbb=ROOTKIT_PORT_BBBB,
):
    """Derive the RITM plan from recon of the victim."""
    victim = recon_report.config
    if victim is None:
        raise RootkitError("recon report carries no victim config")
    if not victim.enable_kvm:
        raise RootkitError(
            "victim runs without KVM; the RITM technique targets "
            "hardware-virtualized guests"
        )

    guestx_config = QemuConfig(
        name=guestx_name,
        memory_mb=victim.memory_mb + RITM_EXTRA_MEMORY_MB,
        smp=victim.smp,
        drives=[DriveSpec(guestx_image)],
        nics=[_control_nic(victim)],
        monitor=MonitorSpec(port=GUESTX_MONITOR_PORT),
        enable_kvm=True,
        cpu_model=victim.cpu_model,
        nested_vmx=True,
    )

    # The nested VM impersonates the victim byte-for-byte where it
    # matters: memory, vCPUs, device types; it keeps the victim's
    # guest-port forwards (they bind on GuestX's node, no collision).
    nested = victim.clone_for_destination(
        nested_name or victim.name,
        monitor_port=NESTED_MONITOR_PORT,
        incoming_port=rootkit_port_bbbb,
        keep_hostfwds=True,
    )
    nested.drives = [
        DriveSpec(nested_image, d.interface, d.fmt) for d in victim.drives
    ]

    mismatches = victim.mismatches(nested)
    if mismatches:
        raise RootkitError(
            f"nested destination would not accept the migration: {mismatches}"
        )
    return RitmPlan(
        guestx_config,
        nested,
        host_port_aaaa,
        rootkit_port_bbbb,
        victim_hostfwds=[
            tuple(entry) for nic in victim.nics for entry in nic.hostfwds
        ],
    )


def _control_nic(victim_config):
    """GuestX's NIC: same model as the victim's, no forwards yet."""
    from repro.qemu.config import NicSpec

    model = victim_config.nics[0].model if victim_config.nics else "virtio-net-pci"
    return NicSpec(netdev_id="net0", model=model, hostfwds=[])
