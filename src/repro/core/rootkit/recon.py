"""Step-0 reconnaissance: recover the victim VM's configuration.

The paper's recipe (§IV-A), in order of preference:

1. the host shell ``history`` — find the original qemu command line;
2. ``ps -ef`` — the running QEMU process carries its full command line;
3. the QEMU Monitor — ``info qtree`` / ``info blockstats`` /
   ``info mtree`` / ``info mem`` / ``info network`` recover devices,
   memory size and port forwards when the command line is unavailable;
4. ``qemu-img info`` on the disk path for image size/format.

The recon object performs all four (monitor probing over a real telnet
connection to the victim's multiplexed monitor port) and cross-checks
the recovered config against the monitor's answers.
"""

import re

from repro.errors import ReconError
from repro.qemu.config import QEMU_BINARY, QemuConfig
from repro.qemu.devices.serial import TelnetClient
from repro.qemu.qemu_img import host_images, qemu_img_info


class ReconReport:
    """Everything recon learned about one target VM."""

    def __init__(self, target_name):
        self.target_name = target_name
        self.target_pid = None
        self.cmdline = None
        self.config = None
        self.config_source = None  # "history" | "ps" | "monitor"
        self.monitor_port = None
        self.monitor_probes = {}
        self.disk_info = {}
        self.validation_notes = []

    def __repr__(self):
        return (
            f"<ReconReport {self.target_name} pid={self.target_pid} "
            f"source={self.config_source}>"
        )


class TargetRecon:
    """Runs reconnaissance on one host with root access."""

    #: Monitor commands probed on the target, per the paper.
    PROBE_COMMANDS = (
        "info status",
        "info qtree",
        "info blockstats",
        "info mtree",
        "info mem",
        "info network",
    )

    def __init__(self, host_system):
        self.host = host_system
        self.engine = host_system.engine

    # -- passive sources ----------------------------------------------------

    def qemu_processes(self, exclude_names=()):
        """Running QEMU processes from ps -ef (excluding the attacker's)."""
        processes = self.host.kernel.table.find_by_name("qemu-system-x86_64")
        hits = []
        for proc in processes:
            if not proc.alive:
                continue
            if any(f"-name {name}" in proc.cmdline for name in exclude_names):
                continue
            hits.append(proc)
        return hits

    def config_from_history(self, target_name):
        """Scan shell history for the target's qemu launch command."""
        for line in reversed(self.host.shell.history):
            if QEMU_BINARY not in line:
                continue
            match = re.search(r"-name\s+(\S+)", line)
            if match and match.group(1) == target_name:
                return QemuConfig.from_command_line(line), line
        return None, None

    # -- the full pass -------------------------------------------------------

    def run(self, target_name=None, exclude_names=()):
        """Generator: full recon of a target; returns a ReconReport.

        Without ``target_name`` the first non-excluded QEMU process is
        the target (a single co-resident victim, as in the paper's
        demo).
        """
        candidates = self.qemu_processes(exclude_names)
        if not candidates:
            raise ReconError("no QEMU processes found on the host")
        target_proc = None
        if target_name is None:
            target_proc = candidates[0]
            match = re.search(r"-name\s+(\S+)", target_proc.cmdline)
            target_name = match.group(1) if match else "unknown"
        else:
            for proc in candidates:
                if f"-name {target_name}" in proc.cmdline:
                    target_proc = proc
                    break
            if target_proc is None:
                raise ReconError(f"no QEMU process named {target_name!r}")

        report = ReconReport(target_name)
        report.target_pid = target_proc.pid
        report.cmdline = target_proc.cmdline

        # Prefer history (the paper's first suggestion), fall back to ps.
        config, _line = self.config_from_history(target_name)
        if config is not None:
            report.config_source = "history"
        else:
            config = QemuConfig.from_command_line(target_proc.cmdline)
            report.config_source = "ps"
        report.config = config

        # Monitor probing over telnet.
        if config.monitor is not None:
            report.monitor_port = config.monitor.port
            client = TelnetClient(
                self.host.net_node, self.host.net_node, config.monitor.port
            )
            yield from client.open()
            for command in self.PROBE_COMMANDS:
                output = yield from client.command(command)
                report.monitor_probes[command] = output
            client.close()
            self._validate(report)

        # qemu-img info per drive.
        images = host_images(self.host.host())
        for drive in config.drives:
            if images.exists(drive.path):
                report.disk_info[drive.path] = qemu_img_info(
                    self.host.host(), drive.path
                )
        return report

    def _validate(self, report):
        """Cross-check the parsed config against monitor answers."""
        mtree = report.monitor_probes.get("info mtree", "")
        match = re.search(r"size: (\d+) MiB", mtree)
        if match:
            monitor_mb = int(match.group(1))
            if monitor_mb != report.config.memory_mb:
                report.validation_notes.append(
                    f"memory mismatch: cmdline {report.config.memory_mb}MB "
                    f"vs monitor {monitor_mb}MB — trusting the monitor"
                )
                report.config.memory_mb = monitor_mb
        network = report.monitor_probes.get("info network", "")
        for proto, host_port, guest_port in re.findall(
            r"hostfwd=(\w+)::(\d+)-:(\d+)", network
        ):
            fwd = (proto, int(host_port), int(guest_port))
            known = {
                tuple(entry) for nic in report.config.nics for entry in nic.hostfwds
            }
            if fwd not in known:
                report.validation_notes.append(
                    f"hostfwd {fwd} found via monitor but not on cmdline"
                )
                if report.config.nics:
                    report.config.nics[0].hostfwds.append(fwd)
