"""CloudSkulk: the nested-VM rootkit.

The four installation steps (paper §III):

1. the attacker already holds host root (threat model — via VM escape
   or a remote host vulnerability);
2. launch GuestX, the RITM VM, configured from reconnaissance of the
   victim (:mod:`~repro.core.rootkit.recon`,
   :mod:`~repro.core.rootkit.ritm`);
3. launch a nested, migration-incoming VM inside GuestX;
4. live-migrate the victim into the nested VM, kill the original, and
   clean up (PID swap, port-forward takeover, impersonation) —
   orchestrated by :mod:`~repro.core.rootkit.installer`.

Afterwards :mod:`~repro.core.rootkit.services` provides the §IV-B
malicious services: passive packet capture and keystroke logging,
parallel malicious OSes, and active packet tampering.
"""

from repro.core.rootkit.installer import CloudSkulkInstaller, InstallationReport
from repro.core.rootkit.recon import ReconReport, TargetRecon
from repro.core.rootkit.ritm import RitmPlan, plan_ritm
from repro.core.rootkit.services import (
    ActiveTamperService,
    KeystrokeLogger,
    NetworkFileMirror,
    PacketCaptureService,
    PageSyncEvasion,
    ParallelMaliciousOs,
)
from repro.core.rootkit.stealth import (
    ImpersonationMirror,
    impersonate_fingerprint,
    scrub_history,
    swap_pid,
)

__all__ = [
    "ActiveTamperService",
    "CloudSkulkInstaller",
    "ImpersonationMirror",
    "InstallationReport",
    "KeystrokeLogger",
    "NetworkFileMirror",
    "PacketCaptureService",
    "PageSyncEvasion",
    "ParallelMaliciousOs",
    "ReconReport",
    "RitmPlan",
    "TargetRecon",
    "impersonate_fingerprint",
    "plan_ritm",
    "scrub_history",
    "swap_pid",
]
