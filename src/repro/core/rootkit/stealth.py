"""Post-installation stealth actions (paper §III-A).

After the migration completes and the original VM dies, three things
would still give the rootkit away to an attentive administrator; each
has a counter here:

* the QEMU PID changed — :func:`swap_pid` rewrites GuestX's PID to the
  dead victim's ("the PID is just a variable in memory");
* the attacker's commands sit in the shell history —
  :func:`scrub_history`;
* VMI fingerprinting would see GuestX's processes instead of the
  victim's — :func:`impersonate_fingerprint` forges GuestX's kernel
  structures with a snapshot of the victim (DKSM).
"""

from repro.errors import RootkitError
from repro.qemu.config import QEMU_BINARY
from repro.vmi.subversion import forge_process_view, snapshot_for_impersonation


def swap_pid(host_system, qemu_vm, new_pid):
    """Give a QEMU process a specific (free) PID — the victim's old one.

    Requires host root; implemented as the direct kernel-memory edit
    the paper calls trivial for an attacker at this privilege level.
    """
    table = host_system.kernel.table
    old_pid = qemu_vm.process.pid
    if old_pid == new_pid:
        return qemu_vm.process
    if new_pid in table:
        raise RootkitError(
            f"pid {new_pid} still in use — kill the original VM first"
        )
    proc = table.reassign_pid(old_pid, new_pid)
    return proc


def scrub_history(host_system, markers=(QEMU_BINARY, "telnet", "qemu-img")):
    """Drop attacker-issued commands from the host shell history.

    Removes every line containing any marker *after* the last line that
    launched a still-running, non-attacker VM would be too clever —
    the real tool simply deletes its own lines; we model the same by
    filtering on markers the attacker knows it used.

    Returns the number of lines removed.
    """
    history = host_system.shell.history
    kept = [line for line in history if not any(m in line for m in markers)]
    removed = len(history) - len(kept)
    host_system.shell.history[:] = kept
    return removed


class ImpersonationMirror:
    """Keep GuestX's memory contents consistent with the victim's story.

    Registered on the cloud vendor's control channel
    (:class:`repro.core.detection.dedup_detector.CloudInterface`): when
    the vendor delivers a file to "the VM", the RITM sees the delivery
    pass through it and loads an identical copy into GuestX's own
    memory — otherwise a trivial file-presence scan of "Guest0" (really
    GuestX) would expose the swap.  This very diligence is what the
    dedup detector turns against the attacker in step 2 of §VI-B: the
    mirrored copy keeps the *original* content after the victim changes
    its own.
    """

    def __init__(self, guestx_system):
        self.guestx = guestx_system
        self.mirrored_paths = []

    def __call__(self, host_file, _victim_system):
        from repro.guest.filesystem import File

        pages = [
            host_file.page_content(i) for i in range(host_file.num_pages)
        ]
        copy = File(host_file.path, host_file.size_bytes, page_contents=pages)
        self.guestx.fs.add(copy)
        self.guestx.kernel.load_file(host_file.path, mergeable=True)
        self.mirrored_paths.append(host_file.path)


def impersonate_fingerprint(guestx_system, victim_system):
    """Make GuestX introspect like the victim.

    Copies the victim's live process snapshot into a DKSM forgery in
    GuestX's kernel, so a VMI fingerprint of "Guest0" (really GuestX)
    matches what the administrator has on file.
    """
    snapshot = snapshot_for_impersonation(victim_system)
    forge_process_view(guestx_system, snapshot)
    return snapshot
