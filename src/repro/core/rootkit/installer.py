"""The four-step CloudSkulk installer (paper §III, §IV-A).

Drives the whole attack over the same interfaces a human attacker with
host root would use: shell history and ``ps`` for recon, ``qemu-img``
and QEMU launches for the RITM pair, and the victim's telnet-multiplexed
QEMU Monitor for kicking off and watching the live migration.

The installer is an engine process; run it with::

    installer = CloudSkulkInstaller(host)
    process = host.engine.process(installer.install())
    host.engine.run(process)   # -> InstallationReport
"""

import re

from repro.core.rootkit.recon import TargetRecon
from repro.core.rootkit.ritm import plan_ritm
from repro.core.rootkit.stealth import (
    impersonate_fingerprint,
    scrub_history,
    swap_pid,
)
from repro.errors import RootkitError
from repro.qemu.devices.serial import TelnetClient
from repro.qemu.qemu_img import host_images
from repro.qemu.vm import launch_vm

#: How often the installer polls `info migrate` on the victim monitor.
MIGRATION_POLL_SECONDS = 1.0


class InstallationReport:
    """Timeline and artifacts of one CloudSkulk installation."""

    def __init__(self, engine):
        self._engine = engine
        self.steps = []  # (name, start, end)
        self.recon = None
        self.plan = None
        self.guestx_vm = None
        self.nested_vm = None
        self.victim_pid = None
        self.migration_text = None
        self.hostfwds_taken_over = []
        self.history_lines_removed = 0
        self.impersonated = False
        self.success = False

    def step_seconds(self, name):
        for step, start, end in self.steps:
            if step == name:
                return end - start
        raise KeyError(name)

    @property
    def total_seconds(self):
        if not self.steps:
            return 0.0
        return self.steps[-1][2] - self.steps[0][1]

    @property
    def migration_seconds(self):
        return self.step_seconds("step4-migrate")

    def summary(self):
        lines = [f"CloudSkulk installation: {'OK' if self.success else 'FAILED'}"]
        for step, start, end in self.steps:
            lines.append(f"  {step:<22} {end - start:8.2f} s")
        lines.append(f"  {'total':<22} {self.total_seconds:8.2f} s")
        return "\n".join(lines)

    def __repr__(self):
        return f"<InstallationReport ok={self.success} t={self.total_seconds:.1f}s>"


class CloudSkulkInstaller:
    """Orchestrates the attack on one host."""

    def __init__(self, host_system, **plan_kwargs):
        self.host = host_system
        self.engine = host_system.engine
        self.plan_kwargs = plan_kwargs

    def install(
        self,
        target_name=None,
        scrub=True,
        impersonate=True,
        migration_mode="precopy",
        migration_capabilities=(),
    ):
        """Generator: the full four-step installation.

        Returns an :class:`InstallationReport`.  Step 1 of the paper —
        obtaining host root — is the threat-model assumption: holding a
        reference to the host System *is* root here.

        ``migration_mode`` may be ``"postcopy"`` — §II-A: "the rootkit
        technique we present in this paper applies to both migration
        approaches."  Post-copy makes the install time workload-
        independent, at the cost of a degraded victim while its pages
        stream in.
        """
        if migration_mode not in ("precopy", "postcopy"):
            raise RootkitError(f"unknown migration mode {migration_mode!r}")
        report = InstallationReport(self.engine)
        step = _StepTimer(self.engine, report)

        # -- Step 1: reconnaissance (root already obtained) ---------------
        with step("step1-recon"):
            recon = yield from TargetRecon(self.host).run(
                target_name,
                exclude_names=(self.plan_kwargs.get("guestx_name", "guestx"),),
            )
            report.recon = recon
            report.victim_pid = recon.target_pid
            plan = plan_ritm(recon, **self.plan_kwargs)
            report.plan = plan

        # -- Step 2: launch GuestX (the RITM) ------------------------------
        with step("step2-guestx"):
            images = host_images(self.host.host())
            if not images.exists(plan.guestx_config.drives[0].path):
                images.create(plan.guestx_config.drives[0].path, 20.0)
            guestx_vm, boot = launch_vm(self.host, plan.guestx_config)
            report.guestx_vm = guestx_vm
            yield boot
            guestx_vm.guest.enable_kvm()

        # -- Step 3: nested destination inside GuestX ----------------------
        with step("step3-nested"):
            inner_host = guestx_vm.guest
            inner_images = host_images(inner_host)
            nested_drive = plan.nested_config.drives[0].path
            if not inner_images.exists(nested_drive):
                inner_images.create(nested_drive, 20.0)
            nested_vm, ready = launch_vm(inner_host, plan.nested_config)
            report.nested_vm = nested_vm
            yield ready
            guestx_vm.nics[0].add_hostfwd(
                "tcp", plan.host_port_aaaa, plan.rootkit_port_bbbb
            )

        # -- Step 4: migrate the victim in, then clean up -------------------
        with step("step4-migrate"):
            client = TelnetClient(
                self.host.net_node, self.host.net_node, recon.monitor_port
            )
            yield from client.open()
            if migration_mode == "postcopy":
                yield from client.command(
                    "migrate_set_capability postcopy-ram on"
                )
            # Extra wire capabilities (e.g. ``dedup``) the attacker's
            # migration should carry — the matrix runner's
            # migration-capability axis reaches the victim's monitor
            # through the same telnet path a human operator would use.
            for capability in migration_capabilities:
                yield from client.command(
                    f"migrate_set_capability {capability} on"
                )
            yield from client.command(
                f"migrate -d tcp:127.0.0.1:{plan.host_port_aaaa}"
            )
            while True:
                yield self.engine.timeout(MIGRATION_POLL_SECONDS)
                text = yield from client.command("info migrate")
                status = _migration_status(text)
                if status == "completed":
                    report.migration_text = text
                    break
                if status == "failed":
                    report.migration_text = text
                    raise RootkitError(f"migration failed:\n{text}")

        with step("step5-cleanup"):
            # Kill the post-migrated source VM (frees its PID and ports).
            yield from client.command("quit")
            client.close()
            swap_pid(self.host, guestx_vm, recon.target_pid)
            # Take over the victim's public ports: host port -> the
            # nested VM's identical forward inside GuestX.
            for proto, host_port, _guest_port in plan.victim_hostfwds:
                rule = guestx_vm.nics[0].add_hostfwd(proto, host_port, host_port)
                report.hostfwds_taken_over.append(rule)
            if impersonate and nested_vm.guest is not None:
                impersonate_fingerprint(guestx_vm.guest, nested_vm.guest)
                report.impersonated = True
            if scrub:
                report.history_lines_removed = scrub_history(self.host)

        report.success = True
        return report


class _StepTimer:
    """Context manager recording (step, start, end) into the report."""

    def __init__(self, engine, report):
        self.engine = engine
        self.report = report
        self._name = None
        self._start = None

    def __call__(self, name):
        self._name = name
        return self

    def __enter__(self):
        self._start = self.engine.now
        return self

    def __exit__(self, exc_type, exc, tb):
        self.report.steps.append((self._name, self._start, self.engine.now))
        return False


def _migration_status(info_migrate_text):
    match = re.search(r"Migration status: (\w+)", info_migrate_text)
    return match.group(1) if match else "unknown"
