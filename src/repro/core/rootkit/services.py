"""Malicious services a installed CloudSkulk can run (paper §IV-B).

Passive services observe; active services tamper.  All of them exploit
the RITM position: every victim packet traverses GuestX's forwarding
layer, and the victim's kernel runs under the attacker's L1 hypervisor.

:class:`PageSyncEvasion` implements the §VI-D counter-move an attacker
might try against the deduplication detector — synchronizing L2 page
changes into L1 — together with the cost accounting that backs the
paper's argument for why it does not scale.
"""

from repro.errors import RootkitError
from repro.guest.kernel import SyscallTap
from repro.net.nat import PacketHook


class PacketCaptureService(PacketHook):
    """Passive: record every packet crossing the RITM (tcpdump-at-L1)."""

    name = "packet-capture"

    def __init__(self, max_entries=100_000):
        self.max_entries = max_entries
        self.log = []
        self.bytes_seen = 0
        self.truncated = False

    def on_packet(self, packet, direction, rule):
        self.bytes_seen += packet.size_bytes
        if len(self.log) < self.max_entries:
            self.log.append(
                (rule.engine.now, direction, packet.size_bytes, packet.payload)
            )
        else:
            self.truncated = True
        return packet

    def payloads(self, direction=None):
        return [
            payload
            for _t, d, _size, payload in self.log
            if direction is None or d == direction
        ]


class KeystrokeLogger:
    """Passive: trap the victim's write(2) syscalls from the L1 hypervisor.

    Sees data *before* the victim encrypts it, per the paper: "plaintext
    data could be recorded before it is encrypted."
    """

    def __init__(self):
        self.events = []
        self._tap = None
        self._victim = None

    def install(self, victim_system):
        if self._tap is not None:
            raise RootkitError("keystroke logger already installed")
        self._victim = victim_system
        self._tap = SyscallTap("write", self._on_write)
        victim_system.kernel.install_tap(self._tap)
        return self._tap

    def _on_write(self, system, _syscall_name):
        self.events.append((system.engine.now, system.name))

    def remove(self):
        if self._tap is None:
            return
        self._victim.kernel.remove_tap(self._tap)
        self._tap = None

    @property
    def keystrokes_logged(self):
        return len(self.events)


class ActiveTamperService(PacketHook):
    """Active: drop or rewrite packets matching a predicate.

    ``action`` is ``"drop"`` or ``"modify"``; for modify, ``transform``
    maps the matched packet to its replacement (e.g. rewriting an email
    body or a web response, the paper's examples).
    """

    name = "active-tamper"

    def __init__(self, match, action="drop", transform=None):
        if action not in ("drop", "modify"):
            raise RootkitError(f"unknown tamper action {action!r}")
        if action == "modify" and transform is None:
            raise RootkitError("modify action requires a transform")
        self.match = match
        self.action = action
        self.transform = transform
        self.hits = 0

    def on_packet(self, packet, direction, rule):
        if not self.match(packet, direction):
            return packet
        self.hits += 1
        if self.action == "drop":
            return None
        return self.transform(packet)


class ParallelMaliciousOs:
    """A second nested VM beside the victim: phishing host, spam relay...

    "Because the rootkit itself is a hypervisor, attackers can create a
    separate but malicious OS and let it run in parallel with the
    victim OS" (§IV-B-1).
    """

    def __init__(self, guestx_vm, name="svc-vm", memory_mb=512, service_port=8080):
        self.guestx_vm = guestx_vm
        self.name = name
        self.memory_mb = memory_mb
        self.service_port = service_port
        self.vm = None
        self.requests_served = 0

    def launch(self):
        """Generator: boot the parallel OS and start its 'web service'."""
        from repro.qemu.config import DriveSpec, QemuConfig
        from repro.qemu.qemu_img import host_images
        from repro.qemu.vm import launch_vm

        inner_host = self.guestx_vm.guest
        images = host_images(inner_host)
        image_path = f"/srv/images/{self.name}.qcow2"
        if not images.exists(image_path):
            images.create(image_path, 8.0)
        from repro.qemu.config import NicSpec

        config = QemuConfig(
            name=self.name,
            memory_mb=self.memory_mb,
            smp=1,
            drives=[DriveSpec(image_path)],
            nics=[
                NicSpec(
                    "net0", hostfwds=[("tcp", self.service_port, 80)]
                )
            ],
        )
        vm, boot = launch_vm(inner_host, config, record_history=False)
        self.vm = vm
        yield boot
        vm.guest.net_node.listen(80, handler=self._serve)
        return vm

    def _serve(self, connection):
        engine = self.guestx_vm.engine

        def responder():
            from repro.sim.process import ChannelClosed

            try:
                while True:
                    request = yield connection.server.recv()
                    self.requests_served += 1
                    body = b"<html>totally-legitimate-login-page</html>"
                    connection.server.send(body, kind="http")
                    del request
            except ChannelClosed:
                return

        engine.process(responder(), name=f"{self.name}-http")


class NetworkFileMirror(PacketHook):
    """Impersonation over the wire: copy vendor file pushes into GuestX.

    When the cloud channel delivers files over the VM's public endpoint
    (``CloudInterface(delivery="network")``), the stream crosses the
    RITM's forwarding layer — this hook watches for ``cloud-file``
    records, reassembles each file, and plants an identical copy in
    GuestX's filesystem and memory.  It is the packet-level realization
    of the impersonation the detector's step-2 then turns against the
    attacker.
    """

    name = "network-file-mirror"

    def __init__(self, guestx_system):
        self.guestx = guestx_system
        self._partial = {}
        self.files_mirrored = []

    def on_packet(self, packet, direction, rule):
        if direction == "inbound" and packet.kind == "cloud-file":
            path, index, total, content = packet.payload
            pages = self._partial.setdefault(path, {})
            pages[index] = content
            if len(pages) == total:
                ordered = [pages[i] for i in range(total)]
                self.guestx.fs.create(path, page_contents=ordered, size_bytes=0)
                self.guestx.kernel.load_file(path, mergeable=True)
                self.files_mirrored.append(path)
                del self._partial[path]
        return packet


class PageSyncEvasion:
    """The §VI-D counter-move: mirror L2 page changes into L1.

    Wraps the victim kernel's ``write_file_page`` so every tracked-file
    change is replayed into GuestX's memory.  Keeps the books the
    paper's argument needs: per-change overhead, and the fact that the
    hook itself constitutes an L1 kernel-code modification an integrity
    monitor would flag (``hypervisor_code_modified``).
    """

    #: L1-side cost of intercepting and replaying one L2 page change.
    SYNC_COST_PER_PAGE = 5.5e-4

    def __init__(self, victim_system, guestx_system, tracked_paths):
        self.victim = victim_system
        self.guestx = guestx_system
        self.tracked_paths = set(tracked_paths)
        self.syncs = 0
        self.total_cost = 0.0
        self._original = None
        self._mirror_pfns = {}

    def enable(self):
        if self._original is not None:
            raise RootkitError("page-sync evasion already enabled")
        self._original = self.victim.kernel.write_file_page
        self.victim.kernel.write_file_page = self._wrapped
        # Patching the victim-facing hypervisor/kernel path is exactly
        # the modification the paper says "could be easily detected".
        self.guestx.kernel.hypervisor_code_modified = True

    def disable(self):
        if self._original is None:
            return
        self.victim.kernel.write_file_page = self._original
        self._original = None

    def _wrapped(self, path, index, content):
        cost = self._original(path, index, content)
        if path in self.tracked_paths:
            cost += self._mirror(path, index, content)
        return cost

    def _mirror(self, path, index, content):
        """Replay one page change into GuestX's copy of the file."""
        kernel = self.guestx.kernel
        if self.guestx.fs.exists(path):
            mirror_cost = kernel.write_file_page(path, index, content)
        else:
            key = (path, index)
            if key not in self._mirror_pfns:
                pfns, alloc_cost = kernel.alloc_pages(1, mergeable=True)
                self._mirror_pfns[key] = pfns[0]
                mirror_cost = alloc_cost
            else:
                mirror_cost = 0.0
            _outcome, write_cost = kernel.write_page(self._mirror_pfns[key], content)
            mirror_cost += write_cost
        self.syncs += 1
        cost = self.SYNC_COST_PER_PAGE + mirror_cost
        self.total_cost += cost
        return cost

    def projected_cost_per_second(self, tracked_pages, change_rate_per_page_s):
        """The paper's scaling argument, quantified.

        For ``tracked_pages`` pages each changing
        ``change_rate_per_page_s`` times a second, the L1 CPU-seconds
        burned per wall second.  At millions of pages this exceeds 1.0
        — the evasion cannot keep up.
        """
        return tracked_pages * change_rate_per_page_s * self.SYNC_COST_PER_PAGE
