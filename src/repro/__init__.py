"""CloudSkulk reproduction: a nested-VM rootkit and its detection.

A full-stack reproduction of *CloudSkulk: A Nested Virtual Machine
Based Rootkit and Its Detection* (DSN 2021) on a simulated QEMU/KVM
substrate: discrete-event machine, KVM-style hypervisor with Turtles
nested-exit trampolining, KSM memory deduplication, QEMU VMs with a
monitor and user networking, pre-/post-copy live migration, the
CloudSkulk attack itself, and the memory-deduplication detector.

Quickstart::

    from repro import scenarios
    host, report = scenarios.nested_environment()
    print(report.summary())           # the four-step attack timeline

    host, cloud, ksm, _ = scenarios.detection_setup(nested=True)
    from repro.core.detection.dedup_detector import DedupDetector
    detector = DedupDetector(host, cloud)
    result = host.engine.run(host.engine.process(detector.run()))
    print(result.verdict.explanation())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro import scenarios
from repro.core.detection.dedup_detector import CloudInterface, DedupDetector
from repro.core.rootkit.installer import CloudSkulkInstaller
from repro.errors import ReproError
from repro.guest.system import System, make_testbed
from repro.hardware.machine import Machine
from repro.hypervisor.ksm import KsmDaemon
from repro.qemu.config import QemuConfig
from repro.qemu.vm import QemuVm, launch_vm

__all__ = [
    "CloudInterface",
    "CloudSkulkInstaller",
    "DedupDetector",
    "KsmDaemon",
    "Machine",
    "QemuConfig",
    "QemuVm",
    "ReproError",
    "System",
    "launch_vm",
    "make_testbed",
    "scenarios",
    "__version__",
]
