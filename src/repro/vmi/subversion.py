"""DKSM-style VMI subversion (paper §III-A, refs [16, 31]).

An attacker controlling a guest kernel can relocate or duplicate the
data structures VMI's priori knowledge points at, making introspection
report whatever the attacker chooses while the real state lives
elsewhere.  CloudSkulk uses this inside GuestX to complete its
impersonation of the victim.
"""

from repro.errors import RootkitError


def forge_process_view(system, processes):
    """Make VMI see ``processes`` — a list of (pid, name, user) — instead
    of the system's real process table.

    Typically called with the *victim's* process list so GuestX
    fingerprints identically to Guest0.
    """
    for entry in processes:
        if len(entry) != 3:
            raise RootkitError(
                f"forged process entries must be (pid, name, user): {entry!r}"
            )
    system.kernel.dksm_forged_view = [tuple(entry) for entry in processes]
    return system.kernel.dksm_forged_view


def restore_process_view(system):
    """Undo the forgery (used by tests and by attackers covering up)."""
    system.kernel.dksm_forged_view = None


def snapshot_for_impersonation(victim_system):
    """The (pid, name, user) list an attacker copies from the victim."""
    return [
        (proc.pid, proc.name, proc.user)
        for proc in victim_system.kernel.table.processes()
        if proc.alive
    ]
