"""Kernel data-structure layouts — VMI's prior knowledge.

A real VMI tool ships per-build offsets (where ``init_task`` lives,
field offsets inside ``task_struct``).  We model a layout as exactly
that: a named offset table keyed by (os, kernel version).  Introspection
only works for builds present in this database, mirroring the brittle
priori-knowledge dependence the paper discusses.
"""

from repro.errors import DetectionError


class KernelLayout:
    """Struct offsets for one kernel build."""

    def __init__(self, os_name, kernel_version, offsets):
        self.os_name = os_name
        self.kernel_version = kernel_version
        self.offsets = dict(offsets)

    @property
    def key(self):
        return (self.os_name, self.kernel_version)

    def __repr__(self):
        return f"<KernelLayout {self.os_name}/{self.kernel_version}>"


_FEDORA22_OFFSETS = {
    "init_task": 0xFFFFFFFF81C14480,
    "task_struct.pid": 0x440,
    "task_struct.comm": 0x608,
    "task_struct.tasks_next": 0x390,
    "task_struct.cred": 0x5F0,
    "module_list": 0xFFFFFFFF81C4A490,
}

KERNEL_LAYOUTS = {
    ("fedora22", "4.4.14-200.fc22.x86_64"): KernelLayout(
        "fedora22", "4.4.14-200.fc22.x86_64", _FEDORA22_OFFSETS
    ),
    ("fedora22", "4.0.5-300.fc22.x86_64"): KernelLayout(
        "fedora22",
        "4.0.5-300.fc22.x86_64",
        {**_FEDORA22_OFFSETS, "task_struct.pid": 0x438},
    ),
    ("centos7", "3.10.0-1160.el7.x86_64"): KernelLayout(
        "centos7",
        "3.10.0-1160.el7.x86_64",
        {**_FEDORA22_OFFSETS, "init_task": 0xFFFFFFFF81A02480},
    ),
}


def layout_for(os_name, kernel_version):
    """Look up the layout for a build; raises when unknown."""
    layout = KERNEL_LAYOUTS.get((os_name, kernel_version))
    if layout is None:
        raise DetectionError(
            f"no VMI layout for {os_name}/{kernel_version} "
            "(priori knowledge missing)"
        )
    return layout
