"""Virtual machine introspection.

VMI tools reconstruct OS-level semantics from a VM's raw memory using
prior knowledge of the guest kernel's data-structure layout.  The paper
leans on two of VMI's structural properties:

* an attacker who controls the guest kernel can *subvert* VMI by
  relocating/forging those structures (DKSM — §III-A, refs [16,31-33]);
* VMI cannot reach a *nested* guest: with two semantic gaps stacked, it
  has no idea where the inner kernel's structures live, and scanning
  all 2^52 possible pages is infeasible (§VI-D-2) — which is why
  CloudSkulk's impersonation defeats VMI-based fingerprinting and a
  different detection channel (memory deduplication timing) is needed.
"""

from repro.vmi.introspect import (
    IntrospectionReport,
    SemanticGapError,
    introspect,
    introspect_nested,
)
from repro.vmi.invariants import InvariantReport, check_process_invariants
from repro.vmi.kernel_structs import KERNEL_LAYOUTS, KernelLayout
from repro.vmi.subversion import forge_process_view, restore_process_view

__all__ = [
    "IntrospectionReport",
    "InvariantReport",
    "KERNEL_LAYOUTS",
    "KernelLayout",
    "SemanticGapError",
    "check_process_invariants",
    "forge_process_view",
    "introspect",
    "introspect_nested",
    "restore_process_view",
]
