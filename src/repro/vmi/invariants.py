"""Cross-view kernel-object invariance checking.

Hello rootKitty-style detection: take the VMI walk of a guest's
process structures and cross-check it against the kernel's own
ground-truth table.  An attacker who forged the VMI-visible structures
(DKSM — :mod:`repro.vmi.subversion`) leaves the two views disagreeing;
a stock guest leaves them identical.  The check is only as strong as
the views are independent — it sees nothing once *both* views are
under attacker control, and it cannot reach a nested guest at all
(:func:`repro.vmi.introspect.introspect_nested`), which is exactly the
blind spot CloudSkulk exploits.
"""

from repro.vmi.introspect import introspect


class InvariantReport:
    """Outcome of one cross-view invariance check."""

    def __init__(self, vm_name):
        self.vm_name = vm_name
        self.vmi_view = []  # (pid, name, user) — what introspection saw
        self.kernel_view = []  # (pid, name, user) — kernel ground truth
        self.vmi_only = []  # entries VMI shows that the kernel lacks
        self.kernel_only = []  # entries the attacker hid from VMI

    @property
    def consistent(self):
        return not self.vmi_only and not self.kernel_only

    @property
    def processes_walked(self):
        """Structure walk length: both views, deduplicated entries."""
        return len({*self.vmi_view, *self.kernel_view})

    def summary(self):
        state = "consistent" if self.consistent else "FORGED"
        return (
            f"invariance check {self.vm_name}: {state} "
            f"(vmi={len(self.vmi_view)} kernel={len(self.kernel_view)} "
            f"hidden={len(self.kernel_only)} injected={len(self.vmi_only)})"
        )

    def __repr__(self):
        return f"<InvariantReport {self.vm_name} consistent={self.consistent}>"


def check_process_invariants(qemu_vm):
    """Cross-check the VMI process view against kernel ground truth.

    Raises what :func:`repro.vmi.introspect.introspect` raises — a
    missing guest (DetectionError) or an unknown kernel build (no
    priori layout knowledge).
    """
    vmi_report = introspect(qemu_vm)
    guest = qemu_vm.guest
    report = InvariantReport(qemu_vm.name)
    report.vmi_view = sorted(vmi_report.processes)
    report.kernel_view = sorted(
        (proc.pid, proc.name, proc.user)
        for proc in guest.kernel.table.processes()
        if proc.alive
    )
    kernel_set = set(report.kernel_view)
    vmi_set = set(report.vmi_view)
    report.vmi_only = sorted(vmi_set - kernel_set)
    report.kernel_only = sorted(kernel_set - vmi_set)
    return report
