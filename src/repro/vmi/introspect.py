"""The introspection tool: hardware view -> OS semantics.

:func:`introspect` reconstructs the process/module view of the guest
*directly hosted by* a VM.  If the attacker has forged the kernel's
data structures (DKSM), the forged view is what introspection sees —
the tool has no way to tell, because the forged structures are exactly
where its priori knowledge points.

:func:`introspect_nested` demonstrates the two-semantic-gap failure:
reaching an L2 guest from the host is refused with the arithmetic the
paper gives (2^52 candidate pages).
"""

from repro.errors import DetectionError
from repro.vmi.kernel_structs import layout_for


class SemanticGapError(DetectionError):
    """VMI cannot bridge the semantic gap(s) to the requested guest."""


class IntrospectionReport:
    """What a VMI pass recovered from one VM."""

    def __init__(self, vm_name, os_name, kernel_version):
        self.vm_name = vm_name
        self.os_name = os_name
        self.kernel_version = kernel_version
        self.processes = []  # (pid, name, user)
        self.modules = []
        self.subverted = False  # set by tests/ground truth only

    @property
    def process_names(self):
        return sorted({name for _pid, name, _user in self.processes})

    def fingerprint(self):
        """The (os, kernel, process-name set) tuple fingerprint."""
        return (self.os_name, self.kernel_version, tuple(self.process_names))

    def __repr__(self):
        return (
            f"<IntrospectionReport {self.vm_name} "
            f"{self.os_name}/{self.kernel_version} "
            f"procs={len(self.processes)}>"
        )


#: Modules every stock build shows.
_BASELINE_MODULES = ("ext4", "virtio_net", "virtio_blk", "ip_tables")


def introspect(qemu_vm):
    """Run VMI against a VM's directly hosted guest."""
    guest = qemu_vm.guest
    if guest is None:
        raise DetectionError(f"{qemu_vm.name}: no guest to introspect")
    layout_for(guest.os_name, guest.kernel_version)  # priori knowledge gate
    report = IntrospectionReport(
        qemu_vm.name, guest.os_name, guest.kernel_version
    )
    forged = guest.kernel.dksm_forged_view
    if forged is not None:
        # The walk lands on attacker-crafted structures.
        report.processes = list(forged)
        report.subverted = True
    else:
        report.processes = [
            (proc.pid, proc.name, proc.user)
            for proc in guest.kernel.table.processes()
            if proc.alive
        ]
    report.modules = list(_BASELINE_MODULES)
    if guest.kvm is not None:
        report.modules += ["kvm", "kvm_intel"]
    return report


def introspect_nested(qemu_vm):
    """Attempt to introspect a guest *nested inside* this VM's guest.

    Always fails: the inner guest's physical pages are scattered through
    the outer guest's pseudo-physical space with no locating anchor, and
    a 64-bit address space holds 2^52 candidate pages (paper §VI-D-2).
    """
    guest = qemu_vm.guest
    if guest is None:
        raise DetectionError(f"{qemu_vm.name}: no guest to introspect")
    candidate_pages = 2 ** (64 - 12)
    raise SemanticGapError(
        f"cannot introspect nested guests of {qemu_vm.name}: two stacked "
        f"semantic gaps; no anchor for the inner kernel's structures "
        f"among {candidate_pages} candidate pages"
    )
