"""Exception hierarchy for the CloudSkulk reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class HardwareError(ReproError):
    """Raised for invalid operations on the simulated hardware."""


class MemoryError_(HardwareError):
    """Raised when physical or guest memory operations fail.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class HypervisorError(ReproError):
    """Raised for invalid hypervisor operations (VMX, nesting, KSM)."""


class VmExitError(HypervisorError):
    """Raised when a VM exit cannot be handled."""


class GuestError(ReproError):
    """Raised for errors inside the simulated guest operating system."""


class FileSystemError(GuestError):
    """Raised for guest filesystem failures (missing files, bad paths)."""


class ProcessError(GuestError):
    """Raised for guest process-management failures."""


class QemuError(ReproError):
    """Raised for errors in the QEMU userspace VMM layer."""


class ConfigError(QemuError):
    """Raised when a QEMU configuration is invalid or inconsistent."""


class MonitorError(QemuError):
    """Raised when a QEMU Monitor command fails or is unknown."""


class NetworkError(ReproError):
    """Raised for simulated network failures (closed ports, bad routes)."""


class MigrationError(ReproError):
    """Raised when a live migration cannot start or fails to complete."""


class RootkitError(ReproError):
    """Raised when a CloudSkulk installation step fails."""


class ReconError(RootkitError):
    """Raised when target-VM reconnaissance cannot recover a config."""


class DetectionError(ReproError):
    """Raised when a detector cannot collect the measurements it needs."""


class CloudError(ReproError):
    """Raised for cloud control-plane failures (placement, fleet ops)."""


class PlacementError(CloudError):
    """Raised when no host can satisfy a tenant placement request."""
