"""Chaos campaigns: score detection under standard fault mixes.

A :class:`ChaosCampaign` runs one seeded fleet experiment per *fault
mix* — a named subset of the fault catalog (infrastructure loss,
network degradation, migration transport, stealth interference) — and
folds each run's detection recall/latency, injection counts, and
degradation tallies into a :class:`ChaosReport`.

Everything is derived from the campaign seed through the same
:class:`~repro.sim.rng.RngRegistry` discipline the fleet uses, so the
same seed produces byte-identical report JSON (the differential
determinism tests diff exactly :meth:`ChaosReport.to_json`).
"""

import json

from repro.faults.plan import FAULT_KINDS, FaultError, FaultPlan
from repro.sim.rng import RngRegistry

#: Named fault mixes: which corner of the fault catalog each campaign
#: leg stresses.  ``mixed`` draws from everything.
STANDARD_MIXES = {
    "infra": ("host_crash", "ksm_stall"),
    "network": ("partition", "latency_spike"),
    "migration": ("migration_drop", "latency_spike"),
    "stealth": ("probe_timeout", "guest_hang"),
    "mixed": FAULT_KINDS,
}

#: The fleet shape a chaos leg runs by default — deliberately the same
#: 4-host/12-tenant configuration as the ``fleet_sweep_4x12`` benchmark
#: so the fault-free baseline is directly comparable.
DEFAULT_FLEET_PARAMS = dict(
    hosts=4,
    tenants=12,
    churn_operations=6,
    rebalance_moves=1,
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)


def standard_mix_plan(mix, seed, faults=5, horizon=240.0):
    """The deterministic :class:`FaultPlan` for one named mix."""
    try:
        kinds = STANDARD_MIXES[mix]
    except KeyError:
        raise FaultError(
            f"unknown fault mix {mix!r} (choose from {sorted(STANDARD_MIXES)})"
        ) from None
    rng = RngRegistry(seed).stream(f"faults.mix.{mix}")
    return FaultPlan.random(rng, faults=faults, horizon=horizon, kinds=kinds)


class ChaosReport:
    """Deterministic scorecard of one chaos campaign."""

    def __init__(self, seed, faults_per_mix, horizon):
        self.seed = seed
        self.faults_per_mix = faults_per_mix
        self.horizon = horizon
        #: One dict per mix leg, in run order.
        self.entries = []

    def as_dict(self):
        return {
            "seed": self.seed,
            "faults_per_mix": self.faults_per_mix,
            "horizon": self.horizon,
            "entries": self.entries,
        }

    def to_json(self):
        """Byte-identical across same-seed campaigns."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @property
    def mean_recall(self):
        if not self.entries:
            return 0.0
        return sum(e["recall"] for e in self.entries) / len(self.entries)

    def summary(self):
        lines = [
            f"chaos campaign: seed={self.seed} mixes={len(self.entries)} "
            f"mean recall {self.mean_recall:.2f}"
        ]
        for entry in self.entries:
            latency = (
                f"{entry['mean_detection_latency']:.3f}s"
                if entry["mean_detection_latency"] is not None
                else "n/a"
            )
            lines.append(
                f"  {entry['mix']:<10} recall={entry['recall']:.2f} "
                f"latency={latency} "
                f"injected={entry['faults_injected']} "
                f"recovered={entry['faults_recovered']} "
                f"degraded={entry['tenants_degraded']} "
                f"unreachable={entry['unreachable_findings']}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<ChaosReport seed={self.seed} entries={len(self.entries)} "
            f"recall={self.mean_recall:.2f}>"
        )


class ChaosCampaign:
    """Runs one fleet experiment per fault mix and scores the outcome."""

    def __init__(
        self,
        seed=1701,
        mixes=("infra", "migration", "mixed"),
        faults_per_mix=5,
        horizon=240.0,
        fleet_params=None,
        trace=False,
    ):
        self.seed = int(seed)
        self.mixes = tuple(mixes)
        for mix in self.mixes:
            if mix not in STANDARD_MIXES:
                raise FaultError(
                    f"unknown fault mix {mix!r} "
                    f"(choose from {sorted(STANDARD_MIXES)})"
                )
        self.faults_per_mix = faults_per_mix
        self.horizon = horizon
        params = dict(DEFAULT_FLEET_PARAMS)
        if fleet_params:
            params.update(fleet_params)
        self.fleet_params = params
        self.trace = trace
        #: FleetRunResult per mix leg (trace export, post-mortems).
        self.results = []

    def plan_for(self, mix):
        return standard_mix_plan(
            mix, self.seed, faults=self.faults_per_mix, horizon=self.horizon
        )

    def run(self):
        """Run every mix leg; returns the :class:`ChaosReport`."""
        from repro.cloud.fleet import run_fleet

        report = ChaosReport(self.seed, self.faults_per_mix, self.horizon)
        for mix in self.mixes:
            plan = self.plan_for(mix)
            result = run_fleet(
                seed=self.seed,
                faults=plan,
                trace=self.trace,
                **self.fleet_params,
            )
            self.results.append(result)
            report.entries.append(self._score(mix, plan, result))
        return report

    @staticmethod
    def _score(mix, plan, result):
        dc = result.datacenter
        perf = dc.engine.perf
        injector = result.injector
        latencies = result.detection_latencies
        mean_latency = (
            sum(latencies) / len(latencies) if latencies else None
        )
        degraded = sorted(
            name
            for name, tenant in dc.tenants.items()
            if tenant.state == "degraded"
        )
        unreachable = sum(
            len(r.unreachable) for r in result.monitor.reports
        )
        return {
            "mix": mix,
            "faults_planned": len(plan),
            "faults_injected": perf.faults_injected,
            "faults_recovered": perf.faults_recovered,
            "injections": list(injector.injections),
            "campaigns": len(result.campaign.events),
            "detected": result.detected_campaigns,
            "recall": result.recall,
            "detection_latencies": latencies,
            "mean_detection_latency": mean_latency,
            "tenants_running": len(dc.running_tenants()),
            "tenants_degraded": degraded,
            "unreachable_findings": unreachable,
            "virtual_time": dc.engine.now,
        }
