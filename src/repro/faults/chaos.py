"""Chaos campaigns: score detection under standard fault mixes.

A :class:`ChaosCampaign` runs one seeded fleet experiment per *fault
mix* — a named subset of the fault catalog (infrastructure loss,
network degradation, migration transport, stealth interference) — and
folds each run's detection recall/latency, injection counts, and
degradation tallies into a :class:`ChaosReport`.

Everything is derived from the campaign seed through the same
:class:`~repro.sim.rng.RngRegistry` discipline the fleet uses, so the
same seed produces byte-identical report JSON (the differential
determinism tests diff exactly :meth:`ChaosReport.to_json`).
"""

import json

from repro.faults.plan import FAULT_KINDS, FaultError, FaultPlan
from repro.sim.rng import RngRegistry

#: Named fault mixes: which corner of the fault catalog each campaign
#: leg stresses.  ``mixed`` draws from everything.
STANDARD_MIXES = {
    "infra": ("host_crash", "ksm_stall"),
    "network": ("partition", "latency_spike"),
    "migration": ("migration_drop", "latency_spike"),
    "stealth": ("probe_timeout", "guest_hang"),
    "mixed": FAULT_KINDS,
}

#: The fleet shape a chaos leg runs by default — deliberately the same
#: 4-host/12-tenant configuration as the ``fleet_sweep_4x12`` benchmark
#: so the fault-free baseline is directly comparable.
DEFAULT_FLEET_PARAMS = dict(
    hosts=4,
    tenants=12,
    churn_operations=6,
    rebalance_moves=1,
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)


#: fleet_params keys consumed by the shared warm-up prefix; everything
#: else parameterizes the divergent branch phase.  ``run_fanout`` uses
#: the split to warm once and fan branches out off one snapshot.
WARM_PARAM_KEYS = (
    "hosts",
    "tenants",
    "churn_operations",
    "rebalance_moves",
    "overcommit",
    "settle_seconds",
)


def _split_fleet_params(params):
    """(warm-phase kwargs, branch-phase kwargs) from one params dict."""
    warm = {k: v for k, v in params.items() if k in WARM_PARAM_KEYS}
    branch = {k: v for k, v in params.items() if k not in WARM_PARAM_KEYS}
    return warm, branch


def standard_mix_plan(mix, seed, faults=5, horizon=240.0, stream=None):
    """The deterministic :class:`FaultPlan` for one named mix.

    ``stream`` overrides the registry stream the plan is drawn from
    (default ``faults.mix.<mix>``); fan-out drivers pass a per-branch
    name so N branches of the same mix get independent plans from the
    same campaign seed.
    """
    try:
        kinds = STANDARD_MIXES[mix]
    except KeyError:
        raise FaultError(
            f"unknown fault mix {mix!r} (choose from {sorted(STANDARD_MIXES)})"
        ) from None
    rng = RngRegistry(seed).stream(stream or f"faults.mix.{mix}")
    return FaultPlan.random(rng, faults=faults, horizon=horizon, kinds=kinds)


class ChaosReport:
    """Deterministic scorecard of one chaos campaign."""

    def __init__(self, seed, faults_per_mix, horizon):
        self.seed = seed
        self.faults_per_mix = faults_per_mix
        self.horizon = horizon
        #: One dict per mix leg, in run order.
        self.entries = []

    def as_dict(self):
        return {
            "seed": self.seed,
            "faults_per_mix": self.faults_per_mix,
            "horizon": self.horizon,
            "entries": self.entries,
        }

    def to_json(self):
        """Byte-identical across same-seed campaigns."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @property
    def mean_recall(self):
        if not self.entries:
            return 0.0
        return sum(e["recall"] for e in self.entries) / len(self.entries)

    def summary(self):
        lines = [
            f"chaos campaign: seed={self.seed} mixes={len(self.entries)} "
            f"mean recall {self.mean_recall:.2f}"
        ]
        for entry in self.entries:
            latency = (
                f"{entry['mean_detection_latency']:.3f}s"
                if entry["mean_detection_latency"] is not None
                else "n/a"
            )
            lines.append(
                f"  {entry['mix']:<10} recall={entry['recall']:.2f} "
                f"latency={latency} "
                f"injected={entry['faults_injected']} "
                f"recovered={entry['faults_recovered']} "
                f"degraded={entry['tenants_degraded']} "
                f"unreachable={entry['unreachable_findings']}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<ChaosReport seed={self.seed} entries={len(self.entries)} "
            f"recall={self.mean_recall:.2f}>"
        )


class ChaosCampaign:
    """Runs one fleet experiment per fault mix and scores the outcome."""

    def __init__(
        self,
        seed=1701,
        mixes=("infra", "migration", "mixed"),
        faults_per_mix=5,
        horizon=240.0,
        fleet_params=None,
        trace=False,
    ):
        self.seed = int(seed)
        self.mixes = tuple(mixes)
        for mix in self.mixes:
            if mix not in STANDARD_MIXES:
                raise FaultError(
                    f"unknown fault mix {mix!r} "
                    f"(choose from {sorted(STANDARD_MIXES)})"
                )
        self.faults_per_mix = faults_per_mix
        self.horizon = horizon
        params = dict(DEFAULT_FLEET_PARAMS)
        if fleet_params:
            params.update(fleet_params)
        self.fleet_params = params
        self.trace = trace
        #: FleetRunResult per mix leg (trace export, post-mortems).
        self.results = []

    def plan_for(self, mix, branch=0):
        """The plan for one leg; ``branch`` > 0 derives an independent
        plan for the Nth fan-out branch of the same mix."""
        stream = f"faults.mix.{mix}" if not branch else f"faults.mix.{mix}#{branch}"
        return standard_mix_plan(
            mix,
            self.seed,
            faults=self.faults_per_mix,
            horizon=self.horizon,
            stream=stream,
        )

    def run(self):
        """Run every mix leg cold; returns the :class:`ChaosReport`.

        Each leg replays the whole fleet experiment — warm-up included
        — with the mix's faults armed from t=0, so faults can land in
        the provisioning/churn phase too.  :meth:`run_fanout` is the
        warm-once variant where faults only hit the branch phase.
        """
        from repro.cloud.fleet import run_fleet

        report = ChaosReport(self.seed, self.faults_per_mix, self.horizon)
        params = {
            k: v
            for k, v in self.fleet_params.items()
            if k != "settle_seconds"  # a fan-out-only knob
        }
        for mix in self.mixes:
            plan = self.plan_for(mix)
            result = run_fleet(
                seed=self.seed,
                faults=plan,
                trace=self.trace,
                **params,
            )
            self.results.append(result)
            report.entries.append(self._score(mix, plan, result))
        return report

    def run_fanout(self, branches_per_mix=1, processes=None):
        """Warm one fleet, fan every leg out as a COW fork branch.

        The expensive prefix (provision, churn, rebalance, optional
        ``settle_seconds`` of KSM convergence) runs once; each leg —
        ``branches_per_mix`` independent fault plans per mix — forks the
        snapshot and plays its plan relative to the fork point.  Faults
        therefore never hit the warm-up, which is the experimental
        difference from :meth:`run` (and why the two reports legitimately
        differ for the same seed).

        ``processes`` > 1 spreads the legs across a multiprocessing
        pool.  Snapshots hold live generator frames and cannot cross a
        process boundary, so each worker warms its own (identical,
        same-seed) fleet and forks its slice of legs; the scored entries
        merge back in deterministic leg order.  ``self.results`` only
        collects :class:`FleetRunResult` objects in the serial path.

        Returns a :class:`ChaosReport` whose entries carry a ``branch``
        index next to ``mix``.
        """
        report = ChaosReport(self.seed, self.faults_per_mix, self.horizon)
        legs = [
            (mix, index)
            for mix in self.mixes
            for index in range(branches_per_mix)
        ]
        warm_params, branch_params = _split_fleet_params(self.fleet_params)
        if processes and processes > 1 and len(legs) > 1:
            report.entries.extend(
                self._run_fanout_pooled(
                    legs, warm_params, branch_params, processes
                )
            )
            return report
        from repro.cloud.fleet import warm_fleet

        fleet = warm_fleet(seed=self.seed, trace=self.trace, **warm_params)
        with fleet:
            plans = [self.plan_for(mix, branch=index) for mix, index in legs]
            results = fleet.fan_out(
                [dict(branch_params, faults=plan) for plan in plans]
            )
            for (mix, index), plan, result in zip(legs, plans, results):
                self.results.append(result)
                entry = self._score(mix, plan, result)
                entry["branch"] = index
                report.entries.append(entry)
        return report

    def _run_fanout_pooled(self, legs, warm_params, branch_params, processes):
        import multiprocessing

        workers = min(processes, len(legs))
        chunks = [legs[i::workers] for i in range(workers)]
        payloads = [
            (
                self.seed,
                self.faults_per_mix,
                self.horizon,
                warm_params,
                branch_params,
                chunk,
            )
            for chunk in chunks
            if chunk
        ]
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        ctx = multiprocessing.get_context(method)
        scored = {}
        with ctx.Pool(len(payloads)) as pool:
            # imap_unordered for throughput; the merge below re-imposes
            # leg order, so the report is arrival-order independent.
            for part in pool.imap_unordered(_fanout_worker, payloads):
                for key, entry in part:
                    scored[tuple(key)] = entry
        return [scored[leg] for leg in legs]

    @staticmethod
    def _score(mix, plan, result):
        dc = result.datacenter
        perf = dc.engine.perf
        injector = result.injector
        latencies = result.detection_latencies
        mean_latency = (
            sum(latencies) / len(latencies) if latencies else None
        )
        degraded = sorted(
            name
            for name, tenant in dc.tenants.items()
            if tenant.state == "degraded"
        )
        unreachable = sum(
            len(r.unreachable) for r in result.monitor.reports
        )
        return {
            "mix": mix,
            "faults_planned": len(plan),
            "faults_injected": perf.faults_injected,
            "faults_recovered": perf.faults_recovered,
            "injections": list(injector.injections),
            "campaigns": len(result.campaign.events),
            "detected": result.detected_campaigns,
            "recall": result.recall,
            "detection_latencies": latencies,
            "mean_detection_latency": mean_latency,
            "tenants_running": len(dc.running_tenants()),
            "tenants_degraded": degraded,
            "unreachable_findings": unreachable,
            "virtual_time": dc.engine.now,
        }


def _fanout_worker(payload):
    """Pool worker: warm one fleet, run a slice of fan-out legs.

    Each worker pays the warm-up itself (snapshots are engine state
    with live generator frames — not picklable), but determinism makes
    every worker's same-seed warm fleet identical, so the slices are
    byte-equivalent to the serial fan-out.  Returns ``[((mix, branch),
    scored_entry), ...]`` for the parent to merge in leg order.
    """
    seed, faults_per_mix, horizon, warm_params, branch_params, legs = payload
    from repro.cloud.fleet import warm_fleet

    out = []
    fleet = warm_fleet(seed=seed, **warm_params)
    with fleet:
        plans = [
            standard_mix_plan(
                mix,
                seed,
                faults=faults_per_mix,
                horizon=horizon,
                stream=(
                    f"faults.mix.{mix}"
                    if not index
                    else f"faults.mix.{mix}#{index}"
                ),
            )
            for mix, index in legs
        ]
        results = fleet.fan_out(
            [dict(branch_params, faults=plan) for plan in plans]
        )
        for (mix, index), plan, result in zip(legs, plans, results):
            entry = ChaosCampaign._score(mix, plan, result)
            entry["branch"] = index
            out.append(((mix, index), entry))
    return out
